"""Multi-GPU extension study (the paper's §7 future work).

Runs the 1-D-partition multi-GPU prototype on a power-law and a road
dataset over 1/2/4/8 GPUs and two interconnects, showing the classic
result that motivates the "future work" framing: frontier exchange over
the interconnect eats the per-GPU compute savings at SSSP's small
per-superstep work volumes, and a faster interconnect moves the
break-even point.
"""

from functools import lru_cache

from repro.bench import (
    benchmark_spec,
    format_table,
    get_graph,
    pick_sources,
    record_from_result,
    write_results,
)
from repro.gpusim import NVLINK2_GBPS, PCIE3_GBPS, multi_gpu_sssp
from repro.sssp import validate_distances

DATASETS = ("soc-PK", "road-TX")
GPU_COUNTS = (1, 2, 4, 8)


@lru_cache(maxsize=1)
def multigpu_matrix():
    spec = benchmark_spec()
    rows = []
    records = []
    for name in DATASETS:
        g = get_graph(name)
        src = pick_sources(name, 1)[0]
        for bw_name, bw in (("PCIe3", PCIE3_GBPS), ("NVLink2", NVLINK2_GBPS)):
            for ng in GPU_COUNTS:
                r = multi_gpu_sssp(
                    g, src, num_gpus=ng, spec=spec, interconnect_gbps=bw
                )
                validate_distances(g, src, r.dist)
                rows.append(
                    [
                        name,
                        bw_name,
                        ng,
                        round(r.time_ms, 4),
                        round(r.compute_time_ms, 4),
                        round(r.exchange_time_ms, 4),
                        round(r.exchange_fraction, 3),
                        r.supersteps,
                    ]
                )
                records.append(
                    record_from_result(
                        r, dataset=name,
                        method=f"1d-partition[{bw_name}x{ng}]",
                        gpu=spec.name,
                    )
                )
    return rows, records


def test_ablation_multigpu_scaling(benchmark):
    rows, records = benchmark.pedantic(multigpu_matrix, rounds=1, iterations=1)
    text = format_table(
        [
            "dataset", "link", "gpus", "total ms", "compute ms",
            "exchange ms", "exch frac", "supersteps",
        ],
        rows,
        title="Extension — multi-GPU 1-D partition scaling (§7 future work)",
    )
    print("\n" + text)
    write_results("ablation_multigpu.txt", text, records=records)

    def cell(name, link, ng):
        return next(
            r for r in rows if r[0] == name and r[1] == link and r[2] == ng
        )

    for name in DATASETS:
        # a single GPU has no exchange cost
        assert cell(name, "PCIe3", 1)[5] == 0.0
        # exchange cost appears and grows with GPU count
        assert cell(name, "PCIe3", 8)[5] > 0.0
        # the faster interconnect never loses to the slower one
        for ng in GPU_COUNTS[1:]:
            assert cell(name, "NVLink2", ng)[5] <= cell(name, "PCIe3", ng)[5]
        # the motivating negative result: at surrogate scale, multi-GPU
        # does not beat one GPU (exchange dominates) — the reason the
        # paper leaves multi-GPU to future work
        assert cell(name, "PCIe3", 8)[3] >= cell(name, "PCIe3", 1)[3] * 0.8
