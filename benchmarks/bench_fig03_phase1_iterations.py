"""Fig. 3: phase-1 iteration profile of the peak bucket + update counts.

The paper zooms into the costliest bucket of the Fig. 2 runs: the number
of active vertices per synchronous phase-1 iteration, and the total vs
valid update counts (SCALE 25: 30,741,651 total vs 6,843,263 valid —
ratio 4.49).  Also checks §3.3's claim that the peak bucket accounts for
a large share of total bucket time.
"""

from functools import lru_cache

import numpy as np

from repro.bench import format_table, write_results
from bench_fig02_bucket_sizes import run_traces, SCALES


@lru_cache(maxsize=1)
def peak_profiles():
    traces = run_traces()
    return {s: traces[s].trace.peak_bucket() for s in SCALES}, traces


def test_fig3_phase1_iterations(benchmark):
    peaks, traces = benchmark.pedantic(peak_profiles, rounds=1, iterations=1)

    max_iters = max(p.num_iterations for p in peaks.values())
    rows = []
    for i in range(max_iters):
        row = [i + 1]
        for s in SCALES:
            its = peaks[s].phase1_iterations
            row.append(its[i] if i < len(its) else 0)
        rows.append(row)
    text = format_table(
        ["iteration"] + [f"SCALE={s}" for s in SCALES],
        rows,
        title="Fig. 3 — active vertices per phase-1 iteration of the peak bucket",
    )
    summary_rows = [
        [
            f"SCALE={s}",
            peaks[s].phase1_total_updates,
            peaks[s].phase1_valid_updates,
            round(
                peaks[s].phase1_total_updates
                / max(peaks[s].phase1_valid_updates, 1),
                2,
            ),
        ]
        for s in SCALES
    ]
    text += "\n\n" + format_table(
        ["graph", "total_updates", "valid_updates", "ratio"],
        summary_rows,
        title="Fig. 3 annotations — phase-1 update counts (peak bucket)",
    )
    print("\n" + text)
    write_results(
        "fig03_phase1_iterations.txt", text,
        tables=[{
            "title": "fig3 phase-1 update counts (peak bucket)",
            "headers": ["graph", "total_updates", "valid_updates", "ratio"],
            "rows": summary_rows,
        }],
    )

    for s in SCALES:
        p = peaks[s]
        # multiple synchronous iterations -> repeated barrier overhead
        assert p.num_iterations >= 3
        # redundant work: total updates exceed valid updates in the peak
        assert p.phase1_total_updates > p.phase1_valid_updates
        # iteration curve rises then falls
        its = np.array(p.phase1_iterations)
        assert its.argmax() < len(its) - 1 or len(its) <= 2


def test_fig3_peak_bucket_dominates_runtime(benchmark):
    """§3.3: 'the overhead of bucket with peak active vertices is
    accounting for seventy percent of the total execution time.'  The CPU
    reference records no simulated time, so the proxy asserted here is
    work share: the peak bucket performs the dominant share of phase-1
    updates."""

    def work_share():
        _, traces = peak_profiles()
        shares = {}
        for s in SCALES:
            buckets = traces[s].trace.buckets
            total = sum(b.phase1_total_updates for b in buckets)
            peak = max(b.phase1_total_updates for b in buckets)
            shares[s] = peak / max(total, 1)
        return shares

    shares = benchmark.pedantic(work_share, rounds=1, iterations=1)
    print("\npeak-bucket share of phase-1 updates:", shares)
    for s in SCALES:
        assert shares[s] > 0.3
