"""Fig. 2: active vertices per bucket of Δ-stepping (Graph500, Δ = 0.1).

The paper runs the Graph500 reference Δ-stepping on Kronecker SCALE 24/25
(edgefactor 16, unit weights) and plots the number of active vertices in
every bucket.  The surrogates here are SCALE 13/14 (the same −11 scale
shift as the dataset surrogates); the claim under test is the *shape*:
bucket occupancy explodes in an early bucket and decays over the tail,
which is the load-imbalance motivation (§3.2).
"""

from functools import lru_cache

import numpy as np

from repro.bench import format_table, record_from_result, write_results
from repro.graphs import kronecker, largest_component_vertices
from repro.sssp import delta_stepping_cpu, validate_distances

SCALES = (13, 14)
DELTA = 0.1  # the paper's empirical Graph500 value


@lru_cache(maxsize=1)
def run_traces():
    out = {}
    for scale in SCALES:
        g = kronecker(scale, 16, weights="unit", seed=100 + scale)
        src = int(largest_component_vertices(g)[0])
        r = delta_stepping_cpu(g, src, delta=DELTA, record_trace=True)
        validate_distances(g, src, r.dist)
        out[scale] = r
    return out


def test_fig2_bucket_occupancy(benchmark):
    traces = benchmark.pedantic(run_traces, rounds=1, iterations=1)
    rows = []
    max_buckets = max(len(r.trace.buckets) for r in traces.values())
    for i in range(max_buckets):
        row = [i]
        for scale in SCALES:
            buckets = traces[scale].trace.buckets
            row.append(buckets[i].initial_active if i < len(buckets) else 0)
        rows.append(row)
    text = format_table(
        ["bucket_id"] + [f"SCALE={s}" for s in SCALES],
        rows,
        title=f"Fig. 2 — active vertices per bucket (Δ = {DELTA}, edgefactor 16)",
    )
    print("\n" + text)
    write_results(
        "fig02_bucket_sizes.txt", text,
        records=[
            record_from_result(r, dataset=f"kron-s{scale}", gpu="cpu")
            for scale, r in traces.items()
        ],
    )

    for scale in SCALES:
        sizes = np.array(
            [b.initial_active for b in traces[scale].trace.buckets]
        )
        peak = int(np.argmax(sizes))
        # sharp rise into the peak bucket...
        assert sizes[peak] > 10 * sizes[0]
        # ...then decay over the tail (paper: "decreases gradually in
        # subsequent buckets")
        assert sizes[-1] < sizes[peak] / 2
        # the larger graph has the larger peak
    assert max(
        b.initial_active for b in traces[SCALES[1]].trace.buckets
    ) > max(b.initial_active for b in traces[SCALES[0]].trace.buckets)
