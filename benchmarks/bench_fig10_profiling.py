"""Fig. 10: profiling counters — RDBS vs ADDS (the nvprof analysis).

The paper profiles both implementations with nvprof on six datasets and
reports four metrics; the simulator counts the same events:

(a) inst_executed_global_loads  — RDBS issues 0.03x–1.17x of ADDS (0.41x avg)
(b) inst_executed_global_stores — 0.082x–1.06x (0.57x avg)
(c) inst_executed_atomics       — RDBS reduces atomics by 2%–93% (39.6% avg)
(d) global_hit_rate             — RDBS gains +3.59% on average

Shape under test: averaged over the six datasets, RDBS issues fewer
warp-level loads and atomics than ADDS, and moves *less total DRAM
traffic* (L1-missing loads + stores + atomics) — the memory-efficiency
conclusion of §5.3.2.  The hit-rate *percentage* comparison is reported
but not asserted: at 1/64 scale ADDS's redundant re-relaxations re-touch
sectors within the (scaled) cache capacity, giving its extra traffic an
artificial temporal-locality credit that the paper's full-size runs do
not enjoy (see EXPERIMENTS.md for the analysis).
"""

from functools import lru_cache

from repro.bench import FIG10_DATASETS, format_table, run_matrix, write_results
from repro.metrics import geometric_mean


@lru_cache(maxsize=1)
def fig10_matrix():
    return run_matrix(FIG10_DATASETS, ["rdbs", "adds"], num_sources=2)


def _metrics(run):
    c = run.counters.totals
    return {
        "loads": c.inst_executed_global_loads,
        "stores": c.inst_executed_global_stores,
        "atomics": c.inst_executed_atomics,
        "hit_rate": c.global_hit_rate,
        "dram": (
            (c.global_load_transactions - c.l1_hits)
            + c.global_store_transactions
            + c.atomic_transactions
        ),
    }


def test_fig10_profiling_counters(benchmark):
    matrix = benchmark.pedantic(fig10_matrix, rounds=1, iterations=1)
    rows = []
    ratios = {"loads": [], "stores": [], "atomics": [], "hit": [], "dram": []}
    for d in FIG10_DATASETS:
        m_r = _metrics(matrix[(d, "rdbs")])
        m_a = _metrics(matrix[(d, "adds")])
        rows.append(
            [
                d,
                m_r["loads"], m_a["loads"],
                m_r["atomics"], m_a["atomics"],
                m_r["dram"], m_a["dram"],
                round(m_r["hit_rate"], 1), round(m_a["hit_rate"], 1),
            ]
        )
        ratios["loads"].append(max(m_r["loads"], 1) / max(m_a["loads"], 1))
        ratios["stores"].append(max(m_r["stores"], 1) / max(m_a["stores"], 1))
        ratios["atomics"].append(max(m_r["atomics"], 1) / max(m_a["atomics"], 1))
        ratios["dram"].append(max(m_r["dram"], 1) / max(m_a["dram"], 1))
        ratios["hit"].append(m_r["hit_rate"] - m_a["hit_rate"])
    text = format_table(
        [
            "dataset",
            "loads RDBS", "loads ADDS",
            "atomics RDBS", "atomics ADDS",
            "DRAM RDBS", "DRAM ADDS",
            "hit% RDBS", "hit% ADDS",
        ],
        rows,
        title="Fig. 10 — simulated nvprof counters, RDBS vs ADDS",
    )
    text += (
        f"\n\nRDBS/ADDS geomean: loads {geometric_mean(ratios['loads']):.2f}x"
        f" (paper avg 0.41x), stores {geometric_mean(ratios['stores']):.2f}x"
        f" (paper avg 0.57x), atomics {geometric_mean(ratios['atomics']):.2f}x"
        f" (paper avg reduction 39.6%),"
        f" DRAM traffic {geometric_mean(ratios['dram']):.2f}x"
        f"\nmean hit-rate gain: {sum(ratios['hit']) / len(ratios['hit']):+.2f}pp"
        " (paper avg +3.59pp; not asserted — at 1/64 scale ADDS's redundant"
        "\nre-relaxations enjoy an artificial temporal-locality credit, see"
        " EXPERIMENTS.md)"
    )
    print("\n" + text)
    write_results("fig10_profiling.txt", text, records=matrix.values())

    # averaged over the six datasets, RDBS issues fewer loads and atomics
    assert geometric_mean(ratios["loads"]) < 1.0
    assert geometric_mean(ratios["atomics"]) < 1.0
    # and the memory-efficiency headline: less total DRAM traffic, on
    # every dataset
    for d, r in zip(FIG10_DATASETS, ratios["dram"]):
        assert r < 1.0, (d, r)
