"""Ablation: decomposing property-driven reordering (PRO, §4.1).

The paper evaluates PRO as one switch; this study splits it into its two
halves — descending-degree relabeling and per-vertex weight sorting — and
measures what each contributes on a power-law dataset:

* degree relabeling alone: locality (cache hit rate) without the
  branch-free light/heavy split;
* weight sorting alone: branch-free split + early-valid-update ordering
  without the hot-region concentration;
* both (full PRO).

Also regenerates the locality diagnostics of ``reorder.pro_report`` (mean
neighbor distance, mixed light/heavy pair fraction) that motivate the
design.
"""

from functools import lru_cache

import numpy as np

from repro.bench import (
    benchmark_spec,
    format_table,
    get_graph,
    pick_sources,
    record_from_result,
    write_results,
)
from repro.reorder import apply_pro, pro_report
from repro.sssp import default_delta, rdbs_sssp, validate_distances

DATASET = "soc-PK"


@lru_cache(maxsize=1)
def reorder_ablation():
    g = get_graph(DATASET)
    spec = benchmark_spec()
    delta = default_delta(g)
    sources = pick_sources(DATASET, 2)
    arms = {
        "no PRO": dict(degree_reorder=False, weight_sort=False),
        "degree only": dict(degree_reorder=True, weight_sort=False),
        "weight-sort only": dict(degree_reorder=False, weight_sort=True),
        "full PRO": dict(degree_reorder=True, weight_sort=True),
    }
    rows = []
    records = []
    for label, toggles in arms.items():
        pre = apply_pro(g, delta, **toggles)
        times, ratios, hits = [], [], []
        for i, s in enumerate(sources):
            # run the engine directly on the pre-transformed graph with its
            # internal preprocessing off; the engine uses heavy offsets
            # whenever the graph carries them (i.e. the weight-sort arms)
            src = int(pre.old_to_new[s]) if pre.old_to_new is not None else s
            r = rdbs_sssp(
                pre, src, delta=delta, pro=False, adwl=True, basyn=True,
                spec=spec,
            )
            # map distances back for validation
            dist = pre.to_original_order(r.dist)
            validate_distances(g, s, dist)
            times.append(r.time_ms)
            ratios.append(r.work.update_ratio)
            hits.append(r.counters.totals.global_hit_rate)
            records.append(
                record_from_result(
                    r, dataset=DATASET, method=f"rdbs[{label}]/s{i}",
                    gpu=spec.name,
                )
            )
        rows.append(
            [
                label,
                round(float(np.mean(times)), 4),
                round(float(np.mean(ratios)), 2),
                round(float(np.mean(hits)), 1),
            ]
        )
    rep = pro_report(g, delta)
    return rows, rep, records


def test_ablation_reorder_decomposition(benchmark):
    rows, rep, records = benchmark.pedantic(
        reorder_ablation, rounds=1, iterations=1
    )
    text = format_table(
        ["arm", "time ms", "update ratio", "hit %"],
        rows,
        title=f"Ablation — PRO decomposition on {DATASET} (engine: ADWL+BASYN)",
    )
    text += (
        f"\n\nlocality diagnostics (pro_report):"
        f"\n  mean neighbor distance: {rep.mean_neighbor_distance_before:.1f}"
        f" -> {rep.mean_neighbor_distance_after:.1f}"
        f" (gain {rep.locality_gain:.2f}x)"
        f"\n  mixed light/heavy pairs: {rep.mixed_pairs_before:.3f}"
        f" -> {rep.mixed_pairs_after:.3f}"
    )
    print("\n" + text)
    write_results("ablation_reorder.txt", text, records=records)

    by = {r[0]: r for r in rows}
    # weight sorting leaves at most one class flip per segment
    assert rep.mixed_pairs_after < rep.mixed_pairs_before
    # degree relabeling improves the cache hit rate over no PRO
    assert by["degree only"][3] >= by["no PRO"][3] - 1.0
    # every arm is within a sane band of the full configuration
    assert by["full PRO"][1] <= 2.0 * min(r[1] for r in rows)
