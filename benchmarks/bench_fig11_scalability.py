"""Fig. 11: scalability with SCALE and edgefactor (GTEPS + speedup vs ADDS).

The paper sweeps Kronecker graphs at SCALE 22/23/24 x edgefactor
8/16/32/64 and reports RDBS's GTEPS (8.81 .. 40.09) plus its speedup over
ADDS (13.5x .. 68.7x; average 34.2x).  The surrogates here are SCALE
11/12/13 (the same -11 shift).  Shapes under test: GTEPS rises with
edgefactor at every scale; for a fixed edgefactor GTEPS does not degrade
as SCALE grows; RDBS beats ADDS on every configuration and its advantage
grows with edgefactor.
"""

from functools import lru_cache

from repro.bench import benchmark_spec, format_table, run_method, write_results
from repro.graphs import kronecker, largest_component_vertices
from repro.metrics import geometric_mean

SCALES = (11, 12, 13)
EDGEFACTORS = (8, 16, 32, 64)


@lru_cache(maxsize=1)
def fig11_matrix():
    spec = benchmark_spec()
    out = {}
    for scale in SCALES:
        for ef in EDGEFACTORS:
            g = kronecker(scale, ef, weights="int", seed=200 + scale * 10 + ef)
            src = int(largest_component_vertices(g)[0])
            rdbs = run_method(
                g.name, "rdbs", graph=g, sources=[src], spec=spec
            )
            adds = run_method(
                g.name, "adds", graph=g, sources=[src], spec=spec
            )
            out[(scale, ef)] = (rdbs, adds)
    return out


def test_fig11_scalability(benchmark):
    matrix = benchmark.pedantic(fig11_matrix, rounds=1, iterations=1)
    rows = []
    speedups = []
    for scale in SCALES:
        for ef in EDGEFACTORS:
            rdbs, adds = matrix[(scale, ef)]
            spd = adds.time_ms / rdbs.time_ms
            speedups.append(spd)
            rows.append(
                [
                    scale,
                    ef,
                    round(rdbs.gteps, 3),
                    round(rdbs.time_ms, 4),
                    round(adds.time_ms, 4),
                    round(spd, 2),
                ]
            )
    text = format_table(
        ["SCALE", "edgefactor", "RDBS GTEPS", "RDBS ms", "ADDS ms", "speedup"],
        rows,
        title="Fig. 11 — scalability over SCALE x edgefactor (simulated V100)",
    )
    text += (
        f"\n\ngeomean speedup vs ADDS: {geometric_mean(speedups):.2f}x"
        " (paper average: 34.2x at SCALE 22-24)"
    )
    print("\n" + text)
    write_results(
        "fig11_scalability.txt", text,
        records=[run for pair in matrix.values() for run in pair],
    )

    by = {(r[0], r[1]): r for r in rows}
    # GTEPS rises with edgefactor at every scale ("the higher the average
    # degree, the better performance"); allow 5% source-selection noise on
    # adjacent steps but require the end-to-end trend
    for scale in SCALES:
        gteps = [by[(scale, ef)][2] for ef in EDGEFACTORS]
        for a, b in zip(gteps, gteps[1:]):
            assert b >= 0.95 * a, (scale, gteps)
        assert gteps[-1] > gteps[0], (scale, gteps)
    # at fixed edgefactor, larger graphs sustain higher throughput
    # ("as the SCALE increases, the performance is better")
    for ef in EDGEFACTORS:
        assert by[(SCALES[-1], ef)][2] > by[(SCALES[0], ef)][2]
    # RDBS beats ADDS on every configuration, by a healthy average factor
    assert all(s > 1.0 for s in speedups)
    assert geometric_mean(speedups) > 2.0
