"""Fig. 8: speedup of the optimization arms over the BL baseline.

The paper reports, per dataset, the speedup of BASYN+PRO, BASYN+ADWL and
BASYN+PRO+ADWL over a synchronous push-mode baseline (BL):

    dataset   BASYN+PRO  BASYN+ADWL  BASYN+PRO+ADWL   (paper, V100)
    road-TX   1.36       1.47        1.38
    Amazon    4.59       6.47        10.51
    web-GL    5.03       10.36       9.27
    com-LJ    5.88       13.02       17.55
    soc-PK    9.97       21.03       25.45
    k-n21-16  4.10       45.88       53.44

The absolute factors depend on graph scale (they grow with it); the shape
asserted here: every arm beats BL on every power-law dataset, the full
RDBS is the best (or near-best) arm on power-law graphs, and road-TX shows
only marginal gains (the paper's own negative result for uniform-degree,
high-diameter inputs).
"""

from functools import lru_cache

from repro.bench import (
    FIG8_DATASETS,
    format_table,
    geo_speedup,
    run_matrix,
    write_results,
)
from repro.metrics import geometric_mean

ARMS = ["basyn+pro", "basyn+adwl", "basyn+pro+adwl"]
PAPER = {
    "road-TX": (1.36, 1.47, 1.38),
    "Amazon": (4.59, 6.47, 10.51),
    "web-GL": (5.03, 10.36, 9.27),
    "com-LJ": (5.88, 13.02, 17.55),
    "soc-PK": (9.97, 21.03, 25.45),
    "k-n21-16": (4.10, 45.88, 53.44),
}


@lru_cache(maxsize=1)
def fig8_matrix():
    return run_matrix(FIG8_DATASETS, ["bl"] + ARMS, num_sources=3)


def test_fig8_optimization_speedups(benchmark):
    matrix = benchmark.pedantic(fig8_matrix, rounds=1, iterations=1)
    rows = []
    for d in FIG8_DATASETS:
        base = matrix[(d, "bl")].time_ms
        speedups = [base / matrix[(d, a)].time_ms for a in ARMS]
        rows.append(
            [d]
            + [round(s, 2) for s in speedups]
            + [p for p in PAPER[d]]
        )
    text = format_table(
        ["dataset"]
        + [f"{a} (ours)" for a in ARMS]
        + [f"{a} (paper)" for a in ARMS],
        rows,
        title="Fig. 8 — speedup over BL (synchronous push baseline)",
    )
    avg = [
        round(geo_speedup(matrix, FIG8_DATASETS, "bl", a), 2) for a in ARMS
    ]
    text += f"\n\ngeomean speedups (ours): {dict(zip(ARMS, avg))}"
    text += "\npaper arithmetic means:  {'basyn+pro': 5.15, 'basyn+adwl': 16.37, 'basyn+pro+adwl': 19.60}"
    print("\n" + text)
    write_results("fig08_optimizations.txt", text, records=matrix.values())

    powerlaw = [d for d in FIG8_DATASETS if d != "road-TX"]
    for d in powerlaw:
        base = matrix[(d, "bl")].time_ms
        for a in ARMS:
            assert base / matrix[(d, a)].time_ms > 1.0, (d, a)
    # the full configuration is the best arm on average over power-law sets
    full = geometric_mean(
        matrix[(d, "bl")].time_ms / matrix[(d, "basyn+pro+adwl")].time_ms
        for d in powerlaw
    )
    pro_only = geometric_mean(
        matrix[(d, "bl")].time_ms / matrix[(d, "basyn+pro")].time_ms
        for d in powerlaw
    )
    assert full > 2.0
    assert full >= 0.9 * pro_only
    # road-TX: marginal gains at best (the paper's caveat)
    road = matrix[("road-TX", "bl")].time_ms / matrix[
        ("road-TX", "basyn+pro+adwl")
    ].time_ms
    assert road < 5.0
