"""Table 2: RDBS vs PQ-Δ* (CPU) and ADDS (GPU).

The paper's headline comparison (runtime in ms, speedup in parentheses):

    graph     PQ-Δ* (CPU)      ADDS (GPU)      RDBS
    road-TX   39.68 (4.48x)    8.10 (0.91x)    8.86
    Amazon    19.62 (9.81x)    4.14 (2.07x)    2.00
    web-GL    27.98 (5.62x)    9.34 (1.88x)    4.98
    com-LJ    167.76 (15.13x)  25.84 (2.33x)   11.09
    soc-PK    99.25 (17.35x)   13.34 (2.33x)   5.72
    k-n21-16  42.60 (9.53x)    93.95 (21.02x)  4.47

Shape under test: RDBS beats the CPU competitor everywhere by a large
factor; RDBS beats ADDS on every power-law dataset; ADDS wins (or ties)
on road-TX — the paper's own caveat for uniform-degree high-diameter
graphs.
"""

from functools import lru_cache

from repro.bench import (
    TABLE2_DATASETS,
    format_table,
    run_matrix,
    write_results,
)
from repro.metrics import geometric_mean

PAPER_MS = {
    "road-TX": (39.68, 8.10, 8.86),
    "Amazon": (19.62, 4.14, 2.00),
    "web-GL": (27.98, 9.34, 4.98),
    "com-LJ": (167.76, 25.84, 11.09),
    "soc-PK": (99.25, 13.34, 5.72),
    "k-n21-16": (42.60, 93.95, 4.47),
}


@lru_cache(maxsize=1)
def table2_matrix():
    return run_matrix(TABLE2_DATASETS, ["pq-delta*", "adds", "rdbs"], num_sources=3)


def test_table2_competitor_runtimes(benchmark):
    matrix = benchmark.pedantic(table2_matrix, rounds=1, iterations=1)
    rows = []
    for d in TABLE2_DATASETS:
        cpu = matrix[(d, "pq-delta*")].time_ms
        adds = matrix[(d, "adds")].time_ms
        rdbs = matrix[(d, "rdbs")].time_ms
        p_cpu, p_adds, p_rdbs = PAPER_MS[d]
        rows.append(
            [
                d,
                f"{cpu:.4f} ({cpu / rdbs:.2f}x)",
                f"{adds:.4f} ({adds / rdbs:.2f}x)",
                f"{rdbs:.4f}",
                f"{p_cpu} ({p_cpu / p_rdbs:.2f}x)",
                f"{p_adds} ({p_adds / p_rdbs:.2f}x)",
                f"{p_rdbs}",
            ]
        )
    text = format_table(
        [
            "graph",
            "PQ-Δ* ms (spd)",
            "ADDS ms (spd)",
            "RDBS ms",
            "paper PQ-Δ*",
            "paper ADDS",
            "paper RDBS",
        ],
        rows,
        title="Table 2 — runtime and speedup vs competitors (simulated V100)",
    )
    cpu_geo = geometric_mean(
        matrix[(d, "pq-delta*")].time_ms / matrix[(d, "rdbs")].time_ms
        for d in TABLE2_DATASETS
    )
    text += f"\n\ngeomean speedup vs PQ-Δ*: {cpu_geo:.2f}x (paper mean: 10.32x)"
    print("\n" + text)
    write_results("table2_competitors.txt", text, records=matrix.values())

    # RDBS always beats the CPU competitor, substantially on average
    for d in TABLE2_DATASETS:
        assert matrix[(d, "pq-delta*")].time_ms > matrix[(d, "rdbs")].time_ms, d
    assert cpu_geo > 3.0
    # RDBS beats ADDS on every power-law dataset...
    for d in TABLE2_DATASETS:
        if d == "road-TX":
            continue
        assert matrix[(d, "adds")].time_ms > matrix[(d, "rdbs")].time_ms, d
    # ...but not on road-TX (paper: 0.91x)
    assert (
        matrix[("road-TX", "adds")].time_ms
        <= matrix[("road-TX", "rdbs")].time_ms
    )
