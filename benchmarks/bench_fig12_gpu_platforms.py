"""Fig. 12: RDBS runtime on Tesla T4 vs V100.

The paper runs RDBS on both boards and reports V100/T4 speedups of
1.47x–2.58x, noting the ratio tracks the hardware gap: "our theoretical
analysis suggests that the performance of SSSP on the V100 platform
should be two to three times better than on the Tesla T4".  The simulator
is parameterized by the same datasheet numbers, so the ratio must land in
the same band wherever kernel bodies (not launch latencies) dominate.
"""

from functools import lru_cache

from repro.bench import (
    FIG12_DATASETS,
    benchmark_spec,
    format_table,
    run_method,
    write_results,
)
from repro.gpusim import T4, V100
from repro.metrics import geometric_mean

PAPER_SPEEDUP = {
    "Amazon": 2.14,
    "road-TX": 1.47,
    "web-GL": 2.30,
    "com-LJ": 2.35,
    "soc-PK": 2.58,
    "k-n21-16": 1.51,
}


@lru_cache(maxsize=1)
def fig12_matrix():
    out = {}
    for d in FIG12_DATASETS:
        out[(d, "V100")] = run_method(
            d, "rdbs", num_sources=2, spec=benchmark_spec(V100)
        )
        out[(d, "T4")] = run_method(
            d, "rdbs", num_sources=2, spec=benchmark_spec(T4)
        )
    return out


def test_fig12_gpu_platforms(benchmark):
    matrix = benchmark.pedantic(fig12_matrix, rounds=1, iterations=1)
    rows = []
    ratios = []
    for d in FIG12_DATASETS:
        v = matrix[(d, "V100")].time_ms
        t = matrix[(d, "T4")].time_ms
        ratios.append(t / v)
        rows.append(
            [d, round(t, 4), round(v, 4), round(t / v, 2), PAPER_SPEEDUP[d]]
        )
    text = format_table(
        ["dataset", "T4 ms", "V100 ms", "V100 speedup (ours)", "paper"],
        rows,
        title="Fig. 12 — RDBS runtime on T4 vs V100",
    )
    text += f"\n\ngeomean V100/T4 speedup: {geometric_mean(ratios):.2f}x (paper range 1.47-2.58x)"
    print("\n" + text)
    write_results("fig12_gpu_platforms.txt", text, records=matrix.values())

    # V100 is never slower, and the average gain sits in the paper's
    # "two to three times" hardware band (allowing the scaled regime's
    # launch-bound datasets to pull the low end down)
    assert all(r >= 1.0 for r in ratios)
    assert 1.2 < geometric_mean(ratios) < 3.2
