"""Ablations beyond the paper's figures.

Three studies DESIGN.md calls out for the design choices the paper makes
but does not sweep:

* **Δ sensitivity** — runtime and work efficiency of RDBS across a
  log-spaced Δ0 sweep (the classic Δ-stepping trade-off: small Δ is
  work-efficient but parallelism-starved; large Δ degenerates toward
  Bellman-Ford);
* **dynamic-Δ (Eq. 1–2) vs fixed Δ** — what the bucket-aware controller
  actually buys over the same engine with the controller disabled;
* **asynchronous vs synchronous phase 1** — BASYN's barrier-elimination
  payoff in isolation, plus the Near-Far 2-bucket design point between BL
  and full bucketing.
"""

from functools import lru_cache

from repro.bench import (
    benchmark_spec,
    format_table,
    record_from_run,
    run_method,
    write_results,
)
from repro.sssp import default_delta

DATASET = "soc-PK"
DELTA_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 256.0)


@lru_cache(maxsize=1)
def delta_sweep():
    from repro.bench import get_graph

    g = get_graph(DATASET)
    d0 = default_delta(g)
    rows = []
    records = []
    for f in DELTA_FACTORS:
        run = run_method(DATASET, "rdbs", num_sources=2, delta=d0 * f)
        buckets = run.results[0].extra["buckets"]
        rows.append(
            [f, round(d0 * f, 1), round(run.time_ms, 4),
             round(run.update_ratio, 2), buckets]
        )
        rec = record_from_run(run)
        rec.method = f"rdbs[Δ0x{f:g}]"
        records.append(rec)
    return rows, records


def test_ablation_delta_sensitivity(benchmark):
    rows, records = benchmark.pedantic(delta_sweep, rounds=1, iterations=1)
    text = format_table(
        ["Δ0 factor", "Δ0", "time ms", "update ratio", "buckets"],
        rows,
        title=f"Ablation — Δ0 sensitivity of RDBS on {DATASET}",
    )
    print("\n" + text)
    write_results("ablation_delta_sensitivity.txt", text, records=records)

    # the classic trade-off: bucket count falls monotonically with Δ...
    buckets = [r[4] for r in rows]
    assert buckets == sorted(buckets, reverse=True)
    # ...while work efficiency degrades toward Bellman-Ford
    assert rows[-1][3] >= rows[0][3]
    # the default (factor 1.0) is within 4x of the best sweep point
    best = min(r[2] for r in rows)
    default = next(r[2] for r in rows if r[0] == 1.0)
    assert default <= 4.0 * best


@lru_cache(maxsize=1)
def execution_mode_matrix():
    out = {}
    for method in ("rdbs", "sync-delta", "basyn", "near-far", "bl"):
        out[method] = run_method(DATASET, method, num_sources=2)
    return out


def test_ablation_execution_modes(benchmark):
    runs = benchmark.pedantic(execution_mode_matrix, rounds=1, iterations=1)
    rows = [
        [
            m,
            round(r.time_ms, 4),
            round(r.update_ratio, 2),
            r.results[0].counters.totals.barriers,
            r.results[0].counters.totals.kernel_launches,
        ]
        for m, r in runs.items()
    ]
    text = format_table(
        ["method", "time ms", "update ratio", "barriers", "launches"],
        rows,
        title=f"Ablation — execution modes on {DATASET}",
    )
    print("\n" + text)
    write_results("ablation_execution_modes.txt", text, records=runs.values())

    # async phase 1 eliminates most synchronization of the sync engine
    assert (
        runs["basyn"].results[0].counters.totals.barriers
        < runs["sync-delta"].results[0].counters.totals.barriers
    )
    # and the full RDBS is the fastest of the family on this dataset
    assert runs["rdbs"].time_ms == min(r.time_ms for r in runs.values())
    # near-far sits between BL and bucketed Δ-stepping in work efficiency
    assert (
        runs["rdbs"].update_ratio
        <= runs["near-far"].update_ratio
        <= runs["bl"].update_ratio * 1.1
    )
