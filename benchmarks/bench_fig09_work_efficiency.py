"""Fig. 9: work efficiency — total/valid update ratio, RDBS vs ADDS.

The paper reports per-dataset ratios of total updates to valid updates for
RDBS (1.06 .. 6.83, average 2.22), the factor by which ADDS performs more
updates than RDBS (1.33x .. 2.18x), and the accompanying performance
speedup over ADDS.  Shape under test: RDBS's ratio stays small on
power-law graphs; ADDS performs more updates than RDBS on every dataset;
update-count advantage correlates with performance advantage.
"""

from functools import lru_cache

from repro.bench import FIG9_DATASETS, format_table, run_matrix, write_results

PAPER_RATIO = {
    "k-n21-16": 1.06,
    "web-GL": 1.49,
    "soc-PK": 1.67,
    "com-LJ": 1.67,
    "soc-TW": 1.69,
    "as-Skt": 1.73,
    "soc-LJ": 1.80,
    "wiki-TK": 1.85,
    "com-OK": 2.39,
    "road-TX": 6.83,
}


@lru_cache(maxsize=1)
def fig9_matrix():
    return run_matrix(FIG9_DATASETS, ["rdbs", "adds"], num_sources=2)


def test_fig9_work_efficiency(benchmark):
    matrix = benchmark.pedantic(fig9_matrix, rounds=1, iterations=1)
    rows = []
    for d in FIG9_DATASETS:
        rdbs = matrix[(d, "rdbs")]
        adds = matrix[(d, "adds")]
        r_updates = sum(r.work.total_updates for r in rdbs.results)
        a_updates = sum(r.work.total_updates for r in adds.results)
        rows.append(
            [
                d,
                round(rdbs.update_ratio, 2),
                PAPER_RATIO[d],
                round(a_updates / max(r_updates, 1), 2),
                round(adds.time_ms / rdbs.time_ms, 2),
            ]
        )
    text = format_table(
        [
            "dataset",
            "RDBS ratio (ours)",
            "RDBS ratio (paper)",
            "ADDS/RDBS updates",
            "speedup vs ADDS",
        ],
        rows,
        title="Fig. 9 — work efficiency (total updates / valid updates)",
    )
    avg = sum(r[1] for r in rows) / len(rows)
    text += f"\n\naverage RDBS ratio (ours): {avg:.2f} (paper: 2.22)"
    print("\n" + text)
    write_results("fig09_work_efficiency.txt", text, records=matrix.values())

    by_name = {r[0]: r for r in rows}
    # RDBS ratios are modest everywhere (paper max is 6.83 on road-TX)
    for d in FIG9_DATASETS:
        assert by_name[d][1] < 8.0, d
    # ADDS performs more updates than RDBS on all power-law datasets
    for d in FIG9_DATASETS:
        if d == "road-TX":
            continue
        assert by_name[d][3] > 1.0, d
    # and RDBS outperforms ADDS on those datasets
    for d in FIG9_DATASETS:
        if d == "road-TX":
            continue
        assert by_name[d][4] > 1.0, d
