"""Table 1: dataset statistics — surrogate vs paper.

Regenerates the paper's Table 1 columns (#vertices, #edges, avg degree,
diameter) for every surrogate dataset side by side with the numbers the
paper reports for the real SNAP graphs, making the scale factor and the
preserved structure explicit.
"""

from functools import lru_cache

from repro.bench import format_table, get_graph, write_results
from repro.graphs.properties import graph_stats
from repro.graphs.surrogates import DATASETS


@lru_cache(maxsize=1)
def build_table():
    rows = []
    for name, spec in DATASETS.items():
        g = get_graph(name)
        s = graph_stats(g)
        rows.append(
            [
                name,
                s.num_vertices,
                s.num_edges,
                round(s.avg_degree, 2),
                s.diameter_estimate,
                spec.paper_vertices,
                spec.paper_edges,
                round(spec.paper_avg_degree, 2),
                spec.paper_diameter,
                round(spec.paper_edges / max(s.num_edges, 1), 1),
            ]
        )
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    text = format_table(
        [
            "dataset", "n", "m", "avg_deg", "diam",
            "paper_n", "paper_m", "paper_avg", "paper_diam", "scale_x",
        ],
        rows,
        title="Table 1 — surrogate datasets vs paper",
    )
    print("\n" + text)
    write_results(
        "table1_datasets.txt", text,
        tables=[{
            "title": "Table 1 — surrogate datasets vs paper",
            "headers": [
                "dataset", "n", "m", "avg_deg", "diam",
                "paper_n", "paper_m", "paper_avg", "paper_diam", "scale_x",
            ],
            "rows": rows,
        }],
    )

    by_name = {r[0]: r for r in rows}
    # the structural claims Table 1 supports must hold on the surrogates:
    # road-TX is a uniform-low-degree graph with the largest diameter,
    road = by_name["road-TX"]
    assert road[3] < 4.0
    assert road[4] == max(r[4] for r in rows)
    # com-OK is the densest real graph,
    assert by_name["com-OK"][3] == max(
        r[3] for r in rows if r[0] != "k-n21-16"
    )
    # every surrogate is a genuine scale-down (paper m larger than ours)
    assert all(r[9] > 1 for r in rows)
