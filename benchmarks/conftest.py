"""Benchmark-suite configuration.

Every bench test takes the ``benchmark`` fixture so the whole suite runs
under ``pytest benchmarks/ --benchmark-only``.  Expensive sweeps are
memoized at module level, so pytest-benchmark's repeated calls reuse the
computed matrices and only time the core runs.
"""

import pytest


@pytest.fixture(autouse=True)
def _print_blank_line_for_table_readability(capsys):
    yield
