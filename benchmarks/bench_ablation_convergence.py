"""Ablation: convergence acceleration (the §4.3 claim, quantified).

"By using this bucket-aware asynchronous execution optimization ... the
synchronization overhead is cut down, which accelerates the convergence of
the algorithm."  This study measures convergence directly: the settled-
vertex fraction over bucket-sequence position (area-under-curve; higher =
earlier settlement) and the synchronization events spent getting there,
for the sync engine, the async engine, and the async engine with the
Eq. 1–2 dynamic-Δ controller's feedback loop exercised by a deliberately
small Δ0.
"""

from functools import lru_cache

from repro.bench import (
    benchmark_spec,
    format_table,
    get_graph,
    pick_sources,
    record_from_result,
    write_results,
)
from repro.metrics import convergence_from_trace
from repro.sssp import default_delta, rdbs_sssp, validate_distances

DATASET = "web-GL"


@lru_cache(maxsize=1)
def convergence_runs():
    g = get_graph(DATASET)
    spec = benchmark_spec()
    src = pick_sources(DATASET, 1)[0]
    d0 = default_delta(g)
    arms = {
        "sync, fixed Δ": dict(basyn=False, delta=d0),
        "async, dynamic Δ": dict(basyn=True, delta=d0),
        "async, dynamic Δ (small Δ0)": dict(basyn=True, delta=d0 / 4),
    }
    rows = []
    records = []
    for label, kw in arms.items():
        r = rdbs_sssp(g, src, spec=spec, record_trace=True, **kw)
        validate_distances(g, src, r.dist)
        curve = convergence_from_trace(r.trace)
        c = r.counters.totals
        rows.append(
            [
                label,
                round(r.time_ms, 4),
                len(r.trace.buckets),
                round(curve.auc, 3),
                curve.quantile_position(0.9) + 1,
                c.barriers,
                c.async_rounds,
            ]
        )
        records.append(
            record_from_result(
                r, dataset=DATASET, method=f"rdbs[{label}]", gpu=spec.name
            )
        )
    return rows, records


def test_ablation_convergence(benchmark):
    rows, records = benchmark.pedantic(
        convergence_runs, rounds=1, iterations=1
    )
    text = format_table(
        [
            "arm", "time ms", "buckets", "AUC",
            "90%-settled bucket", "barriers", "async rounds",
        ],
        rows,
        title=f"Ablation — convergence acceleration on {DATASET} (§4.3)",
    )
    print("\n" + text)
    write_results("ablation_convergence.txt", text, records=records)

    by = {r[0]: r for r in rows}
    sync = by["sync, fixed Δ"]
    async_ = by["async, dynamic Δ"]
    # the async engine spends far fewer barriers...
    assert async_[5] < sync[5]
    # ...replacing them with cheap async rounds
    assert async_[6] > 0
    # and is not slower end to end
    assert async_[1] <= sync[1] * 1.05
    # settlement is front-loaded at least as well
    assert async_[3] >= sync[3] - 0.05
