"""Extension: the graph-processing-framework kernels (§7 direction).

The paper closes with "a high-performance graph processing framework" as
future work.  This bench runs the three framework kernels built on the
same simulated substrate — BFS (adaptive vs static load balancing),
label-propagation connected components, and PageRank — across three
structurally different datasets, showing that the ADWL-style adaptive
balancing transfers beyond SSSP.
"""

from functools import lru_cache

from repro.bench import (
    benchmark_spec,
    format_table,
    get_graph,
    pick_sources,
    record_from_result,
    write_results,
)
from repro.graphalgs import bfs_gpu, connected_components_gpu, pagerank_gpu

DATASETS = ["road-TX", "soc-PK", "k-n21-16"]


@lru_cache(maxsize=1)
def framework_matrix():
    spec = benchmark_spec()
    rows = []
    records = []
    for name in DATASETS:
        g = get_graph(name)
        src = pick_sources(name, 1)[0]
        bfs_a = bfs_gpu(g, src, spec=spec, adaptive=True)
        bfs_s = bfs_gpu(g, src, spec=spec, adaptive=False)
        cc = connected_components_gpu(g, spec=spec)
        pr = pagerank_gpu(g, spec=spec, max_iterations=50, tol=1e-7)
        for method, r in (
            ("bfs[adaptive]", bfs_a),
            ("bfs[static]", bfs_s),
            ("components", cc),
            ("pagerank", pr),
        ):
            records.append(
                record_from_result(
                    r, dataset=name, method=method, gpu=spec.name
                )
            )
        rows.append(
            [
                name,
                round(bfs_a.time_ms, 4),
                round(bfs_s.time_ms, 4),
                bfs_a.extra["depth"],
                round(cc.time_ms, 4),
                cc.num_components,
                round(pr.time_ms, 4),
                pr.iterations,
            ]
        )
    return rows, records


def test_framework_kernels(benchmark):
    rows, records = benchmark.pedantic(framework_matrix, rounds=1, iterations=1)
    text = format_table(
        [
            "dataset", "BFS adpt ms", "BFS static ms", "depth",
            "CC ms", "components", "PageRank ms", "PR iters",
        ],
        rows,
        title="Extension — framework kernels on the simulated V100",
    )
    print("\n" + text)
    write_results("framework_kernels.txt", text, records=records)

    by = {r[0]: r for r in rows}
    # adaptive balancing helps (or at least never hurts) BFS on the
    # power-law datasets, exactly as it does SSSP phase 1
    for d in ("soc-PK", "k-n21-16"):
        assert by[d][1] <= by[d][2] * 1.05, d
    # road BFS is deep, social BFS is shallow (structure sanity)
    assert by["road-TX"][3] > 10 * by["soc-PK"][3]
    # PageRank converges within the iteration budget everywhere
    assert all(r[7] <= 50 for r in rows)
