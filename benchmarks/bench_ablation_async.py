"""Ablation: asynchronous micro-round granularity + historical baselines.

Two studies:

* **chunk-size sensitivity** — BASYN drains its workload lists in
  micro-rounds; the chunk size trades distance freshness (small chunks ⇒
  fewer redundant updates, the async convergence benefit of §4.3) against
  scheduling rounds.  Sweeping it shows the paper's design point (a few
  thousand) sits on the flat part of the curve.
* **baseline lineage** — Harish–Narayanan (2007, topology-driven) vs BL
  (frontier push) vs Near-Far (2014) vs ADDS (2021) vs RDBS (the paper):
  the historical progression §1/§6 narrates, as one measured table.
"""

from functools import lru_cache

from repro.bench import (
    benchmark_spec,
    format_table,
    get_graph,
    pick_sources,
    record_from_result,
    run_method,
    write_results,
)
from repro.sssp import rdbs_sssp, validate_distances

DATASET = "com-LJ"
CHUNKS = (128, 512, 2048, 8192, 65536)


@lru_cache(maxsize=1)
def chunk_sweep():
    g = get_graph(DATASET)
    spec = benchmark_spec()
    src = pick_sources(DATASET, 1)[0]
    rows = []
    records = []
    for chunk in CHUNKS:
        r = rdbs_sssp(g, src, spec=spec, async_chunk=chunk)
        validate_distances(g, src, r.dist)
        rows.append(
            [
                chunk,
                round(r.time_ms, 4),
                round(r.work.update_ratio, 3),
                r.extra["rounds"],
            ]
        )
        records.append(
            record_from_result(
                r, dataset=DATASET, method=f"rdbs[chunk={chunk}]",
                gpu=spec.name,
            )
        )
    return rows, records


def test_ablation_async_chunk(benchmark):
    rows, records = benchmark.pedantic(chunk_sweep, rounds=1, iterations=1)
    text = format_table(
        ["chunk", "time ms", "update ratio", "micro-rounds"],
        rows,
        title=f"Ablation — async micro-round chunk size on {DATASET}",
    )
    print("\n" + text)
    write_results("ablation_async_chunk.txt", text, records=records)

    # smaller chunks never do more redundant work (fresher distances)
    ratios = [r[2] for r in rows]
    assert ratios[0] <= ratios[-1] + 0.05
    # rounds decrease monotonically with chunk size
    rounds = [r[3] for r in rows]
    assert rounds == sorted(rounds, reverse=True)


@lru_cache(maxsize=1)
def lineage_matrix():
    methods = ["harish-narayanan", "bl", "near-far", "adds", "rdbs"]
    return {m: run_method(DATASET, m, num_sources=2) for m in methods}


def test_ablation_baseline_lineage(benchmark):
    runs = benchmark.pedantic(lineage_matrix, rounds=1, iterations=1)
    rows = [
        [
            m,
            r.results[0].extra.get("iterations", r.results[0].extra.get("rounds", "-")),
            round(r.time_ms, 4),
            round(r.update_ratio, 2),
        ]
        for m, r in runs.items()
    ]
    text = format_table(
        ["method (year)", "iterations", "time ms", "update ratio"],
        rows,
        title=f"Ablation — GPU SSSP lineage on {DATASET} "
              "(2007 HN -> 2014 Near-Far -> 2021 ADDS -> 2023 RDBS)",
    )
    print("\n" + text)
    write_results("ablation_lineage.txt", text, records=runs.values())

    # the paper's narrative: each generation improves on the last's
    # dominant weakness, and RDBS ends up fastest
    assert runs["rdbs"].time_ms == min(r.time_ms for r in runs.values())
    # the push-mode generation (HN'07, BL) is the slowest pair; the
    # bucketed/asynchronous generation is strictly ahead of both
    push_gen = min(runs["harish-narayanan"].time_ms, runs["bl"].time_ms)
    for newer in ("near-far", "adds", "rdbs"):
        assert runs[newer].time_ms < push_gen, newer
    # and work efficiency improves monotonically across the generations
    assert (
        runs["rdbs"].update_ratio
        < runs["adds"].update_ratio
        < runs["bl"].update_ratio
    )
