"""Fig. 1(b): the motivation analysis on the paper's 8-vertex toy graph.

Runs the synchronous push-mode baseline on the exact Fig. 1(a) graph and
reports valid/invalid updates and invalid checks — the quantities the
figure annotates (2 valid updates, 7 invalid updates, 5 invalid checks in
the partial execution it draws).
"""

from functools import lru_cache

from repro.bench import (
    benchmark_spec,
    format_table,
    record_from_result,
    write_results,
)
from repro.graphs import paper_fig1_graph
from repro.sssp import bl_sssp, rdbs_sssp, validate_distances


@lru_cache(maxsize=1)
def run_toy():
    g = paper_fig1_graph()
    spec = benchmark_spec()
    bl = bl_sssp(g, 0, spec=spec)
    rdbs = rdbs_sssp(g, 0, delta=3.0, spec=spec)
    validate_distances(g, 0, bl.dist)
    validate_distances(g, 0, rdbs.dist)
    return bl, rdbs


def test_fig1_motivation_counts(benchmark):
    bl, rdbs = benchmark.pedantic(run_toy, rounds=1, iterations=1)
    rows = []
    for r in (bl, rdbs):
        t = r.work
        rows.append(
            [
                r.method,
                t.total_updates,
                t.valid_updates,
                t.invalid_updates,
                t.checks,
                round(t.update_ratio, 3),
            ]
        )
    text = format_table(
        ["method", "updates", "valid", "invalid", "checks", "ratio"],
        rows,
        title="Fig. 1(b) — work analysis on the paper's toy graph (Δ=3, source 0)",
    )
    print("\n" + text)
    write_results(
        "fig01_motivation.txt", text,
        records=[record_from_result(r, dataset="fig1-toy") for r in (bl, rdbs)],
    )

    # the figure's claim: synchronous push performs invalid updates and
    # invalid checks on this graph, and bucketed execution reduces them
    assert bl.work.invalid_updates > 0
    assert bl.work.checks > 0
    assert rdbs.work.invalid_updates <= bl.work.invalid_updates
