#!/usr/bin/env python3
"""Documentation checker: keep the docs true as the code moves.

Three checks, run over ``README.md``, ``EXPERIMENTS.md``, ``ROADMAP.md``
and every page under ``docs/``:

1. **Cross-links** — every relative markdown link ``[...](path)`` must
   resolve to an existing file (anchors stripped, prose only — fenced
   code blocks are ignored).
2. **Index completeness** — every ``docs/*.md`` page must be linked
   from ``docs/index.md``, so the landing page cannot silently fall
   behind a new document.
3. **CLI commands** — every ``python -m repro[.cli] ...`` command quoted
   in a fenced block or inline code span is parsed against the real
   argparse tree (``repro.cli.build_parser()``).  A renamed subcommand,
   a dropped flag or a stale ``--method`` choice fails here instead of
   in a reader's terminal.  Commands containing placeholders
   (``<m>``, ``[paths]``, ``…``) are skipped.

Exit status 0 when every check passes; 1 otherwise, with one line per
problem.  Run it locally with ``python tools/check_docs.py``; CI runs it
in the lint job.
"""

from __future__ import annotations

import contextlib
import io
import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import build_parser  # noqa: E402

DOC_FILES = ["README.md", "EXPERIMENTS.md", "ROADMAP.md"]
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
INLINE_CODE_RE = re.compile(r"`([^`]+)`")
ENV_ASSIGN_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")
PLACEHOLDER_CHARS = "<>[]…"


def _rel(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def doc_paths() -> list[Path]:
    paths = [REPO / name for name in DOC_FILES]
    paths.extend(sorted((REPO / "docs").glob("*.md")))
    return [p for p in paths if p.exists()]


def iter_prose_and_code(text: str):
    """Yield ``(lineno, line, in_code_block)`` with fence tracking."""
    fenced = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        yield lineno, line, fenced


# ----------------------------------------------------------------------
# check 1: cross-links
# ----------------------------------------------------------------------

def check_links(path: Path) -> list[str]:
    problems = []
    for lineno, line, fenced in iter_prose_and_code(path.read_text()):
        if fenced:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (path.parent / rel).exists():
                problems.append(
                    f"{_rel(path)}:{lineno}: broken link -> {target}"
                )
    return problems


# ----------------------------------------------------------------------
# check 2: index completeness
# ----------------------------------------------------------------------

def check_index() -> list[str]:
    index = REPO / "docs" / "index.md"
    if not index.exists():
        return ["docs/index.md: missing (the docs landing page)"]
    linked = set(LINK_RE.findall(index.read_text()))
    problems = []
    for page in sorted((REPO / "docs").glob("*.md")):
        if page.name == "index.md":
            continue
        if page.name not in linked:
            problems.append(
                f"docs/index.md: does not link docs/{page.name}"
            )
    return problems


# ----------------------------------------------------------------------
# check 3: CLI commands against the real parser
# ----------------------------------------------------------------------

def extract_commands(path: Path) -> list[tuple[int, str]]:
    commands = []
    for lineno, line, fenced in iter_prose_and_code(path.read_text()):
        if fenced:
            candidate = line.strip()
            if candidate.startswith("$ "):
                candidate = candidate[2:]
            if "python -m repro" in candidate and candidate.startswith(
                ("python ", "PYTHONPATH")
            ):
                commands.append((lineno, candidate))
        else:
            for span in INLINE_CODE_RE.findall(line):
                if "python -m repro" in span:
                    commands.append((lineno, span.strip()))
    return commands


def validate_command(cmd: str) -> str | None:
    """Return an error string, or None when the command parses (or is
    skipped as a placeholder/non-CLI line)."""
    if any(ch in cmd for ch in PLACEHOLDER_CHARS):
        return None  # illustrative template, not a literal command
    try:
        tokens = shlex.split(cmd, comments=True)
    except ValueError as exc:
        return f"unparseable shell syntax ({exc})"
    while tokens and ENV_ASSIGN_RE.match(tokens[0]):
        tokens.pop(0)
    if tokens[:2] != ["python", "-m"] or len(tokens) < 3:
        return None
    if tokens[2] not in ("repro", "repro.cli"):
        return None  # pytest, pip, ... — not ours to validate
    args = tokens[3:]
    parser = build_parser()
    stderr = io.StringIO()
    try:
        with contextlib.redirect_stderr(stderr), contextlib.redirect_stdout(
            io.StringIO()
        ):
            parser.parse_args(args)
    except SystemExit as exc:
        if exc.code not in (0, None):  # --help exits 0
            detail = stderr.getvalue().strip().splitlines()
            return detail[-1] if detail else "rejected by argparse"
    return None


def check_commands(path: Path) -> list[str]:
    problems = []
    for lineno, cmd in extract_commands(path):
        error = validate_command(cmd)
        if error is not None:
            problems.append(
                f"{_rel(path)}:{lineno}: bad CLI command `{cmd}` — {error}"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    paths = doc_paths()
    n_commands = 0
    for path in paths:
        problems.extend(check_links(path))
        problems.extend(check_commands(path))
        n_commands += len(extract_commands(path))
    problems.extend(check_index())
    for problem in problems:
        print(problem)
    status = "FAILED" if problems else "ok"
    print(
        f"check_docs: {len(paths)} file(s), {n_commands} CLI command(s) "
        f"checked, {len(problems)} problem(s) — {status}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
