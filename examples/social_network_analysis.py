"""Social-network analysis: where the paper's optimizations shine.

Power-law graphs (soc-Pokec, com-LiveJournal, ... in the paper) are what
motivates all three optimizations: a few hub vertices own most edges
(load imbalance), hubs are touched constantly (locality), and frontiers
explode (synchronization overhead).  This example runs a closeness-style
analysis on a preferential-attachment network and dissects *why* each
optimization helps, using the simulator's counters.

Run with:  python examples/social_network_analysis.py
"""

import numpy as np

import repro
from repro.graphs import preferential_attachment, largest_component_vertices
from repro.sssp import rdbs_sssp, validate_distances

# scaled-simulation mode to match the surrogate workload size (DESIGN.md §5)
SPEC = repro.V100.scaled_for_workload(1 / 64)

network = preferential_attachment(4000, 6, seed=42, name="social")
deg = network.degrees
print(f"social network: {network}")
print(
    f"degree distribution: median {int(np.median(deg))}, "
    f"max {deg.max()} (a hub owns {deg.max() / network.num_edges:.1%} of all edges)"
)

# --- hub-to-everyone distances ----------------------------------------------
hub = int(np.argmax(deg))
r = repro.solve(network, hub, method="rdbs", spec=SPEC)
validate_distances(network, hub, r.dist)
finite = np.isfinite(r.dist)
print(f"\nfrom hub {hub}: mean distance {r.dist[finite].mean():.1f}, "
      f"eccentricity {r.dist[finite].max():.0f}")

# closeness centrality of a few interesting vertices (exact, via SSSP from
# each vertex — the workload the paper's intro motivates for social graphs)
candidates = [hub, int(np.argsort(deg)[len(deg) // 2]), int(np.argmin(deg))]
print(f"\n{'vertex':>8} {'degree':>7} {'closeness':>10}")
for v in candidates:
    rv = repro.solve(network, v, method="rdbs", spec=SPEC)
    d = rv.dist[np.isfinite(rv.dist)]
    closeness = (len(d) - 1) / d.sum() if d.sum() else 0.0
    print(f"{v:>8} {deg[v]:>7} {closeness:>10.5f}")

# --- dissecting the optimizations -------------------------------------------
print(f"\n{'configuration':<18} {'time (ms)':>10} {'ratio':>7} "
      f"{'SIMT eff':>9} {'hit %':>6} {'children':>9}")
for label, kw in [
    ("sync Δ-stepping", dict(pro=False, adwl=False, basyn=False)),
    ("+BASYN", dict(pro=False, adwl=False, basyn=True)),
    ("+BASYN +PRO", dict(pro=True, adwl=False, basyn=True)),
    ("+BASYN +ADWL", dict(pro=False, adwl=True, basyn=True)),
    ("full RDBS", dict(pro=True, adwl=True, basyn=True)),
]:
    rr = rdbs_sssp(network, hub, spec=SPEC, **kw)
    validate_distances(network, hub, rr.dist)
    c = rr.counters.totals
    print(
        f"{label:<18} {rr.time_ms:>10.4f} {rr.work.update_ratio:>7.2f} "
        f"{c.simt_efficiency:>9.2f} {c.global_hit_rate:>6.1f} "
        f"{c.child_kernel_launches:>9}"
    )

print(
    "\nReading the columns: BASYN removes barriers and cuts redundant"
    "\nupdates (ratio); PRO raises the cache hit rate and removes the"
    "\nlight/heavy branch; ADWL lifts SIMT efficiency by giving hub"
    "\nvertices their own warp- or block-granularity child kernels."
)
