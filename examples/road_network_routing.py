"""Road-network routing: the paper's hardest graph class.

Road networks (roadNet-TX in the paper) are the opposite of the social
graphs GPUs love: near-uniform tiny degrees, almost no parallelism per
wavefront, and a diameter in the thousands of hops.  The paper's own
Table 2 shows RDBS *losing* to ADDS there (0.91x) — this example
reproduces that negative result and explains it with the simulator's
counters, then shows how Δ tuning trades bucket count against work
efficiency on such graphs.

Run with:  python examples/road_network_routing.py
"""

import numpy as np

import repro
from repro.graphs import grid_road_network, largest_component_vertices
from repro.sssp import default_delta, validate_distances

# scaled-simulation mode to match the surrogate workload size (DESIGN.md §5)
SPEC = repro.V100.scaled_for_workload(1 / 64)

# A city street grid: 96x96 intersections, a few diagonal shortcuts, a few
# closed streets, travel times 1..1000 (the paper's weight convention).
city = grid_road_network(
    96, 96, diagonal_prob=0.04, drop_prob=0.05, seed=7, name="city-grid"
)
depot = int(largest_component_vertices(city)[0])
print(f"road network: {city}")
print(f"estimated diameter: {repro.graphs.estimate_diameter(city)} hops\n")

# --- single-source travel times from the depot ------------------------------
result = repro.solve(city, depot, method="rdbs", spec=SPEC)
validate_distances(city, depot, result.dist)
reachable = np.isfinite(result.dist)
print(f"depot vertex {depot}: {reachable.sum()} reachable intersections")
print(f"median travel time : {np.median(result.dist[reachable]):.0f}")
print(f"99th percentile    : {np.percentile(result.dist[reachable], 99):.0f}")

# --- the paper's negative result -------------------------------------------
print(f"\n{'method':<10} {'time (ms)':>10} {'ratio':>7} {'barriers':>9} {'launches':>9}")
rows = {}
for method in ["bl", "adds", "rdbs"]:
    r = repro.solve(city, depot, method=method, spec=SPEC)
    validate_distances(city, depot, r.dist)
    c = r.counters.totals
    rows[method] = r
    print(
        f"{method:<10} {r.time_ms:>10.4f} {r.work.update_ratio:>7.2f} "
        f"{c.barriers:>9} {c.kernel_launches:>9}"
    )

print(
    "\nWhy RDBS struggles here (paper §5.2.2): with uniform degrees there is"
    "\nno imbalance for ADWL to fix and no hub locality for PRO to exploit;"
    "\nthe bucket structure only adds per-bucket synchronization on a graph"
    "\nthat needs hundreds of buckets to cover its huge distance range."
)

# --- Δ tuning on high-diameter graphs ---------------------------------------
d0 = default_delta(city)
print(f"\nΔ0 sweep (default Δ0 = {d0:.0f}):")
print(f"{'Δ0':>8} {'time (ms)':>10} {'buckets':>8} {'ratio':>7}")
for factor in [0.5, 1.0, 4.0, 16.0, 64.0]:
    r = repro.solve(city, depot, method="rdbs", delta=d0 * factor, spec=SPEC)
    validate_distances(city, depot, r.dist)
    print(
        f"{d0 * factor:>8.0f} {r.time_ms:>10.4f} "
        f"{r.extra['buckets']:>8} {r.work.update_ratio:>7.2f}"
    )
print(
    "\nLarger Δ trades work efficiency (ratio grows) for fewer buckets —"
    "\non road networks the bucket overhead usually wins, exactly the"
    "\nBellman-Ford end of the Δ-stepping spectrum (§2.2)."
)
