"""Quickstart: build a graph, run RDBS, inspect the measurements.

Run with:  python examples/quickstart.py
"""

import repro
from repro.sssp import validate_distances

# The bundled graphs are ~1/64-scale surrogates of the paper's datasets, so
# we run the device in scaled-simulation mode: capacity and latency
# constants shrink with the workload while throughputs stay datasheet-true
# (see DESIGN.md §5 and repro.gpusim.GPUSpec.scaled_for_workload).
SPEC = repro.V100.scaled_for_workload(1 / 64)

# --- 1. get a graph -------------------------------------------------------
# A Graph500-style Kronecker graph: 2**12 vertices, edgefactor 16, uniform
# integer weights 1..1000 (the paper's convention for real-world graphs).
graph = repro.graphs.kronecker(scale=12, edgefactor=16, weights="int", seed=1)
print(f"graph: {graph}")

# pick a source inside the largest connected component so the search
# actually traverses most of the graph
source = int(repro.graphs.largest_component_vertices(graph)[0])

# --- 2. run the paper's algorithm ------------------------------------------
# method="rdbs" is property-driven reordering + adaptive load balancing +
# bucket-aware asynchronous execution on a simulated V100.
result = repro.solve(graph, source, method="rdbs", spec=SPEC)
print(f"\nRDBS finished: {result}")
print(f"  simulated time : {result.time_ms:.4f} ms")
print(f"  throughput     : {result.gteps:.3f} GTEPS")
print(f"  buckets        : {result.extra['buckets']}")
print(f"  update ratio   : {result.work.update_ratio:.2f} "
      "(total updates / valid updates — 1.0 is perfectly work-efficient)")

# --- 3. trust but verify ---------------------------------------------------
# every distance is checked against SciPy's independent Dijkstra
validate_distances(graph, source, result.dist)
print("\ndistances verified against scipy.sparse.csgraph.dijkstra ✓")

# --- 4. compare against the baselines the paper evaluates -------------------
print(f"\n{'method':<12} {'time (ms)':>10} {'GTEPS':>8} {'ratio':>7}")
for method in ["bl", "near-far", "adds", "rdbs", "pq-delta*"]:
    kwargs = {} if method == "pq-delta*" else {"spec": SPEC}
    r = repro.solve(graph, source, method=method, **kwargs)
    validate_distances(graph, source, r.dist)
    ratio = r.work.update_ratio if r.work else float("nan")
    print(f"{method:<12} {r.time_ms:>10.4f} {r.gteps:>8.3f} {ratio:>7.2f}")

# --- 5. peek at the profiling counters (the paper's Fig. 10 metrics) -------
c = result.counters.totals
print(f"\nsimulated nvprof counters for RDBS:")
print(f"  inst_executed_global_loads : {c.inst_executed_global_loads}")
print(f"  inst_executed_atomics      : {c.inst_executed_atomics}")
print(f"  global_hit_rate            : {c.global_hit_rate:.1f}%")
print(f"  kernel launches / barriers : {c.kernel_launches} / {c.barriers}")
