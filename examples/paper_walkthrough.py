"""Walk through the paper's worked examples (Fig. 1 and Fig. 4) in code.

Reconstructs the 8-vertex motivation graph of Fig. 1, shows the valid /
invalid update analysis of Fig. 1(b), then applies property-driven
reordering to the Fig. 4 graph and prints the exact CSR arrays of
Fig. 4(c) — the reproduction's ground-zero fidelity checks, live.

Run with:  python examples/paper_walkthrough.py
"""

import numpy as np

import repro
from repro.graphs import paper_fig1_graph, paper_fig4_graph
from repro.reorder import apply_pro
from repro.sssp import bl_sssp, rdbs_sssp, validate_distances

SPEC = repro.V100.scaled_for_workload(1 / 64)

# ---------------------------------------------------------------------------
# Fig. 1: the motivation graph
# ---------------------------------------------------------------------------
g1 = paper_fig1_graph()
print("Fig. 1(a) — the 8-vertex, 13-edge motivation graph")
print(f"  row list : {list(g1.row)}")
print(f"  degrees  : {list(g1.degrees)}")

bl = bl_sssp(g1, 0, spec=SPEC)
validate_distances(g1, 0, bl.dist)
print(f"\nshortest distances from vertex 0: {list(bl.dist)}")

print("\nFig. 1(b) — work analysis of synchronous push execution:")
for label, r in (("BL (sync push)", bl), ("RDBS (Δ=3)", rdbs_sssp(g1, 0, delta=3.0, spec=SPEC))):
    t = r.work
    print(
        f"  {label:<15} {t.total_updates} updates "
        f"({t.valid_updates} valid, {t.invalid_updates} invalid), "
        f"{t.checks} checks"
    )
print(
    "  -> the figure's point: push mode wastes work on updates that are"
    "\n     later overwritten; bucketed execution removes most of them."
)

# ---------------------------------------------------------------------------
# Fig. 4: property-driven reordering, step by step
# ---------------------------------------------------------------------------
g4 = paper_fig4_graph()
print("\nFig. 4(a) — original graph (5 vertices):")
print(f"  degrees: {list(g4.degrees)}   (paper: 2, 4, 2, 3, 3)")

pro = apply_pro(g4, delta=3.0)
print("\nFig. 4(c) — after property-driven reordering (Δ = 3):")
print(f"  reorder vertex id  : {list(pro.new_to_old)}   (paper: 1, 3, 4, 0, 2)")
print(f"  row list           : {list(pro.row)}")
print(f"  heavy-edge offsets : {list(pro.heavy_offsets)}   (paper's green numbers)")
print(f"  reorder adjacency  : {list(pro.adj)}")
print(f"  reorder value list : {[int(w) for w in pro.weights]}")

expect = dict(
    perm=[1, 3, 4, 0, 2],
    row=[0, 4, 7, 10, 12, 14],
    heavy=[2, 5, 9, 11, 14],
    adj=[4, 3, 2, 1, 2, 0, 3, 4, 1, 0, 0, 1, 0, 2],
    val=[1, 2, 4, 5, 2, 5, 9, 1, 2, 4, 2, 9, 1, 1],
)
assert list(pro.new_to_old) == expect["perm"]
assert list(pro.row) == expect["row"]
assert list(pro.heavy_offsets) == expect["heavy"]
assert list(pro.adj) == expect["adj"]
assert [int(w) for w in pro.weights] == expect["val"]
print("\nall arrays match Fig. 4(c) exactly ✓")

# per-vertex light/heavy view
print("\nlight/heavy split per reordered vertex (Δ = 3):")
for v in range(pro.num_vertices):
    lo, mid = pro.light_range(v)
    _, hi = pro.heavy_range(v)
    light = [int(w) for w in pro.weights[lo:mid]]
    heavy = [int(w) for w in pro.weights[mid:hi]]
    print(f"  vertex {v} (orig {int(pro.new_to_old[v])}): "
          f"light {light}, heavy {heavy}")

# and the reordered graph still answers the same queries
d_orig = repro.solve(g4, 1, method="dijkstra").dist
d_pro = rdbs_sssp(g4, 1, delta=3.0, spec=SPEC).dist
assert np.allclose(d_orig, d_pro)
print("\ndistances unchanged by reordering ✓")
