"""The graph-processing framework beyond SSSP (the paper's §7 direction).

The paper closes with "a high-performance graph processing framework" as
future work.  This example runs the three framework kernels built on the
same simulated substrate — BFS, connected components and PageRank — over
one social-network surrogate, and shows that the paper's adaptive load
balancing (ADWL) transfers to BFS unchanged.

Run with:  python examples/framework_kernels.py
"""

import numpy as np

import repro
from repro.graphalgs import bfs_gpu, connected_components_gpu, pagerank_gpu
from repro.graphs import largest_component_vertices, load

SPEC = repro.V100.scaled_for_workload(1 / 64)

g = load("soc-PK")
src = int(largest_component_vertices(g)[0])
print(f"dataset: {g}")

# --- BFS: the ADWL transfer --------------------------------------------------
adaptive = bfs_gpu(g, src, spec=SPEC, adaptive=True)
static = bfs_gpu(g, src, spec=SPEC, adaptive=False)
print(
    f"\nBFS from {src}: depth {adaptive.extra['depth']}, "
    f"{int(np.isfinite(adaptive.dist).sum())} reached"
)
print(f"  adaptive (ADWL-style) : {adaptive.time_ms:.4f} ms")
print(f"  static thread/vertex  : {static.time_ms:.4f} ms "
      f"({static.time_ms / adaptive.time_ms:.1f}x slower)")
print(
    "  -> the same hub-vertex critical path that motivates ADWL for SSSP"
    "\n     phase 1 dominates static BFS expansion on power-law graphs."
)

# --- connected components -----------------------------------------------------
cc = connected_components_gpu(g, spec=SPEC)
sizes = np.sort(cc.component_sizes())[::-1]
print(
    f"\nconnected components: {cc.num_components} "
    f"(largest {sizes[0]} vertices) in {cc.rounds} propagation rounds, "
    f"{cc.time_ms:.4f} ms"
)

# --- PageRank ------------------------------------------------------------------
pr = pagerank_gpu(g, spec=SPEC, tol=1e-9)
top = pr.top(5)
deg = g.degrees
print(
    f"\nPageRank: converged in {pr.iterations} iterations, "
    f"{pr.time_ms:.4f} ms"
)
print(f"{'rank':>6} {'vertex':>8} {'degree':>8} {'score':>10}")
for i, v in enumerate(top):
    print(f"{i + 1:>6} {int(v):>8} {int(deg[v]):>8} {pr.ranks[v]:>10.6f}")
print(
    "\nhigh-degree hubs dominate the ranking — the same vertices PRO packs"
    "\ninto the hot low-address region for SSSP."
)
