"""GPU platform study: V100 vs T4 vs A100, plus a multi-GPU prototype.

Reproduces the paper's §5.4.2 platform-scaling experiment (Fig. 12) on
the simulator and extends it with an A100 what-if and the multi-GPU
future-work prototype (§7), including the interconnect sensitivity that
makes multi-GPU SSSP hard.

Run with:  python examples/gpu_platform_study.py
"""

import repro
from repro.gpusim import A100, NVLINK2_GBPS, PCIE3_GBPS, T4, V100, multi_gpu_sssp
from repro.graphs import kronecker, largest_component_vertices
from repro.sssp import validate_distances

graph = kronecker(scale=13, edgefactor=16, weights="int", seed=3)
source = int(largest_component_vertices(graph)[0])
print(f"workload: {graph}\n")

# --- single-GPU platform scaling (Fig. 12 + A100 what-if) -------------------
print(f"{'platform':<8} {'SMs':>5} {'GB/s':>6} {'time (ms)':>10} {'GTEPS':>7} {'vs T4':>6}")
times = {}
# scaled-simulation mode (DESIGN.md §5): one scale factor for all boards
for base in (T4, V100, A100):
    spec = base.scaled_for_workload(1 / 64)
    r = repro.solve(graph, source, method="rdbs", spec=spec)
    validate_distances(graph, source, r.dist)
    times[base.name] = r.time_ms
    rel = times["T4"] / r.time_ms
    print(
        f"{base.name:<8} {base.num_sms:>5} {base.mem_bandwidth_gbps:>6.0f} "
        f"{r.time_ms:>10.4f} {r.gteps:>7.3f} {rel:>6.2f}x"
    )
print(
    "\nThe paper's §5.4.2 analysis: 'taking parallelism resources and"
    "\nmemory bandwidth into consideration ... V100 should be two to three"
    "\ntimes better than T4' — the ratio above comes from the same"
    "\ndatasheet numbers."
)

# --- multi-GPU prototype (§7 future work) -----------------------------------
print(f"\nmulti-GPU 1-D partition (V100 class):")
print(f"{'gpus':>5} {'link':<8} {'total ms':>9} {'compute':>8} {'exchange':>9} {'frac':>6}")
for link_name, bw in (("PCIe3", PCIE3_GBPS), ("NVLink2", NVLINK2_GBPS)):
    for ng in (1, 2, 4):
        r = multi_gpu_sssp(
            graph, source, num_gpus=ng, interconnect_gbps=bw,
            spec=V100.scaled_for_workload(1 / 64),
        )
        validate_distances(graph, source, r.dist)
        print(
            f"{ng:>5} {link_name:<8} {r.time_ms:>9.4f} "
            f"{r.compute_time_ms:>8.4f} {r.exchange_time_ms:>9.4f} "
            f"{r.exchange_fraction:>6.1%}"
        )
print(
    "\nFrontier exchange dominates as GPU count grows — the scaling wall"
    "\nthat makes the paper defer multi-GPU SSSP to future work."
)
