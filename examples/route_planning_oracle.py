"""Route planning with a landmark distance oracle (ALT) + path extraction.

The paper's introduction motivates SSSP with road layout management and
network routing — workloads that ask *many* point-to-point queries over
one graph.  This example shows the downstream pattern: preprocess a few
SSSP runs from landmarks (using the paper's RDBS as the engine), answer
distance queries in microseconds from the oracle's bounds, and fall back
to one exact SSSP + path extraction only when the bounds aren't tight
enough.

Run with:  python examples/route_planning_oracle.py
"""

import numpy as np

import repro
from repro.graphs import grid_road_network, largest_component_vertices
from repro.sssp import (
    build_landmark_oracle,
    scipy_distances,
    shortest_path_tree,
    validate_path,
)

SPEC = repro.V100.scaled_for_workload(1 / 64)

city = grid_road_network(
    80, 80, diagonal_prob=0.04, drop_prob=0.04, seed=17, name="metro"
)
print(f"road network: {city}")

# --- preprocessing: 8 landmark SSSP runs with RDBS -------------------------
oracle = build_landmark_oracle(city, k=8, method="rdbs", seed=5, spec=SPEC)
print(f"landmarks: {[int(x) for x in oracle.landmarks]}")

# --- fast bounded queries ----------------------------------------------------
rng = np.random.default_rng(11)
comp = largest_component_vertices(city)
queries = rng.choice(comp, size=(6, 2), replace=False)

print(f"\n{'from':>6} {'to':>6} {'lower':>8} {'upper':>8} {'exact':>8} {'tightness':>10}")
for u, v in queries:
    lo, hi = oracle.bounds(int(u), int(v))
    exact = scipy_distances(city, int(u))[int(v)]
    tight = lo / exact if exact > 0 else 1.0
    print(f"{u:>6} {v:>6} {lo:>8.0f} {hi:>8.0f} {exact:>8.0f} {tight:>10.1%}")

# --- exact route when the bounds are too loose ------------------------------
u, v = int(queries[0][0]), int(queries[0][1])
tree = shortest_path_tree(city, u, method="rdbs", spec=SPEC)
route = tree.path_to(v)
validate_path(city, route, tree.distance_to(v))
print(
    f"\nexact route {u} -> {v}: {len(route)} intersections, "
    f"travel time {tree.distance_to(v):.0f}"
)
print(f"first hops: {route[:8]}{' ...' if len(route) > 8 else ''}")

depths = tree.depth_histogram()
print(
    f"\nshortest-path tree from {u}: depth up to {len(depths) - 1} hops, "
    f"median depth {int(np.argmax(np.cumsum(depths) >= depths.sum() / 2))}"
)
