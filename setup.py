"""Legacy setup shim: the offline environment has no `wheel` package, so
PEP-517 editable installs fail; `pip install -e . --no-use-pep517` (or
`python setup.py develop`) uses this instead.  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
