"""Classic synchronous Δ-stepping on the CPU (Meyer & Sanders, §2.2).

This is the Graph500-reference-style implementation the paper uses for its
motivation study: fixed Δ, three phases per bucket, and a synchronization
barrier after every phase-1 iteration.  It records the per-bucket and
per-iteration traces behind Fig. 2 ("the active vertices in each bucket")
and Fig. 3 ("the detailed analysis of phase 1 in peak overhead of the
bucket"), including the valid/total update counts.

The relaxations use the same serialized atomic-min semantics as the GPU
simulator (:func:`repro.util.scan.serialized_min_outcome`) so update counts
are comparable across CPU and GPU implementations.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..metrics.recorder import TraceRecorder
from ..metrics.workstats import WorkStats
from ..util.scan import segmented_arange, serialized_min_outcome
from .result import SSSPResult

__all__ = ["delta_stepping_cpu"]


def delta_stepping_cpu(
    graph: CSRGraph,
    source: int,
    delta: float | None = None,
    *,
    record_trace: bool = False,
    max_buckets: int = 1_000_000,
) -> SSSPResult:
    """Run synchronous Δ-stepping; return distances, work tally and trace.

    Parameters
    ----------
    graph:
        input graph (no preprocessing required).
    source:
        source vertex id.
    delta:
        fixed bucket width Δ (defaults to the mean-weight/average-degree
        heuristic of :func:`repro.sssp.gpu_rdbs.default_delta`).
    record_trace:
        collect the Fig. 2/3 per-bucket series (small overhead).
    max_buckets:
        safety valve against pathological inputs.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if delta is None:
        from .gpu_rdbs import default_delta

        delta = default_delta(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")

    row, adj, w = graph.row, graph.adj, graph.weights
    light_mask = w < delta

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    stats = WorkStats()
    stats.record(
        np.array([source]), np.array([0.0]), np.array([True])
    )  # the source initialization counts as one (valid) update
    trace = TraceRecorder() if record_trace else None
    #: per-bucket phase-1 work recorders, finalized after convergence
    bucket_phase1: list[WorkStats] = []

    lo = 0.0
    buckets_processed = 0
    total_iterations = 0

    while True:
        # find the next non-empty bucket (phase 3 of the previous round)
        unsettled = np.isfinite(dist) & (dist >= lo)
        if not unsettled.any():
            break
        k = int(np.floor(dist[unsettled].min() / delta))
        lo = k * delta
        hi = lo + delta
        members = np.flatnonzero((dist >= lo) & (dist < hi))
        buckets_processed += 1
        if buckets_processed > max_buckets:
            raise RuntimeError("bucket limit exceeded; check edge weights")

        if trace is not None:
            trace.begin_bucket(k, members.size, lo, hi)
        p1 = WorkStats()

        # ------------------------------------------------------------------
        # phase 1: relax light edges until the bucket stops changing
        # ------------------------------------------------------------------
        in_r = np.zeros(n, dtype=bool)  # all vertices ever in this bucket
        frontier = members
        while frontier.size:
            total_iterations += 1
            if trace is not None:
                trace.iteration(int(frontier.size))
            in_r[frontier] = True
            v, nd, updated = _relax(
                frontier, dist, row, adj, w, light_mask, light=True
            )
            stats.record(v, nd, updated)
            p1.record(v, nd, updated)
            if v.size == 0:
                break
            touched = np.unique(v[updated])
            frontier = touched[(dist[touched] >= lo) & (dist[touched] < hi)]

        # ------------------------------------------------------------------
        # phase 2: relax heavy edges of everything the bucket settled
        # ------------------------------------------------------------------
        settled = np.flatnonzero(in_r)
        v, nd, updated = _relax(
            settled, dist, row, adj, w, light_mask, light=False
        )
        stats.record(v, nd, updated)

        bucket_phase1.append(p1)
        if trace is not None:
            trace.end_bucket()
        lo = hi

    tally = stats.finalize(dist)
    if trace is not None:
        for bucket, p1 in zip(trace.buckets, bucket_phase1):
            t = p1.finalize(dist)
            bucket.phase1_total_updates = t.total_updates
            bucket.phase1_valid_updates = t.valid_updates

    return SSSPResult(
        dist=dist,
        source=source,
        method="delta-cpu",
        graph_name=graph.name,
        work=tally,
        trace=trace,
        num_edges=graph.num_edges,
        extra={
            "buckets": buckets_processed,
            "phase1_iterations": total_iterations,
            "delta": delta,
        },
    )


def _relax(
    vertices: np.ndarray,
    dist: np.ndarray,
    row: np.ndarray,
    adj: np.ndarray,
    w: np.ndarray,
    light_mask: np.ndarray,
    *,
    light: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relax the light (or heavy) out-edges of ``vertices``; returns
    ``(targets, proposed, updated)``."""
    if vertices.size == 0:
        empty = np.zeros(0)
        return empty.astype(np.int64), empty, empty.astype(bool)
    counts = (row[vertices + 1] - row[vertices]).astype(np.int64)
    idx = np.repeat(row[vertices], counts) + segmented_arange(counts)
    keep = light_mask[idx] if light else ~light_mask[idx]
    idx = idx[keep]
    src_of_edge = np.repeat(vertices, counts)[keep]
    v = adj[idx]
    nd = dist[src_of_edge] + w[idx]
    _old, updated = serialized_min_outcome(dist, v, nd)
    return v, nd, updated
