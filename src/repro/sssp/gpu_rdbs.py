"""RDBS: the paper's bucket-aware asynchronous Δ-stepping engine (§4).

One engine implements all four arms of the paper's Fig. 8 through three
independent toggles:

* ``pro``   — property-driven reordering preprocessing (§4.1): run on a
  degree-relabeled, weight-sorted CSR with heavy-edge offsets, so light
  edges are a contiguous prefix located without branching;
* ``adwl``  — adaptive load balancing (§4.2): phase 1 classifies active
  vertices into small/middle/large workload lists and dynamic parallelism
  right-sizes child kernels (32/256 threads) per vertex; phases 2&3 use a
  fused, statically balanced edge-parallel kernel;
* ``basyn`` — bucket-aware asynchronous execution (§4.3): phase 1 runs as
  one persistent kernel draining workload lists in micro-rounds without
  barriers, updates are immediately visible, and the bucket width Δ_i is
  re-adjusted per bucket from converged-vertex and thread-utilization
  feedback (Eqs. 1–2).

With all three off the engine degenerates to the classic synchronous
GPU Δ-stepping of §2.2 (which doubles as the ablation baseline).  The
default configuration (all on) is the paper's RDBS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.plan import InjectedKernelAbort
from ..faults.runtime import Watchdog, WatchdogTimeout, make_runtime
from ..graphs.csr import CSRGraph
from ..gpusim.compaction import compact, compact_multisplit
from ..gpusim.device import GPUDevice, KernelContext
from ..gpusim.dynamic import (
    classify_multisplit,
    classify_workloads,
    launch_adaptive,
)
from ..gpusim.multisplit import multisplit_enabled
from ..gpusim.kernels import (
    grid_stride,
    thread_per_item,
    thread_per_vertex_edges,
)
from ..gpusim.spec import GPUSpec, V100
from ..metrics.recorder import TraceRecorder
from ..util.scan import sorted_unique_ints
from ..metrics.workstats import WorkStats
from ..reorder.pipeline import apply_pro
from .buckets import DeltaController
from .errors import ConvergenceError
from .relax import DeviceGraph, relax_batch
from .result import SSSPResult

__all__ = ["rdbs_sssp", "default_delta", "BUCKET_RESCALE"]

#: factor Δ is widened by when the bucket-limit graceful-degradation retry
#: fires (a fixed factor keeps the retry deterministic and lets genuinely
#: hopeless Δ/limit combinations still fail fast)
BUCKET_RESCALE = 8.0

#: active vertices processed per asynchronous micro-round; newly activated
#: vertices become visible to the following micro-round, which is how the
#: engine models immediate update visibility without barriers
ASYNC_CHUNK = 2048

#: thread count of the fused phase-2&3 kernel (static load balancing)
PHASE23_THREADS = 32 * 256


def default_delta(graph: CSRGraph) -> float:
    """The empirical Δ heuristic: mean weight over average degree, ×2.

    Matches the classic Meyer–Sanders guidance Δ = Θ(1 / d̄) scaled by the
    weight range; for Graph500 unit weights at edgefactor 16 it lands near
    the paper's empirical Δ = 0.1.
    """
    if graph.num_edges == 0:
        return 1.0
    mean_w = float(graph.weights.mean())
    avg_deg = max(graph.average_degree, 1.0)
    return max(2.0 * mean_w / avg_deg, 1e-12)


@dataclass
class _BucketOutcome:
    """Phase-1 bookkeeping for one bucket."""

    settled: np.ndarray
    threads_used: int
    rounds: int


def rdbs_sssp(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    pro: bool = True,
    adwl: bool = True,
    basyn: bool = True,
    spec: GPUSpec = V100,
    record_trace: bool = False,
    max_buckets: int = 1_000_000,
    async_chunk: int = ASYNC_CHUNK,
    recovery=None,
) -> SSSPResult:
    """Run the RDBS engine (or any ablation arm) on a simulated GPU.

    Returns distances in the *original* vertex id space even when ``pro``
    relabels internally.  ``async_chunk`` sets how many active vertices
    each asynchronous micro-round drains (smaller = fresher distances /
    fewer redundant updates, larger = fewer scheduling rounds).

    ``recovery`` (``True`` or a :class:`repro.faults.RecoveryPolicy`)
    enables the self-healing runtime: epoch checkpoints, invariant probes,
    an async-phase watchdog that degrades BASYN to synchronous execution,
    and final verify/repair sweeps.  Off (``None``) it costs nothing.

    When the bucket limit trips, the engine degrades gracefully once:
    Δ is widened by :data:`BUCKET_RESCALE` and the search restarts (the
    result's ``extra["delta_rescaled"]`` records it); a second trip raises
    :class:`~repro.sssp.errors.ConvergenceError`.
    """
    if async_chunk < 1:
        raise ValueError("async_chunk must be >= 1")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if delta is None:
        delta = default_delta(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")

    try:
        return _rdbs_run(
            graph, source, delta=delta, pro=pro, adwl=adwl, basyn=basyn,
            spec=spec, record_trace=record_trace, max_buckets=max_buckets,
            async_chunk=async_chunk, recovery=recovery, rescaled=False,
        )
    except ConvergenceError as exc:
        if "bucket limit" not in exc.reason:
            raise
        return _rdbs_run(
            graph, source, delta=delta * BUCKET_RESCALE, pro=pro, adwl=adwl,
            basyn=basyn, spec=spec, record_trace=record_trace,
            max_buckets=max_buckets, async_chunk=async_chunk,
            recovery=recovery, rescaled=True,
        )


def _rdbs_run(
    graph: CSRGraph,
    source: int,
    *,
    delta: float,
    pro: bool,
    adwl: bool,
    basyn: bool,
    spec: GPUSpec,
    record_trace: bool,
    max_buckets: int,
    async_chunk: int,
    recovery,
    rescaled: bool,
) -> SSSPResult:
    """One full search at a fixed Δ (see :func:`rdbs_sssp`)."""
    n = graph.num_vertices

    # ------------------------------------------------------------------
    # preprocessing (not timed, matching the paper's methodology)
    # ------------------------------------------------------------------
    work_graph = apply_pro(graph, delta) if pro else graph
    src = int(work_graph.old_to_new[source]) if pro else source

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, work_graph)
    # execution strategy follows the graph's actual capabilities: a caller
    # may hand in a graph that already carries heavy offsets (pre-applied
    # PRO) with pro=False — it still gets branch-free light/heavy ranges
    use_offsets = dgraph.heavy is not None
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, src, 0.0)
    in_queue = np.zeros(n, dtype=bool)  # host mirror of the queue flags
    # device buffer receiving the compacted next-bucket candidates; sized
    # to the edge count because duplicate updates (several heavy edges
    # improving one vertex in one pass) each append an entry.  Write-only
    # scratch — left uninitialized (cudaMalloc semantics)
    candidate_buf = device.empty(
        max(work_graph.num_edges, 1), dtype=np.int64, name="candidates"
    )
    stats = WorkStats()
    stats.record(np.array([src]), np.array([0.0]), np.array([True]))
    trace = TraceRecorder() if record_trace else None
    bucket_phase1: list[WorkStats] = []

    runtime = make_runtime(recovery, device, dgraph, dist, src, "rdbs")
    #: live BASYN toggle — the watchdog degrades it to synchronous mid-run
    basyn_active = basyn
    controller = DeltaController(delta) if basyn_active else None
    lo = 0.0
    buckets_processed = 0
    total_rounds = 0
    #: one row per processed bucket (the Δ_i trajectory of Eq. 1–2),
    #: surfaced on the result's ``extra`` and mirrored by the trace layer's
    #: bucket spans.  Aborted buckets keep None feedback fields.
    bucket_telemetry: list[dict] = []

    while True:
        unsettled = np.isfinite(dist.data) & (dist.data >= lo)
        if not unsettled.any():
            break
        if runtime is not None:
            runtime.epoch(int(unsettled.sum()), mark=lo)
        min_unsettled = float(dist.data[unsettled].min())

        # next bucket interval: dynamic (Eq. 1–2) or fixed width
        if controller is not None:
            interval = controller.next_interval()
            b_lo, b_hi = interval.lo, interval.hi
            bucket_id = interval.index
            eps_i = controller.epsilons[-1]
            if b_hi <= min_unsettled:
                # empty bucket: report zero feedback and move on cheaply
                controller.feedback(0, 0)
                lo = b_hi
                continue
        else:
            bucket_id = int(np.floor(min_unsettled / delta))
            b_lo = bucket_id * delta
            b_hi = b_lo + delta
            eps_i = 0.0
        lo = max(lo, b_lo)

        members = np.flatnonzero((dist.data >= b_lo) & (dist.data < b_hi))
        if members.size == 0:
            lo = b_hi
            if controller is not None:
                controller.feedback(0, 0)
            continue

        buckets_processed += 1
        if buckets_processed > max_buckets:
            raise ConvergenceError(
                "bucket limit exceeded; check delta/weights",
                method="rdbs",
                iterations=buckets_processed - 1,
                frontier=int(members.size),
                delta=delta,
            )
        device.annotate(
            "bucket", index=bucket_id, lo=b_lo, hi=b_hi, active=members
        )
        if trace is not None:
            trace.begin_bucket(bucket_id, int(members.size), b_lo, b_hi)
        p1_stats = WorkStats()
        t_start = device.time_s

        # ------------------------------------------------------------------
        # phase 1: light edges
        # ------------------------------------------------------------------
        # the light/heavy split must cover the (possibly widened) bucket:
        # a heavy edge then always lands beyond b_hi, so phase 2 can never
        # strand a target inside the closing bucket.  PRO graphs re-split
        # their offsets on device (§4.1's adaptive offsets); unsorted arms
        # just raise the branch threshold.
        b_width = b_hi - b_lo
        try:
            if use_offsets and b_width > dgraph.split_delta * (1 + 1e-12):
                dgraph.resplit(b_width)
            split = (
                max(b_width, dgraph.split_delta) if use_offsets else b_width
            )
            if basyn_active:
                watchdog = (
                    runtime.new_watchdog(int(members.size), async_chunk)
                    if runtime is not None else None
                )
                outcome = _phase1_async(
                    device, dgraph, dist, members, b_lo, b_hi, split,
                    pro=use_offsets, adwl=adwl, stats=stats, p1_stats=p1_stats,
                    in_queue=in_queue, trace=trace, chunk_size=async_chunk,
                    watchdog=watchdog,
                )
            else:
                outcome = _phase1_sync(
                    device, dgraph, dist, members, b_lo, b_hi, split,
                    pro=use_offsets, adwl=adwl, stats=stats, p1_stats=p1_stats,
                    trace=trace,
                )
            total_rounds += outcome.rounds
            device.annotate("settled", vertices=outcome.settled)

            # --------------------------------------------------------------
            # phases 2 & 3: heavy edges + next-bucket scan (one fused kernel)
            # --------------------------------------------------------------
            _phase23_fused(
                device, dgraph, dist, outcome.settled, split,
                pro=use_offsets, stats=stats, candidate_buf=candidate_buf,
                next_lo=b_hi,
            )
        except (WatchdogTimeout, InjectedKernelAbort) as exc:
            if runtime is None:
                raise
            # graceful degradation: roll back to the last good checkpoint
            # (bounded retry) and finish the search without BASYN
            mark = runtime.recover(exc, lo)
            lo = 0.0 if mark is None else float(mark)
            in_queue[:] = False
            if basyn_active:
                basyn_active = False
                controller = None
                runtime.note_degraded()
            bucket_phase1.append(p1_stats)
            device.annotate(
                "bucket_close", index=bucket_id, lo=b_lo, hi=b_hi,
                delta=b_hi - b_lo, epsilon=eps_i, converged=None,
                threads=None, rounds=None, aborted=True,
            )
            bucket_telemetry.append({
                "bucket": bucket_id, "lo": b_lo, "hi": b_hi,
                "delta": b_hi - b_lo, "epsilon": eps_i, "converged": None,
                "threads": None, "rounds": None, "aborted": True,
            })
            if trace is not None:
                trace.end_bucket(device.time_s - t_start)
            continue
        device.barrier()  # synchronous mode between buckets

        if controller is not None:
            controller.feedback(int(outcome.settled.size), outcome.threads_used)
        bucket_phase1.append(p1_stats)
        device.annotate(
            "bucket_close", index=bucket_id, lo=b_lo, hi=b_hi,
            delta=b_hi - b_lo, epsilon=eps_i,
            converged=int(outcome.settled.size),
            threads=outcome.threads_used, rounds=outcome.rounds,
            aborted=False,
        )
        bucket_telemetry.append({
            "bucket": bucket_id, "lo": b_lo, "hi": b_hi,
            "delta": b_hi - b_lo, "epsilon": eps_i,
            "converged": int(outcome.settled.size),
            "threads": outcome.threads_used, "rounds": outcome.rounds,
            "aborted": False,
        })
        if trace is not None:
            trace.end_bucket(device.time_s - t_start)
        lo = b_hi

    if runtime is not None:
        runtime.finish()
    tally = stats.finalize(dist.data)
    if trace is not None:
        for bucket, p1 in zip(trace.buckets, bucket_phase1):
            t = p1.finalize(dist.data)
            bucket.phase1_total_updates = t.total_updates
            bucket.phase1_valid_updates = t.valid_updates

    dist_out = work_graph.to_original_order(dist.data.copy()) if pro else dist.data.copy()
    method = "rdbs" if (pro and adwl and basyn) else _arm_name(pro, adwl, basyn)
    return SSSPResult(
        dist=dist_out,
        source=source,
        method=method,
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=tally,
        counters=device.counters,
        trace=trace,
        num_edges=graph.num_edges,
        extra={
            "timeline": device.timeline,
            "buckets": buckets_processed,
            "rounds": total_rounds,
            "delta0": delta,
            "final_delta": controller.widths[-1] if controller and controller.widths else delta,
            "pro": pro,
            "adwl": adwl,
            "basyn": basyn,
            "delta_rescaled": rescaled,
            "bucket_telemetry": bucket_telemetry,
            "delta_series": [row["delta"] for row in bucket_telemetry],
            "epsilon_series": [row["epsilon"] for row in bucket_telemetry],
        },
        faults=runtime.report if runtime is not None else None,
    )


def _arm_name(pro: bool, adwl: bool, basyn: bool) -> str:
    parts = []
    if basyn:
        parts.append("basyn")
    if pro:
        parts.append("pro")
    if adwl:
        parts.append("adwl")
    return "+".join(parts) if parts else "sync-delta"


# ----------------------------------------------------------------------
# phase 1 engines
# ----------------------------------------------------------------------

def _relax_light(
    ctx: KernelContext,
    dgraph: DeviceGraph,
    dist,
    vertices: np.ndarray,
    split: float,
    *,
    pro: bool,
    adwl: bool,
    stats: WorkStats,
    p1_stats: WorkStats,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Relax the light edges of ``vertices``.

    Returns ``(targets, values, threads)``: the targets whose atomics
    lowered a cell, the written tentative distances aligned with them
    (the register-resident :class:`~repro.sssp.relax.RelaxOutcome` values
    the multisplit placement consumes), and the thread tally.
    """
    threads = 0
    all_targets: list[np.ndarray] = []
    all_values: list[np.ndarray] = []

    if pro:
        counts = dgraph.light_counts(vertices)
        kind = "light"
        weight_filter = None
    else:
        counts = (
            dgraph.graph.row[vertices + 1] - dgraph.graph.row[vertices]
        ).astype(np.int64)
        kind = "all"
        weight_filter = (split, True)

    if adwl:
        # manager threads classify vertices into workload lists: one 3-way
        # warp-ballot multisplit, or (fallback) one pass of per-vertex ALU
        a_cls = thread_per_item(vertices.size)
        if multisplit_enabled():
            classes = classify_multisplit(ctx, counts, a_cls)
        else:
            ctx.alu(a_cls, ops=2)
            classes = classify_workloads(counts)
        if ctx.device.handlers("on_annotate"):
            ctx.device.annotate(
                "adwl", small=int(classes.small.size),
                middle=int(classes.middle.size),
                large=int(classes.large.size),
            )
        groups = launch_adaptive(ctx, counts, classes)
    else:
        groups = [(np.arange(vertices.size), thread_per_vertex_edges(counts))]

    # child-kernel edge batches are sliced out of one vectorized index
    # construction instead of re-deriving indices per workload class
    batches = dgraph.batch_groups(vertices, kind, groups)
    for (positions, assignment), batch in zip(groups, batches):
        vs = vertices[positions]
        out = relax_batch(
            ctx, dgraph, dist, vs, batch, assignment, (stats, p1_stats),
            weight_filter=weight_filter,
        )
        if out.targets.size:
            all_targets.append(out.targets[out.updated])
            all_values.append(out.new_dist[out.updated])
        threads += assignment.num_threads

    if all_targets:
        return np.concatenate(all_targets), np.concatenate(all_values), threads
    return (
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64), threads
    )


def _phase1_async(
    device: GPUDevice,
    dgraph: DeviceGraph,
    dist,
    members: np.ndarray,
    b_lo: float,
    b_hi: float,
    split: float,
    *,
    pro: bool,
    adwl: bool,
    stats: WorkStats,
    p1_stats: WorkStats,
    in_queue: np.ndarray,
    trace: TraceRecorder | None,
    chunk_size: int = ASYNC_CHUNK,
    watchdog: Watchdog | None = None,
) -> _BucketOutcome:
    """BASYN phase 1: one persistent kernel draining the workload lists.

    Micro-rounds pop up to :data:`ASYNC_CHUNK` vertices; updates written by
    a round are visible to every later round (and, through the atomic
    serialization, partially within the round), with only the cheap
    async-round scheduling cost in between — no barriers, no relaunches.
    """
    settled_mask = np.zeros(dist.size, dtype=bool)
    threads_used = 0
    rounds = 0
    queue: list[np.ndarray] = [members]
    in_queue[members] = True
    use_ms = multisplit_enabled()
    if use_ms:
        # multisplit placement appends re-activations *densely* behind a
        # rolling cursor (coalesced stores instead of vertex-scattered
        # ones); sized to the edge count because every push follows an
        # updated relaxation.  The spill list absorbs the pathological
        # overflow case with the legacy vertex-addressed stamp stores.
        queue_slots = device.empty(
            max(dgraph.graph.num_edges, 1), dtype=np.int64,
            name="workload_slots",
        )
        queue_spill = device.empty(
            dist.size, dtype=np.int64, name="workload_spill"
        )
        cursor = 0
    else:
        # the device-resident workload lists; re-activations are stored
        # into it by the manager threads (global store traffic).
        # Write-only scratch, so the allocation stays uninitialized
        # (cudaMalloc semantics)
        queue_buf = device.empty(
            dist.size, dtype=np.int64, name="workload_lists"
        )
    # per-round drain telemetry is host-side only, so it is gated on an
    # attached on_annotate observer — without one, no payload is built
    note_rounds = bool(device.handlers("on_annotate"))

    with device.launch("phase1_async") as k:
        while queue:
            reactivated = 0
            chunk_parts: list[np.ndarray] = []
            need = chunk_size
            while queue and need > 0:
                head = queue[0]
                if head.size <= need:
                    chunk_parts.append(head)
                    need -= head.size
                    queue.pop(0)
                else:
                    chunk_parts.append(head[:need])
                    queue[0] = head[need:]
                    need = 0
            chunk = np.concatenate(chunk_parts)
            in_queue[chunk] = False
            settled_mask[chunk] = True
            rounds += 1
            if watchdog is not None:
                watchdog.tick()
            if trace is not None:
                trace.iteration(int(chunk.size))

            targets, values, threads = _relax_light(
                k, dgraph, dist, chunk, split,
                pro=pro, adwl=adwl, stats=stats, p1_stats=p1_stats,
            )
            threads_used += threads
            k.async_round()

            if targets.size:
                cand = sorted_unique_ints(targets)
                if use_ms:
                    # the freshest distance per candidate is the minimum
                    # of the round's register-resident atomicMin results
                    # (RelaxOutcome.new_dist) — no re-gather needed; one
                    # 2-way ballot multisplit partitions push vs skip
                    pos = np.searchsorted(cand, targets)
                    dv = np.full(cand.size, np.inf)
                    np.minimum.at(dv, pos, values)
                    keys = (
                        (dv >= b_lo) & (dv < b_hi) & ~in_queue[cand]
                    ).astype(np.int64)
                    a_ms = thread_per_item(cand.size)
                    order, offs = k.multisplit(keys, 2, a_ms)
                    push = cand[order[offs[1]:]]
                    if push.size:
                        csize = int(push.size)
                        a_push = thread_per_item(csize)
                        if cursor + csize <= queue_slots.size:
                            k.scatter(
                                queue_slots,
                                cursor + np.arange(csize, dtype=np.int64),
                                push, a_push,
                            )
                            cursor += csize
                        else:
                            # overflow spill: legacy vertex-addressed
                            # stamp stores (same-value, benign)
                            # repro-static: assume-disjoint
                            k.scatter(queue_spill, push, push, a_push)
                        in_queue[push] = True
                        queue.append(push)
                        reactivated = csize
                else:
                    # manager threads re-read the *fresh* distances
                    # (BASYN's immediate visibility) as a counted gather
                    dv = k.gather(dist, cand, thread_per_item(cand.size))
                    cand = cand[(dv >= b_lo) & (dv < b_hi) & ~in_queue[cand]]
                    if cand.size:
                        # manager threads push re-activated vertices back
                        # onto the workload lists: classify + one queue
                        # store each
                        a_push = thread_per_item(cand.size)
                        k.alu(a_push, ops=2)
                        k.scatter(queue_buf, cand, cand, a_push)
                        in_queue[cand] = True
                        queue.append(cand)
                        reactivated = int(cand.size)
            if note_rounds:
                device.annotate(
                    "async_round", round=rounds, drained=int(chunk.size),
                    reactivated=reactivated,
                    pending=int(sum(part.size for part in queue)),
                )

    return _BucketOutcome(
        settled=np.flatnonzero(settled_mask),
        threads_used=threads_used,
        rounds=rounds,
    )


def _phase1_sync(
    device: GPUDevice,
    dgraph: DeviceGraph,
    dist,
    members: np.ndarray,
    b_lo: float,
    b_hi: float,
    split: float,
    *,
    pro: bool,
    adwl: bool,
    stats: WorkStats,
    p1_stats: WorkStats,
    trace: TraceRecorder | None,
) -> _BucketOutcome:
    """Synchronous phase 1: kernel launch + barrier per iteration (§2.2)."""
    settled_mask = np.zeros(dist.size, dtype=bool)
    threads_used = 0
    rounds = 0
    note_rounds = bool(device.handlers("on_annotate"))
    frontier = members
    while frontier.size:
        rounds += 1
        settled_mask[frontier] = True
        if trace is not None:
            trace.iteration(int(frontier.size))
        if note_rounds:
            device.annotate(
                "sync_round", round=rounds, frontier=int(frontier.size)
            )
        with device.launch("phase1_sync") as k:
            targets, _values, threads = _relax_light(
                k, dgraph, dist, frontier, split,
                pro=pro, adwl=adwl, stats=stats, p1_stats=p1_stats,
            )
        device.barrier()
        threads_used += threads
        if targets.size:
            cand = sorted_unique_ints(targets)
            frontier = cand[(dist.data[cand] >= b_lo) & (dist.data[cand] < b_hi)]
        else:
            frontier = np.zeros(0, dtype=np.int64)
    return _BucketOutcome(
        settled=np.flatnonzero(settled_mask),
        threads_used=threads_used,
        rounds=rounds,
    )


# ----------------------------------------------------------------------
# fused phases 2 & 3
# ----------------------------------------------------------------------

def _phase23_fused(
    device: GPUDevice,
    dgraph: DeviceGraph,
    dist,
    settled: np.ndarray,
    split: float,
    *,
    pro: bool,
    stats: WorkStats,
    candidate_buf=None,
    next_lo: float = np.inf,
) -> None:
    """Relax heavy edges of the settled set, then scan for the next bucket.

    One fused kernel (kernel-fusion optimization of §4.2): the heavy-edge
    relaxation uses the statically balanced edge-parallel mapping, and the
    next-bucket scan reads every vertex's distance once.  The scan's result
    is consumed host-side by the bucket loop (the real implementation
    compacts into a device queue; the stores are accounted here).

    ``next_lo`` is the closing bucket's upper boundary: the multisplit
    scan partitions vertices on "still unsettled beyond this bucket"
    with one ballot round instead of the two-ALU flag-and-scan pass.
    """
    n = dist.size
    use_ms = multisplit_enabled()
    with device.launch("phase23_fused") as k:
        if settled.size:
            if pro:
                batch = dgraph.batch(settled, "heavy")
                weight_filter = None
            else:
                batch = dgraph.batch(settled, "all")
                weight_filter = (split, False)
            if batch.num_edges:
                a = grid_stride(batch.num_edges, PHASE23_THREADS)
                targets, updated = relax_batch(
                    k, dgraph, dist, settled, batch, a, stats,
                    weight_filter=weight_filter,
                )
                # compact the freshly updated heavy targets into the
                # next-bucket candidate queue: warp-ballot ranking, or
                # (fallback) scan + coalesced scatter
                if (
                    weight_filter is None
                    and candidate_buf is not None
                    and targets.size
                ):
                    if use_ms:
                        compact_multisplit(k, candidate_buf, updated, targets, a)
                    else:
                        compact(k, candidate_buf, updated, targets, a)
        # phase 3: one dist read per vertex to build the next bucket
        a_scan = grid_stride(n, PHASE23_THREADS)
        dvals = k.gather(dist, np.arange(n, dtype=np.int64), a_scan)
        if use_ms:
            # partition "active beyond this bucket" with one ballot round
            k.multisplit(
                (np.isfinite(dvals) & (dvals >= next_lo)).astype(np.int64),
                2, a_scan,
            )
        else:
            k.alu(a_scan, ops=2)
        k.device_barrier()  # fused phases separated by a device-wide sync
