"""Bucket arithmetic and the dynamic-Δ controller (Eqs. 1–2, §4.3).

Δ-stepping partitions tentative distances into buckets of width Δ.  The
paper's bucket-aware execution makes the width *dynamic*: bucket ``i``'s
width is ``Δ_i = Δ_{i-1} + ε_i`` with

    ε_i = 0                                               for i = 0, 1
    ε_i = |(C_{i-2} − C_{i-1}) / (C_{i-2} + C_{i-1})|
          · (T_{i-2} − T_{i-1}) / (T_{i-2} + T_{i-1}) · Δ_0   for i ≥ 2

where ``C_i`` is the number of vertices that converged in bucket ``i`` and
``T_i`` the number of threads bucket ``i`` used (a GPU-utilization proxy).
When utilization is rising (``T_{i-1} > T_{i-2}``) the signed second factor
is negative and Δ shrinks — narrower buckets keep work efficiency high;
when utilization falls, Δ grows to expose more parallelism.  The controller
below implements the recurrence verbatim and is shared by the RDBS engine
and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DeltaController", "BucketInterval", "bucket_of"]


@dataclass(frozen=True)
class BucketInterval:
    """Half-open distance interval ``[lo, hi)`` covered by one bucket."""

    index: int
    lo: float
    hi: float

    @property
    def width(self) -> float:
        """Bucket width ``Δ_i``."""
        return self.hi - self.lo


@dataclass
class DeltaController:
    """Produces successive bucket intervals under the Eq. 1–2 recurrence.

    Parameters
    ----------
    delta0:
        the initial width ``Δ_0`` (also used for ``Δ_1`` — "the Δ0 and Δ1
        value of the first and second buckets are fixed").
    min_delta / max_delta:
        safety clamps on the adjusted width; Eq. 1's ε is bounded by Δ_0 per
        step, but repeated shrinking could otherwise drive Δ non-positive
        on adversarial feedback.
    """

    delta0: float
    min_delta: float | None = None
    max_delta: float | None = None
    #: history of (C_i, T_i) feedback, one entry per completed bucket
    history: list[tuple[int, int]] = field(default_factory=list)
    #: widths already produced (Δ_0, Δ_1, ...)
    widths: list[float] = field(default_factory=list)
    #: epsilons already produced
    epsilons: list[float] = field(default_factory=list)
    _next_lo: float = 0.0

    def __post_init__(self) -> None:
        if self.delta0 <= 0:
            raise ValueError("delta0 must be positive")
        if self.min_delta is None:
            self.min_delta = self.delta0 * 0.1
        if self.max_delta is None:
            self.max_delta = self.delta0 * 16.0

    # ------------------------------------------------------------------
    def feedback(self, converged: int, threads: int) -> None:
        """Report bucket ``i``'s (C_i, T_i) after processing it."""
        self.history.append((int(converged), int(threads)))

    def epsilon(self, i: int) -> float:
        """Compute ε_i from recorded history (Eq. 1)."""
        if i < 2:
            return 0.0
        if len(self.history) < i:
            raise ValueError(
                f"epsilon({i}) needs feedback for buckets 0..{i - 1}; "
                f"have {len(self.history)}"
            )
        c2, t2 = self.history[i - 2]
        c1, t1 = self.history[i - 1]
        c_sum = c2 + c1
        t_sum = t2 + t1
        if c_sum == 0 or t_sum == 0:
            return 0.0
        c_term = abs(c2 - c1) / c_sum
        t_term = (t2 - t1) / t_sum
        return c_term * t_term * self.delta0

    def next_interval(self) -> BucketInterval:
        """Produce bucket ``i``'s interval, applying Eq. 2 for its width."""
        i = len(self.widths)
        if i < 2:
            width = self.delta0
            eps = 0.0
        else:
            eps = self.epsilon(i)
            width = self.widths[-1] + eps
            width = min(max(width, self.min_delta), self.max_delta)
        self.widths.append(width)
        self.epsilons.append(eps)
        lo = self._next_lo
        hi = lo + width
        self._next_lo = hi
        return BucketInterval(index=i, lo=lo, hi=hi)


def bucket_of(dist: np.ndarray, delta: float) -> np.ndarray:
    """Fixed-width bucket index of each distance (``inf`` → -1).

    The classic Δ-stepping mapping ``floor(dist / Δ)`` used by the
    synchronous baselines and the Fig. 2 analysis.
    """
    out = np.full(dist.shape, -1, dtype=np.int64)
    finite = np.isfinite(dist)
    out[finite] = np.floor(dist[finite] / delta).astype(np.int64)
    return out
