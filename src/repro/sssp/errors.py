"""Shared error types for the SSSP engines.

Every engine bounds its main loop — asynchronous execution over corrupted
state (a lost update, a bit-flipped distance) can otherwise spin forever —
and all of them report the same structured :class:`ConvergenceError` when
the bound trips, instead of the ad-hoc ``RuntimeError`` strings they grew
independently.  The recovery runtime (:mod:`repro.faults.runtime`) catches
it to fall back to checkpoint/repair; callers without recovery get a
diagnosable exception carrying the loop state at the point of surrender.
"""

from __future__ import annotations

__all__ = ["ConvergenceError"]


class ConvergenceError(RuntimeError):
    """An SSSP engine gave up before reaching a fixpoint.

    Subclasses ``RuntimeError`` so existing ``except RuntimeError`` call
    sites (and tests matching the legacy messages) keep working.

    Attributes
    ----------
    method:
        engine label (``"rdbs"``, ``"adds"``, ...).
    reason:
        which bound tripped (``"bucket limit exceeded"``, ``"step limit
        exceeded"``, ...); included verbatim in the message.
    iterations:
        iterations / steps / buckets completed when the engine stopped.
    frontier:
        size of the active set (frontier, near set, bucket) at that point.
    delta:
        the engine's current Δ, when it runs a Δ-stepping family member.
    """

    def __init__(
        self,
        reason: str,
        *,
        method: str = "",
        iterations: int = 0,
        frontier: int = 0,
        delta: float | None = None,
    ) -> None:
        detail = [f"after {iterations} iteration(s)", f"frontier={frontier}"]
        if delta is not None:
            detail.append(f"delta={delta:g}")
        prefix = f"{method}: " if method else ""
        super().__init__(f"{prefix}{reason} ({', '.join(detail)})")
        self.method = method
        self.reason = reason
        self.iterations = iterations
        self.frontier = frontier
        self.delta = delta
