"""Distance validation against an independent oracle.

Every benchmark run validates its distances against SciPy's C
implementation of Dijkstra (an implementation this library shares no code
with), so a performance win can never come from a wrong answer.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["scipy_distances", "validate_distances", "DistanceMismatch"]


class DistanceMismatch(AssertionError):
    """Raised when computed distances disagree with the oracle."""


def scipy_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Ground-truth distances via ``scipy.sparse.csgraph.dijkstra``.

    A pure function of (graph content, source), so the oracle run is
    memoized in the artifact cache — every benchmark cell validates
    against the same graphs and sources, and re-running Dijkstra per
    validation dominates the host time of small cells.
    """
    from ..perf import artifacts

    def build() -> dict[str, np.ndarray]:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra as _dijkstra

        n = graph.num_vertices
        mat = csr_matrix((graph.weights, graph.adj, graph.row), shape=(n, n))
        return {"dist": _dijkstra(mat, directed=True, indices=source)}

    arrays, _hit = artifacts.fetch(
        "reference", (graph.content_digest(), int(source)), build
    )
    return arrays["dist"]


def validate_distances(
    graph: CSRGraph,
    source: int,
    dist: np.ndarray,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> None:
    """Raise :class:`DistanceMismatch` unless ``dist`` matches the oracle.

    ``inf`` entries must match exactly (same reachable set); finite entries
    must match within floating-point tolerance.
    """
    expected = scipy_distances(graph, source)
    dist = np.asarray(dist)
    if dist.shape != expected.shape:
        raise DistanceMismatch(
            f"distance array has shape {dist.shape}, expected {expected.shape}"
        )
    got_inf = ~np.isfinite(dist)
    exp_inf = ~np.isfinite(expected)
    if not np.array_equal(got_inf, exp_inf):
        bad = int(np.count_nonzero(got_inf != exp_inf))
        raise DistanceMismatch(f"{bad} vertices disagree on reachability")
    finite = ~exp_inf
    if not np.allclose(dist[finite], expected[finite], rtol=rtol, atol=atol):
        diff = np.abs(dist[finite] - expected[finite])
        raise DistanceMismatch(
            f"max distance error {diff.max():g} on "
            f"{int((~np.isclose(dist[finite], expected[finite], rtol=rtol, atol=atol)).sum())} vertices"
        )
