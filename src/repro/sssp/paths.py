"""Shortest-path tree reconstruction and path queries.

The paper's algorithms (like most GPU SSSP kernels) return only the
distance array — carrying a parent pointer through every atomic would
double the atomic traffic.  The standard trick, implemented here, is to
reconstruct the shortest-path *tree* afterwards from the converged
distances: an edge ``(u, v, w)`` is a tree edge iff ``dist[u] + w ==
dist[v]``, so each vertex's parent is found with one vectorized pass over
the edges and no extra work during the search.

Provided:

* :func:`build_parents` — parent array from a distance array;
* :func:`extract_path` — the actual vertex sequence source→target;
* :func:`validate_path` — checks a path is real edges with the right total;
* :class:`ShortestPathTree` — the user-facing bundle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = [
    "build_parents",
    "extract_path",
    "validate_path",
    "ShortestPathTree",
    "shortest_path_tree",
]


def build_parents(
    graph: CSRGraph, dist: np.ndarray, source: int, *, atol: float = 1e-9
) -> np.ndarray:
    """Parent of every vertex in *some* shortest-path tree.

    For each reached vertex ``v`` (except the source) picks the
    lowest-numbered ``u`` with ``dist[u] + w(u, v) == dist[v]``.  Vertices
    that are unreachable (or the source itself) get parent ``-1``.

    Raises ``ValueError`` if ``dist`` is not a fixed point of relaxation
    (i.e. wasn't produced by a converged SSSP on this graph).
    """
    n = graph.num_vertices
    dist = np.asarray(dist, dtype=np.float64)
    if dist.shape != (n,):
        raise ValueError("dist must have one entry per vertex")
    src_of_edge = graph.edge_sources()
    v = graph.adj
    slack = dist[src_of_edge] + graph.weights - dist[v]
    finite = np.isfinite(dist[src_of_edge])
    if np.any(finite & (slack < -atol)):
        raise ValueError(
            "distance array is not relaxed: some edge can still shorten it"
        )
    tight = finite & (np.abs(slack) <= atol)
    parents = np.full(n, -1, dtype=np.int64)
    # lowest-numbered tight predecessor per vertex: reversed fancy-index
    # assignment keeps the first occurrence
    order = np.flatnonzero(tight)[::-1]
    parents[v[order]] = src_of_edge[order]
    parents[source] = -1
    # a reached non-source vertex must have found a parent
    reached = np.isfinite(dist)
    bad = reached & (parents == -1)
    bad[source] = False
    if bad.any():
        raise ValueError(
            f"{int(bad.sum())} reached vertices have no tight incoming edge; "
            "dist does not belong to this graph"
        )
    return parents


def extract_path(
    parents: np.ndarray, source: int, target: int
) -> list[int]:
    """Vertex sequence from ``source`` to ``target`` along parent links.

    Returns ``[]`` when the target is unreachable.
    """
    if target == source:
        return [source]
    if parents[target] == -1:
        return []
    path = [int(target)]
    seen = set(path)
    v = int(target)
    while v != source:
        v = int(parents[v])
        if v == -1 or v in seen:
            raise ValueError("parent links do not lead back to the source")
        path.append(v)
        seen.add(v)
    path.reverse()
    return path


def validate_path(
    graph: CSRGraph, path: list[int], expected_length: float, *, atol=1e-6
) -> None:
    """Assert ``path`` uses real edges and sums to ``expected_length``."""
    if not path:
        raise AssertionError("empty path")
    total = 0.0
    for u, v in zip(path, path[1:]):
        nbrs = graph.neighbors(u)
        ws = graph.edge_weights(u)
        hits = np.flatnonzero(nbrs == v)
        if hits.size == 0:
            raise AssertionError(f"no edge {u} -> {v} in the graph")
        total += float(ws[hits].min())
    if abs(total - expected_length) > atol:
        raise AssertionError(
            f"path length {total} != expected {expected_length}"
        )


@dataclass(frozen=True)
class ShortestPathTree:
    """Distances plus parent links; answers path queries."""

    graph: CSRGraph
    source: int
    dist: np.ndarray
    parents: np.ndarray

    def path_to(self, target: int) -> list[int]:
        """Vertex sequence source→target (``[]`` if unreachable)."""
        return extract_path(self.parents, self.source, target)

    def distance_to(self, target: int) -> float:
        """Shortest distance to ``target`` (``inf`` if unreachable)."""
        return float(self.dist[target])

    @property
    def reached(self) -> int:
        """Number of reachable vertices."""
        return int(np.isfinite(self.dist).sum())

    def depth_histogram(self) -> np.ndarray:
        """``hist[k]`` = vertices whose tree path has ``k`` edges."""
        n = self.graph.num_vertices
        depth = np.full(n, -1, dtype=np.int64)
        depth[self.source] = 0
        # iterate: vertices whose parent's depth is known
        pending = np.flatnonzero((self.parents >= 0) & (depth == -1))
        while pending.size:
            ready = pending[depth[self.parents[pending]] >= 0]
            if ready.size == 0:
                break
            depth[ready] = depth[self.parents[ready]] + 1
            pending = np.flatnonzero((self.parents >= 0) & (depth == -1))
        return np.bincount(depth[depth >= 0])


def shortest_path_tree(
    graph: CSRGraph, source: int, *, method: str = "rdbs", **kwargs
) -> ShortestPathTree:
    """Solve SSSP with ``method`` and return a queryable path tree."""
    from .api import sssp

    result = sssp(graph, source, method=method, **kwargs)
    parents = build_parents(graph, result.dist, source)
    return ShortestPathTree(
        graph=graph, source=source, dist=result.dist, parents=parents
    )
