"""BL: the synchronous push-mode GPU baseline (§5.2.1).

"We choose a synchronization SSSP algorithm based on push mode as baseline
(BL), which uses the static load balancing strategy."  This is the
Harish–Narayanan-style frontier Bellman-Ford every GPU graph framework
started from: one thread per active vertex, all out-edges relaxed each
iteration, a device-wide barrier between iterations, and no bucketing —
maximally parallel, maximally work-inefficient, and badly load-imbalanced
on power-law frontiers (the warp processing a hub vertex serializes over
its whole adjacency list while 31 lanes idle).
"""

from __future__ import annotations

import numpy as np

from ..faults.plan import InjectedKernelAbort
from ..faults.runtime import make_runtime
from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, subset_assignment
from ..gpusim.kernels import thread_per_vertex_edges
from ..gpusim.spec import GPUSpec, V100
from ..metrics.workstats import WorkStats
from .errors import ConvergenceError
from .relax import DeviceGraph, FrontierFlags, relax_batch
from .result import SSSPResult

__all__ = ["bl_sssp"]


def bl_sssp(
    graph: CSRGraph,
    source: int,
    *,
    spec: GPUSpec = V100,
    max_iterations: int | None = None,
    recovery=None,
) -> SSSPResult:
    """Run the synchronous push-mode baseline on a simulated GPU.

    ``max_iterations=None`` (the default) applies a finite safety bound of
    ``n + 2`` iterations — unreachable on sane inputs (a frontier survives
    at most ``n`` rounds), so tripping it means corrupted state and raises
    :class:`~repro.sssp.errors.ConvergenceError` (or breaks to the repair
    sweeps when ``recovery`` is on).  An explicit ``max_iterations`` keeps
    the historical truncation semantics: stop and return the partial
    distances.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, source, 0.0)
    flags = FrontierFlags(device, n)
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))
    runtime = make_runtime(recovery, device, dgraph, dist, source, "bl")
    default_bound = max_iterations is None
    limit = (n + 2) if default_bound else max_iterations

    frontier = np.array([source], dtype=np.int64)
    iterations = 0
    # per-iteration telemetry is host-only and gated on an attached observer
    note_rounds = bool(device.handlers("on_annotate"))
    while frontier.size:
        iterations += 1
        if note_rounds:
            device.annotate(
                "bl_round", iteration=iterations, frontier=int(frontier.size)
            )
        if iterations > limit:
            if not default_bound:
                break  # caller-requested truncation: partial result
            exc = ConvergenceError(
                "iteration limit exceeded",
                method="bl", iterations=iterations - 1,
                frontier=int(frontier.size),
            )
            if runtime is None:
                raise exc
            runtime.recover(exc)
            break  # the final repair sweeps restore the fixpoint
        if runtime is not None:
            runtime.epoch(int(frontier.size))
        flags.new_round()
        try:
            with device.launch("bl_relax") as k:
                batch = dgraph.batch(frontier, "all")
                # static load balancing: one thread per active vertex
                a = thread_per_vertex_edges(batch.counts)
                targets, updated = relax_batch(
                    k, dgraph, dist, frontier, batch, a, stats
                )
                if targets.size:
                    sub = subset_assignment(a, updated)
                    next_frontier = flags.push(k, targets[updated], sub)
                else:
                    next_frontier = np.zeros(0, dtype=np.int64)
        except InjectedKernelAbort as exc:
            if runtime is None:
                raise
            frontier = runtime.on_abort(exc)
            continue
        device.barrier()  # synchronous mode: barrier every iteration
        frontier = next_frontier

    if runtime is not None:
        runtime.finish()

    dist_out = graph.to_original_order(dist.data.copy())
    source_out = (
        int(graph.new_to_old[source]) if graph.new_to_old is not None else source
    )
    return SSSPResult(
        dist=dist_out,
        source=source_out,
        method="bl",
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=stats.finalize(dist.data),
        counters=device.counters,
        num_edges=graph.num_edges,
        extra={
            "timeline": device.timeline,
            "iterations": iterations},
        faults=runtime.report if runtime is not None else None,
    )
