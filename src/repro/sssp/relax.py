"""Shared GPU kernel building blocks for all SSSP variants.

Every GPU algorithm in this library is built from the same three moves:

* :class:`DeviceGraph` — the CSR arrays resident in simulated device
  memory, plus vectorized edge-batch index construction (the address
  arithmetic a CUDA kernel performs with ``row[u] + j``);
* :func:`relax_batch` — the relaxation inner loop of Algorithm 1: gather
  ``dist[u]`` once per active vertex, gather the edge targets and weights,
  compute tentative distances and resolve them with ``atomicMin``; and
* :class:`FrontierFlags` — duplicate suppression for the next frontier via
  a device flag array (gather, branch, scatter), the standard GPU worklist
  idiom.

Keeping these in one module guarantees that the baseline, ADDS and RDBS are
compared on identical memory-access accounting — differences between them
come only from *which* edges they touch, *when*, and under *which* thread
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, KernelContext, subset_assignment
from ..gpusim.kernels import (
    WorkAssignment,
    thread_per_item,
)
from ..gpusim.memory import DeviceArray
from ..metrics.workstats import WorkStats
from ..util.scan import segmented_arange, sorted_unique_ints

__all__ = [
    "DeviceGraph",
    "EdgeBatch",
    "RelaxOutcome",
    "relax_batch",
    "FrontierFlags",
]


@dataclass(frozen=True)
class EdgeBatch:
    """A flat batch of edges to relax: one entry per edge."""

    #: flat indices into adj/weights
    edge_idx: np.ndarray
    #: per-edge position into the originating vertex list
    src_pos: np.ndarray
    #: per-vertex edge count (aligned with the vertex list)
    counts: np.ndarray

    @property
    def num_edges(self) -> int:
        """Edges in the batch."""
        return int(self.edge_idx.size)


class DeviceGraph:
    """A CSR graph uploaded to one simulated device.

    The heavy-edge offset column is held *mutable* (unlike the immutable
    host graph) because the bucket-aware engine re-splits light/heavy when
    its dynamic Δ outgrows the preprocessing Δ — "the offset of heavy edges
    can be changed immediately in phase 1 … it can adapt itself to the
    change of Δ value" (§4.1).
    """

    def __init__(self, device: GPUDevice, graph: CSRGraph) -> None:
        self.device = device
        self.graph = graph
        self.row = device.upload(graph.row, "row")
        self.adj = device.upload(graph.adj, "adj")
        self.weights = device.upload(graph.weights, "weights")
        if graph.heavy_offsets is not None:
            self.heavy = device.alloc(graph.heavy_offsets, "heavy_offsets")
            self.split_delta = float(graph.delta)
        else:
            self.heavy = None
            self.split_delta = None
        #: host-side memo of re-split offset arrays per Δ — the bucket-aware
        #: engine revisits the same widened Δ values across buckets/sources,
        #: and the offsets are a pure function of (graph, Δ).  The device
        #: kernel accounting of resplit() is unchanged by a memo hit.
        self._offset_memo: dict[float, np.ndarray] = {}

    def resplit(self, new_delta: float) -> None:
        """Recompute heavy offsets for ``new_delta`` (one device pass).

        Each vertex binary-searches its weight-sorted segment for the new
        split point and stores the offset — charged as an ALU + store pass
        over all vertices in a small kernel.
        """
        if self.heavy is None:
            raise ValueError("graph has no heavy offsets to re-split")
        from ..reorder.heavy_offsets import compute_heavy_offsets
        from ..gpusim.kernels import grid_stride

        n = self.graph.num_vertices
        offsets = self._offset_memo.get(float(new_delta))
        if offsets is None:
            offsets = compute_heavy_offsets(self.graph, new_delta)
            self._offset_memo[float(new_delta)] = offsets
        with self.device.launch("resplit_offsets") as k:
            a = grid_stride(n, 32 * 256)
            k.gather(self.row, np.arange(n, dtype=np.int64), a)
            k.alu(a, ops=6)  # per-vertex binary search over its segment
            k.scatter(self.heavy, np.arange(n, dtype=np.int64), offsets, a)
        self.split_delta = float(new_delta)

    # ------------------------------------------------------------------
    # edge-range selection (index arithmetic; charged as ALU by callers)
    # ------------------------------------------------------------------
    def batch(self, vertices: np.ndarray, kind: str = "all") -> EdgeBatch:
        """Build the edge batch for ``vertices``.

        ``kind`` selects ``"all"`` edges, or — when the graph carries
        heavy offsets (PRO) — the contiguous ``"light"`` prefix or
        ``"heavy"`` suffix of each adjacency segment.
        """
        g = self.graph
        vertices = np.asarray(vertices, dtype=np.int64)
        if kind == "all":
            start = g.row[vertices]
            stop = g.row[vertices + 1]
        elif kind == "light":
            if self.heavy is None:
                raise ValueError("light batch requires heavy offsets (PRO)")
            start = g.row[vertices]
            stop = self.heavy.data[vertices]
        elif kind == "heavy":
            if self.heavy is None:
                raise ValueError("heavy batch requires heavy offsets (PRO)")
            start = self.heavy.data[vertices]
            stop = g.row[vertices + 1]
        else:
            raise ValueError(f"unknown edge kind: {kind!r}")
        counts = (stop - start).astype(np.int64)
        edge_idx = np.repeat(start, counts) + segmented_arange(counts)
        src_pos = np.repeat(np.arange(vertices.size, dtype=np.int64), counts)
        return EdgeBatch(edge_idx=edge_idx, src_pos=src_pos, counts=counts)

    def batch_groups(
        self,
        vertices: np.ndarray,
        kind: str,
        groups: list[tuple[np.ndarray, "WorkAssignment"]],
    ) -> list[EdgeBatch]:
        """Per-workload-class edge batches from *one* vectorized pass.

        ``groups`` is the ``(positions, assignment)`` partition produced by
        ADWL classification (:func:`repro.gpusim.dynamic.launch_adaptive`).
        Instead of re-running the row-gather / repeat / segmented-arange
        index construction once per class, the full batch is built once and
        sliced by class membership — element-for-element identical to
        calling :meth:`batch` on each class's vertex list.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(groups) == 1:
            positions, _ = groups[0]
            return [self.batch(vertices[positions], kind)]
        full = self.batch(vertices, kind)
        group_id = np.empty(vertices.size, dtype=np.int64)
        rank = np.empty(vertices.size, dtype=np.int64)
        for gi, (positions, _) in enumerate(groups):
            group_id[positions] = gi
            rank[positions] = np.arange(positions.size, dtype=np.int64)
        edge_gid = group_id[full.src_pos]
        out: list[EdgeBatch] = []
        for gi, (positions, _) in enumerate(groups):
            mask = edge_gid == gi
            out.append(EdgeBatch(
                edge_idx=full.edge_idx[mask],
                src_pos=rank[full.src_pos[mask]],
                counts=full.counts[positions],
            ))
        return out

    def light_counts(self, vertices: np.ndarray) -> np.ndarray:
        """Light-edge count per vertex (requires PRO heavy offsets)."""
        if self.heavy is None:
            raise ValueError("light counts require heavy offsets (PRO)")
        vertices = np.asarray(vertices, dtype=np.int64)
        return (self.heavy.data[vertices] - self.graph.row[vertices]).astype(
            np.int64
        )


@dataclass(frozen=True)
class RelaxOutcome:
    """Result of one :func:`relax_batch` call.

    ``new_dist[i]`` is the tentative distance the ``atomicMin`` for target
    ``targets[i]`` carried — for updated entries, exactly the value the
    atomic wrote (the register-resident result a real kernel branches on,
    so consumers never need an un-counted host read of ``dist``).
    """

    #: per-relaxed-edge target vertex
    targets: np.ndarray
    #: mask of atomics that lowered their cell (the paper's "updates")
    updated: np.ndarray
    #: per-edge tentative distance handed to the atomic
    new_dist: np.ndarray

    def __iter__(self):
        # (targets, updated) unpacking remains valid for call sites that
        # do not need the written values
        return iter((self.targets, self.updated))


_EMPTY_OUTCOME = RelaxOutcome(
    targets=np.zeros(0, dtype=np.int64),
    updated=np.zeros(0, dtype=bool),
    new_dist=np.zeros(0, dtype=np.float64),
)


def relax_batch(
    ctx: KernelContext,
    dgraph: DeviceGraph,
    dist: DeviceArray,
    vertices: np.ndarray,
    batch: EdgeBatch,
    assignment: WorkAssignment,
    stats: WorkStats | tuple[WorkStats, ...] | None,
    *,
    weight_filter: tuple[float, bool] | None = None,
) -> RelaxOutcome:
    """Relax one edge batch under ``assignment``; returns a :class:`RelaxOutcome`.

    Implements Algorithm 1 with full accounting: per-vertex ``dist[u]``
    load, per-edge target/weight loads, the tentative-distance compute, and
    the ``atomicMin`` resolution (plus its check/update classification into
    ``stats``).

    ``weight_filter=(delta, want_light)`` emulates the *unsorted* CSR case
    (no PRO): the kernel touches every edge of the batch, executes a
    divergent branch on ``w < delta`` and only issues atomics for the
    selected class — the extra instructions PRO eliminates.
    """
    if batch.num_edges == 0:
        # the per-vertex dist load still happens for non-empty vertex lists
        if vertices.size:
            a_v = thread_per_item(vertices.size)
            ctx.gather(dist, vertices, a_v)
        return _EMPTY_OUTCOME

    # load dist[u] once per active vertex (register-resident thereafter)
    a_v = thread_per_item(vertices.size)
    du = ctx.gather(dist, vertices, a_v)

    v = ctx.gather(dgraph.adj, batch.edge_idx, assignment)
    wt = ctx.gather(dgraph.weights, batch.edge_idx, assignment)
    nd = du[batch.src_pos] + wt
    # address computation + add + compare per edge step
    ctx.alu(assignment, ops=3)

    if weight_filter is not None:
        delta, want_light = weight_filter
        taken = (wt < delta) if want_light else (wt >= delta)
        ctx.branch(assignment, taken)
        sub = subset_assignment(assignment, taken)
        v_sel, nd_sel = v[taken], nd[taken]
        _old, updated = ctx.atomic_min(dist, v_sel, nd_sel, sub)
        _record(stats, v_sel, nd_sel, updated)
        return RelaxOutcome(targets=v_sel, updated=updated, new_dist=nd_sel)

    _old, updated = ctx.atomic_min(dist, v, nd, assignment)
    _record(stats, v, nd, updated)
    return RelaxOutcome(targets=v, updated=updated, new_dist=nd)


def _record(stats, vertices: np.ndarray, values: np.ndarray, updated: np.ndarray) -> None:
    """Record a relaxation batch into one or several WorkStats recorders."""
    if stats is None:
        return
    if isinstance(stats, WorkStats):
        stats.record(vertices, values, updated)
    else:
        for s in stats:
            s.record(vertices, values, updated)


class FrontierFlags:
    """Iteration-stamped flag array for duplicate-free frontier construction.

    Instead of marking flags with ``1`` and clearing them afterwards — a
    clear that races the neighbouring warps' test-and-set inside the same
    kernel — each frontier round writes the current *round stamp* and a
    flag counts as marked only when it equals the stamp.  One store per
    fresh vertex, no clear pass at all, and the only remaining race is the
    benign same-value stamp write (the idiom real frontier codes use).
    """

    def __init__(self, device: GPUDevice, num_vertices: int) -> None:
        self.device = device
        self.flags = device.zeros(num_vertices, dtype=np.int32, name="frontier_flags")
        self._stamp = 1  # zeroed storage must not read as "marked"

    def new_round(self) -> None:
        """Start the next frontier round: all previous marks turn stale."""
        self._stamp += 1

    def push(
        self,
        ctx: KernelContext,
        targets: np.ndarray,
        assignment: WorkAssignment,
    ) -> np.ndarray:
        """Mark ``targets`` and return the newly marked (deduplicated) ones.

        Models the gather-test-set idiom: load the flag, branch on the
        stamp test, store the stamp for the fresh ones.  The returned
        array is sorted and unique.
        """
        if targets.size == 0:
            return np.zeros(0, dtype=np.int64)
        current = ctx.gather(self.flags, targets, assignment)
        fresh_mask = current != self._stamp
        ctx.branch(assignment, fresh_mask)
        fresh = sorted_unique_ints(targets[fresh_mask])
        if fresh.size:
            sub = subset_assignment(assignment, fresh_mask)
            ctx.scatter(
                self.flags,
                targets[fresh_mask],
                np.full(int(fresh_mask.sum()), self._stamp, dtype=np.int32),
                sub,
            )
        return fresh
