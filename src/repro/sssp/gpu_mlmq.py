"""MLMQ: a Multi-Level-Multi-Queue asynchronous SSSP engine.

"Beyond a Single Queue" (see PAPERS.md) observes that the strongest
successors to ADDS/RDBS-style asynchrony are *structural*: instead of one
shared bucket per priority range, the frontier lives in L levels of B
concurrent queues each.  A vertex hashes into a fixed queue within the
level selected by its tentative distance, ordering between queues of one
level is relaxed (any interleaving of pops is admissible because
``atomic_min`` relaxations are monotone and re-relaxation is idempotent),
and SM-mapped queue groups steal from the largest remaining queue of
their level when their own queue drains.

This engine realises that design on the simulated device:

* **placement** — one warp-ballot multisplit classifies each round's
  improved vertices by ``(level offset, queue id)`` in a single pass;
  pushes are dense cursor appends into shared slot pools (coalesced
  stores), the same discipline as the RDBS/ADDS multisplit paths;
* **relaxation** — popped batches relax edge-parallel under a balanced
  grid-stride assignment, so power-law hubs cannot serialize a queue
  group the way vertex-per-thread mappings do;
* **work stealing** — deterministic: idle groups (ascending id) steal
  from the largest remaining queue of the level (ties to the lowest
  queue id), one counted descriptor CAS per handoff (``mlmq_steals`` /
  ``mlmq_stolen_slots``);
* **windowing** — only ``window_levels`` levels are materialised at a
  time; farther improvements park in an overflow pile (value-mirrored,
  like Near-Far's far pile) and are promoted by a counted
  reclassification kernel (``mlmq_advance``) when the window reaches
  them.

Stale pops are benign by construction: a queued copy is *live* iff the
vertex's level mirror still records that level; anything else is popped,
counted and dropped without relaxing.  See docs/mlmq.md for the full
correctness argument and a counter-backed kron walkthrough.
"""

from __future__ import annotations

import numpy as np

from ..faults.plan import InjectedKernelAbort
from ..faults.runtime import WatchdogTimeout, make_runtime
from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice
from ..gpusim.kernels import grid_stride, thread_per_item
from ..gpusim.spec import GPUSpec, V100
from ..metrics.workstats import WorkStats
from ..util.scan import sorted_unique_ints
from .errors import ConvergenceError
from .gpu_rdbs import default_delta
from .relax import DeviceGraph, relax_batch
from .result import SSSPResult

__all__ = ["mlmq_sssp", "NUM_QUEUES", "WINDOW_LEVELS", "GROUP_CHUNK"]

#: levels of queues materialised at once (the window); improvements
#: beyond the window park in the overflow pile
WINDOW_LEVELS = 4

#: concurrent queues per level — one SM-mapped queue group each
NUM_QUEUES = 4

#: worklist slots one queue group pops per asynchronous micro-round;
#: small chunks keep popped distances fresh (fewer wasted relaxations)
#: and expose the queue imbalance that work stealing exists to absorb
GROUP_CHUNK = 16

#: thread count of the edge-parallel relax passes (static balance)
_DRAIN_THREADS = 32 * 256

#: Knuth's multiplicative hash constant — the queue id of a vertex is a
#: pure function of its id, so placement is deterministic and stateless
_HASH_MULT = np.int64(2654435761)


def _queue_of(vertices: np.ndarray, num_queues: int) -> np.ndarray:
    """Deterministic queue id per vertex: ``hash(v) mod B``."""
    return ((vertices * _HASH_MULT) >> np.int64(16)) % np.int64(num_queues)


class _QueuePool:
    """Host bookkeeping of the queue hierarchy.

    Queue *contents* are mirrored host-side (the repo-wide worklist
    discipline: slot arrays on the device are write-only scratch whose
    insertion traffic is counted, while membership lives in host mirrors
    — exactly how ADDS keeps its near list and RDBS its queue flags).
    Pushes are dense cursor appends into a shared device slot pool; when
    a pool fills, a fresh one is allocated and the cursor rewinds.
    """

    def __init__(self, device: GPUDevice, n: int, num_edges: int,
                 num_queues: int) -> None:
        self.device = device
        self.num_queues = num_queues
        #: level -> per-queue FIFO chunk lists
        self.queues: dict[int, list[list[np.ndarray]]] = {}
        #: level -> per-queue pending sizes
        self.sizes: dict[int, np.ndarray] = {}
        #: level of each vertex's live queued copy, -1 when none
        self.queue_level = np.full(n, -1, dtype=np.int64)
        #: beyond-window improvements: membership + value mirror
        self.overflow_mask = np.zeros(n, dtype=bool)
        self.overflow_val = np.full(n, np.inf)
        self._cap = max(int(num_edges), 1024)
        self._pool = device.empty(self._cap, dtype=np.int64,
                                  name="mlmq_pool0")
        self._cursor = 0
        self._pool_seq = 1

    # -- device-side slot accounting -----------------------------------
    def reserve(self, size: int):
        """A ``(pool, start)`` slot range for ``size`` appended entries."""
        if self._cursor + size > self._pool.size:
            self._pool = self.device.empty(
                max(self._cap, size), dtype=np.int64,
                name=f"mlmq_pool{self._pool_seq}",
            )
            self._pool_seq += 1
            self._cursor = 0
        start = self._cursor
        self._cursor += size
        return self._pool, start

    # -- host mirrors ---------------------------------------------------
    def enqueue(self, level: int, queue: int, vertices: np.ndarray) -> None:
        if level not in self.queues:
            self.queues[level] = [[] for _ in range(self.num_queues)]
            self.sizes[level] = np.zeros(self.num_queues, dtype=np.int64)
        self.queues[level][queue].append(vertices)
        self.sizes[level][queue] += vertices.size

    def pop(self, level: int, queue: int, count: int) -> np.ndarray:
        """Remove the ``count`` oldest entries of one queue (FIFO)."""
        chunks = self.queues[level][queue]
        taken: list[np.ndarray] = []
        left = count
        while left > 0:
            head = chunks[0]
            if head.size <= left:
                taken.append(chunks.pop(0))
                left -= head.size
            else:
                taken.append(head[:left])
                chunks[0] = head[left:]
                left = 0
        self.sizes[level][queue] -= count
        return taken[0] if len(taken) == 1 else np.concatenate(taken)

    def level_size(self, level: int) -> int:
        s = self.sizes.get(level)
        return int(s.sum()) if s is not None else 0

    def nonempty_levels(self) -> list[int]:
        return [lvl for lvl, s in self.sizes.items() if s.sum() > 0]

    def drop_level(self, level: int) -> None:
        self.queues.pop(level, None)
        self.sizes.pop(level, None)

    def total_pending(self) -> int:
        queued = sum(int(s.sum()) for s in self.sizes.values())
        return queued + int(self.overflow_mask.sum())


def mlmq_sssp(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    spec: GPUSpec = V100,
    window_levels: int = WINDOW_LEVELS,
    num_queues: int = NUM_QUEUES,
    chunk: int = GROUP_CHUNK,
    max_rounds: int = 10_000_000,
    recovery=None,
) -> SSSPResult:
    """Run the Multi-Level-Multi-Queue engine on a simulated GPU.

    ``window_levels`` × ``num_queues`` queues are live at once; ``chunk``
    sets how many slots one queue group drains per micro-round.
    ``recovery`` (``True`` or a :class:`repro.faults.RecoveryPolicy`)
    enables the self-healing runtime exactly as for the other engines:
    epoch checkpoints, a per-level watchdog, and final verify/repair
    sweeps.  Off (``None``) it costs nothing.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if window_levels < 1 or num_queues < 1:
        raise ValueError("window_levels and num_queues must be >= 1")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    if delta is None:
        delta = default_delta(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, source, 0.0)
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))
    runtime = make_runtime(recovery, device, dgraph, dist, source, "mlmq")

    state = _QueuePool(device, n, graph.num_edges, num_queues)

    # seed: the source enters its hashed queue of level 0 (one counted
    # append, the same store discipline every later push uses)
    src_arr = np.array([source], dtype=np.int64)
    with device.launch("mlmq_init") as k:
        pool, start = state.reserve(1)
        k.scatter(pool, start + np.arange(1, dtype=np.int64), src_arr,
                  thread_per_item(1))
    state.enqueue(0, int(_queue_of(src_arr, num_queues)[0]), src_arr)
    state.queue_level[source] = 0

    tally = {"rounds": 0, "stale": 0, "advances": 0, "steals": 0,
             "stolen_slots": 0}
    level_telemetry: list[dict] = []
    levels_processed = 0

    while True:
        qlevels = state.nonempty_levels()
        lvl: int | None = min(qlevels) if qlevels else None
        if state.overflow_mask.any():
            olvl = int(np.floor(
                state.overflow_val[state.overflow_mask].min() / delta
            ))
            lvl = olvl if lvl is None else min(lvl, olvl)
        if lvl is None:
            break
        lo = lvl * delta
        hi = (lvl + 1) * delta
        if runtime is not None:
            runtime.epoch(state.total_pending(), mark=lo)

        try:
            # promote overflow entries the window now covers
            if state.overflow_mask.any() and (
                state.overflow_val[state.overflow_mask].min()
                < (lvl + window_levels) * delta
            ):
                _advance_window(device, dist, state, lvl, delta=delta,
                                window=window_levels,
                                num_queues=num_queues)
                tally["advances"] += 1
            if state.level_size(lvl) == 0:
                continue

            levels_processed += 1
            note = bool(device.handlers("on_annotate"))
            if note:
                device.annotate(
                    "bucket", index=lvl, lo=lo, hi=hi,
                    active=np.flatnonzero(state.queue_level == lvl),
                )
            occupancy = [int(c) for c in state.sizes[lvl]]
            watchdog = (
                runtime.new_watchdog(state.level_size(lvl),
                                     chunk * num_queues)
                if runtime is not None else None
            )
            row = _drain_level(
                device, dgraph, dist, state, lvl, delta=delta,
                window=window_levels, num_queues=num_queues, chunk=chunk,
                stats=stats, watchdog=watchdog, tally=tally,
                max_rounds=max_rounds, note=note,
            )
            state.drop_level(lvl)
            if note:
                flr = np.floor(dist.data / delta)
                device.annotate("settled",
                                vertices=np.flatnonzero(flr == lvl))
                device.annotate(
                    "bucket_close", index=lvl, lo=lo, hi=hi,
                    delta=hi - lo, converged=row["converged"],
                    rounds=row["rounds"], steals=row["steals"],
                    aborted=False,
                )
            row.update({"level": lvl, "lo": lo, "hi": hi,
                        "occupancy": occupancy})
            level_telemetry.append(row)
        except (WatchdogTimeout, InjectedKernelAbort) as exc:
            if runtime is None:
                raise
            _mlmq_reseed(runtime, exc, state, dist)
            continue
        except ConvergenceError as exc:
            if runtime is None:
                raise
            runtime.recover(exc)
            break  # the final repair sweeps restore the fixpoint

    if runtime is not None:
        runtime.finish()

    work = stats.finalize(dist.data)
    totals = device.counters.totals
    wasted = (
        (work.relaxations - work.valid_updates) / work.relaxations
        if work.relaxations else 0.0
    )
    return SSSPResult(
        dist=dist.data.copy(),
        source=source,
        method="mlmq",
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=work,
        counters=device.counters,
        num_edges=graph.num_edges,
        extra={
            "timeline": device.timeline,
            "delta": delta,
            "window_levels": window_levels,
            "num_queues": num_queues,
            "levels": levels_processed,
            "rounds": tally["rounds"],
            "advances": tally["advances"],
            "stale_pops": tally["stale"],
            "mlmq_steals": int(totals.mlmq_steals),
            "mlmq_stolen_slots": int(totals.mlmq_stolen_slots),
            "wasted_relaxation_ratio": float(wasted),
            "level_telemetry": level_telemetry,
        },
        faults=runtime.report if runtime is not None else None,
    )


def _drain_level(
    device, dgraph, dist, state: _QueuePool, lvl: int, *,
    delta: float, window: int, num_queues: int, chunk: int,
    stats: WorkStats, watchdog, tally: dict, max_rounds: int, note: bool,
) -> dict:
    """Drain one level's queues inside one persistent asynchronous kernel.

    Each micro-round every queue group pops up to ``chunk`` slots from
    its own queue; groups whose queue is empty steal (ascending group id,
    deterministically) from the largest remaining queue of the level.
    The combined batch is filtered against the level mirror (stale copies
    drop out), relaxed edge-parallel, and the improvements are
    reclassified by one multisplit into ``window`` levels × ``B`` queues
    plus an overflow bucket.
    """
    rounds = 0
    stale = 0
    steals = 0
    stolen = 0
    converged = 0
    overflow_bucket = window * num_queues
    with device.launch("mlmq_drain") as k:
        while state.level_size(lvl) > 0:
            rounds += 1
            tally["rounds"] += 1
            if tally["rounds"] > max_rounds:
                raise ConvergenceError(
                    "MLMQ round limit exceeded; check delta/weights",
                    method="mlmq", iterations=tally["rounds"] - 1,
                    frontier=state.level_size(lvl), delta=delta,
                )
            if watchdog is not None:
                watchdog.tick()

            # ---- pop planning: own queues first, then deterministic
            # stealing by the idle groups -----------------------------
            sizes = state.sizes[lvl]
            take = np.minimum(sizes, chunk)
            remaining = sizes - take
            for g in np.flatnonzero(take == 0):
                victim = int(np.argmax(remaining))  # ties: lowest qid
                amount = int(min(chunk, remaining[victim]))
                if amount <= 0:
                    break
                remaining[victim] -= amount
                take[victim] += amount
                steals += 1
                stolen += amount
                k.mlmq_steal(amount)
                if note:
                    device.annotate("mlmq_steal", level=lvl, group=int(g),
                                    queue=victim, slots=amount)
            popped = np.concatenate([
                state.pop(lvl, q, int(take[q]))
                for q in range(num_queues) if take[q] > 0
            ])

            # ---- pop + liveness filter: each popped slot loads the
            # vertex's tentative distance; copies whose level mirror
            # moved on are stale and drop out (a divergent branch) -----
            a_pop = thread_per_item(popped.size)
            k.gather(dist, popped, a_pop)
            k.alu(a_pop, ops=1)
            live = state.queue_level[popped] == lvl
            k.branch(a_pop, live)
            valid = popped[live]
            stale += int(popped.size - valid.size)
            state.queue_level[valid] = -1
            converged += int(valid.size)
            if valid.size == 0:
                k.async_round()
                continue

            # ---- edge-parallel relaxation (static balance: hubs are
            # spread over the whole grid, not one thread) --------------
            batch = dgraph.batch(valid, "all")
            out = None
            if batch.edge_idx.size:
                a_rel = grid_stride(batch.edge_idx.size, _DRAIN_THREADS)
                out = relax_batch(k, dgraph, dist, valid, batch, a_rel,
                                  stats)
            k.async_round()

            # ---- classification: one multisplit over the improved
            # targets into window x B queue buckets + overflow ---------
            pushed = 0
            if out is not None and out.targets.size:
                upd = out.targets[out.updated]
                if upd.size:
                    pushed = _classify_and_push(
                        k, state, upd, out.new_dist[out.updated], lvl,
                        delta=delta, window=window,
                        num_queues=num_queues,
                        overflow_bucket=overflow_bucket,
                    )
            if note:
                device.annotate(
                    "mlmq_round", level=lvl, round=rounds,
                    drained=int(popped.size), valid=int(valid.size),
                    stale=int(popped.size - valid.size), pushed=pushed,
                    pending=state.level_size(lvl),
                )
    tally["stale"] += stale
    tally["steals"] += steals
    tally["stolen_slots"] += stolen
    return {"rounds": rounds, "stale": stale, "steals": steals,
            "stolen_slots": stolen, "converged": converged}


def _classify_and_push(
    k, state: _QueuePool, targets: np.ndarray, values: np.ndarray,
    lvl: int, *, delta: float, window: int, num_queues: int,
    overflow_bucket: int,
) -> int:
    """Multisplit-classify one round's improvements and append them.

    Deduplicates targets first (several edges improving one vertex in one
    pass), then one ballot multisplit groups the winners by
    ``(level offset, queue id)``; in-window buckets append densely behind
    the pool cursor, the overflow bucket updates the far-pile mirrors.
    """
    cand = sorted_unique_ints(targets)
    pos = np.searchsorted(cand, targets)
    dv = np.full(cand.size, np.inf)
    np.minimum.at(dv, pos, values)
    lvl_of = np.floor(dv / delta).astype(np.int64)
    rel = np.clip(lvl_of - lvl, 0, window)
    qid = _queue_of(cand, num_queues)
    keys = np.where(rel < window, rel * num_queues + qid, overflow_bucket)
    a_ms = thread_per_item(cand.size)
    order, offs = k.multisplit(keys, overflow_bucket + 1, a_ms)

    push_chunks: list[tuple[int, int, np.ndarray]] = []
    for r in range(window):
        for q in range(num_queues):
            b = r * num_queues + q
            seg = order[offs[b]:offs[b + 1]]
            if seg.size == 0:
                continue
            vs = cand[seg]
            tgt = lvl + r
            # live-copy dedup: push only when nothing is queued for the
            # vertex, or the improvement crosses below the queued level
            # (the higher copy goes stale); same-level re-improvements
            # skip the push — the pending pop reads the fresher distance
            cur = state.queue_level[vs]
            sel = (cur == -1) | (tgt < cur)
            vs = vs[sel]
            if vs.size == 0:
                continue
            state.queue_level[vs] = tgt
            state.overflow_mask[vs] = False
            push_chunks.append((tgt, q, vs))

    seg = order[offs[overflow_bucket]:offs[overflow_bucket + 1]]
    if seg.size:
        vs = cand[seg]
        vals = dv[seg]
        free = state.queue_level[vs] == -1
        vs, vals = vs[free], vals[free]
        state.overflow_mask[vs] = True
        np.minimum.at(state.overflow_val, vs, vals)

    if not push_chunks:
        return 0
    push_all = np.concatenate([vs for _, _, vs in push_chunks])
    csize = int(push_all.size)
    pool, cursor = state.reserve(csize)
    a_push = thread_per_item(csize)
    k.scatter(pool, cursor + np.arange(csize, dtype=np.int64), push_all,
              a_push)
    for tgt, q, vs in push_chunks:
        state.enqueue(tgt, q, vs)
    return csize


def _advance_window(
    device, dist, state: _QueuePool, lvl: int, *,
    delta: float, window: int, num_queues: int,
) -> int:
    """Promote overflow entries into the queue window (counted kernel).

    The overflow pile keeps a value mirror (``overflow_val``, maintained
    like Near-Far's far pile), so the candidate set is known host-side;
    the kernel gathers the authoritative distances, reclassifies them by
    one multisplit, and appends the promotions densely.
    """
    bound = (lvl + window) * delta
    cand = np.flatnonzero(state.overflow_mask
                          & (state.overflow_val < bound))
    if cand.size == 0:
        return 0
    with device.launch("mlmq_advance") as k:
        a = thread_per_item(cand.size)
        dvals = k.gather(dist, cand, a)
        k.alu(a, ops=2)
        # an injected fault can leave inf in a gathered distance; classify
        # it at the window bound (clipped below) instead of tripping the
        # float->int cast — recovery re-relaxes it with a sane value later
        safe = np.where(np.isfinite(dvals), dvals, bound)
        lvl_of = np.floor(safe / delta).astype(np.int64)
        # clip into the window: the candidate set was mirror-filtered, so
        # out-of-window floors only arise from boundary rounding, and
        # popping a vertex one level early is always admissible under
        # relaxed ordering (re-relaxation is idempotent)
        rel = np.clip(lvl_of - lvl, 0, window - 1)
        qid = _queue_of(cand, num_queues)
        keys = rel * num_queues + qid
        order, offs = k.multisplit(keys, window * num_queues, a)
        state.overflow_mask[cand] = False
        push_chunks: list[tuple[int, int, np.ndarray]] = []
        for r in range(window):
            for q in range(num_queues):
                b = r * num_queues + q
                seg = order[offs[b]:offs[b + 1]]
                if seg.size:
                    push_chunks.append((lvl + r, q, cand[seg]))
        push_all = np.concatenate([c for _, _, c in push_chunks])
        csize = int(push_all.size)
        pool, cursor = state.reserve(csize)
        k.scatter(pool, cursor + np.arange(csize, dtype=np.int64),
                  push_all, thread_per_item(csize))
        for tgt, q, chunk_vs in push_chunks:
            state.enqueue(tgt, q, chunk_vs)
            state.queue_level[chunk_vs] = tgt
    if device.handlers("on_annotate"):
        device.annotate("mlmq_advance", level=lvl,
                        promoted=int(cand.size),
                        overflow_remaining=int(state.overflow_mask.sum()))
    return int(cand.size)


def _mlmq_reseed(runtime, exc, state: _QueuePool, dist) -> None:
    """Roll back after an aborted kernel and rebuild the queue hierarchy.

    Every finite vertex of the restored checkpoint re-enters through the
    overflow pile; the next window advance reclassifies them with the
    normal counted kernel.  Re-relaxing settled vertices costs extra work
    but cannot change a correct distance.
    """
    fin = runtime.on_abort(exc)
    state.queues.clear()
    state.sizes.clear()
    state.queue_level[:] = -1
    state.overflow_mask[:] = False
    state.overflow_val[:] = np.inf
    if fin.size:
        state.overflow_mask[fin] = True
        state.overflow_val[fin] = dist.data[fin]
