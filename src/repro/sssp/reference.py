"""Reference CPU algorithms: Dijkstra and Bellman-Ford (§2.1).

These are the textbook algorithms the paper's Background section builds on.
:func:`dijkstra` (binary-heap, lazy deletion) is the work-efficient serial
reference; :func:`bellman_ford` is the parallel-friendly but work-inefficient
frontier algorithm every GPU push-mode implementation descends from.  Both
serve as ground truth for the test suite and as teaching examples; the
benchmarks validate against the (much faster) SciPy implementation in
:mod:`repro.sssp.validate`.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.csr import CSRGraph
from ..util.scan import segmented_arange
from .result import SSSPResult

__all__ = ["dijkstra", "bellman_ford"]


def dijkstra(graph: CSRGraph, source: int) -> SSSPResult:
    """Serial Dijkstra with a binary heap and lazy deletion.

    Each vertex is settled exactly once ("each vertex is updated at most
    once, which indicates Dijkstra's algorithm is work efficient"), making
    this the canonical correctness oracle.
    """
    n = graph.num_vertices
    _check_source(n, source)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    settled = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    row, adj, w = graph.row, graph.adj, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        for e in range(row[u], row[u + 1]):
            v = int(adj[e])
            nd = d + w[e]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return SSSPResult(
        dist=dist,
        source=source,
        method="dijkstra",
        graph_name=graph.name,
        num_edges=graph.num_edges,
    )


def bellman_ford(
    graph: CSRGraph, source: int, *, max_rounds: int | None = None
) -> SSSPResult:
    """Frontier-based Bellman-Ford (vectorized CPU).

    Relaxes all out-edges of the active frontier each round until no
    distance changes.  With non-negative weights it always terminates within
    ``n - 1`` rounds; ``max_rounds`` is an optional safety valve for tests.
    """
    n = graph.num_vertices
    _check_source(n, source)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    row, adj, w = graph.row, graph.adj, graph.weights
    rounds = 0
    while frontier.size:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        counts = (row[frontier + 1] - row[frontier]).astype(np.int64)
        if counts.sum() == 0:
            break
        idx = np.repeat(row[frontier], counts) + segmented_arange(counts)
        v = adj[idx]
        nd = np.repeat(dist[frontier], counts) + w[idx]
        # scatter-min; then find which vertices actually improved
        before = dist[v]
        np.minimum.at(dist, v, nd)
        improved = dist[v] < before
        frontier = np.unique(v[improved])
    return SSSPResult(
        dist=dist,
        source=source,
        method="bellman-ford",
        graph_name=graph.name,
        num_edges=graph.num_edges,
        extra={"rounds": rounds},
    )


def _check_source(n: int, source: int) -> None:
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
