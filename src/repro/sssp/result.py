"""The result object every SSSP implementation returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..gpusim.counters import DeviceCounters
from ..metrics.recorder import TraceRecorder
from ..metrics.workstats import WorkTally

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.report import FaultReport

__all__ = ["SSSPResult"]


@dataclass
class SSSPResult:
    """Distances plus the measurements the paper's evaluation reports.

    Attributes
    ----------
    dist:
        shortest distance from the source to every vertex **in the
        original vertex id space** (implementations that reorder internally
        map back before returning); unreachable vertices hold ``inf``.
    source:
        the source vertex (original ids).
    method:
        implementation label (``"rdbs"``, ``"bl"``, ``"adds"``, ...).
    graph_name:
        label of the input graph.
    time_ms:
        simulated execution time in milliseconds (GPU methods: simulator
        clock; CPU methods: CPU cost model).  Preprocessing (PRO) is *not*
        included, matching the paper's methodology of reporting SSSP search
        time on a preprocessed graph.
    work:
        update/check tally (Fig. 9 metrics), when the implementation
        records it.
    counters:
        the simulated device's profiling counters (Fig. 10 metrics), for
        GPU methods.
    trace:
        per-bucket execution trace (Figs. 2–3), when recording was on.
    num_edges:
        edge count of the traversed graph, for GTEPS.
    extra:
        implementation-specific diagnostics (bucket count, iteration
        counts, final Δ, ...).
    faults:
        the :class:`~repro.faults.report.FaultReport` of a run executed
        under fault injection / the self-healing runtime; ``None`` for
        plain runs.
    """

    dist: np.ndarray
    source: int
    method: str
    graph_name: str = "graph"
    time_ms: float = 0.0
    work: WorkTally | None = None
    counters: DeviceCounters | None = None
    trace: TraceRecorder | None = None
    num_edges: int = 0
    extra: dict = field(default_factory=dict)
    faults: "FaultReport | None" = None

    @property
    def gteps(self) -> float:
        """Giga-traversed edges per second (graph edges / search time)."""
        if self.time_ms <= 0:
            return 0.0
        return self.num_edges / (self.time_ms * 1e-3) / 1e9

    @property
    def reached(self) -> int:
        """Number of vertices with a finite distance."""
        return int(np.isfinite(self.dist).sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SSSPResult(method={self.method!r}, graph={self.graph_name!r}, "
            f"source={self.source}, reached={self.reached}, "
            f"time_ms={self.time_ms:.4f})"
        )
