"""Multi-source batch evaluation — the paper's measurement methodology.

"We select 64 different starting vertices randomly.  For each starting
vertex, the SSSP search is launched 10 times to get the average
performance" (§5.1.3).  This module packages that protocol: draw sources
from the largest component, run a method over all of them, and aggregate
times/throughput/work statistics with the summary statistics a benchmark
report needs.  (The simulator is deterministic, so the 10-repetition inner
loop of the paper collapses to one run per source.)
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.properties import largest_component_vertices
from .api import sssp
from .result import SSSPResult
from .validate import validate_distances

__all__ = ["BatchResult", "run_batch", "draw_sources"]


def draw_sources(
    graph: CSRGraph, num_sources: int = 64, seed: int = 0
) -> list[int]:
    """Random distinct sources from the largest connected component."""
    comp = largest_component_vertices(graph)
    if comp.size == 0:
        raise ValueError("graph has no vertices")
    rng = np.random.default_rng(seed)
    take = min(num_sources, comp.size)
    return [int(v) for v in rng.choice(comp, size=take, replace=False)]


@dataclass
class BatchResult:
    """Aggregated measurements over a batch of sources."""

    graph_name: str
    method: str
    sources: list[int]
    results: list[SSSPResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def times_ms(self) -> list[float]:
        """Per-source simulated times."""
        return [r.time_ms for r in self.results]

    @property
    def mean_time_ms(self) -> float:
        """Arithmetic mean time (the paper's reported statistic)."""
        return statistics.fmean(self.times_ms)

    @property
    def stdev_time_ms(self) -> float:
        """Standard deviation of per-source times (0 for one source)."""
        t = self.times_ms
        return statistics.stdev(t) if len(t) > 1 else 0.0

    @property
    def min_time_ms(self) -> float:
        """Fastest source."""
        return min(self.times_ms)

    @property
    def max_time_ms(self) -> float:
        """Slowest source."""
        return max(self.times_ms)

    @property
    def mean_gteps(self) -> float:
        """Mean throughput."""
        return statistics.fmean(r.gteps for r in self.results)

    @property
    def mean_update_ratio(self) -> float:
        """Mean total/valid update ratio over sources."""
        ratios = [
            r.work.update_ratio
            for r in self.results
            if r.work is not None and np.isfinite(r.work.update_ratio)
        ]
        return statistics.fmean(ratios) if ratios else float("nan")

    def summary(self) -> dict[str, float]:
        """Plain-dict summary for table assembly."""
        return {
            "sources": len(self.sources),
            "mean_ms": self.mean_time_ms,
            "stdev_ms": self.stdev_time_ms,
            "min_ms": self.min_time_ms,
            "max_ms": self.max_time_ms,
            "gteps": self.mean_gteps,
            "update_ratio": self.mean_update_ratio,
        }


def run_batch(
    graph: CSRGraph,
    method: str = "rdbs",
    *,
    num_sources: int = 64,
    seed: int = 0,
    validate: bool = False,
    sources: list[int] | None = None,
    **kwargs,
) -> BatchResult:
    """Run ``method`` from many sources and aggregate (paper §5.1.3).

    ``validate=True`` checks every run against the SciPy oracle (slow for
    large batches — intended for tests).
    """
    if sources is None:
        sources = draw_sources(graph, num_sources, seed)
    batch = BatchResult(graph_name=graph.name, method=method, sources=sources)
    for s in sources:
        r = sssp(graph, s, method=method, **kwargs)
        if validate:
            validate_distances(graph, s, r.dist)
        batch.results.append(r)
    return batch
