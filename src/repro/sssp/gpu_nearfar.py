"""Near-Far Δ-stepping (Davidson et al., IPDPS'14) — the 2-bucket baseline.

The paper positions Near-Far as the historical middle ground: "It only uses
two buckets named Near and Far, and executes SSSP search in synchronous
mode, leading to work inefficiency."  The algorithm keeps a moving
threshold; relaxations whose result lands below the threshold go to the
*near* pile (processed now), the rest to the *far* pile (reconsidered after
the threshold advances by Δ).  Included as an additional baseline for the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..faults.plan import InjectedKernelAbort
from ..faults.runtime import make_runtime
from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, subset_assignment
from ..gpusim.kernels import grid_stride, thread_per_vertex_edges
from ..gpusim.spec import GPUSpec, V100
from ..metrics.workstats import WorkStats
from .errors import ConvergenceError
from .gpu_rdbs import default_delta
from .relax import DeviceGraph, relax_batch
from .result import SSSPResult

__all__ = ["nearfar_sssp"]

_SCAN_THREADS = 32 * 256


def nearfar_sssp(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    spec: GPUSpec = V100,
    max_iterations: int = 10_000_000,
    recovery=None,
) -> SSSPResult:
    """Run synchronous Near-Far on a simulated GPU."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if delta is None:
        delta = default_delta(graph)

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, source, 0.0)
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))
    runtime = make_runtime(recovery, device, dgraph, dist, source, "near-far")

    threshold = delta
    near = np.array([source], dtype=np.int64)
    far_mask = np.zeros(n, dtype=bool)
    settled_below = np.zeros(n, dtype=bool)
    iterations = 0

    while near.size or far_mask.any():
        if near.size == 0:
            # advance the threshold and split the far pile (one scan kernel)
            candidates = np.flatnonzero(far_mask)
            finite = candidates[np.isfinite(dist.data[candidates])]
            if finite.size == 0:
                break
            min_far = float(dist.data[finite].min())
            threshold = max(threshold + delta, min_far + delta)
            try:
                with device.launch("nearfar_split") as k:
                    a = grid_stride(candidates.size, _SCAN_THREADS)
                    dvals = k.gather(dist, candidates, a)
                    k.alu(a, ops=2)
            except InjectedKernelAbort as exc:
                if runtime is None:
                    raise
                near, far_mask = _nearfar_reseed(runtime, exc, far_mask)
                continue
            device.barrier()
            promote = candidates[dvals < threshold]
            far_mask[promote] = False
            near = promote
            continue

        iterations += 1
        if iterations > max_iterations:
            exc = ConvergenceError(
                "near-far iteration limit exceeded",
                method="near-far", iterations=iterations - 1,
                frontier=int(near.size), delta=delta,
            )
            if runtime is None:
                raise exc
            runtime.recover(exc)
            break  # the final repair sweeps restore the fixpoint
        if runtime is not None:
            runtime.epoch(int(near.size))
        settled_below[near] = True
        try:
            with device.launch("nearfar_relax") as k:
                batch = dgraph.batch(near, "all")
                a = thread_per_vertex_edges(batch.counts)
                out = relax_batch(k, dgraph, dist, near, batch, a, stats)
                if out.targets.size:
                    upd_targets = out.targets[out.updated]
                    # classify on the value the winning atomic wrote — the
                    # register-resident result, not an un-counted dist re-read
                    is_near = out.new_dist[out.updated] < threshold
                    sub = subset_assignment(a, out.updated)
                    k.branch(sub, is_near)
                else:
                    upd_targets = np.zeros(0, dtype=np.int64)
                    is_near = np.zeros(0, dtype=bool)
        except InjectedKernelAbort as exc:
            if runtime is None:
                raise
            near, far_mask = _nearfar_reseed(runtime, exc, far_mask)
            continue
        device.barrier()

        near_next = np.unique(upd_targets[is_near])
        far_new = np.unique(upd_targets[~is_near])
        far_mask[far_new] = True
        # a vertex pulled below the threshold leaves the far pile
        far_mask[near_next] = False
        near = near_next

    if runtime is not None:
        runtime.finish()

    return SSSPResult(
        dist=dist.data.copy(),
        source=source,
        method="near-far",
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=stats.finalize(dist.data),
        counters=device.counters,
        num_edges=graph.num_edges,
        extra={
            "timeline": device.timeline,
            "iterations": iterations, "delta": delta},
        faults=runtime.report if runtime is not None else None,
    )


def _nearfar_reseed(runtime, exc, far_mask):
    """Roll back after an aborted kernel and rebuild the worklist.

    Every finite vertex of the restored checkpoint goes to the far pile;
    the next threshold advance re-promotes whatever still needs work.
    Re-relaxing already-settled vertices costs extra work but cannot
    change a correct distance.
    """
    fin = runtime.on_abort(exc)
    far_mask[:] = False
    far_mask[fin] = True
    return np.zeros(0, dtype=np.int64), far_mask
