"""Near-Far Δ-stepping (Davidson et al., IPDPS'14) — the 2-bucket baseline.

The paper positions Near-Far as the historical middle ground: "It only uses
two buckets named Near and Far, and executes SSSP search in synchronous
mode, leading to work inefficiency."  The algorithm keeps a moving
threshold; relaxations whose result lands below the threshold go to the
*near* pile (processed now), the rest to the *far* pile (reconsidered after
the threshold advances by Δ).  Included as an additional baseline for the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..faults.plan import InjectedKernelAbort
from ..faults.runtime import make_runtime
from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, subset_assignment
from ..gpusim.kernels import grid_stride, thread_per_vertex_edges
from ..gpusim.multisplit import multisplit_enabled
from ..gpusim.spec import GPUSpec, V100
from ..metrics.workstats import WorkStats
from .errors import ConvergenceError
from .gpu_rdbs import default_delta
from .relax import DeviceGraph, relax_batch
from .result import SSSPResult

__all__ = ["nearfar_sssp"]

_SCAN_THREADS = 32 * 256


def nearfar_sssp(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    spec: GPUSpec = V100,
    max_iterations: int = 10_000_000,
    recovery=None,
) -> SSSPResult:
    """Run synchronous Near-Far on a simulated GPU."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if delta is None:
        delta = default_delta(graph)

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, source, 0.0)
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))
    runtime = make_runtime(recovery, device, dgraph, dist, source, "near-far")

    threshold = delta
    near = np.array([source], dtype=np.int64)
    far_mask = np.zeros(n, dtype=bool)
    # windowed far pile (multisplit placement): the host mirrors each far
    # vertex's latest inserted distance — exactly the register-resident
    # value the winning atomic wrote, so ``far_val[v] == dist[v]`` for
    # every far member — and buckets it on the absolute Δ-grid.  Threshold
    # advances then promote every full window below the grid cell holding
    # the threshold wholesale; only the straddling boundary window needs
    # the counted gather-and-ballot split.
    far_val = np.full(n, np.inf) if multisplit_enabled() else None
    settled_below = np.zeros(n, dtype=bool)
    iterations = 0

    while near.size or far_mask.any():
        if near.size == 0:
            # advance the threshold and split the far pile (one scan kernel)
            candidates = np.flatnonzero(far_mask)
            finite = candidates[np.isfinite(dist.data[candidates])]
            if finite.size == 0:
                break
            min_far = float(dist.data[finite].min())
            threshold = max(threshold + delta, min_far + delta)
            if far_val is not None:
                vals = far_val[candidates]
                # grid cell holding the threshold, clamped so float
                # rounding can never misplace the promote boundary
                grid_lo = min(float(np.floor(threshold / delta) * delta),
                              threshold)
                grid_hi = max(grid_lo + delta, threshold)
                full = candidates[vals < grid_lo]
                boundary = candidates[(vals >= grid_lo) & (vals < grid_hi)]
                promote_b = np.zeros(0, dtype=np.int64)
                if boundary.size:
                    try:
                        with device.launch("nearfar_split") as k:
                            a = grid_stride(boundary.size, _SCAN_THREADS)
                            dvals = k.gather(dist, boundary, a)
                            keys = (dvals >= threshold).astype(np.int64)
                            order, offs = k.multisplit(keys, 2, a)
                            promote_b = boundary[order[: offs[1]]]
                    except InjectedKernelAbort as exc:
                        if runtime is None:
                            raise
                        near, far_mask = _nearfar_reseed(
                            runtime, exc, far_mask, far_val, dist)
                        continue
                    device.barrier()
                promote = np.union1d(full, promote_b)
                far_val[promote] = np.inf
            else:
                try:
                    with device.launch("nearfar_split") as k:
                        a = grid_stride(candidates.size, _SCAN_THREADS)
                        dvals = k.gather(dist, candidates, a)
                        k.alu(a, ops=2)
                except InjectedKernelAbort as exc:
                    if runtime is None:
                        raise
                    near, far_mask = _nearfar_reseed(runtime, exc, far_mask)
                    continue
                device.barrier()
                promote = candidates[dvals < threshold]
            far_mask[promote] = False
            near = promote
            continue

        iterations += 1
        if iterations > max_iterations:
            exc = ConvergenceError(
                "near-far iteration limit exceeded",
                method="near-far", iterations=iterations - 1,
                frontier=int(near.size), delta=delta,
            )
            if runtime is None:
                raise exc
            runtime.recover(exc)
            break  # the final repair sweeps restore the fixpoint
        if runtime is not None:
            runtime.epoch(int(near.size))
        settled_below[near] = True
        try:
            with device.launch("nearfar_relax") as k:
                batch = dgraph.batch(near, "all")
                a = thread_per_vertex_edges(batch.counts)
                out = relax_batch(k, dgraph, dist, near, batch, a, stats)
                if out.targets.size:
                    upd_targets = out.targets[out.updated]
                    # classify on the value the winning atomic wrote — the
                    # register-resident result, not an un-counted dist re-read
                    new_vals = out.new_dist[out.updated]
                    is_near = new_vals < threshold
                    sub = subset_assignment(a, out.updated)
                    if far_val is not None:
                        # one ballot round partitions near/far; stable
                        # bucket order keeps the updated-target order, so
                        # the halves equal the boolean-mask splits
                        order, offs = k.multisplit(
                            (~is_near).astype(np.int64), 2, sub)
                        near_hits = upd_targets[order[: offs[1]]]
                        far_hits = upd_targets[order[offs[1]:]]
                        far_hit_vals = new_vals[order[offs[1]:]]
                    else:
                        k.branch(sub, is_near)
                        near_hits = upd_targets[is_near]
                        far_hits = upd_targets[~is_near]
                        far_hit_vals = new_vals[~is_near]
                else:
                    near_hits = np.zeros(0, dtype=np.int64)
                    far_hits = np.zeros(0, dtype=np.int64)
                    far_hit_vals = np.zeros(0)
        except InjectedKernelAbort as exc:
            if runtime is None:
                raise
            near, far_mask = _nearfar_reseed(
                runtime, exc, far_mask, far_val, dist)
            continue
        device.barrier()

        near_next = np.unique(near_hits)
        far_new = np.unique(far_hits)
        far_mask[far_new] = True
        # a vertex pulled below the threshold leaves the far pile
        far_mask[near_next] = False
        if far_val is not None:
            # duplicate targets take the per-target minimum — the value
            # the cell holds after the round's atomics
            np.minimum.at(far_val, far_hits, far_hit_vals)
            far_val[near_next] = np.inf
        near = near_next

    if runtime is not None:
        runtime.finish()

    return SSSPResult(
        dist=dist.data.copy(),
        source=source,
        method="near-far",
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=stats.finalize(dist.data),
        counters=device.counters,
        num_edges=graph.num_edges,
        extra={
            "timeline": device.timeline,
            "iterations": iterations, "delta": delta},
        faults=runtime.report if runtime is not None else None,
    )


def _nearfar_reseed(runtime, exc, far_mask, far_val=None, dist=None):
    """Roll back after an aborted kernel and rebuild the worklist.

    Every finite vertex of the restored checkpoint goes to the far pile;
    the next threshold advance re-promotes whatever still needs work.
    Re-relaxing already-settled vertices costs extra work but cannot
    change a correct distance.  With the windowed far pile the value
    mirror is rebuilt from the restored checkpoint's distances.
    """
    fin = runtime.on_abort(exc)
    far_mask[:] = False
    far_mask[fin] = True
    if far_val is not None:
        far_val[:] = np.inf
        far_val[fin] = dist.data[fin]
    return np.zeros(0, dtype=np.int64), far_mask
