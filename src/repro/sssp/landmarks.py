"""Landmark (ALT) distance oracles built on batched SSSP.

A downstream application of the library's API, of the kind the paper's
introduction motivates (road layout management, network routing): many
point-to-point distance queries over one graph.  The classic ALT scheme
preprocesses SSSP from ``k`` landmark vertices; by the triangle inequality
every landmark ``L`` yields

    |dist(L, u) - dist(L, v)|  <=  dist(u, v)  <=  dist(u, L) + dist(L, v)

so the oracle answers lower/upper bounds in O(k) per query with no graph
traversal.  Landmarks are chosen by farthest-point sampling (each new
landmark maximizes its distance to the previous ones), the standard
high-quality heuristic.

Works on undirected graphs (the paper's evaluation setting): the bounds
above assume symmetric distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.properties import largest_component_vertices
from .api import sssp

__all__ = ["LandmarkOracle", "build_landmark_oracle", "select_landmarks"]


def select_landmarks(
    graph: CSRGraph,
    k: int,
    *,
    method: str = "rdbs",
    seed: int = 0,
    results: list | None = None,
    **kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Farthest-point landmark selection.

    Returns ``(landmarks, dist_matrix)`` where ``dist_matrix[i]`` is the
    distance vector of landmark ``i`` (so selection's SSSP runs are reused
    by the oracle).  The first landmark is a random vertex of the largest
    component; each next one is the reachable vertex farthest from all
    chosen landmarks.

    Pass a list as ``results`` to also collect the per-landmark
    :class:`~repro.sssp.result.SSSPResult` objects — the serving layer
    accounts the oracle's preprocessing cost from their simulated times.
    """
    if k < 1:
        raise ValueError("need at least one landmark")
    comp = largest_component_vertices(graph)
    if comp.size == 0:
        raise ValueError("graph has no vertices")
    rng = np.random.default_rng(seed)
    first = int(rng.choice(comp))

    def run(vertex: int) -> np.ndarray:
        r = sssp(graph, vertex, method=method, **kwargs)
        if results is not None:
            results.append(r)
        return r.dist

    landmarks: list[int] = [first]
    vectors: list[np.ndarray] = [run(first)]
    min_dist = vectors[0].copy()  # distance to the nearest landmark

    while len(landmarks) < min(k, comp.size):
        candidates = np.where(np.isfinite(min_dist), min_dist, -1.0)
        nxt = int(np.argmax(candidates))
        if candidates[nxt] <= 0:
            break  # every reachable vertex is itself a landmark already
        landmarks.append(nxt)
        vec = run(nxt)
        vectors.append(vec)
        min_dist = np.minimum(min_dist, vec)

    return np.asarray(landmarks, dtype=np.int64), np.vstack(vectors)


@dataclass(frozen=True)
class LandmarkOracle:
    """O(k)-per-query distance bounds from precomputed landmark vectors."""

    landmarks: np.ndarray
    #: shape (k, n): dist_matrix[i, v] = dist(landmarks[i], v)
    dist_matrix: np.ndarray

    @property
    def num_landmarks(self) -> int:
        """Number of landmarks ``k``."""
        return int(self.landmarks.size)

    def lower_bound(self, u: int, v: int) -> float:
        """ALT lower bound ``max_L |d(L,u) − d(L,v)|`` (0 if uninformative)."""
        du = self.dist_matrix[:, u]
        dv = self.dist_matrix[:, v]
        both = np.isfinite(du) & np.isfinite(dv)
        if not both.any():
            return 0.0
        return float(np.abs(du[both] - dv[both]).max())

    def upper_bound(self, u: int, v: int) -> float:
        """Triangle upper bound ``min_L d(u,L) + d(L,v)`` (inf if none)."""
        total = self.dist_matrix[:, u] + self.dist_matrix[:, v]
        finite = total[np.isfinite(total)]
        return float(finite.min()) if finite.size else float("inf")

    def bounds(self, u: int, v: int) -> tuple[float, float]:
        """``(lower, upper)`` for one query."""
        return self.lower_bound(u, v), self.upper_bound(u, v)

    def bound_many(
        self, us: np.ndarray, vs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized bounds for parallel query arrays."""
        du = self.dist_matrix[:, us]  # (k, q)
        dv = self.dist_matrix[:, vs]
        diff = np.abs(du - dv)
        diff[~(np.isfinite(du) & np.isfinite(dv))] = 0.0
        lower = diff.max(axis=0)
        total = du + dv
        total[~np.isfinite(total)] = np.inf
        upper = total.min(axis=0)
        return lower, upper

    def mean_gap(self, exact: np.ndarray, sample: np.ndarray) -> float:
        """Mean relative slack of the lower bound on sampled targets.

        Quality diagnostic: 0 means the bound is exact on the sample.
        """
        source = int(sample[0])
        lbs = np.array([self.lower_bound(source, int(v)) for v in sample[1:]])
        ex = exact[sample[1:]]
        good = np.isfinite(ex) & (ex > 0)
        if not good.any():
            return 0.0
        return float(np.mean(1.0 - lbs[good] / ex[good]))


def build_landmark_oracle(
    graph: CSRGraph, k: int = 8, *, method: str = "rdbs", seed: int = 0, **kwargs
) -> LandmarkOracle:
    """Select landmarks and assemble the query oracle."""
    landmarks, matrix = select_landmarks(
        graph, k, method=method, seed=seed, **kwargs
    )
    return LandmarkOracle(landmarks=landmarks, dist_matrix=matrix)
