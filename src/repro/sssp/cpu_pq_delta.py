"""PQ-Δ*: the CPU competitor (Dong et al., SPAA'21) with a multicore cost model.

The paper's CPU baseline is the MIT stepping-algorithm framework's
Δ*-stepping over a *lazy-batched priority queue* (LAB-PQ): extract the batch
of vertices within Δ of the current minimum, relax their edges in parallel,
lazily insert/decrease keys, repeat.  "We run PQ-Δ* using our host X86
server, 26 cores (1 CPU), 52 threads in total."

The algorithm below is a faithful Δ*-stepping implementation (batch
extraction by distance window, lazy updates, light/heavy handled uniformly
as in Δ*); since no 26-core Xeon is available here, its runtime comes from
an explicit multicore cost model (:class:`CPUSpec`): per-batch fork/join
overhead plus relaxation throughput scaled by core count and parallel
efficiency.  The model's constants are datasheet-grade (memory-bound edge
relaxation throughput), not fitted to the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..metrics.workstats import WorkStats
from ..util.scan import segmented_arange, serialized_min_outcome
from .errors import ConvergenceError
from .gpu_rdbs import default_delta
from .result import SSSPResult

__all__ = ["CPUSpec", "XEON_8269CY", "pq_delta_star_sssp"]


@dataclass(frozen=True)
class CPUSpec:
    """Multicore CPU cost model parameters."""

    name: str
    cores: int
    threads: int
    #: single-thread edge-relaxation latency (seconds/edge); dominated by
    #: the random dist[] access — a DRAM-latency-class constant
    per_edge_s: float
    #: per-vertex batch-management cost (queue ops), seconds/vertex
    per_vertex_s: float
    #: fork/join overhead per parallel batch, seconds
    batch_overhead_s: float
    #: fraction of linear speedup the memory system sustains
    parallel_efficiency: float

    def batch_time(self, edges: int, vertices: int) -> float:
        """Modeled wall time of one parallel relaxation batch."""
        work = edges * self.per_edge_s + vertices * self.per_vertex_s
        speedup = max(1.0, self.cores * self.parallel_efficiency)
        return self.batch_overhead_s + work / speedup


#: the paper's host CPU: Intel Xeon Platinum 8269CY, 26 cores / 52 threads
XEON_8269CY = CPUSpec(
    name="Xeon-8269CY",
    cores=26,
    threads=52,
    per_edge_s=55e-9,
    per_vertex_s=20e-9,
    batch_overhead_s=3e-6,
    parallel_efficiency=0.55,
)


def pq_delta_star_sssp(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    cpu: CPUSpec = XEON_8269CY,
    max_batches: int = 10_000_000,
) -> SSSPResult:
    """Run Δ*-stepping over a lazy-batched priority queue (CPU model).

    Δ*-stepping (Dong et al.) extracts *all* vertices within Δ of the
    current queue minimum as one batch and relaxes **all** their out-edges
    (no light/heavy split — that is the Δ* variant), with lazy deletions:
    a vertex extracted with a stale distance is skipped.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if delta is None:
        delta = default_delta(graph)

    row, adj, w = graph.row, graph.adj, graph.weights
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))

    settled = np.zeros(n, dtype=bool)
    time_s = 0.0
    batches = 0

    while True:
        pending = np.isfinite(dist) & ~settled
        if not pending.any():
            break
        lo = float(dist[pending].min())
        hi = lo + delta
        batch = np.flatnonzero(pending & (dist < hi))
        batches += 1
        if batches > max_batches:
            raise ConvergenceError(
                "batch limit exceeded",
                method="pq-delta*", iterations=batches - 1,
                frontier=int(batch.size), delta=delta,
            )
        settled[batch] = True

        counts = (row[batch + 1] - row[batch]).astype(np.int64)
        idx = np.repeat(row[batch], counts) + segmented_arange(counts)
        targets = adj[idx]
        nd = np.repeat(dist[batch], counts) + w[idx]
        _old, updated = serialized_min_outcome(dist, targets, nd)
        stats.record(targets, nd, updated)
        # lazy decrease-key: any vertex whose distance improved re-enters
        # the queue (its edges must be relaxed again with the fresh value);
        # distances strictly decrease, so this terminates
        reopened = np.unique(targets[updated])
        settled[reopened] = False

        time_s += cpu.batch_time(int(idx.size), int(batch.size))

    return SSSPResult(
        dist=dist,
        source=source,
        method="pq-delta*",
        graph_name=graph.name,
        time_ms=time_s * 1e3,
        work=stats.finalize(dist),
        num_edges=graph.num_edges,
        extra={"batches": batches, "delta": delta, "cpu": cpu.name},
    )
