"""Harish–Narayanan (HiPC 2007): the original topology-driven GPU SSSP.

The first GPU SSSP the paper's related work cites: "Initially, Harish and
Narayanan implement the SSSP algorithm on GPU using the CUDA model.  It
takes advantage of the parallel resources of GPU.  Based on synchronous
push mode, the work efficiency and memory efficiency of this work are
poor" (§1).

The design is *topology-driven*: there is no frontier queue at all — every
iteration launches a thread for **every vertex**, each checks a per-vertex
mask, relaxes its out-edges if marked, and marks its updated neighbours;
iterate until no mask is set.  Memory-inefficient (the whole mask and
distance array are re-read every iteration) and divergence-heavy (most
threads find their mask unset and idle), which is exactly why the
frontier-based BL baseline superseded it.  Included as the historical
datum for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, subset_assignment
from ..gpusim.kernels import thread_per_item, thread_per_vertex_edges
from ..gpusim.spec import GPUSpec, V100
from ..metrics.workstats import WorkStats
from .relax import DeviceGraph, relax_batch
from .result import SSSPResult

__all__ = ["harish_narayanan_sssp"]


def harish_narayanan_sssp(
    graph: CSRGraph,
    source: int,
    *,
    spec: GPUSpec = V100,
    max_iterations: int | None = None,
) -> SSSPResult:
    """Run the topology-driven 2007 baseline on a simulated GPU."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, source, 0.0)
    mask = device.zeros(n, dtype=np.int8, name="mask")
    device.host_store(mask, source, np.int8(1))
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))

    all_vertices = np.arange(n, dtype=np.int64)
    iterations = 0
    while True:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            break
        active = np.flatnonzero(mask.data)
        if active.size == 0:
            break
        with device.launch("hn_relax") as k:
            # every vertex gets a thread and reads its mask (the
            # topology-driven overhead: n loads per iteration)
            a_all = thread_per_item(n)
            flags = k.gather(mask, all_vertices, a_all)
            k.branch(a_all, flags != 0)
            # marked vertices clear their mask and relax all out-edges
            sub = subset_assignment(a_all, flags != 0)
            k.scatter(mask, active, np.zeros(active.size, dtype=np.int8), sub)
            batch = dgraph.batch(active, "all")
            a = thread_per_vertex_edges(batch.counts)
            targets, updated = relax_batch(
                k, dgraph, dist, active, batch, a, stats
            )
            if targets.size and updated.any():
                # the original uses two kernels (relax into an updating-cost
                # array, then commit) precisely because re-marking races the
                # mask clear above; model that split with a device-wide sync
                k.device_barrier()
                sub_u = subset_assignment(a, updated)
                k.scatter(
                    mask,
                    targets[updated],
                    np.ones(int(updated.sum()), dtype=np.int8),
                    sub_u,
                )
        device.barrier()

    return SSSPResult(
        dist=dist.data.copy(),
        source=source,
        method="harish-narayanan",
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=stats.finalize(dist.data),
        counters=device.counters,
        num_edges=graph.num_edges,
        extra={"timeline": device.timeline, "iterations": iterations},
    )
