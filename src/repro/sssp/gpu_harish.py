"""Harish–Narayanan (HiPC 2007): the original topology-driven GPU SSSP.

The first GPU SSSP the paper's related work cites: "Initially, Harish and
Narayanan implement the SSSP algorithm on GPU using the CUDA model.  It
takes advantage of the parallel resources of GPU.  Based on synchronous
push mode, the work efficiency and memory efficiency of this work are
poor" (§1).

The design is *topology-driven*: there is no frontier queue at all — every
iteration launches a thread for **every vertex**, each checks a per-vertex
mask, relaxes its out-edges if marked, and marks its updated neighbours;
iterate until no mask is set.  Memory-inefficient (the whole mask and
distance array are re-read every iteration) and divergence-heavy (most
threads find their mask unset and idle), which is exactly why the
frontier-based BL baseline superseded it.  Included as the historical
datum for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..faults.plan import InjectedKernelAbort
from ..faults.runtime import make_runtime
from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, subset_assignment
from ..gpusim.kernels import thread_per_item, thread_per_vertex_edges
from ..gpusim.spec import GPUSpec, V100
from ..metrics.workstats import WorkStats
from .errors import ConvergenceError
from .relax import DeviceGraph, relax_batch
from .result import SSSPResult

__all__ = ["harish_narayanan_sssp"]


def harish_narayanan_sssp(
    graph: CSRGraph,
    source: int,
    *,
    spec: GPUSpec = V100,
    max_iterations: int | None = None,
    recovery=None,
) -> SSSPResult:
    """Run the topology-driven 2007 baseline on a simulated GPU.

    As for :func:`~repro.sssp.gpu_baseline.bl_sssp`, the default
    ``max_iterations=None`` applies a finite ``n + 2`` safety bound that
    raises :class:`~repro.sssp.errors.ConvergenceError` when tripped, while
    an explicit bound keeps the historical truncate-and-return semantics.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, source, 0.0)
    mask = device.zeros(n, dtype=np.int8, name="mask")
    device.host_store(mask, source, np.int8(1))
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))
    runtime = make_runtime(
        recovery, device, dgraph, dist, source, "harish-narayanan"
    )
    default_bound = max_iterations is None
    limit = (n + 2) if default_bound else max_iterations

    all_vertices = np.arange(n, dtype=np.int64)
    iterations = 0
    while True:
        iterations += 1
        if iterations > limit:
            if not default_bound:
                break  # caller-requested truncation: partial result
            exc = ConvergenceError(
                "iteration limit exceeded",
                method="harish-narayanan", iterations=iterations - 1,
                frontier=int(mask.data.sum()),
            )
            if runtime is None:
                raise exc
            runtime.recover(exc)
            break  # the final repair sweeps restore the fixpoint
        active = np.flatnonzero(mask.data)
        if active.size == 0:
            break
        if runtime is not None:
            runtime.epoch(int(active.size))
        try:
            with device.launch("hn_relax") as k:
                # every vertex gets a thread and reads its mask (the
                # topology-driven overhead: n loads per iteration)
                a_all = thread_per_item(n)
                flags = k.gather(mask, all_vertices, a_all)
                k.branch(a_all, flags != 0)
                # marked vertices clear their mask and relax all out-edges
                sub = subset_assignment(a_all, flags != 0)
                k.scatter(
                    mask, active, np.zeros(active.size, dtype=np.int8), sub
                )
                batch = dgraph.batch(active, "all")
                a = thread_per_vertex_edges(batch.counts)
                targets, updated = relax_batch(
                    k, dgraph, dist, active, batch, a, stats
                )
                if targets.size and updated.any():
                    # the original uses two kernels (relax into an
                    # updating-cost array, then commit) precisely because
                    # re-marking races the mask clear above; model that
                    # split with a device-wide sync
                    k.device_barrier()
                    sub_u = subset_assignment(a, updated)
                    k.scatter(
                        mask,
                        targets[updated],
                        np.ones(int(updated.sum()), dtype=np.int8),
                        sub_u,
                    )
        except InjectedKernelAbort as exc:
            if runtime is None:
                raise
            # the mask array is not checkpointed; conservatively re-mark
            # every finite vertex so no relaxation is lost
            fin = runtime.on_abort(exc)
            device.host_store(
                mask, all_vertices, np.zeros(n, dtype=np.int8)
            )
            device.host_store(mask, fin, np.ones(fin.size, dtype=np.int8))
            continue
        device.barrier()

    if runtime is not None:
        runtime.finish()

    return SSSPResult(
        dist=dist.data.copy(),
        source=source,
        method="harish-narayanan",
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=stats.finalize(dist.data),
        counters=device.counters,
        num_edges=graph.num_edges,
        extra={"timeline": device.timeline, "iterations": iterations},
        faults=runtime.report if runtime is not None else None,
    )
