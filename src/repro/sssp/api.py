"""The single-call front door: ``sssp(graph, source, method=...)``.

Dispatches to every implementation in the library under one signature so
examples, tests and benchmarks can sweep methods uniformly.
"""

from __future__ import annotations

from collections.abc import Callable

from ..graphs.csr import CSRGraph
from .cpu_pq_delta import pq_delta_star_sssp
from .delta_cpu import delta_stepping_cpu
from .gpu_adds import adds_sssp
from .gpu_baseline import bl_sssp
from .gpu_harish import harish_narayanan_sssp
from .gpu_mlmq import mlmq_sssp
from .gpu_nearfar import nearfar_sssp
from .gpu_rdbs import rdbs_sssp
from .reference import bellman_ford, dijkstra
from .rho_stepping import rho_stepping_sssp
from .result import SSSPResult

__all__ = ["sssp", "METHODS", "GPU_METHODS", "method_names"]


def _rdbs_arm(pro: bool, adwl: bool, basyn: bool) -> Callable[..., SSSPResult]:
    def run(graph: CSRGraph, source: int, **kw) -> SSSPResult:
        return rdbs_sssp(graph, source, pro=pro, adwl=adwl, basyn=basyn, **kw)

    return run


#: CPU references and competitors
_CPU_METHODS: dict[str, Callable[..., SSSPResult]] = {
    # references (exact)
    "dijkstra": lambda g, s, **kw: dijkstra(g, s),
    "bellman-ford": lambda g, s, **kw: bellman_ford(g, s),
    # competitors
    "delta-cpu": delta_stepping_cpu,
    "pq-delta*": pq_delta_star_sssp,
    "rho-stepping": rho_stepping_sssp,
}

#: simulated-GPU engines (run on :class:`~repro.gpusim.GPUDevice` and
#: return profiling counters); this dict is the single source of truth
#: for "is this a GPU method" — the bench harness, the CLI and the fault
#: driver all derive their membership sets from it
_GPU_METHODS: dict[str, Callable[..., SSSPResult]] = {
    # baselines
    "harish-narayanan": harish_narayanan_sssp,
    "bl": bl_sssp,
    "near-far": nearfar_sssp,
    "adds": adds_sssp,
    # the paper's algorithm and its ablation arms (Fig. 8)
    "rdbs": rdbs_sssp,
    "basyn": _rdbs_arm(pro=False, adwl=False, basyn=True),
    "basyn+pro": _rdbs_arm(pro=True, adwl=False, basyn=True),
    "basyn+adwl": _rdbs_arm(pro=False, adwl=True, basyn=True),
    "basyn+pro+adwl": _rdbs_arm(pro=True, adwl=True, basyn=True),
    "sync-delta": _rdbs_arm(pro=False, adwl=False, basyn=False),
    # the multi-level-multi-queue successor (ROADMAP item 1)
    "mlmq": mlmq_sssp,
}

#: registry of every runnable method
METHODS: dict[str, Callable[..., SSSPResult]] = {
    **_CPU_METHODS,
    **_GPU_METHODS,
}

#: names of the simulated-GPU engines, derived from the registry
GPU_METHODS: frozenset[str] = frozenset(_GPU_METHODS)


def method_names() -> list[str]:
    """All registered method names."""
    return list(METHODS)


def sssp(graph: CSRGraph, source: int, method: str = "rdbs", **kwargs) -> SSSPResult:
    """Solve single-source shortest paths with the chosen implementation.

    Parameters
    ----------
    graph:
        a :class:`~repro.graphs.csr.CSRGraph` (weights must be
        non-negative).
    source:
        source vertex id (in the graph's current id space).
    method:
        one of :func:`method_names`; defaults to the paper's RDBS.
    **kwargs:
        forwarded to the implementation (``delta=``, ``spec=``,
        ``record_trace=``, ...).

    Returns
    -------
    SSSPResult
        distances (original id space), simulated time, work tally and —
        for GPU methods — profiling counters.
    """
    try:
        fn = METHODS[method]
    except KeyError:
        known = ", ".join(METHODS)
        raise ValueError(f"unknown method {method!r}; known: {known}") from None
    return fn(graph, source, **kwargs)
