"""ρ-stepping (Dong et al., SPAA'21) — the adaptive CPU stepping variant.

The paper's related work (§6.1) cites the MIT stepping framework, which
generalizes Δ-stepping: instead of a fixed distance window, **ρ-stepping**
extracts the ``ρ`` smallest tentative distances per step (a rank-based
window), so the batch size — and therefore the parallelism/work-efficiency
trade-off — is controlled directly rather than through the weight-dependent
Δ.  Implemented here as an additional CPU baseline on the same lazy-batched
priority-queue semantics and CPU cost model as PQ-Δ*, completing the
framework's algorithm family (Bellman-Ford = ρ→∞, Dijkstra = ρ=1).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..metrics.workstats import WorkStats
from ..util.scan import segmented_arange, serialized_min_outcome
from .cpu_pq_delta import CPUSpec, XEON_8269CY
from .result import SSSPResult

__all__ = ["rho_stepping_sssp", "default_rho"]


def default_rho(graph: CSRGraph) -> int:
    """The framework's guidance: batch about 2·sqrt(n·avg_deg) vertices.

    Keeps every core busy on mid-size graphs without flooding the queue
    with far-from-final vertices.
    """
    n = max(graph.num_vertices, 1)
    return max(32, int(2 * np.sqrt(n * max(graph.average_degree, 1.0))))


def rho_stepping_sssp(
    graph: CSRGraph,
    source: int,
    *,
    rho: int | None = None,
    cpu: CPUSpec = XEON_8269CY,
    max_batches: int = 10_000_000,
) -> SSSPResult:
    """Run ρ-stepping with lazy batched extraction (CPU cost model)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if rho is None:
        rho = default_rho(graph)
    if rho < 1:
        raise ValueError("rho must be >= 1")

    row, adj, w = graph.row, graph.adj, graph.weights
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))

    settled = np.zeros(n, dtype=bool)
    time_s = 0.0
    batches = 0

    while True:
        pending = np.flatnonzero(np.isfinite(dist) & ~settled)
        if pending.size == 0:
            break
        batches += 1
        if batches > max_batches:
            raise RuntimeError("batch limit exceeded")
        # rank-based window: the rho smallest tentative distances
        if pending.size > rho:
            order = np.argpartition(dist[pending], rho - 1)[:rho]
            batch = pending[order]
        else:
            batch = pending
        settled[batch] = True

        counts = (row[batch + 1] - row[batch]).astype(np.int64)
        idx = np.repeat(row[batch], counts) + segmented_arange(counts)
        targets = adj[idx]
        nd = np.repeat(dist[batch], counts) + w[idx]
        _old, updated = serialized_min_outcome(dist, targets, nd)
        stats.record(targets, nd, updated)
        reopened = np.unique(targets[updated])
        settled[reopened] = False

        time_s += cpu.batch_time(int(idx.size), int(batch.size))

    return SSSPResult(
        dist=dist,
        source=source,
        method="rho-stepping",
        graph_name=graph.name,
        time_ms=time_s * 1e3,
        work=stats.finalize(dist),
        num_edges=graph.num_edges,
        extra={"batches": batches, "rho": rho, "cpu": cpu.name},
    )
