"""SSSP algorithms: the paper's RDBS plus every baseline it compares against."""

from .api import GPU_METHODS, METHODS, method_names, sssp
from .batch import BatchResult, draw_sources, run_batch
from .paths import (
    ShortestPathTree,
    build_parents,
    extract_path,
    shortest_path_tree,
    validate_path,
)
from .rho_stepping import default_rho, rho_stepping_sssp
from .buckets import BucketInterval, DeltaController, bucket_of
from .cpu_pq_delta import CPUSpec, XEON_8269CY, pq_delta_star_sssp
from .delta_cpu import delta_stepping_cpu
from .errors import ConvergenceError
from .gpu_adds import adds_sssp
from .gpu_baseline import bl_sssp
from .gpu_harish import harish_narayanan_sssp
from .gpu_mlmq import mlmq_sssp
from .gpu_nearfar import nearfar_sssp
from .gpu_rdbs import default_delta, rdbs_sssp
from .landmarks import LandmarkOracle, build_landmark_oracle, select_landmarks
from .reference import bellman_ford, dijkstra
from .result import SSSPResult
from .validate import DistanceMismatch, scipy_distances, validate_distances

__all__ = [
    "sssp",
    "METHODS",
    "GPU_METHODS",
    "method_names",
    "mlmq_sssp",
    "SSSPResult",
    "rdbs_sssp",
    "default_delta",
    "bl_sssp",
    "harish_narayanan_sssp",
    "nearfar_sssp",
    "adds_sssp",
    "delta_stepping_cpu",
    "pq_delta_star_sssp",
    "CPUSpec",
    "XEON_8269CY",
    "dijkstra",
    "bellman_ford",
    "DeltaController",
    "BucketInterval",
    "bucket_of",
    "validate_distances",
    "scipy_distances",
    "DistanceMismatch",
    "ConvergenceError",
    "rho_stepping_sssp",
    "default_rho",
    "run_batch",
    "draw_sources",
    "BatchResult",
    "shortest_path_tree",
    "ShortestPathTree",
    "build_parents",
    "extract_path",
    "validate_path",
    "LandmarkOracle",
    "build_landmark_oracle",
    "select_landmarks",
]
