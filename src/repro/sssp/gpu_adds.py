"""ADDS-like asynchronous Δ-stepping baseline (Wang et al., PPoPP'21).

ADDS ("A fast work-efficient SSSP algorithm for GPUs") is the paper's
strongest GPU competitor.  Its published design: asynchronous execution
over a near set and a far pile, Δ adjusted dynamically from runtime
feedback, thread-per-vertex work mapping, and *no* graph reordering — so it
is work-efficient but suffers the irregular memory access and load
imbalance the paper's PRO/ADWL attack ("Wang uses an asynchronous mode and
changes Δ, which … ignores irregular memory access problems").

This is a re-implementation of that design on the same simulated device as
RDBS so the Fig. 9/10 comparisons are like-for-like.  Differences from the
closed-source original are unavoidable; what is preserved (async execution,
work-efficient near/far batching, dynamic Δ, vertex-centric mapping on the
unsorted CSR) is exactly the behaviour the paper's comparison attributes to
ADDS.
"""

from __future__ import annotations

import numpy as np

from ..faults.plan import InjectedKernelAbort
from ..faults.runtime import make_runtime
from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, subset_assignment
from ..gpusim.kernels import grid_stride, thread_per_item, thread_per_vertex_edges
from ..gpusim.multisplit import multisplit_enabled
from ..gpusim.spec import GPUSpec, V100
from ..metrics.workstats import WorkStats
from ..util.scan import sorted_unique_ints
from .errors import ConvergenceError
from .gpu_rdbs import default_delta
from .relax import DeviceGraph, relax_batch
from .result import SSSPResult

__all__ = ["adds_sssp"]

_SCAN_THREADS = 32 * 256
#: near-set vertices processed per asynchronous micro-round
_CHUNK = 2048


def adds_sssp(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    spec: GPUSpec = V100,
    max_steps: int = 10_000_000,
    recovery=None,
) -> SSSPResult:
    """Run the ADDS-like asynchronous baseline on a simulated GPU."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if delta is None:
        delta = default_delta(graph)

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    dist = device.full(n, np.inf, name="dist")
    device.host_store(dist, source, 0.0)
    stats = WorkStats()
    stats.record(np.array([source]), np.array([0.0]), np.array([True]))
    runtime = make_runtime(recovery, device, dgraph, dist, source, "adds")

    threshold = delta
    cur_delta = delta
    near: list[np.ndarray] = [np.array([source], dtype=np.int64)]
    in_near = np.zeros(n, dtype=bool)
    in_near[source] = True
    far_mask = np.zeros(n, dtype=bool)
    # device-resident near worklist and far pile; insertions are stores.
    # write-only scratch, so the storage stays uninitialized (cudaMalloc
    # semantics) — a read before a write is a bug the sanitizer flags.
    # The multisplit placement appends densely behind rolling cursors
    # (coalesced stores) into its own slot arrays; the legacy path keeps
    # its vertex-addressed buffers.  Distinct names so the two placement
    # disciplines never share a store target.
    use_ms = multisplit_enabled()
    worklist_buf = far_buf = None
    near_slots = far_slots = near_spill = far_spill = None
    if use_ms:
        slot_cap = max(graph.num_edges, 1)
        near_slots = device.empty(slot_cap, dtype=np.int64, name="near_slots")
        far_slots = device.empty(slot_cap, dtype=np.int64, name="far_slots")
        near_spill = device.empty(n, dtype=np.int64, name="near_spill")
        far_spill = device.empty(n, dtype=np.int64, name="far_spill")
        cursors = {"near": 0, "far": 0}
    else:
        worklist_buf = device.empty(n, dtype=np.int64, name="near_worklist")
        far_buf = device.empty(n, dtype=np.int64, name="far_pile")
        cursors = None
    counters = {"steps": 0, "rounds": 0}
    # dynamic-Δ feedback: aim to keep a near set around the device's
    # resident-warp parallelism (ADDS's utilization-driven adjustment)
    target = spec.resident_warps

    while near or far_mask.any():
        if runtime is not None:
            runtime.epoch(sum(int(c.size) for c in near))
        if not near:
            candidates = np.flatnonzero(far_mask)
            if candidates.size == 0:
                break
            min_far = float(dist.data[candidates].min())
            threshold = max(threshold + cur_delta, min_far + cur_delta)
            try:
                with device.launch("adds_split") as k:
                    a = grid_stride(candidates.size, _SCAN_THREADS)
                    dvals = k.gather(dist, candidates, a)
                    if use_ms:
                        # one ballot round partitions near/far; the stable
                        # bucket order is the candidates' original order,
                        # so the promote set matches the mask filter
                        keys = (dvals >= threshold).astype(np.int64)
                        order, offs = k.multisplit(keys, 2, a)
                        promote = candidates[order[: offs[1]]]
                    else:
                        k.alu(a, ops=2)
                        promote = candidates[dvals < threshold]
            except InjectedKernelAbort as exc:
                if runtime is None:
                    raise
                near = _adds_reseed(runtime, exc, in_near, far_mask)
                continue
            device.barrier()
            far_mask[promote] = False
            in_near[promote] = True
            if device.handlers("on_annotate"):
                device.annotate(
                    "adds_split", threshold=threshold, delta=cur_delta,
                    promoted=int(promote.size),
                    far_remaining=int(candidates.size - promote.size),
                )
            if promote.size:
                near.append(promote)
            # Δ feedback: grow Δ when batches under-fill the device,
            # shrink when they flood it (work efficiency).  ADDS adjusts Δ
            # within a bounded range around its initial guess; unbounded
            # growth would degenerate to Bellman-Ford
            if promote.size < target // 2:
                cur_delta = min(cur_delta * 1.25, delta * 16.0)
            elif promote.size > target * 8:
                cur_delta = max(cur_delta / 1.25, delta)
            continue

        # ---- asynchronous near-set processing: one persistent kernel ----
        try:
            with device.launch("adds_async") as k:
                _adds_async(
                    k, dgraph, dist, near, in_near, far_mask,
                    worklist_buf, far_buf, near_slots, far_slots,
                    near_spill, far_spill, cursors, stats, threshold,
                    max_steps, cur_delta, counters,
                )
        except ConvergenceError as exc:
            if runtime is None:
                raise
            runtime.recover(exc)
            break  # the final repair sweeps restore the fixpoint
        except InjectedKernelAbort as exc:
            if runtime is None:
                raise
            near = _adds_reseed(runtime, exc, in_near, far_mask)
            continue
        device.barrier()

    if runtime is not None:
        runtime.finish()

    return SSSPResult(
        dist=dist.data.copy(),
        source=source,
        method="adds",
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        work=stats.finalize(dist.data),
        counters=device.counters,
        num_edges=graph.num_edges,
        extra={
            "timeline": device.timeline,
            "rounds": counters["rounds"], "delta0": delta,
            "final_delta": cur_delta},
        faults=runtime.report if runtime is not None else None,
    )


def _adds_async(
    k, dgraph, dist, near, in_near, far_mask,
    worklist_buf, far_buf, near_slots, far_slots, near_spill, far_spill,
    cursors, stats, threshold, max_steps, cur_delta, counters,
):
    """Drain the near worklist inside one persistent asynchronous kernel.

    Worklist insertions take one of two disciplines: the legacy
    vertex-addressed stores into ``worklist_buf`` / ``far_buf``, or (when
    the warp-ballot multisplit is enabled, signalled by ``cursors``) dense
    coalesced appends behind rolling cursors into ``near_slots`` /
    ``far_slots``, overflowing into the vertex-addressed spill arrays.
    """
    use_ms = cursors is not None
    # per-round telemetry is host-only and gated on an attached observer
    note_rounds = bool(k.device.handlers("on_annotate"))
    while near:
        counters["steps"] += 1
        if counters["steps"] > max_steps:
            raise ConvergenceError(
                "ADDS step limit exceeded",
                method="adds", iterations=counters["steps"] - 1,
                frontier=sum(int(c.size) for c in near), delta=cur_delta,
            )
        chunk = near.pop(0)
        if chunk.size > _CHUNK:
            near.insert(0, chunk[_CHUNK:])
            chunk = chunk[:_CHUNK]
        in_near[chunk] = False
        counters["rounds"] += 1
        if note_rounds:
            k.device.annotate(
                "adds_round", round=counters["rounds"],
                drained=int(chunk.size),
                near_pending=int(sum(part.size for part in near)),
            )

        batch = dgraph.batch(chunk, "all")
        a = thread_per_vertex_edges(batch.counts)
        out = relax_batch(k, dgraph, dist, chunk, batch, a, stats)
        k.async_round()
        if out.targets.size == 0:
            continue
        upd = out.targets[out.updated]
        if upd.size == 0:
            continue
        # classify on the value the winning atomic wrote (register
        # resident) rather than an un-counted host re-read of dist
        is_near = out.new_dist[out.updated] < threshold
        sub = subset_assignment(a, out.updated)
        if use_ms:
            # 2-way ballot multisplit replaces the divergent branch; the
            # stable bucket order keeps the updated-target order, so the
            # near/far halves equal the boolean-mask splits below
            order, offs = k.multisplit((~is_near).astype(np.int64), 2, sub)
            near_hits = upd[order[: offs[1]]]
            far_hits = upd[order[offs[1]:]]
        else:
            k.branch(sub, is_near)
            near_hits = upd[is_near]
            far_hits = upd[~is_near]

        fresh = sorted_unique_ints(near_hits)
        fresh = fresh[~in_near[fresh]]
        if fresh.size:
            in_near[fresh] = True
            far_mask[fresh] = False
            near.append(fresh)
            a_push = thread_per_item(fresh.size)
            if use_ms:
                fsize = int(fresh.size)
                ncur = cursors["near"]
                if ncur + fsize <= near_slots.size:
                    k.scatter(
                        near_slots,
                        ncur + np.arange(fsize, dtype=np.int64),
                        fresh, a_push,
                    )
                    cursors["near"] = ncur + fsize
                else:
                    # full slot array (re-activation storm): fall back to
                    # the vertex-addressed spill — distinct ids by
                    # construction (sorted_unique_ints)
                    # repro-static: assume-disjoint
                    k.scatter(near_spill, fresh, fresh, a_push)
            else:
                k.scatter(worklist_buf, fresh, fresh, a_push)
        far_new = sorted_unique_ints(far_hits)
        far_new = far_new[~in_near[far_new]]
        if far_new.size:
            far_mask[far_new] = True
            a_far = thread_per_item(far_new.size)
            if use_ms:
                wsize = int(far_new.size)
                fcur = cursors["far"]
                if fcur + wsize <= far_slots.size:
                    k.scatter(
                        far_slots,
                        fcur + np.arange(wsize, dtype=np.int64),
                        far_new, a_far,
                    )
                    cursors["far"] = fcur + wsize
                else:
                    # repro-static: assume-disjoint
                    k.scatter(far_spill, far_new, far_new, a_far)
            else:
                k.scatter(far_buf, far_new, far_new, a_far)


def _adds_reseed(runtime, exc, in_near, far_mask):
    """Roll back after an aborted kernel and rebuild the near worklist.

    Every finite vertex of the restored checkpoint re-enters the near set;
    re-relaxing settled vertices costs extra work but cannot change a
    correct distance.
    """
    fin = runtime.on_abort(exc)
    in_near[:] = False
    in_near[fin] = True
    far_mask[:] = False
    return [fin] if fin.size else []
