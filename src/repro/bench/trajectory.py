"""Continuous benchmarking: machine-readable perf records + regression gate.

The paper's contribution is *performance* (Fig. 8, Fig. 9, Table 2), so the
repository keeps a machine-readable performance trajectory: every benchmark
run serializes its :class:`~repro.bench.harness.MethodRun` cells into
versioned :class:`BenchRecord` JSON documents (``BENCH_<suite>.json`` at the
repo root, plus a sidecar next to each regenerated table), and CI compares
fresh runs against the committed baseline on every pull request.

The comparison is **two-tier**, matching what the simulator guarantees:

* **deterministic tier** — device counters, simulated ``time_ms``, GTEPS and
  the update ratio come from a noise-free cost model, so they are compared
  for *exact* equality (floats up to ``DETERMINISTIC_REL_TOL`` to absorb
  last-bit libm differences across platforms).  Any drift — faster *or*
  slower — is a real behavior change and fails the gate until the baseline
  is deliberately refreshed.
* **wall-clock tier** — ``host_seconds`` measures real Python execution and
  is inherently noisy, so it gates only on *slowdowns* beyond a configurable
  tolerance (default ``WALL_TOLERANCE`` = ±25%), and only for cells that ran
  long enough to time meaningfully.

See ``docs/benchmarking.md`` for the schema and the baseline-refresh
workflow; the CLI surface is ``python -m repro.cli bench {run,check,diff}``.
"""

from __future__ import annotations

import json
import math
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "DETERMINISTIC_REL_TOL",
    "WALL_TOLERANCE",
    "MIN_WALL_SECONDS",
    "SchemaVersionError",
    "BenchRecord",
    "record_from_run",
    "record_from_result",
    "coerce_records",
    "suite_document",
    "write_trajectory",
    "load_trajectory",
    "CellCheck",
    "ComparisonReport",
    "compare_records",
    "format_counter_deltas",
    "format_diff",
    "git_sha",
]

#: bump when the record layout changes; readers reject other versions
SCHEMA_VERSION = 1

#: relative tolerance for the *deterministic* tier — wide enough to absorb
#: last-bit float differences between platforms/BLAS builds, far too tight
#: for any genuine behavior change to slip through
DETERMINISTIC_REL_TOL = 1e-9

#: default relative tolerance for the host wall-clock tier (±25%)
WALL_TOLERANCE = 0.25

#: wall-clock cells shorter than this (seconds) are never gated — their
#: variance is dominated by interpreter noise, not by the code under test
MIN_WALL_SECONDS = 0.05

#: deterministic scalar fields of a record (counters are checked key-wise)
_DETERMINISTIC_FIELDS = ("time_ms", "gteps", "update_ratio")


class SchemaVersionError(ValueError):
    """A trajectory file was written under an incompatible schema version."""


def git_sha() -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------

@dataclass
class BenchRecord:
    """One (dataset, method, device) benchmark cell, serialization-ready.

    ``time_ms``, ``gteps``, ``update_ratio`` and every ``counters`` entry
    are *deterministic* simulator quantities; ``host_seconds`` is the only
    wall-clock (noisy) field.
    """

    dataset: str
    method: str
    gpu: str = ""
    num_sources: int = 1
    time_ms: float = 0.0
    gteps: float = 0.0
    update_ratio: float = float("nan")
    counters: dict[str, float] = field(default_factory=dict)
    host_seconds: float = 0.0

    @property
    def key(self) -> tuple[str, str, str]:
        """Identity of the cell inside a suite."""
        return (self.dataset, self.method, self.gpu)

    def as_dict(self) -> dict:
        """JSON-safe dict (NaN, which JSON lacks, becomes ``None``)."""
        ratio = None if math.isnan(self.update_ratio) else self.update_ratio
        return {
            "dataset": self.dataset,
            "method": self.method,
            "gpu": self.gpu,
            "num_sources": int(self.num_sources),
            "time_ms": float(self.time_ms),
            "gteps": float(self.gteps),
            "update_ratio": ratio,
            "counters": {k: v for k, v in self.counters.items()},
            "host_seconds": float(self.host_seconds),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchRecord":
        """Inverse of :meth:`as_dict`."""
        ratio = d.get("update_ratio")
        return cls(
            dataset=d["dataset"],
            method=d["method"],
            gpu=d.get("gpu", ""),
            num_sources=int(d.get("num_sources", 1)),
            time_ms=float(d.get("time_ms", 0.0)),
            gteps=float(d.get("gteps", 0.0)),
            update_ratio=float("nan") if ratio is None else float(ratio),
            counters=dict(d.get("counters", {})),
            host_seconds=float(d.get("host_seconds", 0.0)),
        )


def record_from_run(run) -> BenchRecord:
    """Serialize a :class:`~repro.bench.harness.MethodRun` into a record."""
    counters = {}
    if run.results and run.results[0].counters is not None:
        counters = run.counters.totals.as_dict()
    return BenchRecord(
        dataset=run.dataset,
        method=run.method,
        gpu=getattr(run, "gpu", ""),
        num_sources=len(run.results),
        time_ms=float(run.time_ms),
        gteps=float(run.gteps),
        update_ratio=float(run.update_ratio),
        counters=counters,
        host_seconds=float(getattr(run, "host_seconds", 0.0)),
    )


def record_from_result(
    result,
    *,
    dataset: str,
    method: str | None = None,
    gpu: str = "",
    host_seconds: float = 0.0,
) -> BenchRecord:
    """Build a record from one raw result object (duck-typed).

    Works for :class:`~repro.sssp.result.SSSPResult` and the graphalgs /
    multi-GPU result types: anything exposing ``time_ms`` plus optionally
    ``gteps``, ``work.update_ratio`` and ``counters.totals``.
    """
    work = getattr(result, "work", None)
    dev = getattr(result, "counters", None)
    counters = (
        dev.totals.as_dict() if dev is not None and hasattr(dev, "totals")
        else {}
    )
    return BenchRecord(
        dataset=dataset,
        method=method or getattr(result, "method", "unknown"),
        gpu=gpu,
        num_sources=1,
        time_ms=float(getattr(result, "time_ms", 0.0)),
        gteps=float(getattr(result, "gteps", 0.0)),
        update_ratio=(
            float(work.update_ratio) if work is not None else float("nan")
        ),
        counters=counters,
        host_seconds=float(host_seconds),
    )


def coerce_records(items) -> list[BenchRecord]:
    """Normalize a mixed iterable of records / MethodRuns into records."""
    out: list[BenchRecord] = []
    for item in items:
        if isinstance(item, BenchRecord):
            out.append(item)
        elif hasattr(item, "results"):  # MethodRun
            out.append(record_from_run(item))
        else:
            raise TypeError(
                f"cannot serialize {type(item).__name__}; pass BenchRecord "
                "or MethodRun (use record_from_result for raw results)"
            )
    return out


# ---------------------------------------------------------------------------
# trajectory documents (BENCH_<suite>.json)
# ---------------------------------------------------------------------------

def suite_document(
    records: list[BenchRecord],
    *,
    suite: str,
    tables: list[dict] | None = None,
) -> dict:
    """The versioned JSON document for one suite / bench-file run."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "git_sha": git_sha(),
        "host_seconds_total": float(
            sum(r.host_seconds for r in records)
        ),
        "records": [
            r.as_dict() for r in sorted(records, key=lambda r: r.key)
        ],
    }
    if tables:
        doc["tables"] = tables
    return doc


def _json_default(obj):
    """Fold NumPy scalars (which ``json`` rejects) into plain numbers."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(
        f"object of type {type(obj).__name__} is not JSON serializable"
    )


def write_trajectory(
    path: str | Path,
    records,
    *,
    suite: str,
    tables: list[dict] | None = None,
) -> Path:
    """Serialize ``records`` to ``path`` under the versioned schema."""
    path = Path(path)
    doc = suite_document(coerce_records(records), suite=suite, tables=tables)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True, default=_json_default)
        + "\n",
        encoding="utf-8",
    )
    return path


def load_trajectory(path: str | Path) -> tuple[dict, list[BenchRecord]]:
    """Load a trajectory file; returns ``(metadata, records)``.

    Raises :class:`SchemaVersionError` for documents written under any
    other schema version — comparing across schemas silently would defeat
    the gate.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"{path}: schema_version {version!r} != supported "
            f"{SCHEMA_VERSION}; regenerate the file with "
            "`python -m repro.cli bench run`"
        )
    records = [BenchRecord.from_dict(d) for d in doc.get("records", [])]
    meta = {k: v for k, v in doc.items() if k != "records"}
    return meta, records


# ---------------------------------------------------------------------------
# comparison engine
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellCheck:
    """Outcome of one (cell, field) comparison."""

    key: tuple[str, str, str]
    field: str
    tier: str  # "deterministic" | "wall"
    baseline: float
    current: float
    ok: bool

    @property
    def delta_pct(self) -> float:
        """Relative change in percent (NaN when the baseline is zero)."""
        if self.baseline == 0:
            return float("nan") if self.current != 0 else 0.0
        return 100.0 * (self.current - self.baseline) / self.baseline

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        d, m, g = self.key
        cell = f"{d}/{m}" + (f"@{g}" if g else "")
        return (
            f"{cell} {self.field} [{self.tier}]: "
            f"{self.baseline:g} -> {self.current:g} ({self.delta_pct:+.2f}%)"
        )


@dataclass
class ComparisonReport:
    """Every check performed plus the cells that could not be paired."""

    checks: list[CellCheck] = field(default_factory=list)
    missing: list[tuple[str, str, str]] = field(default_factory=list)
    unexpected: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def failures(self) -> list[CellCheck]:
        """Checks that violate the gating policy."""
        return [c for c in self.checks if not c.ok]

    @property
    def ok(self) -> bool:
        """True when the run is clean against the baseline."""
        return not self.failures and not self.missing and not self.unexpected

    def summary(self) -> str:
        """Human-readable verdict (one line per problem)."""
        lines = []
        for key in self.missing:
            lines.append(f"MISSING cell {key} (in baseline, not in current)")
        for key in self.unexpected:
            lines.append(
                f"UNEXPECTED cell {key} (in current, not in baseline — "
                "refresh the baseline)"
            )
        for c in self.failures:
            lines.append(f"REGRESSION {c}")
        n_det = sum(1 for c in self.checks if c.tier == "deterministic")
        n_wall = sum(1 for c in self.checks if c.tier == "wall")
        lines.append(
            f"{n_det} deterministic + {n_wall} wall-clock check(s), "
            f"{len(self.failures)} failure(s), {len(self.missing)} missing, "
            f"{len(self.unexpected)} unexpected"
        )
        return "\n".join(lines)


def _values_equal(a: float, b: float, rel_tol: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=rel_tol)


def compare_records(
    baseline: list[BenchRecord],
    current: list[BenchRecord],
    *,
    wall_tolerance: float = WALL_TOLERANCE,
    check_wall: bool = True,
    rel_tol: float = DETERMINISTIC_REL_TOL,
) -> ComparisonReport:
    """Gate ``current`` against ``baseline`` under the two-tier policy.

    Deterministic quantities must match exactly (any drift fails); wall
    clock fails only when a cell got *slower* than
    ``baseline * (1 + wall_tolerance)`` and both sides ran for at least
    :data:`MIN_WALL_SECONDS`.  Cells present on one side only are reported
    as ``missing`` / ``unexpected`` and fail the gate too: both mean the
    committed baseline no longer describes the suite.
    """
    report = ComparisonReport()
    base_by_key = {r.key: r for r in baseline}
    cur_by_key = {r.key: r for r in current}
    report.missing = sorted(k for k in base_by_key if k not in cur_by_key)
    report.unexpected = sorted(k for k in cur_by_key if k not in base_by_key)

    for key in sorted(k for k in base_by_key if k in cur_by_key):
        b, c = base_by_key[key], cur_by_key[key]
        for name in _DETERMINISTIC_FIELDS:
            bv, cv = getattr(b, name), getattr(c, name)
            report.checks.append(CellCheck(
                key, name, "deterministic", bv, cv,
                ok=_values_equal(bv, cv, rel_tol),
            ))
        for cname in sorted(set(b.counters) | set(c.counters)):
            bv = float(b.counters.get(cname, float("nan")))
            cv = float(c.counters.get(cname, float("nan")))
            report.checks.append(CellCheck(
                key, f"counters.{cname}", "deterministic", bv, cv,
                ok=_values_equal(bv, cv, rel_tol),
            ))
        if check_wall:
            gated = (
                b.host_seconds >= MIN_WALL_SECONDS
                and c.host_seconds > b.host_seconds * (1.0 + wall_tolerance)
            )
            report.checks.append(CellCheck(
                key, "host_seconds", "wall",
                b.host_seconds, c.host_seconds, ok=not gated,
            ))
    return report


# ---------------------------------------------------------------------------
# diff tables (``bench diff``)
# ---------------------------------------------------------------------------

#: counter components of the two headline totals the perf gate tracks
_INSTRUCTION_KEYS = (
    "inst_executed_global_loads",
    "inst_executed_global_stores",
    "inst_executed_atomics",
    "inst_executed_other",
    "inst_executed_ballots",
)
_TRANSACTION_KEYS = (
    "global_load_transactions",
    "global_store_transactions",
    "atomic_transactions",
)


def _counter_total(counters: dict, keys: tuple[str, ...]) -> int:
    """Sum of the named counters, absent keys counting as zero."""
    return int(sum(counters.get(k, 0) for k in keys))


def _delta_cells(old: int, new: int) -> list[str]:
    """``old -> new`` plus the relative change, table-ready."""
    pct = 100.0 * (new - old) / old if old else 0.0
    return [f"{old}", f"{new}", f"{pct:+.2f}%"]


def format_counter_deltas(
    baseline: list[BenchRecord],
    current: list[BenchRecord],
    *,
    labels: tuple[str, str] = ("baseline", "current"),
) -> str:
    """Per-cell instruction / transaction delta table.

    One row per cell paired across the two trajectories, with the two
    headline totals of the perf gate — warp instructions issued and
     32-byte DRAM transactions — as ``old -> new`` columns plus the
    relative change.  The table makes a placement change's wins (or
    regressions) visible directly in CI output without opening either
    JSON document.
    """
    from .harness import format_table  # deferred: harness imports us

    a_label, b_label = labels
    base_by_key = {r.key: r for r in baseline}
    cur_by_key = {r.key: r for r in current}
    rows = []
    for key in sorted(set(base_by_key) & set(cur_by_key)):
        b, c = base_by_key[key], cur_by_key[key]
        cell = f"{key[0]}/{key[1]}" + (f"@{key[2]}" if key[2] else "")
        rows.append(
            [cell]
            + _delta_cells(
                _counter_total(b.counters, _INSTRUCTION_KEYS),
                _counter_total(c.counters, _INSTRUCTION_KEYS),
            )
            + _delta_cells(
                _counter_total(b.counters, _TRANSACTION_KEYS),
                _counter_total(c.counters, _TRANSACTION_KEYS),
            )
        )
    return format_table(
        [
            "cell",
            f"inst ({a_label})",
            f"inst ({b_label})",
            "Δ inst",
            f"tx ({a_label})",
            f"tx ({b_label})",
            "Δ tx",
        ],
        rows,
        title=f"instruction / transaction deltas — {a_label} vs {b_label}",
    )


def format_diff(
    baseline: list[BenchRecord],
    current: list[BenchRecord],
    *,
    labels: tuple[str, str] = ("baseline", "current"),
) -> str:
    """Per-cell regression table between two trajectories.

    One row per cell with the headline quantities; counter drift is
    summarized as the number of differing counters (the full dicts live in
    the JSON files themselves).  A second table breaks the two headline
    counter totals (warp instructions, DRAM transactions) out per cell as
    ``old -> new`` deltas.
    """
    from .harness import format_table  # deferred: harness imports us

    a_label, b_label = labels
    base_by_key = {r.key: r for r in baseline}
    cur_by_key = {r.key: r for r in current}
    rows = []
    for key in sorted(set(base_by_key) | set(cur_by_key)):
        b = base_by_key.get(key)
        c = cur_by_key.get(key)
        cell = f"{key[0]}/{key[1]}" + (f"@{key[2]}" if key[2] else "")
        if b is None or c is None:
            rows.append([
                cell,
                "-" if b is None else f"{b.time_ms:.4f}",
                "-" if c is None else f"{c.time_ms:.4f}",
                "-", "-", "-",
                f"only in {b_label if b is None else a_label}",
            ])
            continue
        drifted = [
            name for name in sorted(set(b.counters) | set(c.counters))
            if not _values_equal(
                float(b.counters.get(name, float("nan"))),
                float(c.counters.get(name, float("nan"))),
                DETERMINISTIC_REL_TOL,
            )
        ]
        time_pct = (
            100.0 * (c.time_ms - b.time_ms) / b.time_ms if b.time_ms else 0.0
        )
        wall_pct = (
            100.0 * (c.host_seconds - b.host_seconds) / b.host_seconds
            if b.host_seconds else 0.0
        )
        rows.append([
            cell,
            f"{b.time_ms:.4f}",
            f"{c.time_ms:.4f}",
            f"{time_pct:+.2f}%",
            f"{len(drifted)}",
            f"{wall_pct:+.1f}%",
            "ok" if not drifted and abs(time_pct) < 1e-7 else "DRIFT",
        ])
    headline = format_table(
        [
            "cell",
            f"ms ({a_label})",
            f"ms ({b_label})",
            "Δ sim time",
            "counters Δ",
            "Δ wall",
            "verdict",
        ],
        rows,
        title=f"bench diff — {a_label} vs {b_label}",
    )
    deltas = format_counter_deltas(baseline, current, labels=labels)
    return headline + "\n\n" + deltas
