"""Benchmark harness: run matrices, averaging, and paper-style tables.

Every ``benchmarks/bench_*.py`` file builds its figure or table through
these helpers so output formatting, averaging and validation are uniform.
Runs are always validated against the SciPy Dijkstra oracle — a benchmark
row is only reported for *correct* distances.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..graphs.csr import CSRGraph
from ..gpusim.spec import GPUSpec
from ..metrics.gteps import geometric_mean
from ..perf import profile as hostprof
from ..sssp.api import GPU_METHODS, sssp
from ..sssp.result import SSSPResult
from ..sssp.validate import validate_distances
from .datasets import benchmark_spec, get_graph, pick_sources

__all__ = [
    "MethodRun",
    "run_method",
    "run_matrix",
    "format_table",
    "write_results",
    "RESULTS_DIR",
    "default_results_dir",
]

#: the repo-relative results directory — only meaningful in a source
#: checkout; installed packages fall back to the working directory (see
#: :func:`default_results_dir`)
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def default_results_dir() -> Path:
    """Where bench files drop regenerated tables when no dir is injected.

    ``RESULTS_DIR`` resolves three levels above this file, which lands in
    the repo for an editable install but in the middle of ``site-packages``
    for a regular one — in that case fall back to ``benchmarks/results``
    under the current working directory.
    """
    if RESULTS_DIR.parent.exists():
        return RESULTS_DIR
    return Path.cwd() / "benchmarks" / "results"


@dataclass
class MethodRun:
    """Averaged measurements of one (dataset, method) cell."""

    dataset: str
    method: str
    time_ms: float
    gteps: float
    update_ratio: float
    results: list[SSSPResult] = field(default_factory=list)
    #: device-spec label the cell ran on ("cpu" for host methods)
    gpu: str = ""
    #: real (wall-clock) seconds spent inside the solver across all sources
    host_seconds: float = 0.0

    @property
    def counters(self):
        """Device counters of the first run (sources barely change them)."""
        return self.results[0].counters


def run_method(
    name: str,
    method: str,
    *,
    num_sources: int = 3,
    spec: GPUSpec | None = None,
    validate: bool = True,
    graph: CSRGraph | None = None,
    sources: list[int] | None = None,
    **kwargs,
) -> MethodRun:
    """Run ``method`` over the standard sources of dataset ``name``.

    Times are arithmetic means over sources (the paper's methodology);
    the update ratio is averaged the same way.  Pass ``graph`` (plus
    optionally ``sources``) to benchmark a graph outside the registry.
    """
    g = graph if graph is not None else get_graph(name)
    if sources is None:
        sources = pick_sources(name, num_sources) if graph is None else [0]
    if spec is None:
        spec = benchmark_spec()
    results: list[SSSPResult] = []
    host_seconds = 0.0
    for s in sources:
        kw = dict(kwargs)
        if method in GPU_METHODS:
            kw.setdefault("spec", spec)
        t0 = time.perf_counter()
        with hostprof.region(f"solve:{method}"):
            r = sssp(g, s, method=method, **kw)
        host_seconds += time.perf_counter() - t0
        if validate:
            with hostprof.region("validate"):
                validate_distances(g, s, r.dist)
        results.append(r)
    times = [r.time_ms for r in results]
    ratios = [r.work.update_ratio for r in results if r.work is not None]
    return MethodRun(
        dataset=name,
        method=method,
        time_ms=statistics.fmean(times),
        gteps=statistics.fmean([r.gteps for r in results]),
        update_ratio=statistics.fmean(ratios) if ratios else float("nan"),
        results=results,
        gpu=spec.name if method in GPU_METHODS else "cpu",
        host_seconds=host_seconds,
    )


def run_matrix(
    datasets: list[str],
    methods: list[str],
    *,
    num_sources: int = 3,
    spec: GPUSpec | None = None,
    **kwargs,
) -> dict[tuple[str, str], MethodRun]:
    """Run every (dataset, method) cell; returns a dict keyed by the pair."""
    out: dict[tuple[str, str], MethodRun] = {}
    for d in datasets:
        for m in methods:
            out[(d, m)] = run_method(
                d, m, num_sources=num_sources, spec=spec, **kwargs
            )
    return out


def format_table(
    headers: list[str], rows: list[list], title: str | None = None
) -> str:
    """Fixed-width text table (the benches' printable output)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(c) -> str:
    if isinstance(c, float):
        if c != c:  # NaN
            return "-"
        if abs(c) >= 100:
            return f"{c:.1f}"
        return f"{c:.3f}"
    return str(c)


def write_results(
    filename: str,
    text: str,
    records=None,
    *,
    tables: list[dict] | None = None,
    results_dir: str | Path | None = None,
) -> Path:
    """Persist a regenerated table, plus its machine-readable sidecar.

    ``records`` (BenchRecords or MethodRuns) and/or ``tables``
    (``{"title", "headers", "rows"}`` dicts) are serialized to
    ``<stem>.json`` next to the text table under the versioned trajectory
    schema (:mod:`repro.bench.trajectory`) — the per-figure complement of
    the repo-root ``BENCH_<suite>.json`` files.  ``results_dir`` overrides
    the output directory (see :func:`default_results_dir`).
    """
    out_dir = (
        Path(results_dir) if results_dir is not None else default_results_dir()
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / filename
    path.write_text(text + "\n", encoding="utf-8")
    if records is not None or tables is not None:
        from .trajectory import write_trajectory

        write_trajectory(
            path.with_suffix(".json"),
            list(records) if records is not None else [],
            suite=path.stem,
            tables=tables,
        )
    return path


def geo_speedup(matrix, datasets, base_method: str, method: str) -> float:
    """Geometric-mean speedup of ``method`` over ``base_method``."""
    return geometric_mean(
        matrix[(d, base_method)].time_ms / matrix[(d, method)].time_ms
        for d in datasets
    )
