"""Benchmark dataset registry, scaled specs and source selection.

Centralizes the three methodological choices every benchmark shares:

* **which graphs** — the Table-1 surrogates (:mod:`repro.graphs.surrogates`)
  grouped exactly as the paper's figures group them;
* **which device** — the V100/T4 specs in *scaled-simulation mode*
  (:meth:`repro.gpusim.spec.GPUSpec.scaled_for_workload`), matching the
  ~1/64-scale surrogates so cache pressure and launch-to-body ratios stay in
  the regime of the paper's full-size runs;
* **which sources** — the paper draws 64 random sources from each graph and
  averages; the benchmarks default to a smaller deterministic sample from
  the largest connected component (so every run traverses most of the
  graph), configurable via ``num_sources``.

Graphs are memoized so a full benchmark session generates each surrogate
once.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..graphs import surrogates
from ..graphs.csr import CSRGraph
from ..graphs.properties import largest_component_vertices
from ..gpusim.spec import GPUSpec, T4, V100

__all__ = [
    "WORKLOAD_SCALE",
    "benchmark_spec",
    "get_graph",
    "pick_sources",
    "FIG8_DATASETS",
    "TABLE2_DATASETS",
    "FIG9_DATASETS",
    "FIG10_DATASETS",
    "FIG12_DATASETS",
]

#: the surrogate datasets are ~1/64 the paper's edge counts (see
#: repro.graphs.surrogates); capacity/latency constants scale to match
WORKLOAD_SCALE = 1.0 / 64.0

#: the six datasets of Fig. 8 / Table 2 / Fig. 10 / Fig. 12
FIG8_DATASETS = ["road-TX", "Amazon", "web-GL", "com-LJ", "soc-PK", "k-n21-16"]
TABLE2_DATASETS = FIG8_DATASETS
FIG10_DATASETS = FIG8_DATASETS
FIG12_DATASETS = ["Amazon", "road-TX", "web-GL", "com-LJ", "soc-PK", "k-n21-16"]

#: the ten datasets of Fig. 9, in the paper's plotted order
FIG9_DATASETS = [
    "k-n21-16",
    "web-GL",
    "soc-PK",
    "com-LJ",
    "soc-TW",
    "as-Skt",
    "soc-LJ",
    "wiki-TK",
    "com-OK",
    "road-TX",
]


def benchmark_spec(base: GPUSpec = V100) -> GPUSpec:
    """The scaled-simulation device spec used by all benchmarks."""
    return base.scaled_for_workload(WORKLOAD_SCALE)


@lru_cache(maxsize=None)
def get_graph(name: str) -> CSRGraph:
    """Memoized surrogate construction (persistent-cached across sessions)."""
    from ..perf import profile

    with profile.region(f"dataset:{name}"):
        return surrogates.load(name)


@lru_cache(maxsize=None)
def _component_cache(name: str) -> np.ndarray:
    """Largest-component vertex set, persistent-cached like the graph.

    The decomposition is pure in the graph content, which is itself pure
    in (name, generator version) — so the artifact key mirrors the
    surrogate cache's.
    """
    from ..graphs.generators import GENERATOR_VERSION
    from ..perf import artifacts, profile

    def build() -> dict:
        with profile.region(f"components:{name}"):
            return {"vertices": largest_component_vertices(get_graph(name))}

    arrays, _hit = artifacts.fetch("components", (name, GENERATOR_VERSION), build)
    return arrays["vertices"]


def pick_sources(name: str, num_sources: int = 3, seed: int = 7) -> list[int]:
    """Deterministic random sources inside the largest component."""
    comp = _component_cache(name)
    rng = np.random.default_rng(seed)
    take = min(num_sources, comp.size)
    return [int(v) for v in rng.choice(comp, size=take, replace=False)]
