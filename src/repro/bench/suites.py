"""Named benchmark suites for the continuous-benchmarking gate.

A *suite* is a fixed (datasets × methods) matrix whose records form one
``BENCH_<suite>.json`` trajectory file:

* ``quick`` — three structurally opposed datasets (power-law Amazon,
  uniform-degree road-TX, and the skewed Graph500 kron surrogate
  ``k-n21-16``) × the headline engines (BL, ADDS, RDBS, MLMQ) plus the
  Near-Far baseline.  Small enough to run on every pull request
  (~20 s); rich enough that a change to frontier handling, bucketing,
  the cost model or the counter accounting moves at least one
  deterministic cell.
* ``paper`` — the full Fig. 8 / Table 2 matrix: the six Fig. 8 datasets ×
  BL, ADDS, RDBS and the three optimization arms.  The record to refresh
  when publishing performance claims; too heavy for per-PR CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from .datasets import FIG8_DATASETS
from .harness import run_method
from .trajectory import BenchRecord, record_from_run

__all__ = ["SuiteSpec", "SUITES", "suite_names", "run_suite"]


@dataclass(frozen=True)
class SuiteSpec:
    """The (datasets × methods) matrix of one named suite."""

    name: str
    datasets: tuple[str, ...]
    methods: tuple[str, ...]
    num_sources: int = 1


SUITES: dict[str, SuiteSpec] = {
    "quick": SuiteSpec(
        name="quick",
        datasets=("Amazon", "road-TX", "k-n21-16"),
        methods=("bl", "adds", "near-far", "rdbs", "mlmq"),
        num_sources=2,
    ),
    "paper": SuiteSpec(
        name="paper",
        datasets=tuple(FIG8_DATASETS),
        methods=(
            "bl", "adds", "rdbs",
            "basyn+pro", "basyn+adwl", "basyn+pro+adwl",
        ),
        num_sources=3,
    ),
}


def suite_names() -> list[str]:
    """The suites ``bench run --suite`` accepts.

    Covers both the (datasets × methods) matrices defined here and the
    traffic sessions of the serving layer (:mod:`repro.serve.bench`,
    including the chaos-plan suite ``serve-chaos``), which share the
    trajectory schema and the regression gate.
    """
    from ..serve.bench import serve_suite_names

    return sorted(SUITES) + serve_suite_names()


def _run_cell(suite: str, dataset: str, method: str) -> BenchRecord:
    """One (dataset, method) cell — the unit of process parallelism.

    Module-level so :mod:`repro.perf.parallel` can ship it to worker
    processes; each worker runs the identical simulation the serial path
    would, so the resulting record differs only in host wall fields.
    """
    spec = SUITES[suite]
    run = run_method(dataset, method, num_sources=spec.num_sources)
    return record_from_run(run)


def _progress_line(rec: BenchRecord) -> str:
    return (
        f"  {rec.dataset:>10s} {rec.method:<16s} "
        f"{rec.time_ms:9.4f} ms  ({rec.host_seconds:.2f} s host)"
    )


def run_suite(name: str, *, progress=None, jobs: int = 1) -> list[BenchRecord]:
    """Run every cell of suite ``name`` and return its records.

    ``progress`` is an optional callable taking one status string (the CLI
    passes ``print``); every run is validated against the SciPy oracle by
    ``run_method`` before being recorded.

    ``jobs > 1`` fans the independent (dataset × method) cells over that
    many worker processes (``0`` = all cores).  Records come back in the
    same deterministic suite order as a serial run, and every device
    quantity (counters, simulated time) is identical — only host
    wall-clock fields can differ run to run.
    """
    if name not in SUITES:
        from ..serve.bench import SERVE_SUITES, run_serve_suite

        if name in SERVE_SUITES:
            return run_serve_suite(name, progress=progress, jobs=jobs)
        raise ValueError(
            f"unknown suite {name!r}; choose from {', '.join(suite_names())}"
        )
    spec = SUITES[name]
    from ..perf import profile
    from ..perf.parallel import resolve_jobs, run_tasks

    cells = [(name, d, m) for d in spec.datasets for m in spec.methods]
    jobs = resolve_jobs(jobs)
    if jobs > 1:
        records = run_tasks(_run_cell, cells, jobs)
        if progress is not None:
            for rec in records:
                progress(_progress_line(rec))
        return records
    from ..trace import active_tracer

    records: list[BenchRecord] = []
    for suite, dataset, method in cells:
        tracer = active_tracer()
        if tracer is not None:
            tracer.mark("cell", dataset=dataset, method=method)
        with profile.region(f"cell:{dataset}/{method}"):
            rec = _run_cell(suite, dataset, method)
        records.append(rec)
        if progress is not None:
            progress(_progress_line(rec))
    return records
