"""Benchmark harness: datasets, scaled specs, run matrices, tables."""

from .datasets import (
    FIG8_DATASETS,
    FIG9_DATASETS,
    FIG10_DATASETS,
    FIG12_DATASETS,
    TABLE2_DATASETS,
    WORKLOAD_SCALE,
    benchmark_spec,
    get_graph,
    pick_sources,
)
from .harness import (
    MethodRun,
    RESULTS_DIR,
    format_table,
    geo_speedup,
    run_matrix,
    run_method,
    write_results,
)

__all__ = [
    "WORKLOAD_SCALE",
    "benchmark_spec",
    "get_graph",
    "pick_sources",
    "FIG8_DATASETS",
    "TABLE2_DATASETS",
    "FIG9_DATASETS",
    "FIG10_DATASETS",
    "FIG12_DATASETS",
    "MethodRun",
    "run_method",
    "run_matrix",
    "format_table",
    "write_results",
    "geo_speedup",
    "RESULTS_DIR",
]
