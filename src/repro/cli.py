"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     run one SSSP method on a graph and print the measurements
``compare``   run several methods on one graph, print a comparison table
``profile``   run one method and print the kernel timeline / bottlenecks,
              or ``--suite NAME`` for a host wall-time profile of a suite
``datasets``  list the bundled Table-1 surrogate datasets
``sanitize``  run one method under the hazard sanitizer and report findings
``faults``    run one method under deterministic fault injection and the
              self-healing runtime, then print the fault report
``lint``      statically check kernel-authoring rules (repro-lint)
``analyze``   static kernel effect inference: per-kernel effect
              signatures, AN3xx race proofs, async-safety verdicts, and
              the ``ANALYSIS_manifest.json`` drift gate
``bench``     continuous benchmarking: run suites, gate against baselines,
              diff trajectory files (``bench run | check | diff``)
``trace``     structured event tracing: record a run's kernel/bucket/ADWL
              timeline, summarize or convert trace files
              (``trace run | summary | export``)
``serve``     online SSSP query serving: play a deterministic traffic
              session (or a gated serve suite) against the scheduler —
              landmark oracle, distance-field LRU, sharded exact fallback
``cache``     inspect or clear the persistent artifact cache
              (``cache status | clear``)

Graphs are specified with a compact ``kind:args`` syntax::

    kron:12,16        Kronecker SCALE=12, edgefactor=16 (int weights)
    road:64,64        64x64 road grid
    pa:4000,6         preferential attachment, n=4000, 6 edges/vertex
    er:1000,8000      Erdős–Rényi, n=1000, m=8000
    road-TX           any bundled dataset name (see `datasets`)
    path/to/file.gr   DIMACS / edge-list / .npz files
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from .graphs import (
    CSRGraph,
    dataset_names,
    erdos_renyi,
    grid_road_network,
    kronecker,
    largest_component_vertices,
    load,
    load_npz,
    preferential_attachment,
    read_dimacs_gr,
    read_edge_list,
)
from .faults import GPU_METHODS, plan_names
from .serve.chaos import chaos_plan_names
from .gpusim import A100, T4, V100
from .sssp import DistanceMismatch, method_names, sssp, validate_distances

__all__ = ["main", "parse_graph_spec", "parse_gpu_spec"]

_SPECS = {"v100": V100, "t4": T4, "a100": A100}


def parse_graph_spec(spec: str, seed: int = 0) -> CSRGraph:
    """Build a graph from the CLI's ``kind:args`` syntax (see module doc)."""
    if ":" in spec and not Path(spec).exists():
        kind, _, args = spec.partition(":")
        parts = [int(x) for x in args.split(",") if x]
        if kind == "kron":
            scale, ef = (parts + [16])[:2]
            return kronecker(scale, ef, weights="int", seed=seed)
        if kind == "road":
            w, h = (parts + [parts[0]])[:2]
            return grid_road_network(w, h, seed=seed)
        if kind == "pa":
            n, k = (parts + [4])[:2]
            return preferential_attachment(n, k, seed=seed)
        if kind == "er":
            n, m = (parts + [parts[0] * 8])[:2]
            return erdos_renyi(n, m, seed=seed)
        raise SystemExit(f"unknown graph kind {kind!r}")
    if spec in dataset_names():
        return load(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(f"no such dataset or file: {spec!r}")
    if path.suffix == ".npz":
        return load_npz(path)
    if path.suffix == ".gr":
        return read_dimacs_gr(path)
    return read_edge_list(path)


def parse_gpu_spec(name: str, workload_scale: float):
    """Resolve a platform name + scaled-simulation factor."""
    try:
        base = _SPECS[name.lower()]
    except KeyError:
        raise SystemExit(
            f"unknown GPU {name!r}; choose from {', '.join(_SPECS)}"
        ) from None
    return base.scaled_for_workload(workload_scale)


def _pick_source(graph: CSRGraph, arg: str) -> int:
    if arg == "auto":
        comp = largest_component_vertices(graph)
        if comp.size == 0:
            raise SystemExit("graph has no vertices")
        return int(comp[0])
    return int(arg)


def _gpu_kwargs(args, method: str) -> dict:
    kw: dict = {}
    if method in GPU_METHODS:
        kw["spec"] = parse_gpu_spec(args.gpu, args.workload_scale)
    if args.delta is not None and method not in (
        "dijkstra", "bellman-ford"
    ):
        kw["delta"] = args.delta
    return kw


def _cmd_solve(args) -> int:
    graph = parse_graph_spec(args.graph, seed=args.seed)
    source = _pick_source(graph, args.source)
    r = sssp(graph, source, method=args.method, **_gpu_kwargs(args, args.method))
    if not args.no_validate:
        validate_distances(graph, source, r.dist)
    reached = int(np.isfinite(r.dist).sum())
    print(f"graph     : {graph}")
    print(f"method    : {r.method}")
    print(f"source    : {source}  (reached {reached}/{graph.num_vertices})")
    print(f"time      : {r.time_ms:.4f} ms (simulated)")
    print(f"throughput: {r.gteps:.3f} GTEPS")
    if r.work:
        print(f"updates   : {r.work.total_updates} total, "
              f"{r.work.valid_updates} valid (ratio {r.work.update_ratio:.2f})")
    if not args.no_validate:
        print("validated against scipy ✓")
    return 0


def _cmd_compare(args) -> int:
    graph = parse_graph_spec(args.graph, seed=args.seed)
    source = _pick_source(graph, args.source)
    methods = args.methods.split(",")
    unknown = [m for m in methods if m not in method_names()]
    if unknown:
        raise SystemExit(f"unknown methods: {unknown}; see `--list-methods`")
    print(f"graph: {graph}, source {source}\n")
    print(f"{'method':<16} {'time (ms)':>10} {'GTEPS':>8} {'ratio':>7}")
    for m in methods:
        r = sssp(graph, source, method=m, **_gpu_kwargs(args, m))
        if not args.no_validate:
            validate_distances(graph, source, r.dist)
        ratio = r.work.update_ratio if r.work else float("nan")
        print(f"{m:<16} {r.time_ms:>10.4f} {r.gteps:>8.3f} {ratio:>7.2f}")
    return 0


def _primitive_breakdown(prof) -> dict:
    """The ``primitive:*`` regions of a profiler as a JSON-ready dict.

    One entry per primitive family (``sort`` / ``scan`` /
    ``multisplit``) with accumulated host seconds and call counts — the
    per-primitive breakdown ``repro profile`` prints and serializes.
    """
    out = {}
    for name in sorted(prof.seconds):
        if not name.startswith("primitive:"):
            continue
        out[name.split(":", 1)[1]] = {
            "seconds": float(prof.seconds[name]),
            "calls": int(prof.calls[name]),
        }
    return out


def _print_primitives(prims: dict) -> None:
    if not prims:
        return
    print("\nper-primitive host time:")
    for name, row in sorted(
        prims.items(), key=lambda kv: kv[1]["seconds"], reverse=True
    ):
        print(f"  {name:<12s} {row['seconds']:9.3f} s {row['calls']:8d} calls")


def _cmd_profile(args) -> int:
    if args.suite:
        return _profile_suite(args)
    if not args.graph:
        raise SystemExit("profile: provide a graph spec, or --suite NAME "
                         "for a host-time suite profile")
    from .perf.profile import profiling

    graph = parse_graph_spec(args.graph, seed=args.seed)
    source = _pick_source(graph, args.source)
    with profiling() as prof:
        r = sssp(
            graph, source, method=args.method,
            **_gpu_kwargs(args, args.method),
        )
    timeline = r.extra.get("timeline")
    if timeline is None:
        raise SystemExit(f"method {args.method!r} has no kernel timeline "
                         "(CPU methods are not profiled)")
    print(f"graph: {graph}, method {r.method}, "
          f"simulated {r.time_ms:.4f} ms\n")
    print(timeline.report())
    c = r.counters.totals
    print(
        f"\ncounters: loads={c.inst_executed_global_loads} "
        f"stores={c.inst_executed_global_stores} "
        f"atomics={c.inst_executed_atomics} "
        f"hit={c.global_hit_rate:.1f}% "
        f"simt_eff={c.simt_efficiency:.2f}"
    )
    prims = _primitive_breakdown(prof)
    _print_primitives(prims)
    if args.json:
        prof.write_json(
            args.json,
            extra={
                "graph": str(graph),
                "method": r.method,
                "time_ms": float(r.time_ms),
                "primitives": prims,
            },
        )
        print(f"wrote host-profile report to {args.json}")
    return 0


def _profile_suite(args) -> int:
    """Host wall-time profile of one bench suite (``profile --suite``).

    Times named host regions (generation, preprocessing, per-kernel
    accounting, solver calls) across a full suite run and reports them
    next to the artifact-cache statistics — the report that demonstrates
    the host-optimization layer's speedup.  With ``--jobs`` > 1 the cells
    run in worker processes, whose region timings stay in the workers;
    profile with the default serial run for a complete breakdown.
    """
    import time

    from .bench import run_suite
    from .perf import cache_stats
    from .perf.profile import profiling

    with profiling() as prof:
        t0 = time.perf_counter()
        records = run_suite(args.suite, jobs=args.jobs)
        wall = time.perf_counter() - t0
    solver = sum(r.host_seconds for r in records)
    print(f"suite {args.suite!r}: {len(records)} cell(s), jobs={args.jobs}")
    print(f"host wall {wall:.2f} s, solver host {solver:.2f} s\n")
    print(prof.format_table())
    prims = _primitive_breakdown(prof)
    _print_primitives(prims)
    st = cache_stats()
    s = st["session"]
    print(
        f"\nartifact cache: {st['entries']} entr(y/ies), "
        f"{st['bytes'] / 1e6:.1f} MB at {st['root']} "
        f"(session: {s['hits']} hit(s), {s['misses']} miss(es))"
    )
    if args.json:
        prof.write_json(
            args.json,
            extra={
                "suite": args.suite,
                "jobs": args.jobs,
                "suite_wall_seconds": wall,
                "solver_host_seconds": solver,
                "cache": st,
                "primitives": prims,
            },
        )
        print(f"wrote host-profile report to {args.json}")
    return 0


def _cmd_cache(args) -> int:
    """Inspect or clear the persistent artifact cache."""
    from .perf import artifacts

    store = artifacts.get_cache()
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} entr(y/ies) from {store.root}")
        return 0
    st = store.status()
    print(f"root    : {st['root']}")
    print(f"enabled : {st['enabled']}")
    print(f"entries : {st['entries']} ({st['bytes'] / 1e6:.1f} MB, "
          f"cap {st['max_bytes'] / 1e6:.0f} MB)")
    for cat, n in st["categories"].items():
        print(f"  {cat:<12s} {n}")
    s = st["session"]
    print(f"session : {s['hits']} hit(s), {s['misses']} miss(es), "
          f"{s['stores']} store(s), {s['rejected']} rejected")
    return 0


def _cmd_sanitize(args) -> int:
    """Run one method under the dynamic hazard sanitizer."""
    import json

    from .analysis import sanitized_sssp

    graph = parse_graph_spec(args.graph, seed=args.seed)
    source = _pick_source(graph, args.source)
    r, report = sanitized_sssp(
        graph, source, method=args.method,
        strict=args.strict, **_gpu_kwargs(args, args.method),
    )
    if not args.no_validate:
        validate_distances(graph, source, r.dist)
    if args.format == "json":
        shown = report.findings if args.warnings else report.errors
        print(json.dumps({
            "graph": graph.name,
            "method": r.method,
            "kernels_checked": report.kernels_checked,
            "accesses_checked": report.accesses_checked,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "dropped": report.dropped,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "message": f.message,
                    "kernel": f.kernel,
                    "array": f.array,
                    "count": f.count,
                }
                for f in shown
            ],
        }, indent=2))
        return 1 if report.errors else 0
    print(f"graph   : {graph}")
    print(f"method  : {r.method}")
    print(f"checked : {report.kernels_checked} window(s), "
          f"{report.accesses_checked} access(es), "
          f"{len(report.errors)} hazard(s), {len(report.warnings)} warning(s)")
    shown = report.findings if args.warnings else report.errors
    for f in shown:
        print(f"  {f}")
    if report.dropped:
        print(f"  ... {report.dropped} further finding(s) dropped")
    return 1 if report.errors else 0


def _cmd_faults(args) -> int:
    """Run one method under deterministic fault injection."""
    from .faults import InjectedKernelAbort

    graph = parse_graph_spec(args.graph, seed=args.seed)
    source = _pick_source(graph, args.source)
    tracer = None
    try:
        if args.trace:
            from .trace import tracing

            with tracing() as tracer:
                tracer.meta.update(
                    graph=graph.name, method=args.method, plan=args.plan
                )
                r, report = _run_faulty(args, graph, source)
        else:
            r, report = _run_faulty(args, graph, source)
    except InjectedKernelAbort as exc:
        # fail-stop: without the recovery runtime an injected abort
        # terminates the run, as it would on real hardware
        print(f"run terminated by injected fault: {exc}")
        if tracer is not None:
            _write_trace(tracer, args.trace, None)
        return 1
    print(f"graph   : {graph}")
    print(f"method  : {r.method}")
    print(f"plan    : {report.plan} (seed {report.seed}, "
          f"recovery {'off' if args.no_recovery else 'on'})")
    print(report.summary())
    if tracer is not None:
        _write_trace(tracer, args.trace, None)
    ok = report.escaped == 0 and report.verified is not False
    if not args.no_validate:
        try:
            validate_distances(graph, source, r.dist)
            print("validated against scipy ✓")
        except DistanceMismatch as exc:
            ok = False
            print(f"validation FAILED: {exc}")
    return 0 if ok else 1


def _run_faulty(args, graph, source):
    from .faults import faulty_sssp

    return faulty_sssp(
        graph, source, method=args.method,
        plan=args.plan, seed=args.seed,
        recovery=not args.no_recovery,
        **_gpu_kwargs(args, args.method),
    )


def _trace_format(path: str, fmt: str | None) -> str:
    """Resolve an export format: explicit flag, else by file suffix."""
    if fmt:
        return fmt
    return "jsonl" if str(path).endswith(".jsonl") else "chrome"


def _write_trace(tracer, path: str, fmt: str | None) -> None:
    from .trace import write_chrome, write_jsonl

    fmt = _trace_format(path, fmt)
    (write_jsonl if fmt == "jsonl" else write_chrome)(tracer, path)
    dropped = f", {tracer.dropped} dropped" if tracer.dropped else ""
    print(f"wrote {fmt} trace ({len(tracer)} event(s){dropped}) to {path}")


def _cmd_trace_run(args) -> int:
    """Run one method under the tracer and export the event timeline."""
    from .trace import DEFAULT_CAPACITY, tracing

    graph = parse_graph_spec(args.graph, seed=args.seed)
    source = _pick_source(graph, args.source)
    with tracing(capacity=args.capacity or DEFAULT_CAPACITY) as tr:
        tr.meta.update(graph=graph.name, method=args.method, source=source)
        if args.plan:
            from .faults import faulty_sssp

            r, report = faulty_sssp(
                graph, source, method=args.method,
                plan=args.plan, seed=args.seed, recovery=True,
                **_gpu_kwargs(args, args.method),
            )
            tr.meta["plan"] = report.plan
        else:
            r = sssp(
                graph, source, method=args.method,
                **_gpu_kwargs(args, args.method),
            )
    if not args.no_validate:
        validate_distances(graph, source, r.dist)
    print(f"graph  : {graph}")
    print(f"method : {r.method}  ({r.time_ms:.4f} ms simulated)")
    _write_trace(tr, args.out, args.format)
    return 0


def _load_trace_file(path: str):
    """Read a trace file back into a Tracer (meta preserved)."""
    from .trace import Tracer, load_trace

    if not Path(path).exists():
        raise SystemExit(f"no such trace file: {path!r}")
    events, meta = load_trace(path)
    tr = Tracer(capacity=max(len(events), 1))
    meta.pop("schema", None)
    tr.dropped = int(meta.pop("dropped", 0) or 0)
    tr.meta.update(meta)
    tr.events.extend(events)
    return tr


def _cmd_trace_summary(args) -> int:
    """Print the terminal digest of a recorded trace file."""
    from .trace import format_summary

    tr = _load_trace_file(args.trace_file)
    print(format_summary(tr))
    return 0


def _cmd_trace_export(args) -> int:
    """Convert a trace file between the Chrome and JSONL formats."""
    out = args.out
    if out is None:
        suffix = ".jsonl" if args.format == "jsonl" else ".chrome.json"
        out = str(Path(args.trace_file).with_suffix(suffix))
    _write_trace(_load_trace_file(args.trace_file), out, args.format)
    return 0


def _cmd_lint(args) -> int:
    """Static kernel-authoring lint over python sources."""
    import json

    from .analysis import lint_paths

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"no such file or directory: {', '.join(missing)}")
    findings = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps({
            "findings": [
                {"path": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message}
                for f in findings
            ],
            "count": len(findings),
        }, indent=2))
        return 1 if findings else 0
    for f in findings:
        print(f"{f.path}:{f.line}: {f.rule} {f.message}")
    n = len(findings)
    print(f"{n} finding(s)" if n else "clean ✓")
    return 1 if n else 0


def _cmd_analyze(args) -> int:
    """Static kernel effect inference + AN3xx race/async-safety audit."""
    import json

    from .analysis.static import (
        analyze_paths,
        build_manifest,
        diff_manifest,
        load_manifest,
        signature_payload,
        write_manifest,
    )

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"no such file or directory: {', '.join(missing)}")
    signatures, findings = analyze_paths(args.paths)
    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity != "error"]

    drift: list[str] = []
    if args.manifest:
        computed = build_manifest(signatures)
        if args.refresh:
            write_manifest(args.manifest, computed)
        else:
            try:
                committed = load_manifest(args.manifest)
            except FileNotFoundError:
                raise SystemExit(
                    f"manifest {args.manifest} not found; generate it with "
                    f"--refresh"
                )
            drift = diff_manifest(committed, computed)

    if args.format == "json":
        print(json.dumps({
            "kernels": {
                key: signature_payload(sig)
                for key, sig in sorted(signatures.items())
            },
            "findings": [
                {"path": f.path, "line": f.line, "code": f.code,
                 "severity": f.severity, "message": f.message,
                 "kernel": f.kernel}
                for f in findings
            ],
            "errors": len(errors),
            "warnings": len(warnings),
            "manifest_drift": drift,
        }, indent=2))
        return 1 if errors or drift else 0

    for f in findings:
        print(f"{f.path}:{f.line}: {f.code} [{f.severity}] {f.message}")
    verdicts: dict[str, int] = {}
    for sig in signatures.values():
        verdicts[sig.verdict] = verdicts.get(sig.verdict, 0) + 1
    vs = ", ".join(f"{n} {v}" for v, n in sorted(verdicts.items()))
    print(f"{len(signatures)} kernel(s) analyzed ({vs}); "
          f"{len(errors)} error(s), {len(warnings)} warning(s)")
    if args.manifest and args.refresh:
        print(f"manifest refreshed: {args.manifest}")
    for line in drift:
        print(f"manifest drift: {line}")
    if drift:
        print(f"refresh with: python -m repro.cli analyze "
              f"{' '.join(args.paths)} --manifest {args.manifest} --refresh")
    elif args.manifest and not args.refresh:
        print(f"manifest ✓ {args.manifest}")
    if not findings and not drift:
        print("clean ✓")
    return 1 if errors or drift else 0


def _cmd_selfcheck(_args) -> int:
    """Quick end-to-end health check: every method on one small graph."""
    g = kronecker(8, 8, weights="int", seed=0)
    comp = largest_component_vertices(g)
    source = int(comp[0])
    spec = V100.scaled_for_workload(1 / 64)
    failures = 0
    for m in method_names():
        kw = {"spec": spec} if m in GPU_METHODS else {}
        try:
            r = sssp(g, source, method=m, **kw)
            validate_distances(g, source, r.dist)
            print(f"  {m:<18} ok   ({r.time_ms:.4f} ms simulated)")
        except Exception as exc:  # pragma: no cover - only on breakage
            failures += 1
            print(f"  {m:<18} FAIL ({exc})")
    if failures:
        print(f"\n{failures} method(s) failed")
        return 1
    print(f"\nall {len(method_names())} methods validated against scipy ✓")
    return 0


def _cmd_bench_run(args) -> int:
    """Run a named suite and write its ``BENCH_<suite>.json`` trajectory."""
    from .bench import run_suite, write_trajectory

    trace_path = getattr(args, "trace", None)
    if trace_path and args.jobs != 1:
        raise SystemExit(
            "bench run --trace requires --jobs 1: worker processes cannot "
            "stream their device events back to the parent's ring buffer"
        )
    print(f"running bench suite {args.suite!r} (jobs={args.jobs}) ...")
    if trace_path:
        from .trace import tracing

        with tracing() as tr:
            tr.meta.update(suite=args.suite)
            records = run_suite(args.suite, progress=print, jobs=args.jobs)
    else:
        records = run_suite(args.suite, progress=print, jobs=args.jobs)
    out = Path(args.out) if args.out else Path(f"BENCH_{args.suite}.json")
    write_trajectory(out, records, suite=args.suite)
    print(f"wrote {len(records)} record(s) to {out}")
    if trace_path:
        _write_trace(tr, trace_path, None)
    return 0


def _cmd_bench_check(args) -> int:
    """Gate a fresh (or given) run against a committed baseline."""
    from .bench import (
        SchemaVersionError,
        compare_records,
        load_trajectory,
        run_suite,
    )

    try:
        meta, baseline = load_trajectory(args.baseline)
    except SchemaVersionError as exc:
        raise SystemExit(str(exc)) from None
    if args.current:
        try:
            _, current = load_trajectory(args.current)
        except SchemaVersionError as exc:
            raise SystemExit(str(exc)) from None
        print(f"comparing {args.current} against baseline {args.baseline}")
    else:
        suite = meta.get("suite", "quick")
        print(f"running suite {suite!r} against baseline {args.baseline}")
        current = run_suite(suite, progress=print, jobs=args.jobs)
    report = compare_records(
        baseline, current,
        wall_tolerance=args.wall_tolerance,
        check_wall=not args.no_wall,
    )
    print(report.summary())
    if report.ok:
        print("bench check: clean against baseline ✓")
        return 0
    print(
        "bench check: trajectory drifted — investigate, or refresh the "
        "baseline with `python -m repro.cli bench run` if the change is "
        "intended (see docs/benchmarking.md)"
    )
    return 1


def _cmd_bench_diff(args) -> int:
    """Print a per-cell regression table between two trajectory files."""
    from .bench import SchemaVersionError, format_diff, load_trajectory

    try:
        _, a = load_trajectory(args.a)
        _, b = load_trajectory(args.b)
    except SchemaVersionError as exc:
        raise SystemExit(str(exc)) from None
    print(format_diff(a, b, labels=(Path(args.a).name, Path(args.b).name)))
    return 0


def _cmd_serve(args) -> int:
    """Online query serving: run traffic sessions and gate correctness.

    Two modes share one exit-code contract (0 clean; 1 on any wrong
    answer or escaped fault):

    * ``--suite smoke|traffic`` plays every session of a serve bench
      suite (:mod:`repro.serve.bench`) — what CI gates on every PR;
    * a graph spec plays one ad-hoc session configured by the flags.
    """
    if args.suite is None and args.graph is None:
        raise SystemExit("serve: provide a graph spec, or --suite NAME "
                         "to play a serve bench suite")
    if args.trace and args.jobs != 1:
        raise SystemExit("serve --trace requires --jobs 1: worker "
                         "processes cannot stream request spans back")
    if args.trace:
        from .trace import tracing

        with tracing() as tr:
            tr.meta.update(suite=args.suite or "custom", seed=args.seed)
            code, records, suite_label = _serve_session(args)
        _write_trace(tr, args.trace, None)
    else:
        code, records, suite_label = _serve_session(args)
    if args.out:
        from .bench import write_trajectory

        write_trajectory(args.out, records, suite=suite_label)
        # keep stdout pure JSON under --format json
        dest = sys.stderr if args.format == "json" else sys.stdout
        print(f"wrote {len(records)} record(s) to {args.out}", file=dest)
    return code


def _serve_session(args):
    """Run the requested serve session(s); returns (exit_code, records)."""
    import json

    from .serve.bench import (
        SERVE_SUITES,
        ServeCellSpec,
        report_to_record,
        run_serve_cell,
    )

    fmt = args.format
    failures = 0
    records = []
    if args.suite is not None:
        suite = f"serve-{args.suite}"
        if suite not in SERVE_SUITES:
            short = ", ".join(s.removeprefix("serve-") for s in SERVE_SUITES)
            raise SystemExit(
                f"unknown serve suite {args.suite!r}; choose from {short}"
            )
        cells = SERVE_SUITES[suite]
        if fmt == "text":
            print(f"serve suite {suite!r} "
                  f"({len(cells)} session(s), seed offset {args.seed})")
        if args.jobs != 1:
            from .perf.parallel import resolve_jobs, run_tasks

            jobs = resolve_jobs(args.jobs)
            outcomes = run_tasks(
                run_serve_cell,
                [(suite, c.name, args.seed) for c in cells],
                jobs,
            )
        else:
            outcomes = [
                run_serve_cell(suite, c.name, args.seed) for c in cells
            ]
        sessions = []
        for cell, (report, rec) in zip(cells, outcomes):
            if fmt == "text":
                print(f"\n[{cell.dataset}/{cell.name}]")
                print(report.summary())
            sessions.append({
                "cell": cell.name,
                "dataset": cell.dataset,
                "ok": report.ok,
                "counters": report.counter_dict(),
            })
            records.append(rec)
            if not report.ok:
                failures += 1
        if fmt == "json":
            print(json.dumps({
                "suite": suite,
                "seed_offset": args.seed,
                "sessions": len(cells),
                "failures": failures,
                "ok": not failures,
                "reports": sessions,
            }, indent=2))
        else:
            print(f"\n{len(cells) - failures}/{len(cells)} session(s) clean"
                  + (" ✓" if not failures else " — FAILED"))
        return (1 if failures else 0), records, suite

    from .serve import ServeConfig, serve_traffic

    graph = parse_graph_spec(args.graph, seed=args.seed)
    config = ServeConfig(
        num_queries=args.queries,
        seed=args.seed,
        p2p_fraction=args.p2p_fraction,
        tolerance=args.tolerance,
        source_pool=args.pool,
        cold_fraction=args.cold_fraction,
        landmarks=args.landmarks,
        shards=args.shards,
        multi_gpu=args.multi_gpu,
        rate_qpms=args.rate,
        method=args.method,
        plan=args.plan,
        chaos=args.chaos_plan,
        deadline_ms=args.deadline_ms,
    )
    spec = (
        parse_gpu_spec(args.gpu, args.workload_scale)
        if args.method in GPU_METHODS else None
    )
    report = serve_traffic(
        graph, config, spec=spec, validate=not args.no_validate
    )
    if fmt == "json":
        print(json.dumps({
            "graph": graph.name,
            "seed": args.seed,
            "ok": report.ok,
            "counters": report.counter_dict(),
        }, indent=2))
    else:
        print(f"graph   : {graph}")
        print(report.summary())
    cell = ServeCellSpec(name="custom", dataset=graph.name, config=config)
    records.append(report_to_record(cell, report))
    return (0 if report.ok else 1), records, "serve-custom"


def _cmd_datasets(_args) -> int:
    print(f"{'name':<10} {'n':>8} {'m':>9} {'avg_deg':>8} {'class'}")
    from .graphs.surrogates import DATASETS

    for name, spec in DATASETS.items():
        g = load(name)
        print(
            f"{name:<10} {g.num_vertices:>8} {g.num_edges:>9} "
            f"{g.average_degree:>8.2f} stands in for {spec.stands_for}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Bucket-aware asynchronous SSSP (RDBS) reproduction",
    )
    p.add_argument(
        "--list-methods", action="store_true", help="list SSSP methods and exit"
    )
    sub = p.add_subparsers(dest="command")

    def common(sp, graph_required=True):
        if graph_required:
            sp.add_argument(
                "graph", help="graph spec (kind:args, dataset, or file)"
            )
        else:
            sp.add_argument(
                "graph", nargs="?", default=None,
                help="graph spec (kind:args, dataset, or file)",
            )
        sp.add_argument("--source", default="auto",
                        help="source vertex id or 'auto' (default)")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--gpu", default="v100", help="v100 | t4 | a100")
        sp.add_argument("--workload-scale", type=float, default=1 / 64,
                        help="scaled-simulation factor (default 1/64)")
        sp.add_argument("--delta", type=float, default=None)
        sp.add_argument("--no-validate", action="store_true")

    sp = sub.add_parser("solve", help="run one method")
    common(sp)
    sp.add_argument("--method", default="rdbs", choices=method_names())
    sp.set_defaults(fn=_cmd_solve)

    sp = sub.add_parser("compare", help="run several methods")
    common(sp)
    sp.add_argument("--methods", default="bl,adds,rdbs")
    sp.set_defaults(fn=_cmd_compare)

    sp = sub.add_parser(
        "profile",
        help="kernel timeline of one method, or --suite host-time profile",
    )
    common(sp, graph_required=False)
    sp.add_argument("--method", default="rdbs", choices=method_names())
    from .bench.suites import suite_names as _profile_suites

    sp.add_argument("--suite", default=None, choices=_profile_suites(),
                    help="profile host wall-time of a bench suite instead")
    sp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for --suite (0 = all cores)")
    sp.add_argument("--json", default=None, metavar="PATH",
                    help="also write the host-profile report "
                         "(with the per-primitive breakdown) as JSON")
    sp.set_defaults(fn=_cmd_profile)

    sp = sub.add_parser(
        "sanitize", help="run one method under the hazard sanitizer"
    )
    common(sp)
    sp.add_argument("--method", default="rdbs", choices=method_names(),
                    help="method to sanitize — any registered engine "
                         "(from the repro.sssp registry): %(choices)s")
    sp.add_argument("--strict", action="store_true",
                    help="raise on the first hazard instead of collecting")
    sp.add_argument("--warnings", action="store_true",
                    help="also print benign (warning-level) findings")
    sp.add_argument("--format", default="text", choices=["text", "json"],
                    help="output format (json for CI artifacts)")
    sp.set_defaults(fn=_cmd_sanitize)

    sp = sub.add_parser(
        "faults", help="run one method under deterministic fault injection"
    )
    common(sp)
    sp.add_argument("--method", default="rdbs", choices=sorted(GPU_METHODS))
    sp.add_argument("--plan", default="lost-updates", choices=plan_names())
    sp.add_argument("--no-recovery", action="store_true",
                    help="inject without the self-healing runtime")
    sp.add_argument("--trace", default=None, metavar="PATH",
                    help="also record a structured event trace (faults and "
                         "recovery actions on the simulated timeline)")
    sp.set_defaults(fn=_cmd_faults)

    sp = sub.add_parser(
        "lint", help="static kernel-authoring lint (repro-lint)"
    )
    sp.add_argument("paths", nargs="*", default=["src/repro"],
                    help="files or directories (default: src/repro)")
    sp.add_argument("--format", default="text", choices=["text", "json"],
                    help="output format (json for CI artifacts)")
    sp.set_defaults(fn=_cmd_lint)

    sp = sub.add_parser(
        "analyze",
        help="static kernel effect inference + async-safety audit (AN3xx)",
    )
    sp.add_argument("paths", nargs="*", default=["src/repro"],
                    help="files or directories (default: src/repro)")
    sp.add_argument("--format", default="text", choices=["text", "json"],
                    help="output format (json for CI artifacts)")
    sp.add_argument("--manifest", default=None, metavar="PATH",
                    help="gate inferred effect signatures against this "
                         "committed manifest (ANALYSIS_manifest.json)")
    sp.add_argument("--refresh", action="store_true",
                    help="rewrite the --manifest file instead of gating")
    sp.set_defaults(fn=_cmd_analyze)

    sp = sub.add_parser(
        "bench", help="continuous benchmarking (JSON perf trajectory)"
    )
    bench_sub = sp.add_subparsers(dest="bench_command", required=True)

    bp = bench_sub.add_parser(
        "run", help="run a suite and write BENCH_<suite>.json"
    )
    from .bench.suites import suite_names as _suite_names

    bp.add_argument("--suite", default="quick", choices=_suite_names())
    bp.add_argument("--out", default=None,
                    help="output path (default BENCH_<suite>.json in cwd)")
    bp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for suite cells (0 = all cores)")
    bp.add_argument("--trace", default=None, metavar="PATH",
                    help="also record a structured event trace of the whole "
                         "suite run (requires --jobs 1)")
    bp.set_defaults(fn=_cmd_bench_run)

    bp = bench_sub.add_parser(
        "check", help="re-run a baseline's suite and gate on regressions"
    )
    bp.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json to gate against")
    bp.add_argument("--current", default=None,
                    help="compare this trajectory file instead of re-running")
    bp.add_argument("--wall-tolerance", type=float, default=0.25,
                    help="relative host wall-clock slack (default 0.25)")
    bp.add_argument("--no-wall", action="store_true",
                    help="skip the wall-clock tier (cross-machine gating)")
    bp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the re-run (0 = all cores)")
    bp.set_defaults(fn=_cmd_bench_check)

    bp = bench_sub.add_parser(
        "diff", help="per-cell regression table between two trajectories"
    )
    bp.add_argument("a", help="left trajectory file")
    bp.add_argument("b", help="right trajectory file")
    bp.set_defaults(fn=_cmd_bench_diff)

    sp = sub.add_parser(
        "trace", help="structured event tracing (repro.trace)"
    )
    trace_sub = sp.add_subparsers(dest="trace_command", required=True)

    tp = trace_sub.add_parser(
        "run", help="run one method under the tracer and export the timeline"
    )
    common(tp)
    tp.add_argument("--method", default="rdbs", choices=method_names())
    tp.add_argument("--out", default="trace.json",
                    help="output path (default trace.json; *.jsonl selects "
                         "the JSONL format)")
    tp.add_argument("--format", default=None, choices=("chrome", "jsonl"),
                    help="export format (default: by --out suffix)")
    tp.add_argument("--capacity", type=int, default=None,
                    help="ring-buffer capacity in events "
                         "(default 262144; oldest events drop past it)")
    tp.add_argument("--plan", default=None, choices=plan_names(),
                    help="also inject this fault plan (recovery on), so the "
                         "trace shows faults and recovery actions")
    tp.set_defaults(fn=_cmd_trace_run)

    tp = trace_sub.add_parser(
        "summary", help="print the terminal digest of a trace file"
    )
    tp.add_argument("trace_file", help="chrome or jsonl trace file")
    tp.set_defaults(fn=_cmd_trace_summary)

    tp = trace_sub.add_parser(
        "export", help="convert a trace file between chrome and jsonl"
    )
    tp.add_argument("trace_file", help="chrome or jsonl trace file")
    tp.add_argument("--format", required=True, choices=("chrome", "jsonl"),
                    help="target format")
    tp.add_argument("--out", default=None,
                    help="output path (default: input with matching suffix)")
    tp.set_defaults(fn=_cmd_trace_export)

    sp = sub.add_parser(
        "serve", help="online SSSP query serving (repro.serve)"
    )
    sp.add_argument("graph", nargs="?", default=None,
                    help="graph spec for one ad-hoc session "
                         "(omit with --suite)")
    sp.add_argument("--suite", default=None, metavar="NAME",
                    help="play a serve bench suite (smoke | chaos | "
                         "traffic) instead of one graph")
    sp.add_argument("--seed", type=int, default=0,
                    help="session seed (suite mode: offset added to every "
                         "cell's committed seed; 0 = the gated baseline)")
    sp.add_argument("--queries", type=int, default=100,
                    help="queries in the ad-hoc session (default 100)")
    sp.add_argument("--p2p-fraction", type=float, default=0.7,
                    help="fraction of point-to-point queries (default 0.7)")
    sp.add_argument("--tolerance", type=float, default=0.15,
                    help="relative tolerance an oracle answer must certify")
    sp.add_argument("--pool", type=int, default=8,
                    help="hot-source pool size (default 8)")
    sp.add_argument("--cold-fraction", type=float, default=0.0,
                    help="fraction of p2p queries from cold uniform sources")
    sp.add_argument("--landmarks", type=int, default=4,
                    help="ALT landmark count for the oracle (default 4)")
    sp.add_argument("--shards", type=int, default=2,
                    help="simulated GPU lanes for exact batches (default 2)")
    sp.add_argument("--multi-gpu", type=int, default=1,
                    help=">1 runs exact fallbacks on the multi-GPU engine")
    sp.add_argument("--rate", type=float, default=25.0,
                    help="mean arrivals per simulated ms (default 25)")
    sp.add_argument("--method", default="rdbs", choices=method_names(),
                    help="exact engine for warmup and fallbacks")
    sp.add_argument("--plan", default=None, choices=plan_names(),
                    help="inject this fault plan into every exact run "
                         "(self-healing runtime on)")
    sp.add_argument("--chaos-plan", default=None,
                    choices=chaos_plan_names(),
                    help="attack the serving tier itself with this chaos "
                         "plan (shard blackouts/slowdowns, cache "
                         "corruption, oracle outages; repro.serve.chaos)")
    sp.add_argument("--deadline-ms", type=float, default=0.0,
                    help="per-request deadline in simulated ms; late "
                         "requests walk the degradation ladder "
                         "(0 = no deadline)")
    sp.add_argument("--format", default="text", choices=["text", "json"],
                    help="output format (json emits the session counter "
                         "dict for CI artifacts)")
    sp.add_argument("--gpu", default="v100", help="v100 | t4 | a100")
    sp.add_argument("--workload-scale", type=float, default=1 / 64,
                    help="scaled-simulation factor (default 1/64)")
    sp.add_argument("--jobs", type=int, default=1,
                    help="worker processes for suite sessions (0 = all "
                         "cores)")
    sp.add_argument("--out", default=None, metavar="PATH",
                    help="also write the session records as a trajectory "
                         "JSON (BENCH_serve.json schema)")
    sp.add_argument("--trace", default=None, metavar="PATH",
                    help="also record request spans as a structured trace "
                         "(requires --jobs 1)")
    sp.add_argument("--no-validate", action="store_true",
                    help="skip the SciPy correctness checks (ad-hoc "
                         "sessions only; suites always validate)")
    sp.set_defaults(fn=_cmd_serve)

    sp = sub.add_parser(
        "cache", help="inspect or clear the persistent artifact cache"
    )
    cache_sub = sp.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("status", help="entry counts, size, hit stats")
    cache_sub.add_parser("clear", help="delete every cache entry")
    sp.set_defaults(fn=_cmd_cache)

    sp = sub.add_parser("datasets", help="list bundled dataset surrogates")
    sp.set_defaults(fn=_cmd_datasets)

    sp = sub.add_parser(
        "selfcheck", help="validate every method on a small graph"
    )
    sp.set_defaults(fn=_cmd_selfcheck)
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_methods:
        print("\n".join(method_names()))
        return 0
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) closed the pipe mid-report;
        # detach stdout so interpreter shutdown doesn't re-raise on flush
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
