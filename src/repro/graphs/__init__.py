"""Graph substrate: CSR storage, generators, dataset surrogates, I/O."""

from .builder import from_edges
from .csr import CSRGraph, GraphValidationError
from .generators import (
    complete,
    erdos_renyi,
    grid_road_network,
    kronecker,
    paper_fig1_graph,
    paper_fig4_graph,
    path,
    preferential_attachment,
    small_world,
    star,
)
from .io import load_npz, read_dimacs_gr, read_edge_list, save_npz, write_dimacs_gr, write_edge_list
from .properties import (
    GraphStats,
    connected_components,
    degree_histogram,
    degree_skewness,
    estimate_diameter,
    graph_stats,
    largest_component_vertices,
)
from .partition import (
    block_partition,
    degree_balanced_partition,
    edge_balanced_partition,
    partition_edge_counts,
    partition_imbalance,
    random_partition,
)
from .surrogates import DATASETS, SurrogateSpec, dataset_names, load
from .transform import (
    clamp_weights,
    induced_subgraph,
    largest_component_subgraph,
    reverse_graph,
    scale_weights,
)
from .weights import (
    exponential_weights,
    reweight,
    uniform_int_weights,
    uniform_unit_weights,
)

__all__ = [
    "CSRGraph",
    "GraphValidationError",
    "from_edges",
    "kronecker",
    "grid_road_network",
    "preferential_attachment",
    "erdos_renyi",
    "small_world",
    "star",
    "path",
    "complete",
    "paper_fig1_graph",
    "paper_fig4_graph",
    "read_edge_list",
    "write_edge_list",
    "read_dimacs_gr",
    "write_dimacs_gr",
    "save_npz",
    "load_npz",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "degree_skewness",
    "estimate_diameter",
    "connected_components",
    "largest_component_vertices",
    "DATASETS",
    "SurrogateSpec",
    "dataset_names",
    "load",
    "uniform_int_weights",
    "uniform_unit_weights",
    "exponential_weights",
    "reweight",
    "induced_subgraph",
    "largest_component_subgraph",
    "reverse_graph",
    "scale_weights",
    "clamp_weights",
    "block_partition",
    "edge_balanced_partition",
    "random_partition",
    "degree_balanced_partition",
    "partition_edge_counts",
    "partition_imbalance",
]
