"""Synthetic graph generators.

The paper evaluates on two families of inputs:

* **Graph500 Kronecker graphs** (`§5.1.2`) with initiator
  ``A=0.57, B=0.19, C=0.19, D=0.05`` — identical in spirit to R-MAT —
  parameterized by ``SCALE`` (``n = 2**SCALE``) and ``edgefactor``
  (``m = edgefactor * n``); and
* **SNAP real-world graphs**, for which :mod:`repro.graphs.surrogates`
  builds scaled structural stand-ins from the generators in this module.

Every generator is vectorized (no per-edge Python loops) and deterministic
given a seed, which the benchmark harness relies on for reproducible tables.
"""

from __future__ import annotations

import numpy as np

from .builder import from_edges
from .csr import CSRGraph, VERTEX_DTYPE, WEIGHT_DTYPE
from .weights import uniform_int_weights, uniform_unit_weights

__all__ = [
    "kronecker",
    "rmat_edges",
    "grid_road_network",
    "preferential_attachment",
    "erdos_renyi",
    "small_world",
    "star",
    "path",
    "complete",
    "paper_fig1_graph",
    "paper_fig4_graph",
]

#: Graph500 initiator probabilities (paper §5.1.2).
GRAPH500_INITIATOR = (0.57, 0.19, 0.19, 0.05)

#: bump whenever any generator's output stream changes for the same
#: (name, seed) inputs — it keys the persistent surrogate artifact cache
#: (repro.perf.artifacts), so stale cached graphs miss instead of loading
GENERATOR_VERSION = 1


def rmat_edges(
    scale: int,
    num_edges: int,
    initiator: tuple[float, float, float, float] = GRAPH500_INITIATOR,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` R-MAT arcs over ``2**scale`` vertices.

    Each edge picks one quadrant per bit level according to the initiator
    matrix ``[[A, B], [C, D]]``; the row/column bit draws are vectorized
    across all edges and levels.  Like the Graph500 reference generator, ids
    are then scrambled by a random permutation so vertex id carries no degree
    information (the paper's reordering pass has to *discover* the hubs).
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    a, b, c, d = initiator
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("initiator probabilities must sum to 1")
    rng = rng or np.random.default_rng()
    n = 1 << scale
    src = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    dst = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    p_row = a + b  # probability the row bit is 0
    # conditional probability the column bit is 0 given the row bit
    p_col_given_row0 = a / (a + b) if a + b > 0 else 0.0
    p_col_given_row1 = c / (c + d) if c + d > 0 else 0.0
    for _level in range(scale):
        row_draw = rng.random(num_edges)
        col_draw = rng.random(num_edges)
        row_bit = (row_draw >= p_row).astype(VERTEX_DTYPE)
        p_col = np.where(row_bit == 0, p_col_given_row0, p_col_given_row1)
        col_bit = (col_draw >= p_col).astype(VERTEX_DTYPE)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    perm = rng.permutation(n).astype(VERTEX_DTYPE)
    return perm[src], perm[dst]


def kronecker(
    scale: int,
    edgefactor: int = 16,
    *,
    weights: str = "unit",
    max_weight: int = 1000,
    seed: int | None = 0,
    name: str | None = None,
) -> CSRGraph:
    """Generate a Graph500-style Kronecker graph.

    Parameters
    ----------
    scale:
        ``n = 2**scale`` vertices.
    edgefactor:
        ``m = edgefactor * n`` sampled arcs (before symmetrization/dedup,
        matching the Graph500 definition of edge count).
    weights:
        ``"unit"`` for uniform ``[0, 1)`` weights (the Graph500 convention
        the paper uses with Δ = 0.1 in Figs. 2–3) or ``"int"`` for uniform
        integers in ``1..max_weight`` (the convention of §5.1.2 for SNAP
        graphs).
    seed:
        RNG seed; the same seed always yields the same graph.
    """
    rng = np.random.default_rng(seed)
    num_edges = edgefactor * (1 << scale)
    src, dst = rmat_edges(scale, num_edges, rng=rng)
    if weights == "unit":
        w = uniform_unit_weights(num_edges, rng)
    elif weights == "int":
        w = uniform_int_weights(num_edges, max_weight, rng)
    else:
        raise ValueError(f"unknown weight scheme: {weights!r}")
    label = name or f"k-n{scale}-{edgefactor}"
    return from_edges(
        src, dst, w, num_vertices=1 << scale, symmetrize=True, name=label
    )


def grid_road_network(
    width: int,
    height: int,
    *,
    diagonal_prob: float = 0.05,
    drop_prob: float = 0.05,
    max_weight: int = 1000,
    seed: int | None = 0,
    name: str = "road",
) -> CSRGraph:
    """A road-network stand-in: a 2-D lattice with sparse diagonals.

    Road networks (e.g. roadNet-TX) are near-planar, have near-uniform small
    degree (avg ~1.4–2.8 directed) and very large diameter.  A width×height
    grid with a few random diagonal shortcuts and a few dropped street
    segments reproduces exactly those properties at any scale.
    """
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    rng = np.random.default_rng(seed)
    idx = np.arange(width * height, dtype=VERTEX_DTYPE).reshape(height, width)
    # horizontal and vertical street segments
    h_src = idx[:, :-1].ravel()
    h_dst = idx[:, 1:].ravel()
    v_src = idx[:-1, :].ravel()
    v_dst = idx[1:, :].ravel()
    src = np.concatenate([h_src, v_src])
    dst = np.concatenate([h_dst, v_dst])
    if drop_prob > 0 and src.size:
        keep = rng.random(src.size) >= drop_prob
        src, dst = src[keep], dst[keep]
    if diagonal_prob > 0 and height > 1 and width > 1:
        d_src = idx[:-1, :-1].ravel()
        d_dst = idx[1:, 1:].ravel()
        pick = rng.random(d_src.size) < diagonal_prob
        src = np.concatenate([src, d_src[pick]])
        dst = np.concatenate([dst, d_dst[pick]])
    w = uniform_int_weights(src.size, max_weight, rng)
    return from_edges(
        src, dst, w, num_vertices=width * height, symmetrize=True, name=name
    )


def preferential_attachment(
    num_vertices: int,
    edges_per_vertex: int,
    *,
    max_weight: int = 1000,
    seed: int | None = 0,
    name: str = "pa",
) -> CSRGraph:
    """Barabási–Albert-style preferential attachment (power-law degrees).

    Used as the structural stand-in for co-purchase / web graphs (Amazon,
    web-Google): heavy-tailed degrees with a mild tail, unlike the extreme
    skew of R-MAT.  Implemented with the repeated-endpoint trick: attaching
    to a uniformly random *endpoint* of an existing edge samples targets
    proportionally to degree, which vectorizes per attachment round.
    """
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    m0 = edges_per_vertex + 1
    if num_vertices <= m0:
        raise ValueError("num_vertices must exceed edges_per_vertex + 1")
    rng = np.random.default_rng(seed)
    # seed clique endpoints
    seed_src, seed_dst = np.triu_indices(m0, k=1)
    endpoints = [
        np.asarray(seed_src, dtype=VERTEX_DTYPE),
        np.asarray(seed_dst, dtype=VERTEX_DTYPE),
    ]
    src_parts = [endpoints[0]]
    dst_parts = [endpoints[1]]
    pool = np.concatenate(endpoints)
    for v in range(m0, num_vertices):
        targets = pool[rng.integers(0, pool.size, size=edges_per_vertex)]
        targets = np.unique(targets)
        news = np.full(targets.size, v, dtype=VERTEX_DTYPE)
        src_parts.append(news)
        dst_parts.append(targets)
        pool = np.concatenate([pool, news, targets])
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    w = uniform_int_weights(src.size, max_weight, rng)
    return from_edges(
        src, dst, w, num_vertices=num_vertices, symmetrize=True, name=name
    )


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    *,
    max_weight: int = 1000,
    seed: int | None = 0,
    name: str = "er",
) -> CSRGraph:
    """Uniform random graph with ``num_edges`` sampled arcs (G(n, m) model)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges).astype(VERTEX_DTYPE)
    dst = rng.integers(0, num_vertices, size=num_edges).astype(VERTEX_DTYPE)
    w = uniform_int_weights(num_edges, max_weight, rng)
    return from_edges(
        src, dst, w, num_vertices=num_vertices, symmetrize=True, name=name
    )


def small_world(
    num_vertices: int,
    ring_degree: int = 4,
    rewire_prob: float = 0.1,
    *,
    max_weight: int = 1000,
    seed: int | None = 0,
    name: str = "ws",
) -> CSRGraph:
    """Watts–Strogatz small-world graph (ring lattice + rewiring).

    Stand-in for social graphs with strong clustering and low diameter.
    """
    if ring_degree % 2 or ring_degree < 2:
        raise ValueError("ring_degree must be a positive even number")
    rng = np.random.default_rng(seed)
    base = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    src_parts, dst_parts = [], []
    for k in range(1, ring_degree // 2 + 1):
        src_parts.append(base)
        dst_parts.append((base + k) % num_vertices)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rewire = rng.random(src.size) < rewire_prob
    dst = dst.copy()
    dst[rewire] = rng.integers(0, num_vertices, size=int(rewire.sum()))
    w = uniform_int_weights(src.size, max_weight, rng)
    return from_edges(
        src, dst, w, num_vertices=num_vertices, symmetrize=True, name=name
    )


def star(num_leaves: int, *, weight: float = 1.0, name: str = "star") -> CSRGraph:
    """Hub vertex 0 connected to ``num_leaves`` leaves (worst-case imbalance)."""
    hub = np.zeros(num_leaves, dtype=VERTEX_DTYPE)
    leaves = np.arange(1, num_leaves + 1, dtype=VERTEX_DTYPE)
    w = np.full(num_leaves, weight, dtype=WEIGHT_DTYPE)
    return from_edges(
        hub, leaves, w, num_vertices=num_leaves + 1, symmetrize=True, name=name
    )


def path(num_vertices: int, *, weight: float = 1.0, name: str = "path") -> CSRGraph:
    """A simple path 0-1-...-(n-1) (worst-case diameter)."""
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    src = np.arange(num_vertices - 1, dtype=VERTEX_DTYPE)
    dst = src + 1
    w = np.full(src.size, weight, dtype=WEIGHT_DTYPE)
    return from_edges(
        src, dst, w, num_vertices=num_vertices, symmetrize=True, name=name
    )


def complete(num_vertices: int, *, seed: int | None = 0, name: str = "Kn") -> CSRGraph:
    """Complete graph with uniform integer weights (dense stress test)."""
    rng = np.random.default_rng(seed)
    src, dst = np.triu_indices(num_vertices, k=1)
    w = uniform_int_weights(src.size, 1000, rng)
    return from_edges(
        src.astype(VERTEX_DTYPE),
        dst.astype(VERTEX_DTYPE),
        w,
        num_vertices=num_vertices,
        symmetrize=True,
        name=name,
    )


# ----------------------------------------------------------------------
# Exact fixtures from the paper's figures
# ----------------------------------------------------------------------

def paper_fig1_graph() -> CSRGraph:
    """The 8-vertex, 13-edge undirected graph of Fig. 1(a).

    Reconstructed from the CSR arrays printed in Fig. 1(c) (the only
    symmetric weight assignment consistent with the printed value list):
    ``row  = [0, 3, 6, 9, 15, 18, 20, 23, 26]``
    ``adj  = [1,2,3, 0,3,5, 0,3,7, 0,1,2,4,6,7, 3,5,6, 1,4, 3,4,7, 2,3,6]``
    ``val  = [5,1,3, 5,1,1, 1,1,6, 3,1,1,1,7,3, 1,7,1, 1,7, 7,1,4, 6,3,4]``
    In particular vertex 4's adjacent weights are (1, 7, 1) — the example
    §3.1 uses for the Δ = 3 light/heavy split.
    """
    row = np.array([0, 3, 6, 9, 15, 18, 20, 23, 26])
    adj = np.array(
        [1, 2, 3, 0, 3, 5, 0, 3, 7, 0, 1, 2, 4, 6, 7, 3, 5, 6, 1, 4, 3, 4, 7, 2, 3, 6]
    )
    val = np.array(
        [5, 1, 3, 5, 1, 1, 1, 1, 6, 3, 1, 1, 1, 7, 3, 1, 7, 1, 1, 7, 7, 1, 4, 6, 3, 4],
        dtype=WEIGHT_DTYPE,
    )
    return CSRGraph(row=row, adj=adj, weights=val, name="paper-fig1")


def paper_fig4_graph() -> CSRGraph:
    """The 5-vertex undirected graph of Fig. 4(a).

    Edges (original ids), decoded from the reordered CSR arrays of
    Fig. 4(c): 0-1 w2, 0-3 w9, 1-2 w1, 1-3 w5, 1-4 w4, 2-4 w1, 3-4 w2.
    Degrees are therefore (2, 4, 2, 3, 3) as the paper states; with Δ = 3
    the stable descending-degree relabel is ``new_to_old = [1, 3, 4, 0, 2]``
    and the heavy-edge offsets come out ``[2, 5, 9, 11, 14]`` exactly as the
    green numbers in Fig. 4(c).
    """
    src = np.array([0, 0, 1, 1, 1, 2, 3])
    dst = np.array([1, 3, 2, 3, 4, 4, 4])
    w = np.array([2, 9, 1, 5, 4, 1, 2], dtype=WEIGHT_DTYPE)
    return from_edges(src, dst, w, num_vertices=5, symmetrize=True, name="paper-fig4")
