"""Graph serialization: edge-list text, DIMACS ``.gr`` and binary CSR.

The SNAP datasets the paper uses ship as whitespace-separated edge lists;
the 9th DIMACS shortest-path challenge (road networks) uses the ``.gr``
format.  Both readers are provided so a user with the original files can run
the benchmarks on the real inputs, and a compact ``.npz`` CSR round-trip is
provided for caching generated surrogates between benchmark runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .builder import from_edges
from .csr import CSRGraph, VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_dimacs_gr",
    "write_dimacs_gr",
    "save_npz",
    "load_npz",
]


def read_edge_list(
    path: str | os.PathLike,
    *,
    symmetrize: bool = True,
    default_weight: float = 1.0,
    comment: str = "#",
    name: str | None = None,
) -> CSRGraph:
    """Read a SNAP-style whitespace edge list.

    Lines are ``src dst [weight]``; lines starting with ``comment`` are
    skipped.  Missing weights default to ``default_weight`` (the paper
    replaces them with uniform 1..1000 draws afterwards — see
    :func:`repro.graphs.weights.reweight`).
    """
    srcs: list[int] = []
    dsts: list[int] = []
    ws: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) > 2 else default_weight)
    label = name or Path(path).stem
    return from_edges(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(ws, dtype=WEIGHT_DTYPE),
        symmetrize=symmetrize,
        name=label,
    )


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write ``src dst weight`` lines (directed arcs, one per line)."""
    src = graph.edge_sources()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {graph.name}: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v, w in zip(src, graph.adj, graph.weights):
            fh.write(f"{int(u)} {int(v)} {w:g}\n")


def read_dimacs_gr(path: str | os.PathLike, *, name: str | None = None) -> CSRGraph:
    """Read a 9th-DIMACS ``.gr`` shortest-path instance.

    Format: ``c`` comment lines, one ``p sp <n> <m>`` problem line, and
    ``a <src> <dst> <weight>`` arc lines with 1-based vertex ids.
    """
    n = None
    srcs: list[int] = []
    dsts: list[int] = []
    ws: list[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.startswith("c") or not line.strip():
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "sp":
                    raise ValueError(f"malformed DIMACS problem line: {line!r}")
                n = int(parts[2])
            elif line.startswith("a"):
                _, u, v, w = line.split()
                srcs.append(int(u) - 1)
                dsts.append(int(v) - 1)
                ws.append(float(w))
    if n is None:
        raise ValueError("DIMACS file has no problem line")
    label = name or Path(path).stem
    return from_edges(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(ws, dtype=WEIGHT_DTYPE),
        num_vertices=n,
        symmetrize=False,
        name=label,
    )


def write_dimacs_gr(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the graph as a DIMACS ``.gr`` instance (1-based, directed arcs)."""
    src = graph.edge_sources()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"c {graph.name}\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for u, v, w in zip(src, graph.adj, graph.weights):
            fh.write(f"a {int(u) + 1} {int(v) + 1} {w:g}\n")


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Persist the CSR arrays (and any PRO metadata) to a compressed .npz."""
    payload: dict[str, np.ndarray] = {
        "row": graph.row,
        "adj": graph.adj,
        "weights": graph.weights,
        "name": np.array(graph.name),
    }
    if graph.heavy_offsets is not None:
        payload["heavy_offsets"] = graph.heavy_offsets
        payload["delta"] = np.array(graph.delta, dtype=WEIGHT_DTYPE)
    if graph.new_to_old is not None:
        payload["new_to_old"] = graph.new_to_old
        payload["old_to_new"] = graph.old_to_new
    np.savez_compressed(path, **payload)


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    data = np.load(path, allow_pickle=False)
    return CSRGraph(
        row=data["row"],
        adj=data["adj"],
        weights=data["weights"],
        heavy_offsets=data["heavy_offsets"] if "heavy_offsets" in data else None,
        delta=float(data["delta"]) if "delta" in data else None,
        new_to_old=data["new_to_old"] if "new_to_old" in data else None,
        old_to_new=data["old_to_new"] if "old_to_new" in data else None,
        name=str(data["name"]),
    )
