"""Edge-weight generation schemes.

The paper uses two weight conventions:

* for SNAP graphs (which ship unweighted) it draws uniform integers in
  ``1..1000`` (§5.1.2); and
* for the Graph500 Δ-stepping motivation experiments (Figs. 2–3) weights are
  the Graph500 reference-code convention of uniform reals in ``[0, 1)`` with
  the empirical ``Δ = 0.1``.

Both are provided here, plus Euclidean-style weights for road networks where
weight correlates with geometric length.
"""

from __future__ import annotations

import numpy as np

from .csr import WEIGHT_DTYPE

__all__ = [
    "uniform_int_weights",
    "uniform_unit_weights",
    "exponential_weights",
    "reweight",
]


def uniform_int_weights(
    num_edges: int, max_weight: int = 1000, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Uniform integer weights in ``1..max_weight`` (inclusive), as float64."""
    if max_weight < 1:
        raise ValueError("max_weight must be >= 1")
    rng = rng or np.random.default_rng()
    return rng.integers(1, max_weight + 1, size=num_edges).astype(WEIGHT_DTYPE)


def uniform_unit_weights(
    num_edges: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Uniform real weights in ``[0, 1)`` — the Graph500 SSSP convention."""
    rng = rng or np.random.default_rng()
    return rng.random(num_edges).astype(WEIGHT_DTYPE)


def exponential_weights(
    num_edges: int, mean: float = 1.0, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Exponentially distributed weights (heavy-ish tail stress test)."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    rng = rng or np.random.default_rng()
    return rng.exponential(mean, size=num_edges).astype(WEIGHT_DTYPE)


def reweight(graph, scheme: str = "int", *, max_weight: int = 1000, seed: int = 0):
    """Return ``graph`` with freshly drawn weights under ``scheme``.

    ``scheme`` is one of ``"int"``, ``"unit"`` or ``"exp"``.  Because an
    undirected CSR graph stores each edge twice, the two arcs of one
    undirected edge are assigned the *same* weight by hashing the unordered
    endpoint pair — otherwise SSSP on the directed expansion would not match
    the undirected problem the paper solves.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    src = graph.edge_sources()
    dst = graph.adj
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo * n + hi
    uniq, inverse = np.unique(key, return_inverse=True)
    if scheme == "int":
        per_edge = uniform_int_weights(uniq.size, max_weight, rng)
    elif scheme == "unit":
        per_edge = uniform_unit_weights(uniq.size, rng)
    elif scheme == "exp":
        per_edge = exponential_weights(uniq.size, 1.0, rng)
    else:
        raise ValueError(f"unknown weight scheme: {scheme!r}")
    return graph.with_weights(per_edge[inverse])
