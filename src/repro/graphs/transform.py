"""Graph transforms: subgraphs, component restriction, weight scaling.

Utilities a benchmark or application layer needs around the immutable CSR
core: extracting induced subgraphs (relabeled densely), restricting to the
largest connected component (so every SSSP source reaches most vertices,
as the paper's methodology assumes), reversing edge direction, and scaling
or clamping weights.
"""

from __future__ import annotations

import numpy as np

from .builder import from_edges
from .csr import CSRGraph, VERTEX_DTYPE
from .properties import largest_component_vertices

__all__ = [
    "induced_subgraph",
    "largest_component_subgraph",
    "reverse_graph",
    "scale_weights",
    "clamp_weights",
]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray, *, name: str | None = None
) -> tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by ``vertices``, densely relabeled.

    Returns ``(subgraph, new_to_old)`` where ``new_to_old[k]`` is the
    original id of subgraph vertex ``k``.  Edges with either endpoint
    outside the set are dropped.
    """
    vertices = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
    if vertices.size and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise ValueError("vertex ids out of range")
    old_to_new = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    old_to_new[vertices] = np.arange(vertices.size, dtype=VERTEX_DTYPE)

    src = graph.edge_sources()
    keep = (old_to_new[src] >= 0) & (old_to_new[graph.adj] >= 0)
    sub = from_edges(
        old_to_new[src[keep]],
        old_to_new[graph.adj[keep]],
        graph.weights[keep],
        num_vertices=vertices.size,
        symmetrize=False,
        dedup=False,
        drop_self_loops=False,
        name=name or f"{graph.name}-sub",
    )
    return sub, vertices


def largest_component_subgraph(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Restrict ``graph`` to its largest connected component."""
    comp = largest_component_vertices(graph)
    return induced_subgraph(graph, comp, name=f"{graph.name}-lcc")


def reverse_graph(graph: CSRGraph) -> CSRGraph:
    """Transpose: every edge ``u -> v`` becomes ``v -> u``.

    Single-destination shortest paths on the original graph are SSSP on
    the transpose.
    """
    return from_edges(
        graph.adj,
        graph.edge_sources(),
        graph.weights,
        num_vertices=graph.num_vertices,
        symmetrize=False,
        dedup=False,
        drop_self_loops=False,
        name=f"{graph.name}-rev",
    )


def scale_weights(graph: CSRGraph, factor: float) -> CSRGraph:
    """Multiply every weight by ``factor`` (> 0).

    Distances scale by exactly ``factor``; bucket structure scales with
    them, so this is the clean way to test Δ-invariance.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return graph.with_weights(graph.weights * factor)


def clamp_weights(graph: CSRGraph, lo: float, hi: float) -> CSRGraph:
    """Clamp weights into ``[lo, hi]`` (tightening weight variance)."""
    if not 0 <= lo <= hi:
        raise ValueError("need 0 <= lo <= hi")
    return graph.with_weights(np.clip(graph.weights, lo, hi))
