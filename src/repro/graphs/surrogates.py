"""Scaled stand-ins for the paper's real-world datasets (Table 1).

The paper evaluates on ten SNAP/Network-Repository graphs (up to soc-twitter's
265 M edges) which are neither bundled with this repository nor downloadable
in the offline environment.  Each entry here generates a *structural
surrogate* at roughly 1/64–1/256 the original edge count from the matching
generator family:

========  =======================  =================================
dataset   structural class         surrogate generator
========  =======================  =================================
road-TX   planar, uniform degree,  2-D lattice with sparse diagonals
          huge diameter
Amazon    co-purchase, mild tail   preferential attachment
web-GL    web, power law           R-MAT (moderate skew)
com-LJ    social, power law        R-MAT (Graph500 initiator)
soc-PK    social, power law        R-MAT, higher edgefactor
com-OK    social, dense power law  R-MAT, edgefactor ~19
as-Skt    internet topology        R-MAT (strong skew)
soc-LJ    social, power law        R-MAT
wiki-TK   communication, extreme   star-heavy R-MAT (A=0.65)
          skew, avg degree ~2
soc-TW    social, very large       R-MAT (largest surrogate)
k-n21-16  Graph500 Kronecker       Kronecker SCALE 13, ef 16
========  =======================  =================================

What the substitution preserves: degree-distribution class (uniform vs
power law and its skew), average degree, and diameter class — the three
graph properties every effect in the paper (load imbalance, locality,
convergence speed) is attributed to.  What it does not preserve: absolute
vertex/edge counts, hence absolute runtimes; EXPERIMENTS.md therefore
compares *shapes* (speedup orderings, ratios) rather than milliseconds.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from .csr import CSRGraph
from . import generators as gen

__all__ = ["SurrogateSpec", "DATASETS", "load", "dataset_names", "PAPER_TABLE1"]


@dataclass(frozen=True)
class SurrogateSpec:
    """Recipe for one dataset surrogate."""

    name: str
    #: the real dataset this stands in for
    stands_for: str
    #: paper-reported vertex/edge counts of the real dataset (Table 1)
    paper_vertices: int
    paper_edges: int
    paper_avg_degree: float
    paper_diameter: int
    #: zero-argument factory producing the surrogate graph
    factory: Callable[[], CSRGraph]


def _rmat(name: str, scale: int, edgefactor: int, seed: int, a: float = 0.57):
    b = c = (1.0 - a - 0.05) / 2.0
    initiator = (a, b, c, 0.05)

    def build() -> CSRGraph:
        import numpy as np

        from .builder import from_edges
        from .weights import uniform_int_weights

        rng = np.random.default_rng(seed)
        m = edgefactor * (1 << scale)
        src, dst = gen.rmat_edges(scale, m, initiator=initiator, rng=rng)
        w = uniform_int_weights(m, 1000, rng)
        return from_edges(
            src, dst, w, num_vertices=1 << scale, symmetrize=True, name=name
        )

    return build


# Paper Table 1 numbers, kept verbatim for the bench_table1 comparison.
PAPER_TABLE1 = {
    "road-TX": (1_379_917, 1_921_660, 1.39, 1054),
    "Amazon": (403_394, 3_387_388, 8.39, 21),
    "web-GL": (875_713, 5_105_039, 5.82, 21),
    "com-LJ": (3_997_962, 34_681_189, 8.67, 17),
    "soc-PK": (1_632_803, 30_622_564, 18.75, 11),
    "com-OK": (3_072_441, 117_185_083, 38.141, 9),
    "as-Skt": (1_696_415, 11_095_298, 6.540, 25),
    "soc-LJ": (4_847_571, 68_993_773, 14.233, 16),
    "wiki-TK": (2_394_385, 5_021_410, 2.097, 9),
    "soc-TW": (21_297_772, 265_025_545, 12.444, 18),
}


DATASETS: dict[str, SurrogateSpec] = {
    "road-TX": SurrogateSpec(
        "road-TX",
        "roadNet-TX (SNAP)",
        *PAPER_TABLE1["road-TX"],
        factory=lambda: gen.grid_road_network(
            128, 128, diagonal_prob=0.03, drop_prob=0.06, seed=11, name="road-TX"
        ),
    ),
    "Amazon": SurrogateSpec(
        "Amazon",
        "amazon0601 (SNAP)",
        *PAPER_TABLE1["Amazon"],
        factory=lambda: gen.preferential_attachment(
            6000, 4, seed=12, name="Amazon"
        ),
    ),
    "web-GL": SurrogateSpec(
        "web-GL",
        "web-Google (SNAP)",
        *PAPER_TABLE1["web-GL"],
        factory=_rmat("web-GL", scale=13, edgefactor=3, seed=13, a=0.60),
    ),
    "com-LJ": SurrogateSpec(
        "com-LJ",
        "com-LiveJournal (SNAP)",
        *PAPER_TABLE1["com-LJ"],
        factory=_rmat("com-LJ", scale=14, edgefactor=4, seed=14),
    ),
    "soc-PK": SurrogateSpec(
        "soc-PK",
        "soc-Pokec (SNAP)",
        *PAPER_TABLE1["soc-PK"],
        factory=_rmat("soc-PK", scale=13, edgefactor=9, seed=15),
    ),
    "com-OK": SurrogateSpec(
        "com-OK",
        "com-Orkut (SNAP)",
        *PAPER_TABLE1["com-OK"],
        factory=_rmat("com-OK", scale=13, edgefactor=19, seed=16),
    ),
    "as-Skt": SurrogateSpec(
        "as-Skt",
        "as-Skitter (SNAP)",
        *PAPER_TABLE1["as-Skt"],
        factory=_rmat("as-Skt", scale=13, edgefactor=3, seed=17, a=0.62),
    ),
    "soc-LJ": SurrogateSpec(
        "soc-LJ",
        "soc-LiveJournal1 (SNAP)",
        *PAPER_TABLE1["soc-LJ"],
        factory=_rmat("soc-LJ", scale=14, edgefactor=7, seed=18),
    ),
    "wiki-TK": SurrogateSpec(
        "wiki-TK",
        "wiki-Talk (SNAP)",
        *PAPER_TABLE1["wiki-TK"],
        factory=_rmat("wiki-TK", scale=13, edgefactor=1, seed=19, a=0.65),
    ),
    "soc-TW": SurrogateSpec(
        "soc-TW",
        "soc-twitter-2010 (Network Repository)",
        *PAPER_TABLE1["soc-TW"],
        factory=_rmat("soc-TW", scale=15, edgefactor=6, seed=20),
    ),
    "k-n21-16": SurrogateSpec(
        "k-n21-16",
        "Graph500 Kronecker SCALE=21 edgefactor=16",
        2_097_152,
        33_554_432,
        16.0,
        8,
        factory=lambda: gen.kronecker(
            13, 16, weights="int", seed=21, name="k-n21-16"
        ),
    ),
}


def dataset_names() -> list[str]:
    """Names of all registered surrogates, Table-1 order first."""
    return list(DATASETS)


def load(name: str) -> CSRGraph:
    """Build (deterministically) the surrogate for dataset ``name``.

    The generated CSR arrays are memoized through the persistent artifact
    cache (:mod:`repro.perf.artifacts`) keyed by the dataset name and
    :data:`repro.graphs.generators.GENERATOR_VERSION`, so repeat benchmark
    sessions skip generation entirely.  Cached and freshly-generated
    graphs are element-identical (hash-verified on load).
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None

    from ..perf import artifacts, profile

    def build() -> dict:
        with profile.region(f"generate:{name}"):
            g = spec.factory()
        return {"row": g.row, "adj": g.adj, "weights": g.weights}

    arrays, _hit = artifacts.fetch(
        "surrogate", (name, gen.GENERATOR_VERSION), build
    )
    return CSRGraph(
        row=arrays["row"], adj=arrays["adj"], weights=arrays["weights"], name=name
    )
