"""Vertex partitioning strategies for distributed execution.

The multi-GPU prototype (paper §7 future work) assigns each vertex's
out-edges to one device.  How vertices are split determines per-device
load balance — the same power-law problem ADWL solves within one GPU
recurs *across* GPUs:

* :func:`block_partition` — contiguous equal-vertex blocks (the naive
  default; hub clustering makes it edge-imbalanced on reordered graphs);
* :func:`edge_balanced_partition` — contiguous blocks split at equal
  *edge*-count prefixes (keeps CSR locality, balances work);
* :func:`random_partition` — hashed assignment (balanced in expectation,
  destroys locality);
* :func:`degree_balanced_partition` — greedy longest-processing-time
  assignment by degree (best balance, arbitrary ownership).

All return an ``owner`` array mapping vertex → partition id, plus
:func:`partition_edge_counts` to quantify the resulting balance.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, VERTEX_DTYPE

__all__ = [
    "block_partition",
    "edge_balanced_partition",
    "random_partition",
    "degree_balanced_partition",
    "partition_edge_counts",
    "partition_imbalance",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise ValueError("need at least one partition")


def block_partition(num_vertices: int, k: int) -> np.ndarray:
    """Contiguous blocks of ``ceil(n/k)`` vertices."""
    _check_k(k)
    block = max((num_vertices + k - 1) // k, 1)
    return np.minimum(
        np.arange(num_vertices, dtype=VERTEX_DTYPE) // block, k - 1
    )


def edge_balanced_partition(graph: CSRGraph, k: int) -> np.ndarray:
    """Contiguous blocks split at (approximately) equal edge-count prefixes.

    Uses the CSR row offsets directly: vertex ``v`` goes to partition
    ``floor(row[v] · k / m)`` — one vectorized expression, perfectly
    balanced up to one vertex's degree per boundary.
    """
    _check_k(k)
    n = graph.num_vertices
    m = graph.num_edges
    if n == 0:
        return np.zeros(0, dtype=VERTEX_DTYPE)
    if m == 0:
        return block_partition(n, k)
    owner = (graph.row[:-1] * k) // m
    return np.minimum(owner, k - 1).astype(VERTEX_DTYPE)


def random_partition(
    num_vertices: int, k: int, seed: int = 0
) -> np.ndarray:
    """Uniform random assignment (balanced in expectation)."""
    _check_k(k)
    rng = np.random.default_rng(seed)
    return rng.integers(0, k, size=num_vertices).astype(VERTEX_DTYPE)


def degree_balanced_partition(graph: CSRGraph, k: int) -> np.ndarray:
    """Greedy LPT: highest-degree vertices first, to the lightest part."""
    _check_k(k)
    n = graph.num_vertices
    owner = np.zeros(n, dtype=VERTEX_DTYPE)
    loads = np.zeros(k, dtype=np.int64)
    order = np.argsort(-graph.degrees, kind="stable")
    deg = graph.degrees
    for v in order:
        p = int(np.argmin(loads))
        owner[v] = p
        loads[p] += int(deg[v])
    return owner


def partition_edge_counts(graph: CSRGraph, owner: np.ndarray) -> np.ndarray:
    """Out-edge count owned by each partition."""
    k = int(owner.max()) + 1 if owner.size else 0
    return np.bincount(owner, weights=graph.degrees, minlength=k).astype(
        np.int64
    )


def partition_imbalance(graph: CSRGraph, owner: np.ndarray) -> float:
    """Max/mean edge load across partitions (1.0 = perfect balance)."""
    counts = partition_edge_counts(graph, owner)
    if counts.size == 0 or counts.mean() == 0:
        return 1.0
    return float(counts.max() / counts.mean())
