"""Graph statistics used for Table 1 and the motivation analysis.

Everything here is derived data: degree distributions (the power-law
skewness that motivates adaptive load balancing, §3.2), approximate
diameter (road-TX's 1054-hop diameter is why synchronous push mode drowns
in barriers there), and connected components (SSSP sources are drawn from
the largest component so a run traverses most of the graph, matching the
paper's random-64-sources methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from ..util.scan import segmented_arange

__all__ = [
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "degree_skewness",
    "estimate_diameter",
    "connected_components",
    "largest_component_vertices",
]


@dataclass(frozen=True)
class GraphStats:
    """Summary row for one dataset (the columns of Table 1)."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    diameter_estimate: int
    max_degree: int
    degree_skewness: float

    def as_row(self) -> tuple:
        """Tuple in Table-1 column order."""
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            round(self.avg_degree, 3),
            self.diameter_estimate,
        )


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with out-degree ``d``."""
    return np.bincount(graph.degrees)


def degree_skewness(graph: CSRGraph) -> float:
    """Fisher skewness of the degree distribution.

    Power-law graphs (the paper's motivation 2) have strongly positive
    skew; road networks are near zero.
    """
    deg = graph.degrees.astype(np.float64)
    if deg.size == 0:
        return 0.0
    mu = deg.mean()
    sigma = deg.std()
    if sigma == 0:
        return 0.0
    return float(((deg - mu) ** 3).mean() / sigma**3)


def _bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Unweighted BFS levels from ``source`` (-1 for unreachable)."""
    n = graph.num_vertices
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        starts = graph.row[frontier]
        stops = graph.row[frontier + 1]
        counts = stops - starts
        if counts.sum() == 0:
            break
        # gather all neighbor slices of the frontier in one flat index build
        idx = np.repeat(starts, counts) + segmented_arange(counts)
        neigh = graph.adj[idx]
        fresh = neigh[level[neigh] == -1]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        level[fresh] = depth
        frontier = fresh
    return level


def estimate_diameter(
    graph: CSRGraph, num_probes: int = 4, seed: int = 0
) -> int:
    """Lower-bound the diameter with double-sweep BFS probes.

    The classic double-sweep heuristic: BFS from a random vertex, then BFS
    again from the farthest vertex found; the eccentricity of the second
    sweep lower-bounds (and in practice nearly equals) the diameter.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(num_probes):
        start = int(rng.integers(0, n))
        lv1 = _bfs_levels(graph, start)
        far = int(np.argmax(lv1))
        lv2 = _bfs_levels(graph, far)
        best = max(best, int(lv2.max()))
    return best


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (treats edges as undirected).

    Uses scipy's union-find based routine over the CSR structure.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components as _cc

    n = graph.num_vertices
    mat = csr_matrix(
        (np.ones(graph.num_edges, dtype=np.int8), graph.adj, graph.row),
        shape=(n, n),
    )
    _count, labels = _cc(mat, directed=False)
    return labels


def largest_component_vertices(graph: CSRGraph) -> np.ndarray:
    """Vertex ids of the largest connected component (sorted)."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(labels)
    big = int(np.argmax(counts))
    return np.flatnonzero(labels == big).astype(np.int64)


def graph_stats(graph: CSRGraph, *, diameter_probes: int = 2) -> GraphStats:
    """Compute the Table-1 style summary for ``graph``."""
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=graph.average_degree,
        diameter_estimate=estimate_diameter(graph, num_probes=diameter_probes),
        max_degree=int(graph.degrees.max()) if graph.num_vertices else 0,
        degree_skewness=degree_skewness(graph),
    )
