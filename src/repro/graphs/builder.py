"""Edge-list to CSR construction.

All generators and loaders produce ``(src, dst, weight)`` triplets; this
module canonicalizes them (optional symmetrization, self-loop removal and
parallel-edge deduplication) and packs them into :class:`~repro.graphs.csr.CSRGraph`
with a single vectorized counting sort — the same preprocessing the Graph500
reference code applies before running Δ-stepping.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = ["from_edges", "symmetrize_edges", "dedup_edges", "remove_self_loops"]


def remove_self_loops(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drop edges with ``src == dst`` (they never shorten any path)."""
    keep = src != dst
    return src[keep], dst[keep], weight[keep]


def symmetrize_edges(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Add the reverse of every edge, producing an undirected edge set.

    The paper evaluates on undirected graphs (SNAP datasets, Graph500
    Kronecker), so each input arc contributes both directions with the same
    weight.
    """
    return (
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        np.concatenate([weight, weight]),
    )


def dedup_edges(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse parallel edges, keeping the minimum weight per ``(u, v)``.

    Keeping the minimum is the only semantics-preserving choice for SSSP: any
    heavier parallel edge can never appear on a shortest path.
    """
    if src.size == 0:
        return src, dst, weight
    # Sort lexicographically by (src, dst, weight) so the first edge of each
    # (src, dst) run carries the minimum weight.
    order = np.lexsort((weight, dst, src))
    src, dst, weight = src[order], dst[order], weight[order]
    first = np.ones(src.size, dtype=bool)
    first[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    return src[first], dst[first], weight[first]


def from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    num_vertices: int | None = None,
    *,
    symmetrize: bool = False,
    dedup: bool = True,
    drop_self_loops: bool = True,
    name: str = "graph",
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel edge arrays.

    Parameters
    ----------
    src, dst, weight:
        parallel 1-D arrays describing directed edges.
    num_vertices:
        vertex-set size; inferred as ``max(id) + 1`` when omitted.  Pass it
        explicitly for graphs that may contain isolated high-numbered
        vertices.
    symmetrize:
        add the reverse arc of every edge before packing.
    dedup:
        collapse parallel edges to their minimum weight.
    drop_self_loops:
        remove ``u -> u`` arcs.
    name:
        label stored on the resulting graph.
    """
    src = np.asarray(src, dtype=VERTEX_DTYPE).ravel()
    dst = np.asarray(dst, dtype=VERTEX_DTYPE).ravel()
    weight = np.asarray(weight, dtype=WEIGHT_DTYPE).ravel()
    if not (src.size == dst.size == weight.size):
        raise ValueError("src, dst and weight must have equal length")
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise ValueError("vertex ids must be non-negative")
    if src.size and max(src.max(), dst.max()) >= num_vertices:
        raise ValueError("vertex id exceeds num_vertices")

    if drop_self_loops:
        src, dst, weight = remove_self_loops(src, dst, weight)
    if symmetrize:
        src, dst, weight = symmetrize_edges(src, dst, weight)
    if dedup:
        src, dst, weight = dedup_edges(src, dst, weight)

    # Counting sort by source vertex: a stable O(n + m) CSR pack.
    counts = np.bincount(src, minlength=num_vertices).astype(VERTEX_DTYPE)
    row = np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE)
    np.cumsum(counts, out=row[1:])
    order = np.argsort(src, kind="stable")
    return CSRGraph(row=row, adj=dst[order], weights=weight[order], name=name)
