"""Compressed Sparse Row (CSR) graph substrate.

The CSR layout is the canonical in-memory representation used by the paper
(Fig. 1(c)): a *row list* of size ``n + 1`` with the adjacency offsets of each
vertex, an *adjacency list* with the destination vertex of every edge, and a
*value list* with the weight of every edge.  All three are flat NumPy arrays
so the rest of the library (reordering passes, the GPU execution-model
simulator, the SSSP kernels) can operate on them with vectorized primitives.

Two extensions over the textbook CSR are provided because the paper's
property-driven reordering (PRO, §4.1) requires them:

* an optional *heavy-edge offset* array ``heavy_offsets`` giving, for every
  vertex, the index of its first heavy edge (weight >= delta) inside its
  adjacency segment — valid only when each adjacency segment is sorted by
  ascending weight; and
* an optional permutation pair (``new_to_old`` / ``old_to_new``) recording a
  vertex relabeling so distances can be reported in the original id space.

The class is deliberately immutable after construction: SSSP algorithms never
mutate topology, and immutability lets graphs be shared freely between
benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRGraph", "GraphValidationError"]

#: dtype used for vertex ids and edge offsets.  int64 everywhere keeps the
#: arithmetic safe for the largest graphs exercised by the benchmarks while
#: staying a native NumPy integer type.
VERTEX_DTYPE = np.int64
#: dtype used for edge weights and distances.  float64 covers both the
#: paper's integer 1..1000 weights and the Graph500 unit-interval weights.
WEIGHT_DTYPE = np.float64


class GraphValidationError(ValueError):
    """Raised when CSR arrays are structurally inconsistent."""


@dataclass(frozen=True)
class CSRGraph:
    """An immutable weighted directed graph in CSR form.

    Parameters
    ----------
    row:
        ``(n + 1,)`` int64 array; ``row[u]:row[u + 1]`` is the slice of
        ``adj``/``weights`` holding vertex ``u``'s out-edges.
    adj:
        ``(m,)`` int64 array of edge destinations.
    weights:
        ``(m,)`` float64 array of edge weights (non-negative).
    heavy_offsets:
        optional ``(n,)`` int64 array; ``heavy_offsets[u]`` is the absolute
        index into ``adj`` of the first *heavy* edge of ``u`` (the paper adds
        this column to the row list in Fig. 4(c)).  ``None`` for graphs that
        have not been weight-sorted.
    delta:
        the delta value ``heavy_offsets`` was computed for, or ``None``.
    new_to_old / old_to_new:
        optional relabeling permutations produced by degree reordering.
    name:
        human-readable label used in benchmark tables.
    """

    row: np.ndarray
    adj: np.ndarray
    weights: np.ndarray
    heavy_offsets: np.ndarray | None = None
    delta: float | None = None
    new_to_old: np.ndarray | None = None
    old_to_new: np.ndarray | None = None
    name: str = "graph"
    _degrees: np.ndarray = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # construction & validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        row = np.ascontiguousarray(self.row, dtype=VERTEX_DTYPE)
        adj = np.ascontiguousarray(self.adj, dtype=VERTEX_DTYPE)
        weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "adj", adj)
        object.__setattr__(self, "weights", weights)
        if self.heavy_offsets is not None:
            object.__setattr__(
                self,
                "heavy_offsets",
                np.ascontiguousarray(self.heavy_offsets, dtype=VERTEX_DTYPE),
            )
        self._validate()
        degrees = np.diff(row)
        object.__setattr__(self, "_degrees", degrees)
        # The arrays back simulated device memory; freeze them so an errant
        # kernel cannot corrupt a shared graph.
        for arr in (row, adj, weights, self.heavy_offsets, degrees):
            if arr is not None:
                arr.setflags(write=False)

    def _validate(self) -> None:
        if self.row.ndim != 1 or self.row.size < 1:
            raise GraphValidationError("row list must be 1-D with size >= 1")
        n = self.row.size - 1
        m = self.adj.size
        if self.row[0] != 0:
            raise GraphValidationError("row[0] must be 0")
        if self.row[-1] != m:
            raise GraphValidationError(
                f"row[-1] ({int(self.row[-1])}) must equal the edge count ({m})"
            )
        if np.any(np.diff(self.row) < 0):
            raise GraphValidationError("row list must be non-decreasing")
        if self.weights.size != m:
            raise GraphValidationError("weights and adj must have equal size")
        if m and (self.adj.min() < 0 or self.adj.max() >= n):
            raise GraphValidationError("adjacency ids out of range")
        if m and not np.isfinite(self.weights).all():
            # NaN/inf weights silently break Δ-stepping termination (a NaN
            # compares false against every bucket bound), so reject them
            # at construction with a diagnosable error
            bad = int(np.flatnonzero(~np.isfinite(self.weights))[0])
            raise GraphValidationError(
                f"edge weights must be finite; weights[{bad}] = "
                f"{self.weights[bad]}"
            )
        if m and self.weights.min() < 0:
            raise GraphValidationError("edge weights must be non-negative")
        if self.heavy_offsets is not None:
            if self.heavy_offsets.size != n:
                raise GraphValidationError("heavy_offsets must have size n")
            lo = self.row[:-1]
            hi = self.row[1:]
            if np.any(self.heavy_offsets < lo) or np.any(self.heavy_offsets > hi):
                raise GraphValidationError(
                    "heavy_offsets must lie within each vertex's edge range"
                )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """Stable hash of the graph's topology and weights.

        The digest covers ``row``/``adj``/``weights`` (names, dtypes,
        shapes, bytes) and is the cache key the artifact store uses for
        derived products (PRO reorderings, oracle distances).  Computed
        lazily and memoized on the instance — the arrays are frozen at
        construction, so one pass is enough.
        """
        cached = self.__dict__.get("_content_digest")
        if cached is None:
            from ..perf.artifacts import digest_arrays

            cached = digest_arrays(
                {"row": self.row, "adj": self.adj, "weights": self.weights}
            )
            object.__setattr__(self, "_content_digest", cached)
        return cached

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.row.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (an undirected edge counts twice)."""
        return self.adj.size

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex, shape ``(n,)``."""
        return self._degrees

    @property
    def average_degree(self) -> float:
        """Mean out-degree; 0.0 for the empty graph."""
        n = self.num_vertices
        return float(self.num_edges) / n if n else 0.0

    @property
    def is_reordered(self) -> bool:
        """True when the graph carries a vertex relabeling permutation."""
        return self.new_to_old is not None

    @property
    def has_heavy_offsets(self) -> bool:
        """True when per-vertex heavy-edge offsets are available."""
        return self.heavy_offsets is not None

    # ------------------------------------------------------------------
    # per-vertex access
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> np.ndarray:
        """Destination ids of ``u``'s out-edges (a read-only view)."""
        return self.adj[self.row[u] : self.row[u + 1]]

    def edge_weights(self, u: int) -> np.ndarray:
        """Weights of ``u``'s out-edges (a read-only view)."""
        return self.weights[self.row[u] : self.row[u + 1]]

    def light_range(self, u: int) -> tuple[int, int]:
        """``(start, stop)`` indices of ``u``'s light edges.

        Requires heavy offsets (i.e. a weight-sorted graph).
        """
        if self.heavy_offsets is None:
            raise ValueError("graph has no heavy-edge offsets; run PRO first")
        return int(self.row[u]), int(self.heavy_offsets[u])

    def heavy_range(self, u: int) -> tuple[int, int]:
        """``(start, stop)`` indices of ``u``'s heavy edges."""
        if self.heavy_offsets is None:
            raise ValueError("graph has no heavy-edge offsets; run PRO first")
        return int(self.heavy_offsets[u]), int(self.row[u + 1])

    def light_degrees(self) -> np.ndarray:
        """Number of light edges for every vertex (requires heavy offsets)."""
        if self.heavy_offsets is None:
            raise ValueError("graph has no heavy-edge offsets; run PRO first")
        return self.heavy_offsets - self.row[:-1]

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, w)`` for every directed edge.

        Intended for tests and tiny graphs; benchmark code must use the flat
        arrays directly.
        """
        src = self.edge_sources()
        for u, v, w in zip(src, self.adj, self.weights):
            yield int(u), int(v), float(w)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge, shape ``(m,)`` (computed, not stored)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self._degrees
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def with_weights(self, weights: np.ndarray, name: str | None = None) -> "CSRGraph":
        """Return a copy of this graph with a new weight array.

        Heavy offsets are dropped because they are weight-dependent.
        """
        return CSRGraph(
            row=self.row,
            adj=self.adj,
            weights=weights,
            new_to_old=self.new_to_old,
            old_to_new=self.old_to_new,
            name=name if name is not None else self.name,
        )

    def to_original_order(self, values: np.ndarray) -> np.ndarray:
        """Map a per-vertex array from reordered ids back to original ids.

        Identity when the graph carries no permutation.
        """
        if self.new_to_old is None:
            return values
        out = np.empty_like(values)
        out[self.new_to_old] = values
        return out

    def max_weight(self) -> float:
        """Largest edge weight (0.0 for the edgeless graph)."""
        return float(self.weights.max()) if self.num_edges else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.is_reordered:
            flags.append("reordered")
        if self.has_heavy_offsets:
            flags.append(f"heavy@delta={self.delta}")
        extra = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"CSRGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges}{extra})"
        )
