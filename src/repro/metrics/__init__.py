"""Measurement: work efficiency, execution traces, throughput."""

from .convergence import ConvergenceCurve, convergence_from_trace
from .gteps import geometric_mean, gteps, speedup
from .recorder import BucketTrace, TraceRecorder
from .workstats import WorkStats, WorkTally

__all__ = [
    "WorkStats",
    "WorkTally",
    "TraceRecorder",
    "BucketTrace",
    "gteps",
    "speedup",
    "geometric_mean",
    "ConvergenceCurve",
    "convergence_from_trace",
]
