"""Convergence analysis: how fast distances settle over a run.

The paper's §3.3 argues synchronous Δ-stepping converges slowly (barriers
between iteration layers) and §4.3 that asynchronous execution
"accelerates the convergence of SSSP search".  This module quantifies
that claim from the recorded traces: the fraction of finally-settled
vertices as a function of processed buckets / rounds, plus summary indices
(area-under-curve and the 90%-settled point) that the ablation benchmarks
and examples report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .recorder import TraceRecorder

__all__ = ["ConvergenceCurve", "convergence_from_trace"]


@dataclass(frozen=True)
class ConvergenceCurve:
    """Settled-vertex progress over bucket-sequence position."""

    #: cumulative settled vertices after each bucket (monotone)
    settled: np.ndarray
    #: total vertices eventually settled
    total: int

    @property
    def fractions(self) -> np.ndarray:
        """Settled fraction after each bucket (0..1]."""
        if self.total == 0:
            return np.zeros_like(self.settled, dtype=np.float64)
        return self.settled / self.total

    @property
    def auc(self) -> float:
        """Area under the settled-fraction curve (1.0 = instant).

        Higher means earlier convergence; the summary statistic the
        sync-vs-async ablation compares.
        """
        f = self.fractions
        if f.size == 0:
            return 0.0
        return float(f.mean())

    def quantile_position(self, q: float = 0.9) -> int:
        """First bucket index at which >= ``q`` of vertices are settled."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        f = self.fractions
        hit = np.flatnonzero(f >= q)
        return int(hit[0]) if hit.size else int(f.size)


def convergence_from_trace(trace: TraceRecorder) -> ConvergenceCurve:
    """Build the curve from a per-bucket execution trace.

    Uses each bucket's initial active count as its settled contribution
    (in Δ-stepping every bucket member is settled when the bucket closes).
    """
    sizes = np.array([b.initial_active for b in trace.buckets], dtype=np.int64)
    settled = np.cumsum(sizes)
    total = int(sizes.sum())
    return ConvergenceCurve(settled=settled, total=total)
