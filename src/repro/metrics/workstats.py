"""Work-efficiency accounting: updates, valid updates and checks.

The paper's work-efficiency metric (Fig. 1(b), Fig. 3, Fig. 9) counts three
relaxation outcomes:

* **update** — an atomic-min that lowered ``dist[v]`` ("total updates");
* **valid update** — an update whose written value equals the *final*
  shortest distance of ``v`` ("an update is valid when it brings the final
  shortest distance of the vertex, otherwise the update is invalid");
* **check** — a relaxation whose ``new_dist >= dist[v]`` so nothing is
  written ("a check is only valid if it shortens the tentative shortest
  distance" — i.e. non-writing relaxations are invalid checks).

Validity is only decidable once the final distances are known, so updates
are recorded as ``(vertex, value)`` event batches and classified at the end
against the converged distance array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WorkStats", "WorkTally"]


@dataclass(frozen=True)
class WorkTally:
    """Final work-efficiency numbers for one SSSP run."""

    total_updates: int
    valid_updates: int
    invalid_updates: int
    checks: int
    relaxations: int

    @property
    def update_ratio(self) -> float:
        """Total updates / valid updates — the paper's Fig. 9 metric.

        1.0 is perfectly work-efficient; the paper reports 1.06–6.83 for
        RDBS.  Defined as ``inf`` when nothing converged.
        """
        if self.valid_updates == 0:
            return float("inf") if self.total_updates else 1.0
        return self.total_updates / self.valid_updates


class WorkStats:
    """Streaming recorder of relaxation outcomes.

    Kernels call :meth:`record` once per relaxation batch with the update
    mask and the values written; :meth:`finalize` classifies every recorded
    update against the converged distances.
    """

    def __init__(self) -> None:
        self._update_vertices: list[np.ndarray] = []
        self._update_values: list[np.ndarray] = []
        self.checks = 0
        self.relaxations = 0

    def record(
        self,
        vertices: np.ndarray,
        new_values: np.ndarray,
        updated: np.ndarray,
    ) -> None:
        """Record one relaxation batch.

        Parameters
        ----------
        vertices:
            destination vertex per relaxation.
        new_values:
            tentative distance each relaxation proposed.
        updated:
            mask of relaxations whose atomic-min actually wrote.
        """
        n = int(vertices.size)
        self.relaxations += n
        wrote = int(np.count_nonzero(updated))
        self.checks += n - wrote
        if wrote:
            self._update_vertices.append(np.asarray(vertices)[updated])
            self._update_values.append(np.asarray(new_values)[updated])

    @property
    def total_updates(self) -> int:
        """Updates recorded so far."""
        return int(sum(v.size for v in self._update_vertices))

    def finalize(self, final_dist: np.ndarray) -> WorkTally:
        """Classify all recorded updates against the converged distances."""
        if self._update_vertices:
            verts = np.concatenate(self._update_vertices)
            vals = np.concatenate(self._update_values)
            valid = int(np.count_nonzero(vals == final_dist[verts]))
            total = int(verts.size)
        else:
            valid = total = 0
        return WorkTally(
            total_updates=total,
            valid_updates=valid,
            invalid_updates=total - valid,
            checks=self.checks,
            relaxations=self.relaxations,
        )
