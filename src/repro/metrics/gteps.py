"""Throughput and speedup metrics.

The paper reports runtimes in milliseconds and throughput in GTEPS
(giga-traversed-edges per second), where "GTEPS takes the ratio of the
number of edges in the graph over the traversal time" (§5.1.3) — i.e. the
*graph's* edge count, not the number of relaxations performed, so work
inefficiency lowers GTEPS.
"""

from __future__ import annotations

import math

__all__ = ["gteps", "speedup", "geometric_mean"]


def gteps(num_edges: int, time_s: float) -> float:
    """Giga-traversed edges per second for one SSSP run."""
    if time_s <= 0:
        raise ValueError("time must be positive")
    return num_edges / time_s / 1e9


def speedup(baseline_time: float, optimized_time: float) -> float:
    """``baseline / optimized`` — >1 means the optimized run is faster."""
    if optimized_time <= 0:
        raise ValueError("optimized time must be positive")
    return baseline_time / optimized_time


def geometric_mean(values) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
