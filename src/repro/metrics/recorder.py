"""Execution-trace recording for the motivation figures.

Fig. 2 plots the number of active vertices in every bucket of Δ-stepping;
Fig. 3 plots the number of active vertices in every phase-1 iteration of the
peak bucket, plus the valid/total update counts.  Algorithms emit these
events through :class:`TraceRecorder`, which the corresponding benchmarks
then turn back into the paper's series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BucketTrace", "TraceRecorder"]


@dataclass
class BucketTrace:
    """Events observed while one bucket was being processed."""

    bucket_id: int
    #: vertices active when the bucket was first settled
    initial_active: int = 0
    #: active-vertex count at each phase-1 iteration (sync mode) or
    #: micro-round (async mode)
    phase1_iterations: list[int] = field(default_factory=list)
    #: simulated time spent in this bucket (seconds)
    time_s: float = 0.0
    #: Δ interval this bucket covered
    delta_lo: float = 0.0
    delta_hi: float = 0.0
    #: phase-1 update totals for this bucket (filled after convergence,
    #: when the final distances are known — the Fig. 3 annotations)
    phase1_total_updates: int = 0
    phase1_valid_updates: int = 0

    @property
    def num_iterations(self) -> int:
        """Phase-1 iterations this bucket needed."""
        return len(self.phase1_iterations)


class TraceRecorder:
    """Collects per-bucket execution traces during one SSSP run."""

    def __init__(self) -> None:
        self.buckets: list[BucketTrace] = []
        self._open: BucketTrace | None = None

    def begin_bucket(
        self, bucket_id: int, active: int, lo: float, hi: float
    ) -> None:
        """Start recording a bucket with ``active`` initial vertices."""
        self._open = BucketTrace(
            bucket_id=bucket_id, initial_active=active, delta_lo=lo, delta_hi=hi
        )

    def iteration(self, active: int) -> None:
        """Record one phase-1 iteration with ``active`` vertices."""
        if self._open is not None:
            self._open.phase1_iterations.append(active)

    def end_bucket(self, time_s: float = 0.0) -> None:
        """Close the current bucket, attributing ``time_s`` to it."""
        if self._open is not None:
            self._open.time_s = time_s
            self.buckets.append(self._open)
            self._open = None

    # ------------------------------------------------------------------
    # figure-series accessors
    # ------------------------------------------------------------------
    def active_per_bucket(self) -> list[tuple[int, int]]:
        """``(bucket_id, initial active vertices)`` — the Fig. 2 series."""
        return [(b.bucket_id, b.initial_active) for b in self.buckets]

    def peak_bucket(self) -> BucketTrace | None:
        """The bucket with the most initial active vertices (Fig. 3's focus)."""
        if not self.buckets:
            return None
        return max(self.buckets, key=lambda b: b.initial_active)

    def peak_time_fraction(self) -> float:
        """Fraction of total time spent in the costliest bucket (§3.3)."""
        total = sum(b.time_s for b in self.buckets)
        if total == 0:
            return 0.0
        return max(b.time_s for b in self.buckets) / total
