"""Persistent, hash-verified artifact cache for pure build products.

Generating a synthetic graph, running the PRO reordering pipeline, or
decomposing a graph into components is *pure*: the result is a function of
(content, algorithm version, numpy version).  This module memoizes those
array bundles to ``.npz`` files under a cache directory so repeat benchmark
runs skip the rebuild entirely.

Safety properties:

* **keyed by content** — the file name is a blake2b digest over the key
  parts (which include a generator/algorithm version and the numpy
  version), so any input or code-version change misses cleanly;
* **verified on load** — every entry stores a digest of its own payload
  arrays; a corrupted or truncated entry fails verification, is deleted,
  and the artifact is rebuilt from scratch;
* **atomic writes** — entries are written to a temp file and
  ``os.replace``d into place, so concurrent workers never observe a
  partial entry;
* **bounded** — after each store the cache is evicted oldest-first
  (mtime) down to a byte cap.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro-sssp``);
* ``REPRO_NO_CACHE=1`` — disable entirely (every fetch rebuilds);
* ``REPRO_CACHE_BYTES`` — eviction cap in bytes (default 512 MiB).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib
from collections.abc import Callable
from pathlib import Path

import numpy as np

__all__ = [
    "ArtifactCache",
    "CACHE_SCHEMA_VERSION",
    "cache_stats",
    "clear_cache",
    "configure_cache",
    "digest_arrays",
    "fetch",
    "get_cache",
]

#: bump to invalidate every existing entry (on-disk layout change)
CACHE_SCHEMA_VERSION = 1
DEFAULT_CACHE_BYTES = 512 * 1024 * 1024
_DIGEST_KEY = "__digest__"

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_OFF = "REPRO_NO_CACHE"
_ENV_BYTES = "REPRO_CACHE_BYTES"


def _default_root() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sssp"


def _env_enabled() -> bool:
    return os.environ.get(_ENV_OFF, "").strip() not in ("1", "true", "yes")


def _env_max_bytes() -> int:
    raw = os.environ.get(_ENV_BYTES, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_CACHE_BYTES


def digest_arrays(arrays: dict[str, np.ndarray]) -> str:
    """Content digest of a named array bundle (order-independent)."""
    h = hashlib.blake2b(digest_size=20)
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(arr.dtype.str.encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


class ArtifactCache:
    """One cache directory of hash-keyed, self-verifying ``.npz`` entries."""

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        max_bytes: int | None = None,
        enabled: bool | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else _default_root()
        self.max_bytes = _env_max_bytes() if max_bytes is None else max_bytes
        self.enabled = _env_enabled() if enabled is None else enabled
        # session counters (per-process; workers report their own)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejected = 0  # unreadable or failed verification -> quarantined

    # -- keying ---------------------------------------------------------

    def key(self, category: str, parts: tuple) -> str:
        payload = json.dumps(
            [CACHE_SCHEMA_VERSION, np.__version__, category, [str(p) for p in parts]],
            separators=(",", ":"),
        )
        return hashlib.blake2b(payload.encode(), digest_size=20).hexdigest()

    def entry_path(self, category: str, parts: tuple) -> Path:
        return self.root / f"{category}-{self.key(category, parts)}.npz"

    # -- load / store ---------------------------------------------------

    def load(self, category: str, parts: tuple) -> dict[str, np.ndarray] | None:
        """Return the cached bundle, or None on miss / failed verification."""
        if not self.enabled:
            return None
        path = self.entry_path(category, parts)
        try:
            with np.load(path) as data:
                arrays = {k: data[k] for k in data.files if k != _DIGEST_KEY}
                stored = str(data[_DIGEST_KEY]) if _DIGEST_KEY in data.files else ""
        except FileNotFoundError:
            return None  # plain miss
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile, zlib.error):
            # A truncated or partially-written entry (interrupted store,
            # torn page, bit rot) can surface as any of these — including
            # zlib.error, which is neither an OSError nor a BadZipFile.
            # Quarantine the junk file so the recompute can overwrite it
            # cleanly instead of every process tripping on it again.
            self.rejected += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if stored != digest_arrays(arrays):
            # corrupted or hand-edited entry: drop it and rebuild
            self.rejected += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh mtime for LRU eviction
        except OSError:
            pass
        return arrays

    def store(self, category: str, parts: tuple, arrays: dict[str, np.ndarray]) -> None:
        if not self.enabled:
            return
        path = self.entry_path(category, parts)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=self.root)
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(
                        fh,
                        **arrays,
                        **{_DIGEST_KEY: np.asarray(digest_arrays(arrays))},
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # cache is best-effort; never fail the caller
        self.stores += 1
        self._evict()

    def fetch(
        self,
        category: str,
        parts: tuple,
        builder: Callable[[], dict[str, np.ndarray]],
    ) -> tuple[dict[str, np.ndarray], bool]:
        """Return ``(arrays, was_hit)``; builds and stores on miss."""
        cached = self.load(category, parts)
        if cached is not None:
            self.hits += 1
            return cached, True
        self.misses += 1
        arrays = builder()
        self.store(category, parts, arrays)
        return arrays, False

    # -- maintenance ----------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.npz"))

    def _evict(self) -> None:
        entries = []
        total = 0
        for path in self._entries():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        entries.sort()  # oldest first
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
                total -= size
            except OSError:
                pass

    def status(self) -> dict:
        """Summary for ``cli cache status`` and profiling reports."""
        per_category: dict[str, int] = {}
        total = 0
        count = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
            cat = path.name.rsplit("-", 1)[0]
            per_category[cat] = per_category.get(cat, 0) + 1
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": count,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "categories": dict(sorted(per_category.items())),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "rejected": self.rejected,
            },
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# -- module-level default instance -------------------------------------

_cache: ArtifactCache | None = None


def get_cache() -> ArtifactCache:
    global _cache
    if _cache is None:
        _cache = ArtifactCache()
    return _cache


def configure_cache(
    root: Path | str | None = None,
    *,
    max_bytes: int | None = None,
    enabled: bool | None = None,
) -> ArtifactCache:
    """Replace the default cache (tests point it at a tmp dir)."""
    global _cache
    _cache = ArtifactCache(root, max_bytes=max_bytes, enabled=enabled)
    return _cache


def fetch(
    category: str,
    parts: tuple,
    builder: Callable[[], dict[str, np.ndarray]],
) -> tuple[dict[str, np.ndarray], bool]:
    return get_cache().fetch(category, parts, builder)


def cache_stats() -> dict:
    return get_cache().status()


def clear_cache() -> int:
    return get_cache().clear()
