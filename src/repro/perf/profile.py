"""Named-region host wall-time profiling.

The simulator reports *simulated* device time; this module measures the
*host* time the harness itself burns — graph generation, PRO
preprocessing, per-kernel accounting overhead, whole suite cells — so the
host-optimization work in :mod:`repro.perf` can be demonstrated with
numbers rather than vibes.

Design constraints:

* **zero cost when inactive**: instrumented code calls
  :func:`active_profiler` (a module-global read) or enters the
  :func:`region` context manager, both of which are no-ops unless a
  profiler was activated with :func:`profiling`;
* **stdlib only**: importable from the lowest simulator layers without
  creating dependency cycles;
* **additive regions**: a region entered N times accumulates total
  seconds and a call count, so per-kernel overhead aggregates naturally.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "HostProfiler",
    "active_profiler",
    "profiling",
    "region",
    "set_region_sink",
]


class HostProfiler:
    """Accumulates wall-time by region name."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self._start = time.perf_counter()

    def add(self, name: str, dt: float, count: int = 1) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + dt
        self.calls[name] = self.calls.get(name, 0) + count

    @contextmanager
    def region(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def total_seconds(self) -> float:
        return time.perf_counter() - self._start

    def report(self, extra: dict | None = None) -> dict:
        doc = {
            "total_seconds": self.total_seconds(),
            "regions": {
                name: {"seconds": self.seconds[name], "calls": self.calls[name]}
                for name in sorted(
                    self.seconds, key=lambda k: self.seconds[k], reverse=True
                )
            },
        }
        if extra:
            doc.update(extra)
        return doc

    def format_table(self) -> str:
        lines = [f"{'region':<34s} {'seconds':>9s} {'calls':>8s}"]
        for name in sorted(self.seconds, key=lambda k: self.seconds[k], reverse=True):
            lines.append(
                f"{name:<34s} {self.seconds[name]:9.3f} {self.calls[name]:8d}"
            )
        lines.append(f"{'(wall since start)':<34s} {self.total_seconds():9.3f}")
        return "\n".join(lines)

    def write_json(self, path: str | Path, extra: dict | None = None) -> None:
        Path(path).write_text(json.dumps(self.report(extra), indent=2) + "\n")


_active: HostProfiler | None = None

#: optional extra consumer of completed regions — ``fn(name, seconds)``.
#: The trace layer installs one so host regions land on the event
#: timeline; like the profiler itself, None (the default) is free.
_region_sink = None


def active_profiler() -> HostProfiler | None:
    """The currently-activated profiler, or None (the common, free case)."""
    return _active


def set_region_sink(sink):
    """Install ``fn(name, seconds)`` as the region sink; returns the
    previous sink so callers can restore it."""
    global _region_sink
    prev = _region_sink
    _region_sink = sink
    return prev


@contextmanager
def profiling():
    """Activate a fresh profiler for the duration of the block."""
    global _active
    prev = _active
    prof = HostProfiler()
    _active = prof
    try:
        yield prof
    finally:
        _active = prev


@contextmanager
def region(name: str):
    """Time a named region iff a profiler or sink is active; free otherwise."""
    prof = _active
    sink = _region_sink
    if prof is None and sink is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        if prof is not None:
            prof.add(name, dt)
        if sink is not None:
            sink(name, dt)
