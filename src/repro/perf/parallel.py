"""Process-parallel execution of independent work cells.

Benchmark cells — one ``(dataset, method)`` pair each — share nothing but
read-only inputs, so they parallelize perfectly across processes.  The
contract :func:`run_tasks` provides:

* **deterministic order** — results come back in submission order
  regardless of which worker finished first, so a parallel suite merges
  into the exact record sequence a serial run produces;
* **observer inheritance** — the ``fork`` start method is preferred
  (available on Linux), so globally-registered device observers
  (:func:`repro.gpusim.device.register_global_observer` users such as the
  sanitizer or fault injector) are active inside workers exactly as in
  the parent; on platforms without ``fork`` the default start method is
  used and workers rebuild state from module imports;
* **fail loud** — a worker exception propagates to the caller
  (re-raised from ``Future.result``), never silently dropping a cell.

Device determinism is untouched: each worker runs the identical
simulation it would have run serially, in its own process.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

__all__ = ["default_jobs", "resolve_jobs", "run_tasks"]


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` (all cores, capped sanely)."""
    return max(1, min(os.cpu_count() or 1, 16))


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a CLI ``--jobs`` value: None/1 serial, 0 = all cores."""
    if jobs is None:
        return 1
    if jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    return jobs


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def run_tasks(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int,
) -> list:
    """Run ``fn(*task)`` for every task; results in task order.

    ``jobs <= 1`` (or a single task) degrades to a plain serial loop with
    no process machinery at all.
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*t) for t in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as ex:
        futures = [ex.submit(fn, *t) for t in tasks]
        return [f.result() for f in futures]
