"""Host-performance layer: artifact caching, parallel running, profiling.

The simulator's *device* behaviour is deterministic and gated bit-for-bit
by the perf-trajectory baseline (:mod:`repro.bench.trajectory`); this
package makes the *host* side fast without touching that contract:

* :mod:`repro.perf.artifacts` — persistent, hash-verified ``.npz`` cache
  for expensive pure build products (generated graphs, PRO reorderings,
  component decompositions), keyed by content + generator version;
* :mod:`repro.perf.parallel` — process-parallel execution of independent
  benchmark cells with deterministic result ordering;
* :mod:`repro.perf.profile` — named-region host wall-time profiling
  (generate / preprocess / solve / per-kernel host overhead / suite cells)
  behind a zero-cost-when-inactive switch.

The invariant every consumer relies on: with or without this layer, the
simulated device executes the identical event stream — ``bench check``
against an unchanged baseline stays green.  See ``docs/performance.md``.
"""

from .artifacts import ArtifactCache, cache_stats, clear_cache, configure_cache, fetch, get_cache
from .profile import HostProfiler, active_profiler, profiling, region

__all__ = [
    "ArtifactCache",
    "HostProfiler",
    "active_profiler",
    "cache_stats",
    "clear_cache",
    "configure_cache",
    "fetch",
    "get_cache",
    "profiling",
    "region",
]
