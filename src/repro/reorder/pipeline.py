"""The full property-driven reordering (PRO) preprocessing pipeline.

Composes the three steps of §4.1 in the paper's order:

1. relabel vertices in stable descending-degree order
   (:mod:`repro.reorder.degree`);
2. sort each adjacency segment ascending by edge weight
   (:mod:`repro.reorder.weight_sort`);
3. attach the per-vertex heavy-edge offsets for the chosen Δ
   (:mod:`repro.reorder.heavy_offsets`).

The result is exactly the Fig. 4(c) data structure.  ``apply_pro`` is what
the RDBS front-end calls during preprocessing; the individual steps remain
public so the ablation benchmarks can toggle them independently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from .degree import reorder_by_degree
from .heavy_offsets import attach_heavy_offsets
from .weight_sort import sort_adjacency_by_weight

__all__ = ["apply_pro", "ProReport", "pro_report", "PRO_VERSION"]

#: bump whenever the reordering algorithms change output for the same
#: input — it keys the persistent PRO artifact cache
PRO_VERSION = 1

#: graphs below this edge count are cheaper to re-reorder than to hash,
#: store and reload, so they bypass the persistent cache
_MIN_CACHE_EDGES = 32_768


def apply_pro(
    graph: CSRGraph,
    delta: float,
    *,
    degree_reorder: bool = True,
    weight_sort: bool = True,
    cache: bool = True,
) -> CSRGraph:
    """Run property-driven reordering and return the transformed graph.

    Parameters
    ----------
    graph:
        input CSR graph (any id order, unsorted adjacency).
    delta:
        the Δ value used to split light/heavy edges.  Heavy offsets are
        attached whenever ``weight_sort`` is enabled.
    degree_reorder / weight_sort:
        ablation toggles; with both False the input is returned unchanged
        (useful as the "no PRO" arm of Fig. 8).
    cache:
        memoize the result through the persistent artifact cache
        (:mod:`repro.perf.artifacts`), keyed by the *content* of the
        input arrays plus (Δ, toggles, :data:`PRO_VERSION`).  Hits are
        hash-verified and element-identical to a fresh run.  Small graphs
        bypass the cache automatically.
    """
    if not (degree_reorder or weight_sort):
        return graph
    if cache and graph.num_edges >= _MIN_CACHE_EDGES:
        from ..perf import artifacts

        store = artifacts.get_cache()
        if store.enabled:
            content = graph.content_digest()
            parts = (
                PRO_VERSION,
                content,
                repr(float(delta)),
                degree_reorder,
                weight_sort,
            )
            arrays, _hit = store.fetch(
                "pro", parts, lambda: _pro_arrays(graph, delta, degree_reorder, weight_sort)
            )
            return _pro_graph(arrays, graph.name, delta if weight_sort else None)
    return _apply_pro(graph, delta, degree_reorder, weight_sort)


def _apply_pro(
    graph: CSRGraph, delta: float, degree_reorder: bool, weight_sort: bool
) -> CSRGraph:
    from ..perf import profile

    with profile.region("preprocess:pro"):
        out = graph
        if degree_reorder:
            out = reorder_by_degree(out)
        if weight_sort:
            out = sort_adjacency_by_weight(out)
            out = attach_heavy_offsets(out, delta)
        return out


def _pro_arrays(
    graph: CSRGraph, delta: float, degree_reorder: bool, weight_sort: bool
) -> dict:
    out = _apply_pro(graph, delta, degree_reorder, weight_sort)
    arrays = {"row": out.row, "adj": out.adj, "weights": out.weights}
    if out.heavy_offsets is not None:
        arrays["heavy_offsets"] = out.heavy_offsets
    if out.new_to_old is not None:
        arrays["new_to_old"] = out.new_to_old
        arrays["old_to_new"] = out.old_to_new
    return arrays


def _pro_graph(arrays: dict, name: str, delta: float | None) -> CSRGraph:
    return CSRGraph(
        row=arrays["row"],
        adj=arrays["adj"],
        weights=arrays["weights"],
        heavy_offsets=arrays.get("heavy_offsets"),
        delta=delta if "heavy_offsets" in arrays else None,
        new_to_old=arrays.get("new_to_old"),
        old_to_new=arrays.get("old_to_new"),
        name=name,
    )


@dataclass(frozen=True)
class ProReport:
    """Locality diagnostics before/after PRO (used by the ablation bench)."""

    #: mean absolute neighbor-id distance (lower = better locality)
    mean_neighbor_distance_before: float
    mean_neighbor_distance_after: float
    #: fraction of adjacent (in memory) edge pairs crossing the light/heavy
    #: boundary — the branch-divergence proxy of motivation 1
    mixed_pairs_before: float
    mixed_pairs_after: float

    @property
    def locality_gain(self) -> float:
        """Ratio of before/after mean neighbor distance (>1 is better)."""
        if self.mean_neighbor_distance_after == 0:
            return float("inf")
        return (
            self.mean_neighbor_distance_before
            / self.mean_neighbor_distance_after
        )


def _mean_neighbor_distance(graph: CSRGraph) -> float:
    """Average |u - v| across edges: a proxy for dist[] access locality."""
    if graph.num_edges == 0:
        return 0.0
    src = graph.edge_sources()
    return float(np.abs(src - graph.adj).mean())


def _mixed_pair_fraction(graph: CSRGraph, delta: float) -> float:
    """Fraction of consecutive same-vertex edge pairs with mixed class.

    Consecutive light/heavy class flips inside an adjacency segment force a
    branch decision per edge on SIMT hardware; weight-sorting reduces each
    segment to at most one flip.
    """
    m = graph.num_edges
    if m < 2:
        return 0.0
    is_heavy = graph.weights >= delta
    flips = is_heavy[:-1] != is_heavy[1:]
    seg_starts = np.zeros(m, dtype=bool)
    seg_starts[graph.row[:-1][graph.degrees > 0]] = True
    internal = ~seg_starts[1:]
    pairs = int(internal.sum())
    if pairs == 0:
        return 0.0
    return float((flips & internal).sum() / pairs)


def pro_report(graph: CSRGraph, delta: float) -> ProReport:
    """Measure the locality/divergence improvement PRO achieves on ``graph``."""
    after = apply_pro(graph, delta)
    return ProReport(
        mean_neighbor_distance_before=_mean_neighbor_distance(graph),
        mean_neighbor_distance_after=_mean_neighbor_distance(after),
        mixed_pairs_before=_mixed_pair_fraction(graph, delta),
        mixed_pairs_after=_mixed_pair_fraction(after, delta),
    )
