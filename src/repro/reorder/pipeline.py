"""The full property-driven reordering (PRO) preprocessing pipeline.

Composes the three steps of §4.1 in the paper's order:

1. relabel vertices in stable descending-degree order
   (:mod:`repro.reorder.degree`);
2. sort each adjacency segment ascending by edge weight
   (:mod:`repro.reorder.weight_sort`);
3. attach the per-vertex heavy-edge offsets for the chosen Δ
   (:mod:`repro.reorder.heavy_offsets`).

The result is exactly the Fig. 4(c) data structure.  ``apply_pro`` is what
the RDBS front-end calls during preprocessing; the individual steps remain
public so the ablation benchmarks can toggle them independently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from .degree import reorder_by_degree
from .heavy_offsets import attach_heavy_offsets
from .weight_sort import sort_adjacency_by_weight

__all__ = ["apply_pro", "ProReport", "pro_report"]


def apply_pro(
    graph: CSRGraph,
    delta: float,
    *,
    degree_reorder: bool = True,
    weight_sort: bool = True,
) -> CSRGraph:
    """Run property-driven reordering and return the transformed graph.

    Parameters
    ----------
    graph:
        input CSR graph (any id order, unsorted adjacency).
    delta:
        the Δ value used to split light/heavy edges.  Heavy offsets are
        attached whenever ``weight_sort`` is enabled.
    degree_reorder / weight_sort:
        ablation toggles; with both False the input is returned unchanged
        (useful as the "no PRO" arm of Fig. 8).
    """
    out = graph
    if degree_reorder:
        out = reorder_by_degree(out)
    if weight_sort:
        out = sort_adjacency_by_weight(out)
        out = attach_heavy_offsets(out, delta)
    return out


@dataclass(frozen=True)
class ProReport:
    """Locality diagnostics before/after PRO (used by the ablation bench)."""

    #: mean absolute neighbor-id distance (lower = better locality)
    mean_neighbor_distance_before: float
    mean_neighbor_distance_after: float
    #: fraction of adjacent (in memory) edge pairs crossing the light/heavy
    #: boundary — the branch-divergence proxy of motivation 1
    mixed_pairs_before: float
    mixed_pairs_after: float

    @property
    def locality_gain(self) -> float:
        """Ratio of before/after mean neighbor distance (>1 is better)."""
        if self.mean_neighbor_distance_after == 0:
            return float("inf")
        return (
            self.mean_neighbor_distance_before
            / self.mean_neighbor_distance_after
        )


def _mean_neighbor_distance(graph: CSRGraph) -> float:
    """Average |u - v| across edges: a proxy for dist[] access locality."""
    if graph.num_edges == 0:
        return 0.0
    src = graph.edge_sources()
    return float(np.abs(src - graph.adj).mean())


def _mixed_pair_fraction(graph: CSRGraph, delta: float) -> float:
    """Fraction of consecutive same-vertex edge pairs with mixed class.

    Consecutive light/heavy class flips inside an adjacency segment force a
    branch decision per edge on SIMT hardware; weight-sorting reduces each
    segment to at most one flip.
    """
    m = graph.num_edges
    if m < 2:
        return 0.0
    is_heavy = graph.weights >= delta
    flips = is_heavy[:-1] != is_heavy[1:]
    seg_starts = np.zeros(m, dtype=bool)
    seg_starts[graph.row[:-1][graph.degrees > 0]] = True
    internal = ~seg_starts[1:]
    pairs = int(internal.sum())
    if pairs == 0:
        return 0.0
    return float((flips & internal).sum() / pairs)


def pro_report(graph: CSRGraph, delta: float) -> ProReport:
    """Measure the locality/divergence improvement PRO achieves on ``graph``."""
    after = apply_pro(graph, delta)
    return ProReport(
        mean_neighbor_distance_before=_mean_neighbor_distance(graph),
        mean_neighbor_distance_after=_mean_neighbor_distance(after),
        mixed_pairs_before=_mixed_pair_fraction(graph, delta),
        mixed_pairs_after=_mixed_pair_fraction(after, delta),
    )
