"""Property-driven reordering (PRO, paper §4.1)."""

from .degree import apply_permutation, degree_order, reorder_by_degree
from .heavy_offsets import (
    attach_heavy_offsets,
    compute_heavy_offsets,
    recompute_offsets,
)
from .pipeline import ProReport, apply_pro, pro_report
from .weight_sort import sort_adjacency_by_weight

__all__ = [
    "degree_order",
    "apply_permutation",
    "reorder_by_degree",
    "sort_adjacency_by_weight",
    "compute_heavy_offsets",
    "attach_heavy_offsets",
    "recompute_offsets",
    "apply_pro",
    "pro_report",
    "ProReport",
]
