"""Heavy-edge offsets: the extra CSR column of Fig. 4(c).

"To quickly locate the heavy edges in phase 2 of Δ-stepping algorithm, the
offset of heavy edges is also added to row list" (§4.1).  With every
adjacency segment sorted ascending by weight, vertex ``u``'s light edges are
``adj[row[u] : heavy_offsets[u]]`` and its heavy edges are
``adj[heavy_offsets[u] : row[u + 1]]`` — both located with one array read
and zero per-edge comparisons.

Because the offsets are just the binary-search insertion points of Δ inside
each sorted segment, they "can be changed immediately in phase 1 … it can
adapt itself to the change of Δ value": :func:`recompute_offsets` re-splits
all segments for a new Δ in O(m log(max degree)) without touching topology,
which is what the bucket-aware dynamic-Δ engine (§4.3) calls between buckets.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph, VERTEX_DTYPE

__all__ = ["compute_heavy_offsets", "attach_heavy_offsets", "recompute_offsets"]


def compute_heavy_offsets(graph: CSRGraph, delta: float) -> np.ndarray:
    """Absolute index of the first heavy edge (weight >= ``delta``) per vertex.

    Requires weight-sorted adjacency segments; raises if any segment is
    found unsorted (cheap vectorized check).
    """
    _check_sorted(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")
    n = graph.num_vertices
    offsets = np.empty(n, dtype=VERTEX_DTYPE)
    w = graph.weights
    row = graph.row
    # Vectorized per-segment binary search: searchsorted on the flat weight
    # array restricted to each segment.  A single global searchsorted is
    # incorrect (segments are individually sorted, not globally), so we use
    # the classic trick: count light edges per segment with a cumulative
    # histogram of the boolean mask.
    light = (w < delta).astype(np.int64)
    csum = np.concatenate([[0], np.cumsum(light)])
    light_per_vertex = csum[row[1:]] - csum[row[:-1]]
    offsets[:] = row[:-1] + light_per_vertex
    return offsets


def attach_heavy_offsets(graph: CSRGraph, delta: float) -> CSRGraph:
    """Return ``graph`` carrying heavy offsets computed for ``delta``."""
    offsets = compute_heavy_offsets(graph, delta)
    return CSRGraph(
        row=graph.row,
        adj=graph.adj,
        weights=graph.weights,
        heavy_offsets=offsets,
        delta=float(delta),
        new_to_old=graph.new_to_old,
        old_to_new=graph.old_to_new,
        name=graph.name,
    )


def recompute_offsets(graph: CSRGraph, new_delta: float) -> CSRGraph:
    """Re-split light/heavy for a changed Δ (the §4.3 dynamic-Δ hook)."""
    if graph.heavy_offsets is None:
        raise ValueError("graph has no heavy offsets to recompute; run PRO first")
    return attach_heavy_offsets(graph, new_delta)


def _check_sorted(graph: CSRGraph) -> None:
    """Verify every adjacency segment has non-decreasing weights."""
    w = graph.weights
    if w.size < 2:
        return
    # A violation is a position i where w[i] > w[i+1] *within* one segment,
    # i.e. i+1 is not a segment start.
    decreasing = w[:-1] > w[1:]
    if not decreasing.any():
        return
    seg_starts = np.zeros(w.size, dtype=bool)
    seg_starts[graph.row[:-1][graph.degrees > 0]] = True
    internal = ~seg_starts[1:]
    if np.any(decreasing & internal):
        raise ValueError(
            "adjacency segments are not weight-sorted; "
            "run sort_adjacency_by_weight first"
        )
