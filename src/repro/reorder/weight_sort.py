"""Per-vertex adjacency sort by ascending edge weight (second half of PRO).

"For each vertex, we further reorder the adjacent vertices in adjacency list
and value list in ascending order of weight" (§4.1).  Two effects follow:

* light edges (weight < Δ) become a contiguous *prefix* of every adjacency
  segment, so Δ-stepping's phase-1/phase-2 split needs no per-edge branch —
  removing the branch divergence of motivation 1; and
* relaxing small-weight edges first raises the probability that an update is
  final ("the relaxation of edges with small weight values has a high
  possibility for valid updates"), which the asynchronous engine exploits.

The sort is performed for *all* vertices at once with one segmented lexsort
(segment id major, weight minor) — no per-vertex Python loop.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["sort_adjacency_by_weight"]


def sort_adjacency_by_weight(graph: CSRGraph) -> CSRGraph:
    """Return ``graph`` with every adjacency segment sorted by weight.

    Stable within equal weights (preserving neighbor-id order), which keeps
    the output deterministic.  Any existing vertex relabeling is carried
    through; heavy offsets are *not* computed here (see
    :mod:`repro.reorder.heavy_offsets`).
    """
    m = graph.num_edges
    if m == 0:
        return graph
    seg = graph.edge_sources()
    # lexsort's last key is the primary one: keep segments together, order by
    # weight inside each, and ties resolve by original position (stable).
    order = np.lexsort((graph.adj, graph.weights, seg))
    return CSRGraph(
        row=graph.row,
        adj=graph.adj[order],
        weights=graph.weights[order],
        new_to_old=graph.new_to_old,
        old_to_new=graph.old_to_new,
        name=graph.name,
    )
