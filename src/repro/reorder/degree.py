"""Degree-descending vertex relabeling (first half of PRO, §4.1).

"We reorder the vertices in descending order by degree and reassign the
index for them.  In this way, vertices with high degrees are assigned low
vertex id and stored together."  High-degree vertices are touched most often
during SSSP, so packing their ``dist`` entries and adjacency segments into
the lowest addresses concentrates the hot working set — the locality effect
the paper measures as a higher L1 global hit rate (Fig. 10(d)).

Ties are broken by original vertex id (a *stable* sort), which is what
reproduces the exact relabeling ``[1, 3, 4, 0, 2]`` of the paper's Fig. 4
worked example.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph, VERTEX_DTYPE
from ..util.scan import segmented_arange

__all__ = ["degree_order", "apply_permutation", "reorder_by_degree"]


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Return ``new_to_old``: old ids listed in descending-degree order.

    ``new_to_old[k]`` is the original id of the vertex that receives new id
    ``k``.  Stable in original id among equal degrees.
    """
    # argsort is ascending; negate degrees for descending while keeping the
    # stable tie-break on original id.
    return np.argsort(-graph.degrees, kind="stable").astype(VERTEX_DTYPE)


def apply_permutation(graph: CSRGraph, new_to_old: np.ndarray) -> CSRGraph:
    """Relabel ``graph``'s vertices according to ``new_to_old``.

    The topology is unchanged (Fig. 4(b): "the topology of the degree-driven
    reordering graph is the same as the original graph"); only ids move.
    Adjacency segments are physically re-packed so new id order is also
    memory order.
    """
    n = graph.num_vertices
    new_to_old = np.asarray(new_to_old, dtype=VERTEX_DTYPE)
    if new_to_old.shape != (n,):
        raise ValueError("permutation must have one entry per vertex")
    check = np.zeros(n, dtype=bool)
    check[new_to_old] = True
    if not check.all():
        raise ValueError("new_to_old is not a permutation of 0..n-1")
    old_to_new = np.empty(n, dtype=VERTEX_DTYPE)
    old_to_new[new_to_old] = np.arange(n, dtype=VERTEX_DTYPE)

    old_starts = graph.row[new_to_old]
    degrees = graph.degrees[new_to_old]
    new_row = np.zeros(n + 1, dtype=VERTEX_DTYPE)
    np.cumsum(degrees, out=new_row[1:])

    # Gather each old adjacency segment into its new position.
    take = np.repeat(old_starts, degrees) + segmented_arange(degrees)
    new_adj = old_to_new[graph.adj[take]]
    new_weights = graph.weights[take]

    # Compose with any existing permutation so to_original_order always maps
    # back to the *first* id space.
    if graph.new_to_old is not None:
        composed_new_to_old = graph.new_to_old[new_to_old]
    else:
        composed_new_to_old = new_to_old
    composed_old_to_new = np.empty(n, dtype=VERTEX_DTYPE)
    composed_old_to_new[composed_new_to_old] = np.arange(n, dtype=VERTEX_DTYPE)

    return CSRGraph(
        row=new_row,
        adj=new_adj,
        weights=new_weights,
        new_to_old=composed_new_to_old,
        old_to_new=composed_old_to_new,
        name=graph.name,
    )


def reorder_by_degree(graph: CSRGraph) -> CSRGraph:
    """Convenience: relabel ``graph`` in stable descending-degree order."""
    return apply_permutation(graph, degree_order(graph))
