"""One-call traced execution: run an SSSP method under the tracer.

Mirrors :func:`repro.analysis.driver.sanitized_sssp` so CLIs, tests and
docs can trace any engine with one call::

    result, tracer = traced_sssp(graph, source, method="rdbs")
    write_chrome(tracer, "trace.json")
"""

from __future__ import annotations

from .tracer import DEFAULT_CAPACITY, Tracer, tracing

__all__ = ["traced_sssp"]


def traced_sssp(
    graph,
    source: int,
    method: str = "rdbs",
    *,
    capacity: int = DEFAULT_CAPACITY,
    tracer: Tracer | None = None,
    **kwargs,
) -> tuple:
    """Run ``method`` with a freshly attached :class:`Tracer`.

    Returns ``(SSSPResult, Tracer)``.  The tracer's ``meta`` records the
    run parameters so exported traces are self-describing.
    """
    from ..sssp import sssp  # local import: trace must not cycle with sssp

    with tracing(tracer, capacity=capacity) as tr:
        tr.meta.setdefault("method", method)
        tr.meta.setdefault("source", int(source))
        name = getattr(graph, "name", None)
        if name:
            tr.meta.setdefault("graph", name)
        result = sssp(graph, source, method=method, **kwargs)
    return result, tr
