"""The event tracer: a device observer filling a bounded ring buffer.

:class:`Tracer` attaches to :class:`~repro.gpusim.device.GPUDevice`
through the same global-observer hook the sanitizer and the fault
injector use, so it reaches every device an engine constructs
internally.  It converts the device's observer events — kernel
completions, algorithm-level ``annotate`` facts (bucket open/close with
the Eq. 1–2 inputs, ADWL workload-list histograms, asynchronous
drain rounds, fault/recovery actions), allocations — into typed
:class:`TraceEvent` records on a **ring buffer** of fixed capacity, so
a trace of an arbitrarily long run occupies bounded memory (`dropped`
counts the overflow).

Cost contract (the same one the fault hooks honor): when no tracer is
attached, nothing in this module runs — the device's pre-bound dispatch
tables contain no handlers, per-round ``annotate`` payloads in the
engines are gated on ``device.handlers("on_annotate")``, and no counter
or simulated-time quantity is ever touched even when tracing *is* on.
Tracing off is therefore byte-identical on the deterministic benchmark
gate, which CI enforces.

Timestamps are **simulated** device milliseconds (deterministic); the
handful of host-side events (suite-cell marks, profiler regions) carry
host wall-clock milliseconds relative to the tracer's creation and live
on a separate timeline in the exporters.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..gpusim.device import register_global_observer, unregister_global_observer
from ..perf import profile as _hostprof

__all__ = [
    "TraceEvent",
    "Tracer",
    "tracing",
    "active_tracer",
    "DEFAULT_CAPACITY",
]

#: default ring-buffer capacity (events); ~100 bytes/event in CPython,
#: so the default bounds a trace at tens of MB even on pathological runs
DEFAULT_CAPACITY = 262_144


@dataclass(frozen=True)
class TraceEvent:
    """One typed event on the trace timeline.

    ``kind`` is the event taxonomy (see docs/observability.md):
    ``kernel`` | ``bucket`` | ``counter`` | ``round`` | ``fault`` |
    ``recovery`` | ``alloc`` | ``mark`` | ``host`` | ``serve`` |
    ``chaos``.  Spans carry a
    nonzero ``dur_ms``; instants carry 0.  ``device`` is the ordinal of
    the simulated device the event happened on (-1 for host events).
    """

    kind: str
    name: str
    #: event start, simulated milliseconds (host ms for kind="host"/"mark")
    ts_ms: float
    #: span duration in the same clock; 0.0 for instant events
    dur_ms: float = 0.0
    device: int = 0
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-data form (the JSONL record)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "ts_ms": self.ts_ms,
            "dur_ms": self.dur_ms,
            "device": self.device,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (tolerates missing optionals)."""
        return cls(
            kind=str(d.get("kind", "mark")),
            name=str(d.get("name", "")),
            ts_ms=float(d.get("ts_ms", 0.0)),
            dur_ms=float(d.get("dur_ms", 0.0)),
            device=int(d.get("device", 0)),
            args=dict(d.get("args") or {}),
        )


def _scalarize(payload: dict) -> dict:
    """Compress an annotate payload to JSON-safe scalars.

    Arrays are summarized by their size (the trace records *shape*, not
    bulk data — bulk payloads would defeat the ring buffer's memory
    bound); NumPy scalars are unwrapped to native Python numbers.
    """
    out: dict = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            out[key] = int(value.size)
        elif isinstance(value, (np.integer,)):
            out[key] = int(value)
        elif isinstance(value, (np.floating,)):
            out[key] = float(value)
        elif isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


class Tracer:
    """Collects :class:`TraceEvent` records from every observed device."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        #: events evicted from the ring buffer (oldest-first overwrite)
        self.dropped = 0
        #: free-form run metadata (graph, method, ...) set by the drivers
        self.meta: dict = {}
        self._devices: dict[int, int] = {}
        self._open_buckets: dict[int, tuple[float, dict]] = {}
        self._t0_host = time.perf_counter()

    # ------------------------------------------------------------------
    # core emit path
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        name: str,
        ts_ms: float,
        dur_ms: float = 0.0,
        device: int = 0,
        args: dict | None = None,
    ) -> None:
        """Append one event, evicting the oldest past capacity."""
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(
            TraceEvent(kind, name, ts_ms, dur_ms, device, args or {})
        )

    def _ordinal(self, device) -> int:
        key = id(device)
        ordinal = self._devices.get(key)
        if ordinal is None:
            ordinal = len(self._devices)
            self._devices[key] = ordinal
        return ordinal

    def snapshot(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self.events)

    # ------------------------------------------------------------------
    # host-side entry points (CLI / bench / profiler regions)
    # ------------------------------------------------------------------
    def _host_ms(self) -> float:
        return (time.perf_counter() - self._t0_host) * 1e3

    def mark(self, name: str, **args) -> None:
        """Record a host-level instant (suite cell boundary, CLI phase)."""
        self.emit("mark", name, self._host_ms(), device=-1,
                  args=_scalarize(args))

    def host_region(self, name: str, seconds: float) -> None:
        """Record a completed host profiler region (duration known only
        at exit, so the span is backdated by its own length)."""
        now = self._host_ms()
        dur = seconds * 1e3
        self.emit("host", name, max(now - dur, 0.0), dur, device=-1)

    def ingest_faults(self, report) -> None:
        """Append a :class:`~repro.faults.report.FaultReport`'s events.

        Used for reports produced outside an attached run (the injector
        also announces faults live via ``device.annotate``; ingestion
        deduplicates nothing, so call it only for un-traced runs).
        """
        for ev in report.events:
            self.emit(
                "fault", ev.kind, float(ev.time_ms), device=0,
                args={"kernel": ev.kernel, "array": ev.array,
                      "index": int(ev.index), "detail": ev.detail},
            )
        for action in report.actions:
            self.emit("recovery", action, self._host_ms(), device=-1)

    # ------------------------------------------------------------------
    # device observer events
    # ------------------------------------------------------------------
    def on_alloc(self, device, arr, initialized: bool) -> None:
        """Device allocation: name, bytes, poisoned-or-initialized."""
        self.emit(
            "alloc", arr.name, device.time_s * 1e3,
            device=self._ordinal(device),
            args={"bytes": int(arr.data.nbytes), "initialized": initialized},
        )

    def on_kernel_complete(self, device, ctx) -> None:
        """One finished launch: a span with its headline counters.

        Dispatched by the device *after* the launch's simulated time is
        resolved, so ``ctx.time_s`` is final and the span's start is
        ``device.time_s - ctx.time_s``.
        """
        c = ctx.counters
        args = {
            "threads": int(c.threads_launched),
            "warp_instructions": int(c.total_warp_instructions),
            "loads": int(c.inst_executed_global_loads),
            "stores": int(c.inst_executed_global_stores),
            "atomics": int(c.inst_executed_atomics),
            "l1_accesses": int(c.l1_accesses),
            "l1_hits": int(c.l1_hits),
            "atomic_conflicts": int(c.atomic_conflicts),
            "child_launches": int(c.child_kernel_launches),
            "async_rounds": int(c.async_rounds),
            "barriers": int(c.barriers),
            "critical_instructions": int(ctx.critical_instructions),
        }
        if c.multisplit_ops:
            # warp-ballot multisplit telemetry (docs/observability.md):
            # present only on launches that issued one, mirroring the
            # counter snapshot's conditional keys
            args.update({
                "histogram_passes": int(c.multisplit_ops),
                "num_buckets": int(c.multisplit_buckets),
                "warp_ballots": int(c.inst_executed_ballots),
                "shared_transactions": int(c.shared_transactions),
            })
        if c.mlmq_steals:
            # MLMQ work-stealing telemetry (docs/mlmq.md): present only
            # on launches whose queue groups stole, mirroring the counter
            # snapshot's conditional keys
            args.update({
                "steals": int(c.mlmq_steals),
                "stolen_slots": int(c.mlmq_stolen_slots),
            })
        self.emit(
            "kernel", ctx.name, (device.time_s - ctx.time_s) * 1e3,
            ctx.time_s * 1e3, self._ordinal(device),
            args=args,
        )

    def on_annotate(self, device, tag: str, payload: dict) -> None:
        """Algorithm-level facts; bucket open/close pair into spans."""
        ordinal = self._ordinal(device)
        now = device.time_s * 1e3
        if tag == "bucket":
            # open a bucket span; closed (and emitted) by "bucket_close"
            self._open_buckets[ordinal] = (now, _scalarize(payload))
            return
        if tag == "bucket_close":
            opened = self._open_buckets.pop(ordinal, None)
            ts, args = opened if opened is not None else (now, {})
            args = dict(args)
            args.update(_scalarize(payload))
            self.emit("bucket", f"bucket {args.get('index', '?')}",
                      ts, now - ts, ordinal, args)
            return
        if tag in ("adwl", "async_round", "sync_round", "adds_round",
                   "adds_split", "bl_round", "mlmq_round", "mlmq_steal",
                   "mlmq_advance"):
            self.emit("counter", tag, now, device=ordinal,
                      args=_scalarize(payload))
            return
        if tag == "fault":
            self.emit("fault", str(payload.get("kind", "fault")), now,
                      device=ordinal, args=_scalarize(payload))
            return
        if tag == "recovery":
            self.emit("recovery", str(payload.get("action", "recovery")),
                      now, device=ordinal, args=_scalarize(payload))
            return
        # anything else (e.g. "settled") becomes a generic instant
        self.emit("mark", tag, now, device=ordinal, args=_scalarize(payload))

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def delta_series(self, device: int = 0) -> list[float]:
        """Δ_i widths of the closed bucket spans, in open order."""
        return [
            float(e.args.get("hi", 0.0)) - float(e.args.get("lo", 0.0))
            for e in self.events
            if e.kind == "bucket" and e.device == device
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer({len(self.events)} event(s), "
            f"{self.dropped} dropped, capacity {self.capacity})"
        )


_active: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The currently attached tracer, or None (the common, free case)."""
    return _active


@contextmanager
def tracing(
    tracer: Tracer | None = None, *, capacity: int = DEFAULT_CAPACITY
) -> Iterator[Tracer]:
    """Attach a tracer to every device created inside the block.

    Also routes host-profiler regions (:func:`repro.perf.profile.region`)
    into the trace for the duration, so a traced suite run shows where
    host time went next to the simulated timelines.
    """
    global _active
    t = tracer if tracer is not None else Tracer(capacity=capacity)
    prev = _active
    _active = t
    register_global_observer(t)
    prev_sink = _hostprof.set_region_sink(t.host_region)
    try:
        yield t
    finally:
        _hostprof.set_region_sink(prev_sink)
        unregister_global_observer(t)
        _active = prev
