"""repro.trace — structured event tracing for the simulated GPU.

A third consumer of the :class:`~repro.gpusim.device.GPUDevice` observer
seam (after the sanitizer and the fault injector): :class:`Tracer`
records typed spans and instants — kernel launches with their counted
work, bucket open/close with the Δ_i/ε_i/C/T inputs to the paper's
Eq. 1–2, ADWL classification histograms, asynchronous drain rounds,
fault and recovery events — into a bounded ring buffer, exportable as
Chrome ``trace_event`` JSON (Perfetto-loadable), JSONL, or a terminal
summary.  Tracing off is byte-identical on the deterministic benchmark
gate.  Guide: ``docs/observability.md``.
"""

from .driver import traced_sssp
from .export import (
    format_summary,
    load_trace,
    to_chrome,
    write_chrome,
    write_jsonl,
)
from .tracer import (
    DEFAULT_CAPACITY,
    TraceEvent,
    Tracer,
    active_tracer,
    tracing,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "tracing",
    "traced_sssp",
    "to_chrome",
    "write_chrome",
    "write_jsonl",
    "load_trace",
    "format_summary",
]
