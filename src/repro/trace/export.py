"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, terminal summary.

The Chrome format (the "JSON Array Format" of the Trace Event spec) is
what Perfetto and ``chrome://tracing`` load directly: complete ``"X"``
spans for kernels and buckets, ``"C"`` counter tracks for the per-round
series (Δ_i, ADWL histograms, async drain progress), ``"i"`` instants
for faults/recovery/marks, and ``"M"`` metadata records naming the
tracks.  Timestamps are microseconds; device events use the simulated
clock (pid = device ordinal), host events a separate "host" process.

The JSONL format is one :meth:`TraceEvent.to_dict` object per line with
a leading ``{"schema": "repro.trace/1", ...}`` meta line — the stable
machine-readable form for ad-hoc analysis (``jq``, pandas).
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict

from .tracer import TraceEvent, Tracer

__all__ = [
    "to_chrome",
    "write_chrome",
    "write_jsonl",
    "load_trace",
    "format_summary",
]

SCHEMA = "repro.trace/1"

#: trace-event tracks (tid) per simulated device
_TID_KERNELS = 0
_TID_BUCKETS = 1
_TID_EVENTS = 2

_HOST_PID = 1000
#: host-process track carrying serve-request spans (simulated clock)
_TID_SERVE = 1


def _events_of(trace) -> list[TraceEvent]:
    if isinstance(trace, Tracer):
        return trace.snapshot()
    return list(trace)


def _meta_of(trace) -> dict:
    if isinstance(trace, Tracer):
        return dict(trace.meta, dropped=trace.dropped)
    return {}


def to_chrome(trace) -> dict:
    """Build the Chrome ``trace_event`` document (a JSON-able dict)."""
    events = _events_of(trace)
    out: list[dict] = []
    seen_pids: set[int] = set()
    serve_track_named = False

    def thread_meta(pid: int, tid: int, name: str) -> dict:
        return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name}}

    for e in events:
        if e.device >= 0:
            pid = e.device
            if pid not in seen_pids:
                seen_pids.add(pid)
                out.append({"name": "process_name", "ph": "M", "pid": pid,
                            "tid": 0, "args": {"name": f"gpu{pid} (simulated)"}})
                out.append(thread_meta(pid, _TID_KERNELS, "kernels"))
                out.append(thread_meta(pid, _TID_BUCKETS, "buckets"))
                out.append(thread_meta(pid, _TID_EVENTS, "events"))
        else:
            pid = _HOST_PID
            if pid not in seen_pids:
                seen_pids.add(pid)
                out.append({"name": "process_name", "ph": "M", "pid": pid,
                            "tid": 0, "args": {"name": "host"}})
        ts = e.ts_ms * 1e3  # ms -> µs
        if e.kind == "kernel":
            out.append({"name": e.name, "cat": "kernel", "ph": "X",
                        "pid": pid, "tid": _TID_KERNELS, "ts": ts,
                        "dur": e.dur_ms * 1e3, "args": e.args})
        elif e.kind == "bucket":
            out.append({"name": e.name, "cat": "bucket", "ph": "X",
                        "pid": pid, "tid": _TID_BUCKETS, "ts": ts,
                        "dur": e.dur_ms * 1e3, "args": e.args})
        elif e.kind == "serve":
            # one span per served request on the simulated arrival clock
            if not serve_track_named:
                serve_track_named = True
                out.append(thread_meta(pid, _TID_SERVE, "serve requests"))
            out.append({"name": e.name, "cat": "serve", "ph": "X",
                        "pid": pid, "tid": _TID_SERVE, "ts": ts,
                        "dur": e.dur_ms * 1e3, "args": e.args})
        elif e.kind == "host":
            out.append({"name": e.name, "cat": "host", "ph": "X",
                        "pid": pid, "tid": 0, "ts": ts,
                        "dur": e.dur_ms * 1e3, "args": e.args})
        elif e.kind == "counter":
            numeric = {k: v for k, v in e.args.items()
                       if isinstance(v, (int, float))
                       and not isinstance(v, bool)}
            out.append({"name": e.name, "cat": "counter", "ph": "C",
                        "pid": pid, "tid": _TID_EVENTS, "ts": ts,
                        "args": numeric or {"value": 1}})
        else:  # fault / recovery / alloc / mark
            out.append({"name": f"{e.kind}:{e.name}", "cat": e.kind,
                        "ph": "i", "s": "p",
                        "pid": pid,
                        "tid": _TID_EVENTS if e.device >= 0 else 0,
                        "ts": ts, "args": e.args})
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": dict(_meta_of(trace), schema=SCHEMA),
    }


def write_chrome(trace, path: str) -> None:
    """Write the Perfetto/``chrome://tracing``-loadable JSON file."""
    with open(path, "w") as fh:
        json.dump(to_chrome(trace), fh, indent=1)
        fh.write("\n")


def write_jsonl(trace, path: str) -> None:
    """Write one JSON object per line, preceded by a schema meta line."""
    with open(path, "w") as fh:
        fh.write(json.dumps({"schema": SCHEMA, **_meta_of(trace)}) + "\n")
        for e in _events_of(trace):
            fh.write(json.dumps(e.to_dict()) + "\n")


def load_trace(path: str) -> tuple[list[TraceEvent], dict]:
    """Read back a trace written by either exporter.

    Returns ``(events, meta)``.  Chrome files reconstruct only the
    span/instant structure (args survive; exact kinds are inferred from
    the ``cat`` field, so round-trips are faithful for repro-written
    files).
    """
    with open(path) as fh:
        first = fh.read(1)
        fh.seek(0)
        if first == "{" and _looks_like_jsonl(fh):
            return _load_jsonl(fh)
        doc = json.load(fh)
    events: list[TraceEvent] = []
    meta = dict(doc.get("otherData") or {})
    for rec in doc.get("traceEvents", []):
        ph = rec.get("ph")
        if ph == "M":
            continue
        pid = int(rec.get("pid", 0))
        device = -1 if pid == _HOST_PID else pid
        kind = str(rec.get("cat", "mark"))
        name = str(rec.get("name", ""))
        if kind in ("fault", "recovery", "alloc", "mark", "chaos") and ":" in name:
            name = name.split(":", 1)[1]
        events.append(TraceEvent(
            kind=kind, name=name,
            ts_ms=float(rec.get("ts", 0.0)) / 1e3,
            dur_ms=float(rec.get("dur", 0.0)) / 1e3,
            device=device, args=dict(rec.get("args") or {}),
        ))
    return events, meta


def _looks_like_jsonl(fh) -> bool:
    pos = fh.tell()
    line = fh.readline()
    fh.seek(pos)
    try:
        head = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(head, dict) and str(head.get("schema", "")).startswith(
        "repro.trace/"
    )


def _load_jsonl(fh) -> tuple[list[TraceEvent], dict]:
    meta = json.loads(fh.readline())
    meta.pop("schema", None)
    events = [TraceEvent.from_dict(json.loads(line))
              for line in fh if line.strip()]
    return events, meta


def format_summary(trace, meta: dict | None = None) -> str:
    """Human-readable digest of a trace (the ``cli trace summary`` body)."""
    events = _events_of(trace)
    if meta is None:
        meta = _meta_of(trace)
    lines: list[str] = []
    head = " ".join(f"{k}={v}" for k, v in sorted(meta.items())
                    if k not in ("dropped",))
    lines.append(f"trace: {len(events)} event(s)" + (f"  [{head}]" if head else ""))
    dropped = meta.get("dropped", 0)
    if dropped:
        lines.append(f"  ring buffer overflowed: {dropped} event(s) dropped "
                     "(oldest first)")

    kinds = Counter(e.kind for e in events)
    lines.append("  by kind: " + ", ".join(
        f"{k}={n}" for k, n in sorted(kinds.items())))

    kernels = [e for e in events if e.kind == "kernel"]
    if kernels:
        per: dict[str, list[TraceEvent]] = defaultdict(list)
        for e in kernels:
            per[e.name].append(e)
        total = sum(e.dur_ms for e in kernels)
        lines.append(f"\nkernels ({len(kernels)} launches, "
                     f"{total:.3f} ms simulated):")
        rows = sorted(per.items(),
                      key=lambda kv: -sum(e.dur_ms for e in kv[1]))
        for name, evs in rows[:12]:
            ms = sum(e.dur_ms for e in evs)
            threads = sum(e.args.get("threads", 0) for e in evs)
            lines.append(f"  {name:<28} {len(evs):>5}x  {ms:>9.3f} ms"
                         f"  {threads:>10} threads")
        if len(rows) > 12:
            lines.append(f"  ... and {len(rows) - 12} more kernel(s)")

    buckets = [e for e in events if e.kind == "bucket"]
    if buckets:
        lines.append(f"\nbuckets ({len(buckets)}):")
        lines.append(f"  {'#':>4} {'lo':>9} {'hi':>9} {'Δ_i':>9} "
                     f"{'ε_i':>7} {'active':>7} {'settled':>8} {'rounds':>6}")
        for e in buckets:
            a = e.args
            delta = (float(a["hi"]) - float(a["lo"])
                     if "hi" in a and "lo" in a else 0.0)
            lines.append(
                "  {:>4} {:>9.3f} {:>9.3f} {:>9.3f} {:>7} {:>7} {:>8} {:>6}"
                .format(a.get("index", "?"), float(a.get("lo", 0.0)),
                        float(a.get("hi", 0.0)), delta,
                        _fmt(a.get("epsilon")), a.get("active", "-"),
                        _fmt_int(a.get("converged")),
                        _fmt_int(a.get("rounds"))))

    counters = Counter(e.name for e in events if e.kind == "counter")
    if counters:
        lines.append("\ncounter series: " + ", ".join(
            f"{k}×{n}" for k, n in sorted(counters.items())))

    adwl = [e for e in events if e.kind == "counter" and e.name == "adwl"]
    if adwl:
        small = sum(e.args.get("small", 0) for e in adwl)
        middle = sum(e.args.get("middle", 0) for e in adwl)
        large = sum(e.args.get("large", 0) for e in adwl)
        lines.append(f"  adwl totals: small={small} middle={middle} "
                     f"large={large}")

    faults = [e for e in events if e.kind == "fault"]
    recoveries = [e for e in events if e.kind == "recovery"]
    if faults or recoveries:
        lines.append(f"\nfaults: {len(faults)} injected, "
                     f"{len(recoveries)} recovery action(s)")
        for e in faults[:8]:
            lines.append(f"  @{e.ts_ms:9.3f} ms  {e.name}"
                         f"  kernel={e.args.get('kernel', '?')}"
                         f"  array={e.args.get('array', '?')}")
        if len(faults) > 8:
            lines.append(f"  ... and {len(faults) - 8} more")

    chaos = [e for e in events if e.kind == "chaos"]
    if chaos:
        by_name = Counter(e.name for e in chaos)
        lines.append(f"\nchaos ({len(chaos)} event(s)):")
        lines.append("  by event: " + ", ".join(
            f"{k}={n}" for k, n in sorted(by_name.items())))
        transitions = [e for e in chaos if e.name.startswith("breaker_")]
        for e in transitions[:10]:
            lines.append(f"  @{e.ts_ms:9.3f} ms  {e.name:<18}"
                         f"  shard={e.args.get('shard', '?')}")
        if len(transitions) > 10:
            lines.append(f"  ... and {len(transitions) - 10} more "
                         "breaker transition(s)")
        shed = by_name.get("shed", 0)
        if shed:
            lines.append(f"  {shed} request(s) shed at their deadline "
                         "(SLO-accounted, never answered wrong)")

    serve = [e for e in events if e.kind == "serve"]
    if serve:
        by_outcome = Counter(e.name for e in serve)
        lat = sorted(e.dur_ms for e in serve)

        def pct(q: float) -> float:
            return lat[min(len(lat) - 1, int(q * (len(lat) - 1) + 0.5))]

        lines.append(f"\nserve requests ({len(serve)}):")
        lines.append("  by outcome: " + ", ".join(
            f"{k}={n}" for k, n in sorted(by_outcome.items())))
        lines.append(f"  latency: p50 {pct(0.50):.4f} ms, "
                     f"p99 {pct(0.99):.4f} ms, max {lat[-1]:.4f} ms "
                     "(simulated)")

    host = [e for e in events if e.kind == "host"]
    if host:
        per_h: dict[str, float] = defaultdict(float)
        for e in host:
            per_h[e.name] += e.dur_ms
        lines.append("\nhost regions (wall):")
        for name, ms in sorted(per_h.items(), key=lambda kv: -kv[1])[:8]:
            lines.append(f"  {name:<32} {ms:>9.1f} ms")
    return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "-"
    try:
        return f"{float(v):.3f}"
    except (TypeError, ValueError):
        return str(v)


def _fmt_int(v) -> str:
    return "-" if v is None else str(v)
