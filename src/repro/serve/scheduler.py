"""The request scheduler: admission, batching, sharding, answer policy.

``serve_traffic`` plays one deterministic traffic session against a
graph: queries arrive on the simulated clock, and each is answered by the
cheapest layer that can serve it correctly:

1. **coalescing** — the source's distance field is already being computed
   by an in-flight batch: the query waits for that batch, no new work;
2. **distance-field cache** — an exact field for the source is resident
   in the byte-capped LRU: answer immediately (exact);
3. **landmark oracle** — point-to-point queries whose ALT bracket proves
   the declared tolerance (:func:`repro.serve.oracle.certified_answer`)
   are answered approximately with zero graph traversal;
4. **exact fallback** — everything else queues into a batching window;
   the batch's distinct sources run back-to-back as one multi-source
   job (the paper's §5.1.3 batch protocol) on the least-loaded shard.

Shards model independent simulated-GPU lanes: each exact batch occupies
one lane for its summed run time, so queueing delay, load imbalance and
tail latency all emerge from the same deterministic clock the simulator
itself uses.  With ``multi_gpu > 1`` every exact run additionally executes
on the bulk-synchronous multi-GPU engine (:mod:`repro.gpusim.multi`); with
``plan`` set, every exact run executes under that fault plan with the
self-healing runtime on (:mod:`repro.faults`), and the report counts any
escaped fault.

With ``chaos`` set (a :mod:`repro.serve.chaos` plan name) the *serving
tier itself* is attacked on the same simulated clock — shard blackouts
and slowdowns, cache corruption, oracle decertification — and survived
through hedged retry, per-shard circuit breakers and checksum
quarantine; with ``deadline_ms > 0`` every request walks a
graceful-degradation ladder (exact → relaxed-tolerance certified oracle
→ explicit shed) instead of missing its deadline silently.  Both knobs
default off, and the off path is byte-identical to a scheduler without
the chaos layer at all.

Everything observable — latencies, hit/fallback counters, aggregated
device counters, LRU statistics — is a pure function of
``(graph, ServeConfig)``, which is what lets ``BENCH_serve.json`` gate
the whole serving layer exactly in CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graphs.csr import CSRGraph
from ..sssp.api import sssp
from ..sssp.validate import DistanceMismatch, scipy_distances, validate_distances
from .cache import DistanceFieldLRU
from .oracle import certified_answer, warm_oracle
from .workload import Query, ServeConfig, generate_queries

__all__ = ["ServeReport", "serve_traffic", "ORACLE_LATENCY_MS", "CACHE_LATENCY_MS"]

#: simulated host cost of answering from the O(k) landmark oracle
ORACLE_LATENCY_MS = 0.002
#: simulated host cost of answering from the resident LRU field
CACHE_LATENCY_MS = 0.001

#: validation slack on exact answers (matches validate_distances defaults)
_EXACT_ATOL = 1e-6
_EXACT_RTOL = 1e-9


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list (deterministic)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


@dataclass
class ServeReport:
    """Everything one traffic session measured.

    All fields except ``host_seconds`` are deterministic simulator
    quantities; :meth:`counter_dict` flattens them into the exact-gated
    ``counters`` mapping of a bench record.
    """

    graph_name: str
    config: ServeConfig
    queries: int = 0
    p2p_queries: int = 0
    single_source_queries: int = 0
    oracle_hits: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    fallbacks: int = 0
    exact_runs: int = 0
    batches: int = 0
    #: simulated ms of landmark preprocessing (offline, before t=0)
    warmup_ms: float = 0.0
    #: completion time of the last answer (simulated ms)
    makespan_ms: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    #: per-shard busy milliseconds (exact batches only)
    shard_busy_ms: list[float] = field(default_factory=list)
    #: answers that failed validation against the SciPy oracle
    wrong: int = 0
    #: fault-injection tallies summed over exact runs (plan sessions)
    faults_injected: int = 0
    faults_corrected: int = 0
    faults_escaped: int = 0
    #: serving-tier chaos tallies (chaos plan / deadline sessions only)
    hedges: int = 0
    shard_failures: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    corruptions_injected: int = 0
    oracle_refusals: int = 0
    #: degradation-ladder tallies (deadline sessions only)
    degraded: int = 0
    shed: int = 0
    slo_violations: int = 0
    #: multi-GPU engine tallies summed over exact runs (multi_gpu > 1)
    mg_supersteps: int = 0
    mg_exchanged_messages: int = 0
    #: summed device counters of the exact fallback runs
    device_counters: dict[str, float] = field(default_factory=dict)
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: True when the oracle bundle came from the persistent artifact cache
    oracle_artifact_hit: bool = False
    #: wall-clock seconds of the whole session (noisy; never gated)
    host_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def qps(self) -> float:
        """Sustained queries per *simulated* second."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.queries / (self.makespan_ms / 1e3)

    @property
    def ok(self) -> bool:
        """No wrong answer and no escaped fault."""
        return self.wrong == 0 and self.faults_escaped == 0

    def _sorted_latencies(self) -> list[float]:
        return sorted(self.latencies_ms)

    @property
    def p50_ms(self) -> float:
        return _percentile(self._sorted_latencies(), 0.50)

    @property
    def p99_ms(self) -> float:
        return _percentile(self._sorted_latencies(), 0.99)

    @property
    def max_latency_ms(self) -> float:
        return max(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    def counter_dict(self) -> dict[str, float]:
        """The deterministic counter mapping of this session's record."""
        counters: dict[str, float] = {
            "serve.queries": float(self.queries),
            "serve.p2p_queries": float(self.p2p_queries),
            "serve.single_source_queries": float(self.single_source_queries),
            "serve.oracle_hits": float(self.oracle_hits),
            "serve.cache_hits": float(self.cache_hits),
            "serve.coalesced": float(self.coalesced),
            "serve.fallbacks": float(self.fallbacks),
            "serve.exact_runs": float(self.exact_runs),
            "serve.batches": float(self.batches),
            "serve.warmup_ms": float(self.warmup_ms),
            "serve.qps": float(self.qps),
            "serve.p50_ms": float(self.p50_ms),
            "serve.p99_ms": float(self.p99_ms),
            "serve.max_latency_ms": float(self.max_latency_ms),
            "serve.wrong": float(self.wrong),
            "serve.faults_injected": float(self.faults_injected),
            "serve.faults_corrected": float(self.faults_corrected),
            "serve.faults_escaped": float(self.faults_escaped),
            "serve.lru_evictions": float(self.cache_stats.get("evictions", 0)),
            "serve.lru_bytes": float(self.cache_stats.get("bytes", 0)),
        }
        for i, busy in enumerate(self.shard_busy_ms):
            counters[f"serve.shard{i}_busy_ms"] = float(busy)
        if self.config.multi_gpu > 1:
            counters["serve.mg_supersteps"] = float(self.mg_supersteps)
            counters["serve.mg_exchanged_messages"] = float(
                self.mg_exchanged_messages
            )
        if self.config.chaos is not None or self.config.deadline_ms > 0:
            counters["serve.hedges"] = float(self.hedges)
            counters["serve.shard_failures"] = float(self.shard_failures)
            counters["serve.breaker_opens"] = float(self.breaker_opens)
            counters["serve.breaker_half_opens"] = float(
                self.breaker_half_opens
            )
            counters["serve.breaker_closes"] = float(self.breaker_closes)
            counters["serve.corruptions_injected"] = float(
                self.corruptions_injected
            )
            counters["serve.corruptions_detected"] = float(
                self.cache_stats.get("corrupted", 0)
            )
            counters["serve.oracle_refusals"] = float(self.oracle_refusals)
            counters["serve.degraded"] = float(self.degraded)
            counters["serve.shed"] = float(self.shed)
            counters["serve.slo_violations"] = float(self.slo_violations)
        counters.update(self.device_counters)
        return counters

    def summary(self) -> str:
        """Terminal digest (the ``cli serve`` body)."""
        c = self.config
        lines = [
            f"session : {self.queries} queries "
            f"({self.p2p_queries} p2p / {self.single_source_queries} "
            f"single-source), seed {c.seed}, {c.shards} shard(s)"
            + (f", multi_gpu={c.multi_gpu}" if c.multi_gpu > 1 else "")
            + (f", plan={c.plan}" if c.plan else ""),
            f"policy  : tolerance {c.tolerance:g}, {c.landmarks} landmark(s) "
            f"(warmup {self.warmup_ms:.3f} ms"
            + (", artifact hit)" if self.oracle_artifact_hit else ")"),
            f"answers : {self.oracle_hits} oracle, {self.cache_hits} cached, "
            f"{self.coalesced} coalesced, {self.fallbacks} exact "
            f"({self.exact_runs} run(s) in {self.batches} batch(es))",
            f"latency : p50 {self.p50_ms:.4f} ms, p99 {self.p99_ms:.4f} ms, "
            f"max {self.max_latency_ms:.4f} ms (simulated)",
            f"traffic : {self.qps:,.0f} queries/s over "
            f"{self.makespan_ms:.3f} ms makespan",
        ]
        if c.plan:
            lines.append(
                f"faults  : {self.faults_injected} injected, "
                f"{self.faults_corrected} corrected, "
                f"{self.faults_escaped} escaped"
            )
        if c.chaos is not None or c.deadline_ms > 0:
            lines.append(
                f"chaos   : plan {c.chaos or 'none'}"
                + (f", deadline {c.deadline_ms:g} ms" if c.deadline_ms > 0
                   else "")
                + f" — {self.hedges} hedge(s), breaker "
                f"{self.breaker_opens}/{self.breaker_half_opens}/"
                f"{self.breaker_closes} open/probe/close, "
                f"{self.corruptions_injected} corruption(s) injected "
                f"({self.cache_stats.get('corrupted', 0)} detected), "
                f"{self.oracle_refusals} oracle refusal(s)"
            )
        if c.deadline_ms > 0:
            lines.append(
                f"ladder  : {self.degraded} degraded, {self.shed} shed, "
                f"{self.slo_violations} SLO violation(s)"
            )
        lines.append(
            f"verdict : {self.wrong} wrong answer(s) — "
            + ("ok ✓" if self.ok else "FAILED")
        )
        return "\n".join(lines)


class _Session:
    """Mutable state of one ``serve_traffic`` run."""

    def __init__(self, graph: CSRGraph, config: ServeConfig, spec, validate: bool):
        if config.shards < 1:
            raise ValueError("shards must be >= 1")
        if config.max_batch_sources < 1:
            raise ValueError("max_batch_sources must be >= 1")
        if config.deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0")
        self.graph = graph
        self.config = config
        self.spec = spec
        self.validate = validate
        self.report = ServeReport(graph_name=graph.name, config=config)
        self.chaos = None
        if config.chaos is not None:
            from .chaos import ChaosEngine, get_chaos_plan

            self.chaos = ChaosEngine(
                get_chaos_plan(config.chaos), config.shards, self.report
            )
        # checksums only under chaos: the chaos-off cache (counters
        # included) must stay byte-identical to the pre-chaos scheduler
        self.lru = DistanceFieldLRU(
            config.cache_bytes,
            checksums=self.chaos is not None,
            on_corruption=self._on_cache_corruption,
        )
        self.deadline_active = config.deadline_ms > 0
        self.oracle = None
        self._now = 0.0
        self.busy_until = [0.0] * config.shards
        self.pending: list[Query] = []
        self.pending_deadline = float("inf")
        #: source -> completion time of the batch computing its field
        self.inflight: dict[int, float] = {}
        #: sources whose full field already passed host validation
        self.validated: set[int] = set()
        self.last_completion = 0.0
        self.run_index = 0

    # -- tracing -------------------------------------------------------
    def _trace(self, outcome: str, q: Query, latency: float, **extra) -> None:
        from ..trace import active_tracer

        tracer = active_tracer()
        if tracer is None:
            return
        args = {
            "qid": q.qid,
            "source": q.source,
            "target": q.target,
            "outcome": outcome,
        }
        args.update(extra)
        tracer.emit("serve", outcome, q.t_ms, latency, device=-1, args=args)

    def _on_cache_corruption(self, source: int) -> None:
        """Checksum mismatch callback: trace the quarantine instant."""
        from .chaos import emit_chaos

        emit_chaos("corruption_detected", self._now, source=int(source))

    # -- answering -----------------------------------------------------
    def _complete(self, q: Query, outcome: str, latency: float,
                  answer: float, **extra) -> None:
        r = self.report
        r.latencies_ms.append(latency)
        self.last_completion = max(self.last_completion, q.t_ms + latency)
        self._trace(outcome, q, latency, **extra)
        if self.validate and q.is_p2p and not np.isnan(answer):
            exact = float(scipy_distances(self.graph, q.source)[q.target])
            if outcome == "oracle":
                tol = self.config.tolerance
            elif outcome == "degraded":
                tol = self.config.relaxed_tolerance
            else:
                tol = _EXACT_RTOL
            if not np.isclose(answer, exact, rtol=tol, atol=_EXACT_ATOL):
                r.wrong += 1

    def _validate_field(self, source: int, dist: np.ndarray) -> None:
        """Full-field host validation, once per distinct source."""
        if not self.validate or source in self.validated:
            return
        self.validated.add(source)
        try:
            validate_distances(self.graph, source, dist)
        except DistanceMismatch:
            self.report.wrong += 1

    # -- exact execution ----------------------------------------------
    def _exact_run(self, source: int):
        """One exact run; returns ``(dist, simulated_ms)``."""
        cfg = self.config
        r = self.report
        if cfg.multi_gpu > 1:
            from ..gpusim.multi import multi_gpu_sssp

            kwargs = {"spec": self.spec} if self.spec is not None else {}
            mg = multi_gpu_sssp(
                self.graph, source, num_gpus=cfg.multi_gpu, **kwargs
            )
            r.mg_supersteps += mg.supersteps
            r.mg_exchanged_messages += mg.exchanged_messages
            self.run_index += 1
            return mg.dist, mg.time_ms
        kwargs = {"spec": self.spec} if self.spec is not None else {}
        if cfg.plan:
            from ..faults import faulty_sssp

            result, rep = faulty_sssp(
                self.graph, source, method=cfg.method, plan=cfg.plan,
                seed=cfg.seed * 1000 + self.run_index, recovery=True,
                **kwargs,
            )
            r.faults_injected += rep.injected
            r.faults_corrected += rep.corrected
            r.faults_escaped += rep.escaped
        else:
            result = sssp(self.graph, source, method=cfg.method, **kwargs)
        self.run_index += 1
        if result.counters is not None:
            for name, value in result.counters.totals.as_dict().items():
                r.device_counters[name] = (
                    r.device_counters.get(name, 0.0) + float(value)
                )
        return result.dist, result.time_ms

    # -- graceful degradation ------------------------------------------
    def _degrade_or_shed(self, q: Query, decided_at: float) -> None:
        """Ladder rungs 2–3 for a request that cannot make its deadline.

        Rung 2: a relaxed-tolerance certified oracle answer (p2p only,
        and only while the oracle is not decertified) — degraded but
        still provably within ``relaxed_tolerance``.  Rung 3: explicit
        shed at the deadline, counted and SLO-accounted.  The ladder
        never produces a silently wrong answer.
        """
        cfg = self.config
        r = self.report
        if q.is_p2p and (
            self.chaos is None or not self.chaos.oracle_decertified(decided_at)
        ):
            answer = certified_answer(
                self.oracle, q.source, q.target, cfg.relaxed_tolerance
            )
            if answer is not None:
                latency = max(ORACLE_LATENCY_MS, decided_at - q.t_ms)
                r.degraded += 1
                self._complete(q, "degraded", latency, answer)
                return
        from .chaos import emit_chaos

        deadline = q.t_ms + cfg.deadline_ms
        r.shed += 1
        r.slo_violations += 1
        self.last_completion = max(self.last_completion, deadline)
        self._trace("shed", q, cfg.deadline_ms)
        emit_chaos(
            "shed", deadline, qid=q.qid, source=q.source, target=q.target
        )

    def _flush(self, now: float) -> None:
        """Run the pending batch's distinct sources on the best shard."""
        if not self.pending:
            return
        cfg = self.config
        r = self.report
        sources: list[int] = []
        for q in self.pending:
            if q.source not in sources:
                sources.append(q.source)
        fields: dict[int, np.ndarray] = {}
        if self.chaos is None:
            shard = min(
                range(len(self.busy_until)),
                key=lambda i: (self.busy_until[i], i),
            )
            start = max(now, self.busy_until[shard])
            t_end = start
            for source in sources:
                dist, run_ms = self._exact_run(source)
                t_end += run_ms
                fields[source] = dist
            self.busy_until[shard] = t_end
        else:
            # chaos dispatch: hedged retry over healthy shards, breakers,
            # blackout/slowdown-aware completion times
            work_ms = 0.0
            for source in sources:
                dist, run_ms = self._exact_run(source)
                work_ms += run_ms
                fields[source] = dist
            shard, t_end = self.chaos.dispatch(self.busy_until, now, work_ms)
        r.batches += 1
        r.exact_runs += len(sources)
        for source in sources:
            self.inflight[source] = t_end
            self.lru.put(source, fields[source])
            self._validate_field(source, fields[source])
        for q in self.pending:
            if self.deadline_active and t_end > q.t_ms + cfg.deadline_ms:
                self._degrade_or_shed(q, q.t_ms + cfg.deadline_ms)
                continue
            latency = t_end - q.t_ms
            answer = (
                float(fields[q.source][q.target]) if q.is_p2p else float("nan")
            )
            r.fallbacks += 1
            self._complete(q, "exact", latency, answer, shard=shard)
        self.pending.clear()
        self.pending_deadline = float("inf")

    # -- admission -----------------------------------------------------
    def admit(self, q: Query, oracle) -> None:
        cfg = self.config
        r = self.report
        self._now = q.t_ms
        if self.chaos is not None:
            self.chaos.advance(q.t_ms, self.lru)
        r.queries += 1
        if q.is_p2p:
            r.p2p_queries += 1
        else:
            r.single_source_queries += 1

        # 1) coalesce onto an in-flight batch computing this source
        done_at = self.inflight.get(q.source)
        if done_at is not None and q.t_ms < done_at:
            field_arr = self.lru.peek(q.source)
            if field_arr is not None:
                latency = (done_at - q.t_ms) + CACHE_LATENCY_MS
                if self.deadline_active and latency > cfg.deadline_ms:
                    # waiting for the in-flight batch would blow the
                    # deadline, and re-running would not be faster
                    self._degrade_or_shed(q, q.t_ms)
                    return
                answer = (
                    float(field_arr[q.target]) if q.is_p2p else float("nan")
                )
                r.coalesced += 1
                self._complete(q, "coalesced", latency, answer)
                return

        # 2) resident exact field in the LRU
        field_arr = self.lru.get(q.source)
        if field_arr is not None:
            answer = float(field_arr[q.target]) if q.is_p2p else float("nan")
            r.cache_hits += 1
            self._complete(q, "cache", CACHE_LATENCY_MS, answer)
            return

        # 3) landmark oracle, for p2p queries the bracket certifies —
        #    unless a chaos outage has decertified the landmark data
        if q.is_p2p:
            if self.chaos is not None and self.chaos.oracle_decertified(q.t_ms):
                r.oracle_refusals += 1
            else:
                answer = certified_answer(
                    oracle, q.source, q.target, cfg.tolerance
                )
                if answer is not None:
                    r.oracle_hits += 1
                    self._complete(q, "oracle", ORACLE_LATENCY_MS, answer)
                    return

        # 4) exact fallback through the batching window
        if not self.pending:
            self.pending_deadline = q.t_ms + cfg.batch_window_ms
        self.pending.append(q)
        distinct = len({p.source for p in self.pending})
        if distinct >= cfg.max_batch_sources:
            self._flush(q.t_ms)


def serve_traffic(
    graph: CSRGraph,
    config: ServeConfig,
    *,
    spec=None,
    validate: bool = True,
) -> ServeReport:
    """Play one deterministic traffic session; returns its report.

    ``validate=True`` (the default, and what CI's smoke gate runs)
    checks every point-to-point answer and every exact distance field
    against the SciPy oracle; a violation increments ``report.wrong``
    rather than raising, so the CLI can exit nonzero with the full
    report printed.
    """
    t0 = time.perf_counter()
    session = _Session(graph, config, spec, validate)
    report = session.report

    warm = warm_oracle(graph, config, spec=spec)
    session.oracle = warm.oracle
    report.warmup_ms = warm.warmup_ms
    report.oracle_artifact_hit = warm.artifact_hit
    # landmark fields are exact full fields: seed the LRU with them
    for i, lm in enumerate(warm.oracle.landmarks):
        session.lru.put(int(lm), warm.oracle.dist_matrix[i])

    queries = generate_queries(graph, config)
    for q in queries:
        while session.pending and q.t_ms >= session.pending_deadline:
            session._flush(session.pending_deadline)
        session.admit(q, warm.oracle)
    if session.pending:
        session._flush(
            min(session.pending_deadline, max(q.t_ms for q in session.pending)
                + config.batch_window_ms)
        )

    report.makespan_ms = max(
        session.last_completion, queries[-1].t_ms if queries else 0.0
    )
    report.shard_busy_ms = [float(b) for b in session.busy_until]
    report.cache_stats = session.lru.stats()
    report.host_seconds = time.perf_counter() - t0
    return report
