"""Serving-tier chaos: deterministic fault plans, breakers, hedged dispatch.

``repro.faults`` (PR 3) proved the *engine* self-heals under injected
faults; this module lifts the same discipline one level up, to the
serving scheduler.  A :class:`ChaosPlan` scripts infrastructure faults on
the **same simulated millisecond clock** the scheduler already uses:

* :class:`ShardBlackout` — a shard crashes for a window and restarts;
  any batch dispatched into the window fails at the overlap point;
* :class:`ShardSlowdown` — a shard serves at ``factor×`` service time
  inside a window (a thermally throttled / noisy-neighbor lane);
* :class:`CacheCorruption` — at a scripted instant one resident LRU
  distance field is bit-flipped; the cache's per-entry checksums
  (:class:`repro.serve.cache.DistanceFieldLRU`) detect it on the next
  read and quarantine the entry instead of serving poison;
* :class:`OracleOutage` — the landmark oracle is *decertified* for a
  window (stale landmark data), so the scheduler may not serve its
  bounds even when the bracket is tight.

And the resilience mechanisms that must survive them:

* a per-shard **circuit breaker** (:class:`ShardBreaker`) — ``closed →
  open`` after ``failure_threshold`` consecutive failures, ``open →
  half-open`` when a dispatch probes it after ``breaker_reset_ms`` of
  simulated time, ``half-open → closed`` on a successful probe;
* **hedged retry** — a batch whose shard fails mid-service is re-issued
  onto the next least-loaded healthy shard from the failure instant;
* the **graceful-degradation ladder** lives in the scheduler: exact →
  relaxed-tolerance certified oracle → explicit deadline shed.  Chaos
  may slow or shed an answer; it must never make one wrong.

Everything is a pure function of ``(plan, dispatch sequence)``: no wall
clock, no RNG.  The same session under the same plan replays the same
failures, hedges and breaker transitions byte-for-byte, which is what
lets ``BENCH_serve-chaos.json`` gate the whole story exactly in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import DistanceFieldLRU

__all__ = [
    "ShardBlackout",
    "ShardSlowdown",
    "CacheCorruption",
    "OracleOutage",
    "ChaosPlan",
    "ShardBreaker",
    "ChaosEngine",
    "CHAOS_PLANS",
    "chaos_plan_names",
    "get_chaos_plan",
    "emit_chaos",
]

#: hard cap on dispatch re-tries for one batch (termination guard; a
#: finite plan needs far fewer — each attempt advances simulated time)
_MAX_DISPATCH_ATTEMPTS = 10_000


def emit_chaos(name: str, ts_ms: float, **args) -> None:
    """Emit one ``chaos`` event on the active tracer (no-op untraced)."""
    from ..trace import active_tracer

    tracer = active_tracer()
    if tracer is not None:
        tracer.emit("chaos", name, ts_ms, 0.0, device=-1, args=args)


# ---------------------------------------------------------------------------
# fault taxonomy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardBlackout:
    """Shard ``shard`` is down on ``[start_ms, end_ms)`` simulated time."""

    shard: int
    start_ms: float
    end_ms: float


@dataclass(frozen=True)
class ShardSlowdown:
    """Shard ``shard`` serves at ``factor×`` time on ``[start_ms, end_ms)``."""

    shard: int
    start_ms: float
    end_ms: float
    factor: float = 4.0


@dataclass(frozen=True)
class CacheCorruption:
    """At ``at_ms`` one resident LRU field is bit-flipped in place.

    ``rank`` selects the victim by recency order (``-1`` = most recently
    used, ``0`` = least recently used); the instant and victim are part
    of the plan, so corruption replays deterministically.
    """

    at_ms: float
    rank: int = -1


@dataclass(frozen=True)
class OracleOutage:
    """The landmark oracle is decertified on ``[start_ms, end_ms)``."""

    start_ms: float
    end_ms: float


@dataclass(frozen=True)
class ChaosPlan:
    """One named, fully scripted serving-tier fault schedule."""

    name: str
    blackouts: tuple[ShardBlackout, ...] = ()
    slowdowns: tuple[ShardSlowdown, ...] = ()
    corruptions: tuple[CacheCorruption, ...] = ()
    outages: tuple[OracleOutage, ...] = ()
    #: consecutive failures that trip a shard's breaker open
    failure_threshold: int = 1
    #: simulated ms an open breaker waits before admitting a probe
    breaker_reset_ms: float = 0.4


#: the shipped plans ``serve --chaos-plan`` accepts
CHAOS_PLANS: dict[str, ChaosPlan] = {
    "blackout": ChaosPlan(
        name="blackout",
        blackouts=(ShardBlackout(shard=0, start_ms=0.2, end_ms=1.6),),
    ),
    "slow-shard": ChaosPlan(
        name="slow-shard",
        slowdowns=(
            ShardSlowdown(shard=1, start_ms=0.3, end_ms=4.0, factor=6.0),
        ),
    ),
    "cache-corruption": ChaosPlan(
        name="cache-corruption",
        corruptions=(
            CacheCorruption(at_ms=0.6),
            CacheCorruption(at_ms=1.5, rank=0),
            CacheCorruption(at_ms=2.5),
        ),
    ),
    "oracle-outage": ChaosPlan(
        name="oracle-outage",
        outages=(OracleOutage(start_ms=0.5, end_ms=2.5),),
    ),
    "mayhem": ChaosPlan(
        name="mayhem",
        blackouts=(ShardBlackout(shard=0, start_ms=0.3, end_ms=1.2),),
        slowdowns=(
            ShardSlowdown(shard=1, start_ms=1.0, end_ms=3.0, factor=4.0),
        ),
        corruptions=(CacheCorruption(at_ms=0.8), CacheCorruption(at_ms=2.0)),
        outages=(OracleOutage(start_ms=1.5, end_ms=2.5),),
    ),
}


def chaos_plan_names() -> list[str]:
    """The plan names ``serve --chaos-plan`` accepts."""
    return sorted(CHAOS_PLANS)


def get_chaos_plan(name: str) -> ChaosPlan:
    """Look up a shipped plan by name (``ValueError`` on unknown)."""
    try:
        return CHAOS_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos plan {name!r}; choose from "
            f"{', '.join(chaos_plan_names())}"
        ) from None


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class ShardBreaker:
    """Per-shard circuit breaker on simulated time.

    States: ``closed`` (dispatch freely) → ``open`` (reject dispatch until
    ``reset_ms`` of simulated time has passed) → ``half-open`` (one probe
    in flight; success closes, failure re-opens).  Transitions happen only
    at dispatch/completion instants, so the state machine is a pure
    function of the dispatch sequence.
    """

    def __init__(self, shard: int, threshold: int, reset_ms: float) -> None:
        self.shard = shard
        self.threshold = max(1, int(threshold))
        self.reset_ms = float(reset_ms)
        self.state = "closed"
        self.failures = 0
        self.opened_at = float("-inf")

    def can_dispatch(self, t: float) -> bool:
        """May a batch be placed on this shard at simulated time ``t``?"""
        if self.state == "open":
            return t >= self.opened_at + self.reset_ms
        return True

    def next_ready_ms(self, t: float) -> float:
        """Earliest simulated time >= ``t`` a dispatch could be admitted."""
        if self.state == "open":
            return max(t, self.opened_at + self.reset_ms)
        return t

    def on_dispatch(self, t: float, engine: "ChaosEngine") -> None:
        """A batch was placed; an elapsed open breaker becomes a probe."""
        if self.state == "open":
            self.state = "half-open"
            engine.report.breaker_half_opens += 1
            emit_chaos("breaker_half_open", t, shard=self.shard)

    def on_success(self, t: float, engine: "ChaosEngine") -> None:
        if self.state == "half-open":
            self.state = "closed"
            engine.report.breaker_closes += 1
            emit_chaos("breaker_close", t, shard=self.shard)
        self.failures = 0

    def on_failure(self, t: float, engine: "ChaosEngine") -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            self.state = "open"
            self.opened_at = t
            self.failures = 0
            engine.report.breaker_opens += 1
            emit_chaos("breaker_open", t, shard=self.shard)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


@dataclass
class ChaosEngine:
    """Applies one :class:`ChaosPlan` to a running serve session.

    The scheduler owns the clock and the shard ``busy_until`` ledger; the
    engine owns fault windows, breakers and the chaos counters on the
    session's :class:`~repro.serve.scheduler.ServeReport`.
    """

    plan: ChaosPlan
    shards: int
    report: object
    breakers: list[ShardBreaker] = field(default_factory=list)
    _next_corruption: int = 0

    def __post_init__(self) -> None:
        self.breakers = [
            ShardBreaker(i, self.plan.failure_threshold, self.plan.breaker_reset_ms)
            for i in range(self.shards)
        ]
        self._corruptions = sorted(
            self.plan.corruptions, key=lambda c: (c.at_ms, c.rank)
        )
        self._blackouts = sorted(
            self.plan.blackouts, key=lambda b: (b.start_ms, b.shard)
        )
        self._slowdowns = sorted(
            self.plan.slowdowns, key=lambda s: (s.start_ms, s.shard)
        )

    # -- scripted fault application ------------------------------------
    def advance(self, now: float, lru: DistanceFieldLRU) -> None:
        """Apply every scripted cache corruption due by simulated ``now``."""
        while (
            self._next_corruption < len(self._corruptions)
            and self._corruptions[self._next_corruption].at_ms <= now
        ):
            ev = self._corruptions[self._next_corruption]
            self._next_corruption += 1
            sources = lru.sources()  # LRU-first order
            if not sources:
                continue
            victim = sources[ev.rank % len(sources)]
            lru.corrupt(victim)
            self.report.corruptions_injected += 1
            emit_chaos("corruption_injected", ev.at_ms, source=int(victim))

    def oracle_decertified(self, t: float) -> bool:
        """Is the landmark oracle inside a decertification window at ``t``?"""
        return any(w.start_ms <= t < w.end_ms for w in self.plan.outages)

    # -- service-time model --------------------------------------------
    def service_end(self, shard: int, start: float, work_ms: float) -> float:
        """Completion time of ``work_ms`` of work started at ``start``.

        Piecewise integration over the shard's slowdown windows: inside a
        window one unit of work takes ``factor`` units of simulated time.
        """
        t = float(start)
        remaining = float(work_ms)
        for w in self._slowdowns:
            if w.shard != shard or remaining <= 0.0 or w.end_ms <= t:
                continue
            if t < w.start_ms:
                gap = w.start_ms - t
                if remaining <= gap:
                    return t + remaining
                t = w.start_ms
                remaining -= gap
            span = w.end_ms - t
            slowed = remaining * w.factor
            if slowed <= span:
                return t + slowed
            t = w.end_ms
            remaining -= span / w.factor
        return t + remaining

    def _blackout_hit(self, shard: int, start: float, end: float) -> float | None:
        """First instant in ``[start, end)`` the shard is blacked out."""
        hits = [
            max(start, b.start_ms)
            for b in self._blackouts
            if b.shard == shard and b.start_ms < end and b.end_ms > start
        ]
        return min(hits) if hits else None

    # -- dispatch with hedged retry ------------------------------------
    def dispatch(
        self, busy_until: list[float], now: float, work_ms: float
    ) -> tuple[int, float]:
        """Place one batch; returns ``(shard, completion_ms)``.

        Tries the least-loaded shard whose breaker admits dispatch at the
        current instant.  A blackout mid-service fails the attempt at the
        overlap point (the shard's clock still advances to the failure —
        the work was burned), records the failure with the breaker, and
        *hedges*: the batch is re-issued from the failure instant onto the
        next candidate.  When no breaker admits dispatch, simulated time
        advances to the earliest breaker reset (which then runs as a
        half-open probe).
        """
        t = float(now)
        excluded: set[int] = set()
        for _ in range(_MAX_DISPATCH_ATTEMPTS):
            ready = [
                i
                for i in range(len(busy_until))
                if i not in excluded and self.breakers[i].can_dispatch(t)
            ]
            if not ready:
                # every shard is excluded or open: wait for the earliest
                # breaker reset and probe from scratch
                t = min(
                    self.breakers[i].next_ready_ms(t)
                    for i in range(len(busy_until))
                )
                excluded.clear()
                continue
            shard = min(ready, key=lambda i: (busy_until[i], i))
            breaker = self.breakers[shard]
            breaker.on_dispatch(t, self)
            start = max(t, busy_until[shard])
            end = self.service_end(shard, start, work_ms)
            fail_at = self._blackout_hit(shard, start, end)
            if fail_at is None:
                busy_until[shard] = end
                breaker.on_success(end, self)
                return shard, end
            busy_until[shard] = fail_at
            self.report.shard_failures += 1
            emit_chaos("shard_failure", fail_at, shard=shard)
            breaker.on_failure(fail_at, self)
            self.report.hedges += 1
            emit_chaos("hedge", fail_at, shard_from=shard)
            excluded.add(shard)
            t = fail_at
        raise RuntimeError(
            f"chaos plan {self.plan.name!r}: batch could not be placed after "
            f"{_MAX_DISPATCH_ATTEMPTS} attempts (unbounded blackout?)"
        )
