"""In-memory LRU cache of hot distance fields.

The serving layer's *persistent* artifacts (landmark oracle bundles,
SciPy reference fields) live in :mod:`repro.perf.artifacts`; this module
is the complementary *session* cache: the full distance fields produced
by exact fallback runs, keyed by source vertex, bounded by bytes, evicted
least-recently-used.  A repeat query for a hot source is then answered
with one array lookup instead of a fresh GPU run.

Determinism contract: given the same access sequence the cache makes the
same decisions — recency is advanced only by :meth:`get` / :meth:`put`
(never by wall clock), and eviction is a pure function of the insertion
and access order plus the byte cap.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["DistanceFieldLRU"]


class DistanceFieldLRU:
    """Byte-capped LRU map ``source vertex -> distance field``."""

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[int, np.ndarray] = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: fields larger than the whole cap are never admitted
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, source: int) -> bool:
        return int(source) in self._entries

    def get(self, source: int) -> np.ndarray | None:
        """The cached field (refreshing its recency), or ``None``."""
        key = int(source)
        field = self._entries.get(key)
        if field is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return field

    def peek(self, source: int) -> np.ndarray | None:
        """Like :meth:`get` but without touching recency or counters."""
        return self._entries.get(int(source))

    def put(self, source: int, field: np.ndarray) -> None:
        """Insert (or refresh) a field, evicting LRU entries past the cap."""
        key = int(source)
        size = int(field.nbytes)
        if size > self.max_bytes:
            self.rejected += 1
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= int(old.nbytes)
        self._entries[key] = field
        self.bytes += size
        while self.bytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.bytes -= int(evicted.nbytes)
            self.evictions += 1

    def sources(self) -> list[int]:
        """Cached sources, least-recently-used first."""
        return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Plain-data counter snapshot (deterministic, exact-comparable)."""
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected": self.rejected,
        }
