"""In-memory LRU cache of hot distance fields.

The serving layer's *persistent* artifacts (landmark oracle bundles,
SciPy reference fields) live in :mod:`repro.perf.artifacts`; this module
is the complementary *session* cache: the full distance fields produced
by exact fallback runs, keyed by source vertex, bounded by bytes, evicted
least-recently-used.  A repeat query for a hot source is then answered
with one array lookup instead of a fresh GPU run.

Determinism contract: given the same access sequence the cache makes the
same decisions — recency is advanced only by :meth:`get` / :meth:`put`
(never by wall clock), and eviction is a pure function of the insertion
and access order plus the byte cap.

With ``checksums=True`` (the chaos-engineering mode,
:mod:`repro.serve.chaos`) every entry carries a blake2b digest of its
bytes, verified on each :meth:`get` / :meth:`peek`.  A mismatch —
scripted via :meth:`corrupt`, or any other in-memory bit damage —
quarantines the entry (it is dropped, counted in ``corrupted``, and the
read reports a miss) so a poisoned field can never be served.  Checksums
are off by default: the chaos-off serving path must stay byte-identical
to the pre-chaos scheduler, including every cache counter.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Callable

import numpy as np

__all__ = ["DistanceFieldLRU"]


def _digest(field: np.ndarray) -> bytes:
    return hashlib.blake2b(
        np.ascontiguousarray(field).tobytes(), digest_size=16
    ).digest()


class DistanceFieldLRU:
    """Byte-capped LRU map ``source vertex -> distance field``."""

    def __init__(
        self,
        max_bytes: int,
        *,
        checksums: bool = False,
        on_corruption: Callable[[int], None] | None = None,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self.checksums = bool(checksums)
        self.on_corruption = on_corruption
        self._entries: OrderedDict[int, np.ndarray] = OrderedDict()
        self._digests: dict[int, bytes] = {}
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: fields larger than the whole cap are never admitted
        self.rejected = 0
        #: entries quarantined because their checksum no longer matched
        self.corrupted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, source: int) -> bool:
        return int(source) in self._entries

    def _verify(self, key: int, field: np.ndarray) -> bool:
        """True if the entry is intact; quarantines and reports otherwise."""
        if not self.checksums:
            return True
        if _digest(field) == self._digests[key]:
            return True
        self._entries.pop(key)
        self._digests.pop(key)
        self.bytes -= int(field.nbytes)
        self.corrupted += 1
        if self.on_corruption is not None:
            self.on_corruption(key)
        return False

    def get(self, source: int) -> np.ndarray | None:
        """The cached field (refreshing its recency), or ``None``."""
        key = int(source)
        field = self._entries.get(key)
        if field is None:
            self.misses += 1
            return None
        if not self._verify(key, field):
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return field

    def peek(self, source: int) -> np.ndarray | None:
        """Like :meth:`get` but without touching recency or counters."""
        key = int(source)
        field = self._entries.get(key)
        if field is not None and not self._verify(key, field):
            return None
        return field

    def put(self, source: int, field: np.ndarray) -> None:
        """Insert (or refresh) a field, evicting LRU entries past the cap."""
        key = int(source)
        size = int(field.nbytes)
        if size > self.max_bytes:
            self.rejected += 1
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= int(old.nbytes)
        self._entries[key] = field
        if self.checksums:
            self._digests[key] = _digest(field)
        self.bytes += size
        while self.bytes > self.max_bytes and self._entries:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._digests.pop(evicted_key, None)
            self.bytes -= int(evicted.nbytes)
            self.evictions += 1

    def corrupt(self, source: int) -> bool:
        """Bit-flip one value of a resident entry (chaos injection).

        The entry is replaced by a damaged *copy* — resident fields may
        alias arrays owned by the oracle (landmark rows), which must stay
        pristine.  Returns ``False`` when the source is not resident.
        The stored digest is deliberately **not** refreshed: the next
        read detects the damage and quarantines the entry.
        """
        key = int(source)
        field = self._entries.get(key)
        if field is None:
            return False
        damaged = field.copy()
        flat = damaged.reshape(-1)
        # deterministic victim index and a finite, plausible-looking value
        idx = key % flat.size
        flat[idx] = flat[idx] + 1.5 if np.isfinite(flat[idx]) else 1.0
        self._entries[key] = damaged
        return True

    def sources(self) -> list[int]:
        """Cached sources, least-recently-used first."""
        return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Plain-data counter snapshot (deterministic, exact-comparable)."""
        stats = {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected": self.rejected,
        }
        if self.checksums:
            stats["corrupted"] = self.corrupted
        return stats
