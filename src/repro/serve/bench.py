"""Traffic benchmark suites for the serving layer.

Same contract as :mod:`repro.bench.suites`, different unit of work: a
*serve* suite cell is one deterministic traffic session
(:func:`repro.serve.scheduler.serve_traffic`) instead of one
(dataset × method) batch of SSSP runs.  Each cell serializes into the
standard versioned :class:`~repro.bench.trajectory.BenchRecord` — the
makespan is the cell's ``time_ms`` and every serving metric (hit/fallback
tallies, p50/p99 latency, sustained QPS, per-shard busy time, fault
tallies, aggregated device counters) lands in the exact-gated ``counters``
map.  ``host_seconds`` is pinned to ``0.0``: a serve trajectory is a pure
function of the suite spec, so the committed ``BENCH_serve.json``
baseline gates byte-identically in CI.

Three suites:

* ``serve-smoke`` — four small sessions covering every scheduler path
  (mixed p2p/single-source, road-network p2p, a fault-plan session on the
  self-healing runtime, a multi-GPU-sharded session).  Runs on every pull
  request.
* ``serve-chaos`` — six sessions under serving-tier chaos plans
  (:mod:`repro.serve.chaos`): shard blackout with hedged retry and a
  breaker recovery, a slow shard, cache corruption caught by checksums,
  an oracle decertification window, a deadline/degradation-ladder
  session, and a combined ``mayhem`` session.  Gated byte-identically
  against ``BENCH_serve-chaos.json`` in CI; every cell must end with
  zero wrong answers and zero escaped faults.
* ``serve-traffic`` — a heavier sustained-load matrix for tail-latency
  work; not wired into CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.trajectory import BenchRecord
from .scheduler import ServeReport, serve_traffic
from .workload import ServeConfig

__all__ = [
    "ServeCellSpec",
    "SERVE_SUITES",
    "serve_suite_names",
    "run_serve_cell",
    "run_serve_suite",
]


@dataclass(frozen=True)
class ServeCellSpec:
    """One named traffic session of a serve suite."""

    name: str
    dataset: str
    config: ServeConfig


_SMOKE_CELLS = (
    # mixed workload, both shard lanes busy, oracle + cache + coalescing
    ServeCellSpec(
        name="amazon-mixed",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=160, seed=101, p2p_fraction=0.7, tolerance=0.2,
            source_pool=10, landmarks=4, shards=2, cold_fraction=0.1,
        ),
    ),
    # road network: ALT's home turf — cold p2p sources the cache can't
    # help, a landmark budget big enough to certify a real fraction
    ServeCellSpec(
        name="road-p2p",
        dataset="road-TX",
        config=ServeConfig(
            num_queries=48, seed=202, p2p_fraction=0.9, tolerance=0.3,
            source_pool=4, landmarks=8, shards=2, cold_fraction=0.4,
        ),
    ),
    # every exact run executes under the lost-updates plan with the
    # self-healing runtime on; the gate requires escaped == 0
    ServeCellSpec(
        name="amazon-faulty",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=60, seed=303, p2p_fraction=0.5, tolerance=0.2,
            source_pool=6, landmarks=2, shards=1, plan="lost-updates",
        ),
    ),
    # exact fallbacks on the 2-GPU bulk-synchronous engine
    ServeCellSpec(
        name="amazon-multigpu",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=40, seed=404, p2p_fraction=0.5, tolerance=0.2,
            source_pool=4, landmarks=2, shards=2, multi_gpu=2,
        ),
    ),
)

_CHAOS_CELLS = (
    # shard 0 blacked out on [0.2, 1.6) ms: in-flight batches fail at the
    # overlap, hedge onto healthy shards, the breaker opens and — once the
    # blackout passes — recovers through a successful half-open probe
    ServeCellSpec(
        name="blackout-hedge",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=160, seed=606, p2p_fraction=0.6, tolerance=0.2,
            source_pool=12, landmarks=2, shards=3, cold_fraction=0.4,
            chaos="blackout",
        ),
    ),
    # shard 1 serves at 6x time inside the window: no failures, but load
    # visibly shifts and tail latency stretches (slowdown-aware dispatch)
    ServeCellSpec(
        name="slow-shard",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=160, seed=707, p2p_fraction=0.6, tolerance=0.2,
            source_pool=12, landmarks=2, shards=2, cold_fraction=0.3,
            chaos="slow-shard",
        ),
    ),
    # scripted bit-flips on resident LRU fields: the per-entry checksums
    # quarantine the damage on the next read instead of serving poison
    ServeCellSpec(
        name="cache-corruption",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=120, seed=808, p2p_fraction=0.8, tolerance=0.2,
            source_pool=6, landmarks=4, shards=2, chaos="cache-corruption",
        ),
    ),
    # the landmark oracle is decertified on [0.5, 2.5) ms: certified p2p
    # traffic is refused and falls through to the exact tier instead
    ServeCellSpec(
        name="oracle-outage",
        dataset="road-TX",
        config=ServeConfig(
            num_queries=60, seed=909, p2p_fraction=0.9, tolerance=0.3,
            source_pool=4, landmarks=8, shards=2, cold_fraction=0.4,
            chaos="oracle-outage",
        ),
    ),
    # blackout + tight per-request deadlines on ALT's home turf: requests
    # that cannot make the deadline walk the degradation ladder — many are
    # served degraded-but-certified at the relaxed tolerance, the rest
    # shed explicitly (counted in serve.shed / serve.slo_violations)
    ServeCellSpec(
        name="deadline-ladder",
        dataset="road-TX",
        config=ServeConfig(
            num_queries=80, seed=1010, p2p_fraction=0.9, tolerance=0.05,
            source_pool=4, landmarks=8, shards=2, cold_fraction=0.5,
            rate_qpms=15.0, chaos="blackout", deadline_ms=0.1,
            relaxed_tolerance=0.5,
        ),
    ),
    # everything at once: blackout, slowdown, corruption, oracle outage
    # and deadlines in one session — the whole resilience stack engaged
    ServeCellSpec(
        name="mayhem",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=160, seed=1111, p2p_fraction=0.7, tolerance=0.1,
            source_pool=12, landmarks=4, shards=2, cold_fraction=0.3,
            chaos="mayhem", deadline_ms=0.08, relaxed_tolerance=0.6,
        ),
    ),
)

_TRAFFIC_CELLS = (
    ServeCellSpec(
        name="amazon-sustained",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=600, seed=1001, p2p_fraction=0.75, tolerance=0.2,
            source_pool=16, landmarks=6, shards=4, rate_qpms=50.0,
        ),
    ),
    ServeCellSpec(
        name="road-sustained",
        dataset="road-TX",
        config=ServeConfig(
            num_queries=200, seed=1002, p2p_fraction=0.9, tolerance=0.3,
            source_pool=6, landmarks=8, shards=2, rate_qpms=10.0,
            cold_fraction=0.3,
        ),
    ),
    ServeCellSpec(
        name="amazon-faulty-sustained",
        dataset="Amazon",
        config=ServeConfig(
            num_queries=200, seed=1003, p2p_fraction=0.6, tolerance=0.2,
            source_pool=8, landmarks=4, shards=2, plan="lost-updates",
        ),
    ),
)

SERVE_SUITES: dict[str, tuple[ServeCellSpec, ...]] = {
    "serve-smoke": _SMOKE_CELLS,
    "serve-chaos": _CHAOS_CELLS,
    "serve-traffic": _TRAFFIC_CELLS,
}


def serve_suite_names() -> list[str]:
    """The serve suites ``bench run --suite`` / ``cli serve`` accept."""
    return sorted(SERVE_SUITES)


def report_to_record(cell: ServeCellSpec, report: ServeReport) -> BenchRecord:
    """Fold one session report into an exact-gated bench record.

    ``host_seconds`` is deliberately zeroed: serving sessions are meant to
    gate byte-identically, and wall clock is the only noisy field.
    """
    return BenchRecord(
        dataset=cell.dataset,
        method=f"serve:{cell.name}",
        gpu="",
        num_sources=report.exact_runs,
        time_ms=float(report.makespan_ms),
        gteps=0.0,
        update_ratio=float("nan"),
        counters=report.counter_dict(),
        host_seconds=0.0,
    )


def _cell(suite: str, name: str) -> ServeCellSpec:
    for cell in SERVE_SUITES[suite]:
        if cell.name == name:
            return cell
    raise KeyError(f"no cell {name!r} in suite {suite!r}")


def run_serve_cell(
    suite: str, name: str, seed_offset: int = 0
) -> tuple[ServeReport, BenchRecord]:
    """Run one named session; returns ``(report, record)``.

    Module-level (and addressed by name) so :mod:`repro.perf.parallel`
    can ship cells to worker processes.
    """
    from ..bench.datasets import benchmark_spec, get_graph

    cell = _cell(suite, name)
    config = cell.config.with_seed_offset(seed_offset)
    graph = get_graph(cell.dataset)
    report = serve_traffic(graph, config, spec=benchmark_spec())
    return report, report_to_record(cell, report)


def _run_cell_record(suite: str, name: str) -> BenchRecord:
    """Worker entry point: just the record (reports don't pickle small)."""
    return run_serve_cell(suite, name)[1]


def _progress_line(cell: ServeCellSpec, rec: BenchRecord) -> str:
    c = rec.counters
    return (
        f"  {rec.dataset:>10s} {rec.method:<22s} "
        f"{rec.time_ms:9.3f} ms  "
        f"p99 {c.get('serve.p99_ms', 0.0):8.4f} ms  "
        f"{c.get('serve.qps', 0.0):8,.0f} q/s"
    )


def run_serve_suite(
    name: str, *, progress=None, jobs: int = 1
) -> list[BenchRecord]:
    """Run every session of serve suite ``name``; returns its records.

    Mirrors :func:`repro.bench.suites.run_suite`: ``progress`` receives one
    status line per cell, ``jobs > 1`` fans independent sessions over
    worker processes with records in deterministic suite order.  A wrong
    answer or an escaped fault in any session raises ``RuntimeError`` —
    a serve trajectory must never record an incorrect server.
    """
    try:
        cells = SERVE_SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown serve suite {name!r}; choose from "
            f"{', '.join(serve_suite_names())}"
        ) from None
    from ..perf import profile
    from ..perf.parallel import resolve_jobs, run_tasks

    jobs = resolve_jobs(jobs)
    if jobs > 1:
        records = run_tasks(
            _run_cell_record, [(name, c.name) for c in cells], jobs
        )
        for cell, rec in zip(cells, records):
            _gate_record(cell, rec)
            if progress is not None:
                progress(_progress_line(cell, rec))
        return records

    from ..trace import active_tracer

    records: list[BenchRecord] = []
    for cell in cells:
        tracer = active_tracer()
        if tracer is not None:
            tracer.mark("serve-cell", dataset=cell.dataset, cell=cell.name)
        with profile.region(f"serve:{cell.dataset}/{cell.name}"):
            _, rec = run_serve_cell(name, cell.name)
        _gate_record(cell, rec)
        records.append(rec)
        if progress is not None:
            progress(_progress_line(cell, rec))
    return records


def _gate_record(cell: ServeCellSpec, rec: BenchRecord) -> None:
    wrong = int(rec.counters.get("serve.wrong", 0))
    escaped = int(rec.counters.get("serve.faults_escaped", 0))
    if wrong or escaped:
        raise RuntimeError(
            f"serve cell {cell.name!r}: {wrong} wrong answer(s), "
            f"{escaped} escaped fault(s)"
        )
