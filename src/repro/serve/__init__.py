"""repro.serve — an online SSSP query-serving layer.

The paper frames SSSP as the inner loop of latency-sensitive services
(road layout management, network routing); this package closes that loop.
It admits a deterministic seeded stream of point-to-point and
single-source queries against a preprocessed graph and answers each one
by the cheapest correct layer: request coalescing onto in-flight work, a
byte-capped LRU of hot distance fields, tolerance-certified landmark
(ALT) bounds, and finally exact RDBS runs batched over simulated GPU
shards.  Sessions are pure functions of ``(graph, ServeConfig)``, so the
traffic suites in :mod:`repro.serve.bench` gate byte-identically in CI.

The tier is chaos-tested (:mod:`repro.serve.chaos`): scripted shard
blackouts/slowdowns, cache corruption and oracle outages on the same
simulated clock, absorbed by per-request deadlines with hedged retry,
per-shard circuit breakers and a graceful-degradation ladder that never
produces a wrong answer.

See ``docs/serving.md`` and ``docs/chaos.md`` for the tour; the CLI
surface is ``python -m repro.cli serve``.
"""

from .cache import DistanceFieldLRU
from .chaos import CHAOS_PLANS, ChaosPlan, chaos_plan_names, get_chaos_plan
from .oracle import WarmOracle, certified_answer, warm_oracle
from .scheduler import ServeReport, serve_traffic
from .workload import NO_TARGET, Query, ServeConfig, generate_queries

__all__ = [
    "NO_TARGET",
    "Query",
    "ServeConfig",
    "generate_queries",
    "DistanceFieldLRU",
    "ChaosPlan",
    "CHAOS_PLANS",
    "chaos_plan_names",
    "get_chaos_plan",
    "WarmOracle",
    "warm_oracle",
    "certified_answer",
    "ServeReport",
    "serve_traffic",
]
