"""Deterministic traffic generation for the serving layer.

A serving benchmark is only gateable if the *traffic* is reproducible, so
the stream of queries is a pure function of ``(graph, ServeConfig)``: one
seeded :class:`numpy.random.Generator` draws the source popularity, the
targets and the exponential inter-arrival gaps, and nothing else consumes
the stream.  Two properties shape the workload like production traffic:

* **hot sources** — sources come from a small pool with a Zipf-like
  popularity skew, so the scheduler's distance-field cache and request
  coalescing have something to exploit (and the fallback count stays
  bounded by the pool size);
* **mixed query kinds** — a configurable fraction of queries are
  point-to-point ``(source, target)`` pairs that the landmark oracle may
  answer approximately; the rest are full single-source requests that
  always need an exact distance field.

Arrival timestamps are *simulated* milliseconds on the same clock the GPU
simulator uses, so service times and inter-arrival gaps compose into real
queueing behavior (waiting, batching windows, tail latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.properties import largest_component_vertices

__all__ = ["Query", "ServeConfig", "generate_queries"]

#: target id of a single-source (full distance field) query
NO_TARGET = -1


@dataclass(frozen=True)
class ServeConfig:
    """Everything that defines one traffic session (workload + policy).

    The config is frozen and fully serialized into the bench suite specs,
    so a committed ``BENCH_serve.json`` baseline pins the exact session it
    was recorded from.
    """

    #: number of queries in the stream
    num_queries: int = 100
    #: master seed for workload generation and per-run fault seeding
    seed: int = 0
    #: fraction of queries that are point-to-point (rest: single-source)
    p2p_fraction: float = 0.7
    #: relative tolerance an oracle answer must certify (see oracle.py)
    tolerance: float = 0.15
    #: hot-source pool size (Zipf-skewed popularity)
    source_pool: int = 8
    #: Zipf exponent of the source popularity (larger = more skew)
    popularity: float = 1.1
    #: fraction of p2p queries whose source is uniform over the whole
    #: component instead of the hot pool — the cache can't help these, so
    #: they exercise the landmark-oracle / exact-fallback policy
    cold_fraction: float = 0.0
    #: landmark count k for the ALT oracle warmup
    landmarks: int = 4
    #: simulated GPU lanes exact batches are sharded over
    shards: int = 2
    #: >1 runs exact fallbacks on the multi-GPU engine with this many GPUs
    multi_gpu: int = 1
    #: batching window: an exact batch admits queries for this long (ms)
    batch_window_ms: float = 0.05
    #: flush a batch early once it spans this many distinct sources
    max_batch_sources: int = 4
    #: mean query arrivals per simulated millisecond
    rate_qpms: float = 25.0
    #: exact engine for warmup and fallback runs
    method: str = "rdbs"
    #: fault plan injected into every exact fallback run (None = clean)
    plan: str | None = None
    #: byte cap of the in-memory distance-field LRU
    cache_bytes: int = 32 * 1024 * 1024
    #: named serving-tier chaos plan (:mod:`repro.serve.chaos`); None = off.
    #: The chaos-off path is byte-identical to a scheduler without the
    #: chaos layer at all.
    chaos: str | None = None
    #: per-request deadline in simulated ms (0 = no deadline). A request
    #: that cannot complete in time walks the degradation ladder:
    #: relaxed-tolerance oracle answer, else an explicit shed.
    deadline_ms: float = 0.0
    #: tolerance the degraded (ladder rung 2) oracle answers must certify
    relaxed_tolerance: float = 0.5

    def with_seed_offset(self, offset: int) -> "ServeConfig":
        """The same session under a shifted master seed."""
        return self if offset == 0 else replace(self, seed=self.seed + offset)


@dataclass(frozen=True)
class Query:
    """One admitted request on the simulated arrival timeline."""

    qid: int
    #: arrival time, simulated milliseconds
    t_ms: float
    source: int
    #: target vertex, or :data:`NO_TARGET` for a single-source query
    target: int = NO_TARGET
    #: answer slot, filled by the scheduler (p2p queries only)
    answer: float = field(default=float("nan"), compare=False)

    @property
    def is_p2p(self) -> bool:
        return self.target != NO_TARGET


def generate_queries(graph: CSRGraph, config: ServeConfig) -> list[Query]:
    """The deterministic query stream of one traffic session."""
    if config.num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if not 0.0 <= config.p2p_fraction <= 1.0:
        raise ValueError("p2p_fraction must be in [0, 1]")
    if config.rate_qpms <= 0:
        raise ValueError("rate_qpms must be positive")
    comp = largest_component_vertices(graph)
    if comp.size == 0:
        raise ValueError("graph has no vertices")
    rng = np.random.default_rng(config.seed)

    pool_size = max(1, min(config.source_pool, comp.size))
    pool = rng.choice(comp, size=pool_size, replace=False)
    # Zipf-like popularity over the pool (rank-1 source is hottest)
    weights = 1.0 / np.arange(1, pool_size + 1) ** config.popularity
    weights /= weights.sum()

    n = config.num_queries
    sources = rng.choice(pool, size=n, p=weights)
    targets = rng.choice(comp, size=n)
    is_p2p = rng.random(n) < config.p2p_fraction
    cold_sources = rng.choice(comp, size=n)
    cold = is_p2p & (rng.random(n) < config.cold_fraction)
    arrivals = np.cumsum(rng.exponential(1.0 / config.rate_qpms, size=n))

    return [
        Query(
            qid=i,
            t_ms=float(arrivals[i]),
            source=int(cold_sources[i] if cold[i] else sources[i]),
            target=int(targets[i]) if is_p2p[i] else NO_TARGET,
        )
        for i in range(n)
    ]
