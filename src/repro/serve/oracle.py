"""Tolerance-certified landmark answers + artifact-cached oracle warmup.

Two pieces of the serving layer's oracle-vs-exact policy live here:

* :func:`warm_oracle` builds the ALT :class:`~repro.sssp.landmarks.
  LandmarkOracle` for a graph and memoizes the whole bundle — landmark
  ids, the ``(k, n)`` distance matrix *and the per-landmark simulated
  build times* — in the persistent :mod:`repro.perf.artifacts` cache.
  Storing the times alongside the vectors keeps the benchmark trajectory
  deterministic: a warm process reports the same ``warmup_ms`` the cold
  build measured, it just skips the k SSSP runs.

* :func:`certified_answer` turns the oracle's ``[lower, upper]`` bracket
  into an answer **only when the bracket itself proves the tolerance**:
  the true distance d lies in ``[lo, up]``, so answering ``up`` has
  relative error ``(up - d)/d <= (up - lo)/lo``.  The oracle therefore
  answers iff ``up - lo <= tolerance * lo`` (plus the trivial cases), and
  every served answer is mathematically within the declared relative
  tolerance of the exact RDBS distance — no statistical hedging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..sssp.landmarks import LandmarkOracle, select_landmarks
from .workload import ServeConfig

__all__ = ["WarmOracle", "warm_oracle", "certified_answer"]

#: bump to invalidate cached oracle bundles when the build recipe changes
#: — including engine cost-model changes, since the bundle memoizes the
#: k landmark runs' *simulated build times* (v2: warp-ballot multisplit
#: bucket placement changed the exact engines' kernel costs)
ORACLE_BUNDLE_VERSION = 2


@dataclass(frozen=True)
class WarmOracle:
    """A ready oracle plus the preprocessing cost it stands on."""

    oracle: LandmarkOracle
    #: simulated milliseconds of the k landmark SSSP runs
    times_ms: np.ndarray
    #: True when the bundle came from the persistent artifact cache
    artifact_hit: bool

    @property
    def warmup_ms(self) -> float:
        return float(self.times_ms.sum())


def warm_oracle(
    graph: CSRGraph,
    config: ServeConfig,
    *,
    spec=None,
) -> WarmOracle:
    """Build (or fetch) the landmark oracle bundle for one session.

    The artifact key covers the graph content, the landmark count, the
    exact engine, the seed and the device spec — any change misses
    cleanly and rebuilds.
    """
    from ..perf import artifacts

    spec_label = getattr(spec, "name", "default")
    parts = (
        ORACLE_BUNDLE_VERSION,
        graph.content_digest(),
        int(config.landmarks),
        config.method,
        int(config.seed),
        spec_label,
    )
    state = {"hit": True}

    def build() -> dict[str, np.ndarray]:
        state["hit"] = False
        results: list = []
        kwargs = {"spec": spec} if spec is not None else {}
        landmarks, matrix = select_landmarks(
            graph,
            config.landmarks,
            method=config.method,
            seed=config.seed,
            results=results,
            **kwargs,
        )
        return {
            "landmarks": landmarks,
            "dist_matrix": matrix,
            "times_ms": np.array([r.time_ms for r in results]),
        }

    arrays, _ = artifacts.fetch("serve_oracle", parts, build)
    oracle = LandmarkOracle(
        landmarks=np.asarray(arrays["landmarks"], dtype=np.int64),
        dist_matrix=np.asarray(arrays["dist_matrix"]),
    )
    return WarmOracle(
        oracle=oracle,
        times_ms=np.asarray(arrays["times_ms"], dtype=float),
        artifact_hit=state["hit"],
    )


def certified_answer(
    oracle: LandmarkOracle, u: int, v: int, tolerance: float
) -> float | None:
    """An answer provably within ``tolerance`` of d(u, v), or ``None``.

    Answers ``upper`` when the ALT bracket certifies
    ``(upper - lower) <= tolerance * lower`` (so the relative error
    against the true distance is at most ``tolerance``), ``0`` for
    ``u == v``, and refuses (returns ``None``) whenever the bracket
    cannot prove the bound — unreachable pairs, a zero lower bound, or
    simply landmarks that are not informative enough for this pair.
    """
    if u == v:
        return 0.0
    lo, up = oracle.bounds(int(u), int(v))
    if math.isinf(up):
        return None
    if up == 0.0:
        # upper bound zero => the true distance is exactly zero
        return 0.0
    if lo <= 0.0:
        return None
    if up - lo <= tolerance * lo:
        return up
    return None
