"""Deterministic fault injection + self-healing runtime for the simulated GPU.

See ``docs/faults.md`` for the fault taxonomy, plan format, recovery policy
and the zero-overhead-when-off guarantee.
"""

from .driver import GPU_METHODS, faulty_sssp
from .injector import FaultInjector
from .plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedKernelAbort,
    get_plan,
    plan_names,
)
from .report import FaultEvent, FaultReport
from .runtime import (
    RecoveryPolicy,
    RecoveryRuntime,
    Watchdog,
    WatchdogTimeout,
    make_runtime,
    verify_distances_host,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "GPU_METHODS",
    "InjectedKernelAbort",
    "RecoveryPolicy",
    "RecoveryRuntime",
    "Watchdog",
    "WatchdogTimeout",
    "faulty_sssp",
    "get_plan",
    "make_runtime",
    "plan_names",
    "verify_distances_host",
]
