"""Deterministic fault injection + self-healing runtime for the simulated GPU.

See ``docs/faults.md`` for the fault taxonomy, plan format, recovery policy
and the zero-overhead-when-off guarantee.
"""

from .driver import faulty_sssp
from .injector import FaultInjector
from .plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedKernelAbort,
    get_plan,
    plan_names,
)
from .report import FaultEvent, FaultReport
from .runtime import (
    RecoveryPolicy,
    RecoveryRuntime,
    Watchdog,
    WatchdogTimeout,
    make_runtime,
    verify_distances_host,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "GPU_METHODS",
    "InjectedKernelAbort",
    "RecoveryPolicy",
    "RecoveryRuntime",
    "Watchdog",
    "WatchdogTimeout",
    "faulty_sssp",
    "get_plan",
    "make_runtime",
    "plan_names",
    "verify_distances_host",
]


def __getattr__(name: str):
    """``GPU_METHODS`` resolves lazily through :mod:`repro.faults.driver`.

    It is registry-derived (see the driver), and the engines import this
    package at module load — an eager re-export here would be circular.
    """
    if name == "GPU_METHODS":
        from .driver import GPU_METHODS

        return GPU_METHODS
    raise AttributeError(name)
