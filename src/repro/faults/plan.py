"""Fault plans: declarative, seeded descriptions of what to break.

A :class:`FaultPlan` is a named bundle of :class:`FaultSpec` entries; each
spec targets one fault *kind* and schedules a bounded number of injections
over the stream of eligible events (an event is eligible when injecting
there would actually change program state — dropping an atomic that would
lose anyway is not a fault).  Scheduling is positional — ``start``/
``period``/``count`` over the eligible-event counter — plus a seeded RNG
for within-event lane choice, so a plan is *fully deterministic*: the same
plan, seed and workload produce the same injections, byte for byte.

Fault taxonomy (see ``docs/faults.md``):

``lost-update``
    an ``atomic_min`` that would have lowered a cell is dropped (its lane's
    value is replaced with +inf) — the BASYN hazard class: an update made
    invisible to every later reader.
``stale-read``
    a ``gather`` lane returns the value the cell held at the *previous*
    kernel launch — a relaxed-consistency read.
``bitflip``
    one bit of a resident distance payload is flipped at a kernel boundary
    (a radiation-style SEU); high exponent bits by default so the
    corruption is never lost in rounding.
``kernel-abort``
    a kernel launch raises :class:`InjectedKernelAbort` before running.
``exchange-drop`` / ``exchange-dup``
    a winning update message in the multi-GPU exchange is dropped /
    delivered twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "InjectedKernelAbort",
    "get_plan",
    "plan_names",
]

#: every fault kind the injector implements
FAULT_KINDS = (
    "lost-update",
    "stale-read",
    "bitflip",
    "kernel-abort",
    "exchange-drop",
    "exchange-dup",
)


class InjectedKernelAbort(RuntimeError):
    """Raised by the injector at a kernel launch selected for abortion."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind plus its deterministic schedule.

    ``start``/``period``/``count`` select *eligible events*: injection
    happens at eligible event numbers ``start, start+period, ...`` until
    ``count`` faults have fired.  ``kernel`` (substring match) and
    ``array`` (device-array name) restrict where the spec applies.
    """

    kind: str
    count: int = 1
    start: int = 0
    period: int = 1
    kernel: str | None = None
    array: str = "dist"
    #: bit index flipped by ``bitflip`` faults (float64 payload; 52..62 hit
    #: the exponent, so the corruption always survives rounding)
    bit: int = 62

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.count < 0 or self.start < 0 or self.period < 1:
            raise ValueError("count/start must be >= 0 and period >= 1")
        if not 0 <= self.bit < 64:
            raise ValueError("bit must be in [0, 64)")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs."""

    name: str
    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan under a different seed."""
        return replace(self, seed=seed)

    @property
    def total_budget(self) -> int:
        """Upper bound on injected faults (sum of spec counts)."""
        return sum(s.count for s in self.specs)


#: the named plans the CLI and tests exercise.  Budgets are finite so a
#: recovering run always terminates; schedules start a few events in so the
#: source relaxation survives and the fault lands mid-flight.
_PLANS: dict[str, FaultPlan] = {
    "lost-updates": FaultPlan(
        "lost-updates",
        specs=(FaultSpec("lost-update", count=8, start=2, period=3),),
    ),
    # period 1: the multisplit placement re-activates from register-resident
    # atomic results instead of a second global read, which removes the
    # most corruptible gather from the stream — a denser schedule keeps
    # the plan's faults landing on state-changing reads
    "stale-reads": FaultPlan(
        "stale-reads",
        specs=(FaultSpec("stale-read", count=12, start=3, period=1),),
    ),
    "bitflips": FaultPlan(
        "bitflips",
        specs=(FaultSpec("bitflip", count=3, start=4, period=7),),
    ),
    "kernel-aborts": FaultPlan(
        "kernel-aborts",
        specs=(FaultSpec("kernel-abort", count=2, start=3, period=5),),
    ),
    "exchange-drop": FaultPlan(
        "exchange-drop",
        specs=(FaultSpec("exchange-drop", count=4, start=1, period=2),),
    ),
    "exchange-dup": FaultPlan(
        "exchange-dup",
        specs=(FaultSpec("exchange-dup", count=4, start=1, period=2),),
    ),
    "chaos": FaultPlan(
        "chaos",
        specs=(
            FaultSpec("lost-update", count=4, start=2, period=5),
            FaultSpec("stale-read", count=6, start=5, period=3),
            FaultSpec("bitflip", count=2, start=6, period=9),
            FaultSpec("kernel-abort", count=1, start=7, period=1),
        ),
    ),
}


def plan_names() -> list[str]:
    """All named plans."""
    return list(_PLANS)


def get_plan(name: str | FaultPlan, seed: int | None = None) -> FaultPlan:
    """Resolve a plan by name (or pass one through), optionally re-seeded."""
    if isinstance(name, FaultPlan):
        plan = name
    else:
        try:
            plan = _PLANS[name]
        except KeyError:
            known = ", ".join(_PLANS)
            raise ValueError(
                f"unknown fault plan {name!r}; known: {known}"
            ) from None
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan
