"""One-call fault campaigns: ``faulty_sssp(graph, source, plan=...)``.

Mirrors :func:`repro.analysis.sanitized_sssp`: attach the injector through
the global observer hook, run any GPU method, and return the result paired
with its :class:`~repro.faults.report.FaultReport`.  With ``recovery``
(the default) the engine runs its self-healing runtime and the report's
verdict comes from the runtime's final verification; with it off, the raw
damage is classified here by the same host verifier, so escaped faults are
still counted honestly.
"""

from __future__ import annotations

from .injector import FaultInjector
from .plan import FaultPlan
from .report import FaultReport
from .runtime import RecoveryPolicy, verify_distances_host

__all__ = ["faulty_sssp", "GPU_METHODS"]


def __getattr__(name: str):
    """Resolve ``GPU_METHODS`` lazily from the engine registry.

    The set of injectable methods is exactly the set of simulated-GPU
    engines, so it is derived from :mod:`repro.sssp.api` (single source
    of truth — a new engine cannot drift out of fault coverage).  The
    import must be deferred: the engines themselves import
    ``repro.faults`` (plan/runtime) at module load, so an eager import
    here would be circular.
    """
    if name == "GPU_METHODS":
        from ..sssp.api import GPU_METHODS

        return GPU_METHODS
    raise AttributeError(name)


def faulty_sssp(
    graph,
    source: int,
    method: str = "rdbs",
    *,
    plan: str | FaultPlan = "lost-updates",
    seed: int | None = None,
    recovery: bool | RecoveryPolicy = True,
    **kwargs,
):
    """Run ``method`` under fault injection; returns ``(result, report)``.

    ``plan`` is a named plan (see :func:`repro.faults.plan_names`) or a
    :class:`FaultPlan`; ``seed`` re-seeds it.  ``recovery`` enables the
    engines' self-healing runtime (pass a :class:`RecoveryPolicy` to tune
    it); with ``recovery=False`` the injected damage is left in place and
    only classified, which is how the tests demonstrate that the faults
    are real.
    """
    from ..sssp import sssp  # lazy: keep repro.faults importable standalone
    from ..sssp.api import GPU_METHODS

    if method not in GPU_METHODS:
        raise ValueError(
            f"fault injection targets the simulated GPU engines; "
            f"{method!r} is not one of {sorted(GPU_METHODS)}"
        )
    injector = FaultInjector(plan, seed)
    if recovery:
        kwargs = dict(kwargs)
        kwargs["recovery"] = recovery
    with injector.attached():
        result = sssp(graph, source, method=method, **kwargs)

    report: FaultReport = injector.report
    if result.faults is None:
        # no runtime ran (recovery off): classify the damage here
        ok = verify_distances_host(graph, source, result.dist)
        report.finalize(ok)
        result.faults = report
    return result, result.faults
