"""The fault injector: a device observer that executes a FaultPlan.

Attaches through the same global-observer hook the sanitizer uses, so it
reaches devices that algorithms construct internally.  Besides the passive
``on_*`` events it implements the *transform* hooks the device offers
(``transform_read`` / ``transform_atomic`` / ``transform_exchange``) —
called only when observers are attached, **after** all accounting, so a
run without an injector is byte-identical in every counter.

Determinism: each spec advances a private *eligible-event* counter (an
event is eligible only when injecting would actually change state) and
fires at the positions its ``start``/``period``/``count`` schedule names;
within an event, lane/cell choice comes from one ``np.random.default_rng``
seeded by the plan.  No wall clock, no global RNG — two identical runs
inject identically.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..gpusim.device import register_global_observer, unregister_global_observer
from .plan import FaultPlan, FaultSpec, InjectedKernelAbort, get_plan
from .report import FaultReport

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes one :class:`FaultPlan` against every device it observes."""

    def __init__(self, plan: str | FaultPlan, seed: int | None = None) -> None:
        self.plan = get_plan(plan, seed)
        self.report = FaultReport(plan=self.plan.name, seed=self.plan.seed)
        self._rng = np.random.default_rng(self.plan.seed)
        self._eligible = [0] * len(self.plan.specs)
        self._fired = [0] * len(self.plan.specs)
        #: watched DeviceArrays per device (by id), name-matched to specs
        self._watched: dict[int, list] = {}
        #: double-buffered snapshots for stale reads: id(arr) -> ndarray
        self._snap_cur: dict[int, np.ndarray] = {}
        self._snap_prev: dict[int, np.ndarray] = {}
        self._need_snapshots = any(
            s.kind == "stale-read" for s in self.plan.specs
        )
        self._kernel = ""

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    @contextmanager
    def attached(self) -> Iterator["FaultInjector"]:
        """Attach to every device created inside the ``with`` block."""
        register_global_observer(self)
        try:
            yield self
        finally:
            unregister_global_observer(self)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _specs(self, kind: str) -> Iterator[tuple[int, FaultSpec]]:
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == kind:
                yield i, spec

    def _due(self, i: int, spec: FaultSpec) -> bool:
        """Advance spec ``i``'s eligible counter; True when it fires now."""
        e = self._eligible[i]
        self._eligible[i] += 1
        if self._fired[i] >= spec.count or e < spec.start:
            return False
        if (e - spec.start) % spec.period != 0:
            return False
        self._fired[i] += 1
        return True

    def _kernel_matches(self, spec: FaultSpec, kernel: str) -> bool:
        return spec.kernel is None or spec.kernel in kernel

    def _announce(self, device, event) -> None:
        """Mirror an injected fault onto the annotate stream, so an
        attached tracer (docs/observability.md) timestamps it on the
        simulated timeline; free when nothing subscribes."""
        if device.handlers("on_annotate"):
            device.annotate(
                "fault", kind=event.kind, kernel=event.kernel,
                array=event.array, index=event.index, detail=event.detail,
            )

    # ------------------------------------------------------------------
    # passive device events
    # ------------------------------------------------------------------
    def on_alloc(self, device, arr, _initialized: bool) -> None:
        """Track arrays whose name any spec targets."""
        if any(arr.name == s.array for s in self.plan.specs):
            self._watched.setdefault(id(device), []).append(arr)

    def on_kernel_begin(self, device, ctx) -> None:
        """Rotate stale snapshots; possibly abort the launch."""
        self._kernel = ctx.name
        if self._need_snapshots:
            for arr in self._watched.get(id(device), ()):
                prev = self._snap_cur.get(id(arr))
                if prev is not None:
                    self._snap_prev[id(arr)] = prev
                self._snap_cur[id(arr)] = arr.data.copy()
        for i, spec in self._specs("kernel-abort"):
            if not self._kernel_matches(spec, ctx.name):
                continue
            if self._due(i, spec):
                event = self.report.record(
                    "kernel-abort", ctx.name, "-", -1,
                    device.time_s * 1e3, "launch aborted before execution",
                )
                self._announce(device, event)
                raise InjectedKernelAbort(
                    f"injected abort of kernel {ctx.name!r} "
                    f"(fault #{len(self.report.events)}: {event.kind})"
                )

    def on_kernel_end(self, device, ctx) -> None:
        """Flip bits in resident payloads at the kernel boundary."""
        for i, spec in self._specs("bitflip"):
            if not self._kernel_matches(spec, ctx.name):
                continue
            arrays = [
                a for a in self._watched.get(id(device), ())
                if a.name == spec.array
            ]
            cells = None
            target = None
            for arr in arrays:
                finite = np.flatnonzero(np.isfinite(arr.data))
                if finite.size:
                    cells, target = finite, arr
                    break
            if cells is None:
                continue  # nothing to corrupt: not an eligible event
            if not self._due(i, spec):
                continue
            cell = int(cells[self._rng.integers(cells.size)])
            # host-side introspection of the value being corrupted (the
            # injector is a harness, not a kernel)
            old = float(target.data[cell])  # repro-lint: disable=AN103
            raw = np.array([old], dtype=np.float64).view(np.uint64)
            raw ^= np.uint64(1) << np.uint64(spec.bit)
            new = float(raw.view(np.float64)[0])
            # a radiation-style SEU lands directly in device storage,
            # deliberately bypassing the counted path
            target.data[cell] = new  # repro-lint: disable=AN101
            event = self.report.record(
                "bitflip", ctx.name, spec.array, cell,
                device.time_s * 1e3,
                f"bit {spec.bit}: {old:g} -> {new:g}",
            )
            self._announce(device, event)

    # ------------------------------------------------------------------
    # transform hooks (called by the device after accounting)
    # ------------------------------------------------------------------
    def transform_read(self, ctx, arr, idx, values: np.ndarray) -> np.ndarray:
        """Serve a stale (previous-kernel) value to one gather lane."""
        for i, spec in self._specs("stale-read"):
            if arr.name != spec.array or idx.size == 0:
                continue
            if not self._kernel_matches(spec, ctx.name):
                continue
            snap = self._snap_prev.get(id(arr), self._snap_cur.get(id(arr)))
            if snap is None:
                continue
            stale_vals = snap[idx]
            lanes = np.flatnonzero(stale_vals > values)
            if lanes.size == 0:
                continue  # no lane would observe anything stale
            if not self._due(i, spec):
                continue
            lane = int(lanes[self._rng.integers(lanes.size)])
            old = float(values[lane])
            values = values.copy()
            values[lane] = stale_vals[lane]
            event = self.report.record(
                "stale-read", ctx.name, arr.name, int(idx[lane]),
                ctx.device.time_s * 1e3,
                f"read {float(stale_vals[lane]):g} instead of {old:g}",
            )
            self._announce(ctx.device, event)
        return values

    def transform_atomic(
        self, ctx, op: str, arr, idx, values: np.ndarray
    ) -> np.ndarray:
        """Drop an improving ``atomic_min`` update (lost update)."""
        if op != "atomic_min":
            return values
        for i, spec in self._specs("lost-update"):
            if arr.name != spec.array or idx.size == 0:
                continue
            if not self._kernel_matches(spec, ctx.name):
                continue
            improving = np.flatnonzero(values < arr.data[idx])
            if improving.size == 0:
                continue  # every atomic loses anyway: nothing to drop
            if not self._due(i, spec):
                continue
            lane = int(improving[self._rng.integers(improving.size)])
            cell = int(idx[lane])
            dropped = float(values[lane])
            # drop every lane updating this cell in this batch — one
            # vertex's update made invisible to all later readers
            mask = np.asarray(idx) == cell
            values = values.copy()
            values[mask] = np.inf
            event = self.report.record(
                "lost-update", ctx.name, arr.name, cell,
                ctx.device.time_s * 1e3,
                f"dropped update to {dropped:g}",
            )
            self._announce(ctx.device, event)
        return values

    def transform_exchange(self, device, step: int, vs, nds):
        """Drop or duplicate one multi-GPU exchange message."""
        for i, spec in self._specs("exchange-drop"):
            if vs.size == 0:
                continue
            if not self._due(i, spec):
                continue
            lane = int(self._rng.integers(vs.size))
            event = self.report.record(
                "exchange-drop", f"exchange_step{step}", "dist",
                int(vs[lane]), device.time_s * 1e3,
                f"dropped message d={float(nds[lane]):g}",
            )
            self._announce(device, event)
            keep = np.ones(vs.size, dtype=bool)
            keep[lane] = False
            vs, nds = vs[keep], nds[keep]
        for i, spec in self._specs("exchange-dup"):
            if vs.size == 0:
                continue
            if not self._due(i, spec):
                continue
            lane = int(self._rng.integers(vs.size))
            event = self.report.record(
                "exchange-dup", f"exchange_step{step}", "dist",
                int(vs[lane]), device.time_s * 1e3,
                f"duplicated message d={float(nds[lane]):g}",
            )
            self._announce(device, event)
            vs = np.concatenate([vs, vs[lane : lane + 1]])
            nds = np.concatenate([nds, nds[lane : lane + 1]])
        return vs, nds
