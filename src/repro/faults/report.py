"""Structured fault accounting: what was injected, detected, corrected.

One :class:`FaultReport` is shared between the injector (which appends a
:class:`FaultEvent` per injection) and the recovery runtime (which logs its
actions against the same object), so ``SSSPResult.faults`` tells the whole
story of a faulty run: every fault, every recovery action, and the final
verdict.  ``to_dict()`` is plain data — the determinism tests compare two
runs' reports for exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultEvent", "FaultReport"]


@dataclass
class FaultEvent:
    """One injected fault, logged at its injection site."""

    kind: str
    kernel: str
    array: str
    index: int
    #: simulated device clock at injection (milliseconds)
    time_ms: float
    detail: str = ""
    detected: bool = False
    corrected: bool = False

    @property
    def status(self) -> str:
        """``corrected`` ⊃ ``detected`` ⊃ ``injected`` (escaped)."""
        if self.corrected:
            return "corrected"
        return "detected" if self.detected else "escaped"

    def to_dict(self) -> dict:
        """Plain-data form (stable field order, exact-comparable)."""
        return {
            "kind": self.kind,
            "kernel": self.kernel,
            "array": self.array,
            "index": int(self.index),
            "time_ms": float(self.time_ms),
            "detail": self.detail,
            "detected": self.detected,
            "corrected": self.corrected,
        }

    def __str__(self) -> str:
        where = f"{self.kernel}/{self.array}[{self.index}]"
        tail = f" — {self.detail}" if self.detail else ""
        return f"[{self.status}] {self.kind} @ {where} t={self.time_ms:.4f}ms{tail}"


@dataclass
class FaultReport:
    """Injection log + recovery actions + verification verdict."""

    plan: str = ""
    seed: int = 0
    events: list[FaultEvent] = field(default_factory=list)
    #: human-readable recovery action log, in order
    actions: list[str] = field(default_factory=list)
    repaired_cells: int = 0
    repair_sweeps: int = 0
    rollbacks: int = 0
    #: did a watchdog/abort force the async→sync degrade?
    degraded: bool = False
    #: final host verification verdict; None until a verifier ran
    verified: bool | None = None

    # ------------------------------------------------------------------
    # tallies
    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        """Faults the injector actually fired."""
        return len(self.events)

    @property
    def detected(self) -> int:
        """Faults some check noticed (includes every corrected one)."""
        return sum(1 for e in self.events if e.detected or e.corrected)

    @property
    def corrected(self) -> int:
        """Faults whose effect was repaired out of the final distances."""
        return sum(1 for e in self.events if e.corrected)

    @property
    def escaped(self) -> int:
        """Faults whose effect may survive in the final distances."""
        return self.injected - self.corrected

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        kernel: str,
        array: str,
        index: int,
        time_ms: float,
        detail: str = "",
    ) -> FaultEvent:
        """Append one injection event and return it."""
        event = FaultEvent(kind, kernel, array, int(index), float(time_ms), detail)
        self.events.append(event)
        return event

    def log_action(self, action: str) -> None:
        """Append one recovery action to the log."""
        self.actions.append(action)

    def mark_detected(self) -> None:
        """A check fired: every fault injected so far counts as detected.

        Injection sites cannot be attributed to individual probe findings
        (a lost update surfaces as a distance mismatch anywhere downstream),
        so detection is collective — the honest granularity.
        """
        for e in self.events:
            e.detected = True

    def finalize(self, ok: bool) -> None:
        """Record the final verification verdict.

        ``ok`` means the distances passed full host verification: whatever
        was injected has been repaired out, so every event is corrected.
        Otherwise the divergence itself constitutes detection, and the
        uncorrected events stay escaped.
        """
        self.verified = ok
        if ok:
            for e in self.events:
                e.detected = True
                e.corrected = True
        else:
            self.mark_detected()

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph human summary."""
        lines = [
            f"faults  : {self.injected} injected, {self.detected} detected, "
            f"{self.corrected} corrected, {self.escaped} escaped"
        ]
        if self.rollbacks or self.repaired_cells or self.repair_sweeps:
            lines.append(
                f"recovery: {self.rollbacks} rollback(s), "
                f"{self.repaired_cells} cell(s) repaired, "
                f"{self.repair_sweeps} repair sweep(s)"
                + (", degraded to sync" if self.degraded else "")
            )
        elif self.degraded:
            lines.append("recovery: degraded to sync")
        if self.verified is not None:
            lines.append(
                "verified: distances exact ✓" if self.verified
                else "verified: DIVERGED ✗"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Plain-data form for exact determinism comparison."""
        return {
            "plan": self.plan,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
            "actions": list(self.actions),
            "repaired_cells": self.repaired_cells,
            "repair_sweeps": self.repair_sweeps,
            "rollbacks": self.rollbacks,
            "degraded": self.degraded,
            "verified": self.verified,
        }
