"""The self-healing runtime: checkpoints, probes, watchdog, repair.

A :class:`RecoveryRuntime` rides along inside an SSSP engine's main loop:

* **checkpoints** — every ``checkpoint_interval`` epochs the distance
  array is staged to the host (real GPUs checkpoint over PCIe the same
  way; the copy is host-side and uncounted, like all host orchestration);
* **probes** — every ``probe_interval`` epochs a cheap invariant check
  runs: distances must stay monotone against the checkpoint (atomicMin
  never raises a cell), free of NaN/negatives, and a *sampled*
  triangle-inequality scan over pre-chosen edges (a counted device kernel)
  must hold.  Monotonicity violations are repaired in place from the
  checkpoint;
* **watchdog** — the asynchronous phase-1 drain gets a per-bucket round
  budget; exceeding it (livelock from corrupted re-queues) raises
  :class:`WatchdogTimeout`, on which the engine rolls back and degrades
  BASYN to synchronous bucket execution;
* **rollback** — bounded retry: up to ``max_retries`` rollbacks to the
  last good checkpoint; past the budget the engine continues from its
  current (partially relaxed, still monotone) state;
* **final repair** — :meth:`finish` runs counted verify/relax sweeps to a
  fixpoint: underestimates (bit-flips below the true distance, which no
  relaxation check can see) are found by a witness scan — a finite
  non-source distance with no incoming edge explaining it is corrupt —
  and purged to ``inf``; overestimates are re-relaxed by full Bellman–Ford
  sweeps.  Both converge because distances are bounded and fault budgets
  are finite.

The runtime shares its :class:`~repro.faults.report.FaultReport` with an
attached :class:`~repro.faults.injector.FaultInjector` (discovered through
``device.observers``) so injections and recovery actions land in one log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.kernels import grid_stride
from .injector import FaultInjector
from .plan import InjectedKernelAbort
from .report import FaultReport

__all__ = [
    "RecoveryPolicy",
    "RecoveryRuntime",
    "Watchdog",
    "WatchdogTimeout",
    "make_runtime",
    "verify_distances_host",
]

_RTOL = 1e-9
_ATOL = 1e-9


class WatchdogTimeout(RuntimeError):
    """Asynchronous phase-1 exceeded its round budget (stall/livelock)."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunables of the self-healing runtime."""

    #: epochs between distance-array checkpoints
    checkpoint_interval: int = 4
    #: epochs between invariant probes
    probe_interval: int = 2
    #: edges sampled by the triangle-inequality probe kernel
    probe_sample: int = 512
    #: watchdog round budget: max(min_rounds, factor * ceil(work / chunk))
    watchdog_min_rounds: int = 16
    watchdog_factor: int = 8
    #: rollbacks allowed before continuing from the current state
    max_retries: int = 2
    #: bound on final verify/relax repair sweeps
    max_repair_sweeps: int = 100
    #: seed for probe-edge sampling
    seed: int = 0


class Watchdog:
    """Round counter for one asynchronous phase; trips past its budget."""

    def __init__(self, budget: int) -> None:
        self.budget = int(budget)
        self.rounds = 0

    def tick(self) -> None:
        """Account one micro-round; raise when the budget is exhausted."""
        self.rounds += 1
        if self.rounds > self.budget:
            raise WatchdogTimeout(
                f"async phase exceeded its {self.budget}-round budget "
                "(stalled or regressing progress)"
            )


def _tol(values: np.ndarray) -> np.ndarray:
    return _ATOL + _RTOL * np.maximum(np.abs(values), 1.0)


def verify_distances_host(graph, source: int, dist: np.ndarray) -> bool:
    """Exact host-side verification of a distance array against ``graph``.

    Checks the full SSSP fixpoint characterization: ``dist[source] == 0``,
    no NaN/negative entries, every edge relax-consistent
    (``dist[v] <= dist[u] + w``), and every finite non-source distance
    explained by an incoming witness edge (``dist[v] >= min_u dist[u]+w``)
    — the condition that exposes *under*-estimates, which edge relaxation
    alone can never flag.
    """
    dist = np.asarray(dist)
    if dist.size == 0:
        return True
    if not np.isfinite(dist[source]) or abs(float(dist[source])) > _ATOL:
        return False
    finite = dist[np.isfinite(dist)]
    if np.isnan(dist).any() or (finite < 0).any():
        return False
    if graph.num_edges == 0:
        reachable = np.zeros(dist.size, dtype=bool)
        reachable[source] = True
        return bool(np.isinf(dist[~reachable]).all())
    srcs = graph.edge_sources()
    du = dist[srcs]
    ok_mask = np.isfinite(du)
    nd = np.where(ok_mask, du, 0.0) + graph.weights
    # relaxation: no edge may still improve its target
    viol = ok_mask & (dist[graph.adj] > nd + _tol(nd))
    if viol.any():
        return False
    # witness: every finite non-source distance has an incoming explanation
    cand = np.full(dist.size, np.inf)
    np.minimum.at(cand, graph.adj[ok_mask], nd[ok_mask])
    cand[source] = 0.0
    finite_v = np.isfinite(dist)
    cand_f = np.isfinite(cand)
    tol = _tol(np.where(cand_f, cand, 1.0))
    under = finite_v & (~cand_f | (dist < cand - tol))
    return not under.any()


def make_runtime(
    recovery, device, dgraph, dist, source: int, method: str
) -> "RecoveryRuntime | None":
    """Engine-side helper: resolve the ``recovery=`` kwarg to a runtime.

    ``recovery`` may be falsy (no runtime — the zero-cost default), ``True``
    (default policy) or a :class:`RecoveryPolicy`.
    """
    if not recovery:
        return None
    policy = recovery if isinstance(recovery, RecoveryPolicy) else None
    return RecoveryRuntime(device, dgraph, dist, source, policy, method)


class RecoveryRuntime:
    """Checkpoint/probe/repair state for one engine run.

    ``dgraph`` supplies the device-resident CSR (and, through
    ``dgraph.graph``, its host twin); ``dist`` is the engine's live
    distance array and ``source`` the source vertex *in the same id
    space*.
    """

    def __init__(
        self,
        device,
        dgraph,
        dist,
        source: int,
        policy: RecoveryPolicy | None = None,
        method: str = "",
    ) -> None:
        self.device = device
        self.dgraph = dgraph
        self.dist = dist
        self.source = int(source)
        self.policy = policy or RecoveryPolicy()
        self.method = method
        # share the injector's report when one is attached, so injections
        # and recovery actions interleave in a single log
        for obs in device.observers:
            if isinstance(obs, FaultInjector):
                self.report = obs.report
                break
        else:
            self.report = FaultReport()

        graph = dgraph.graph
        self._srcs = graph.edge_sources()
        self._eidx = np.arange(graph.num_edges, dtype=np.int64)
        rng = np.random.default_rng(self.policy.seed)
        m = graph.num_edges
        k = min(self.policy.probe_sample, m)
        self._probe_edges = (
            np.sort(rng.choice(m, size=k, replace=False)) if k else self._eidx
        )
        self._epoch = 0
        self._ckpt: np.ndarray | None = None
        self._ckpt_mark = None
        self.checkpoint()

    def log(self, action: str) -> None:
        """Log a recovery action, mirroring it onto the annotate stream so
        an attached tracer timestamps it on the simulated timeline."""
        self.report.log_action(action)
        if self.device.handlers("on_annotate"):
            self.device.annotate("recovery", action=action)

    # ------------------------------------------------------------------
    # epoch cadence
    # ------------------------------------------------------------------
    def epoch(self, work: int = 0, mark=None) -> None:
        """One engine iteration boundary: run the cadenced probe/checkpoint."""
        self._epoch += 1
        p = self.policy
        if self._epoch % p.probe_interval == 0:
            self.probe()
        if self._epoch % p.checkpoint_interval == 0:
            self._repair_cells()  # never checkpoint corrupt state
            self.checkpoint(mark)

    def new_watchdog(self, work: int, chunk: int) -> Watchdog:
        """A round budget sized to the work one async phase should need."""
        p = self.policy
        expected = -(-max(int(work), 1) // max(int(chunk), 1))  # ceil
        return Watchdog(max(p.watchdog_min_rounds, p.watchdog_factor * expected))

    # ------------------------------------------------------------------
    # checkpoints & rollback
    # ------------------------------------------------------------------
    def checkpoint(self, mark=None) -> None:
        """Stage the distance array (and an engine mark) to the host."""
        self._ckpt = self.dist.data.copy()
        self._ckpt_mark = mark

    def rollback(self):
        """Restore the last checkpoint; returns its engine mark."""
        self.device.host_copy(self.dist, self._ckpt)
        self.report.rollbacks += 1
        self.log("rollback to last checkpoint")
        return self._ckpt_mark

    def recover(self, exc: BaseException, fallback_mark=None):
        """Handle a watchdog/abort: bounded rollback, then keep going.

        Returns the engine mark to resume from — the checkpoint's when a
        rollback happened, else ``fallback_mark`` (the engine continues
        from its current, still-monotone state once the retry budget is
        spent; the final repair sweeps remain as the safety net).
        """
        self.report.mark_detected()
        self.log(f"caught {type(exc).__name__}: {exc}")
        if self.report.rollbacks < self.policy.max_retries:
            return self.rollback()
        self.log("retry budget spent; continuing without rollback")
        return fallback_mark

    def note_degraded(self) -> None:
        """Record the async→sync graceful degradation."""
        self.report.degraded = True
        self.log("degraded BASYN phase 1 to synchronous execution")

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def _repair_cells(self) -> int:
        """Host monotonicity check against the checkpoint; repair in place.

        ``atomicMin`` never raises a cell and never writes NaN/negatives,
        so any such cell is corrupt; restoring the checkpoint value (a
        valid upper bound of the true distance) is always safe.
        """
        cur = self.dist.data
        bad = np.isnan(cur) | (cur < 0)
        if self._ckpt is not None:
            bad |= cur > self._ckpt
        bad_idx = np.flatnonzero(bad)
        if bad_idx.size:
            repair = (
                self._ckpt[bad_idx] if self._ckpt is not None
                else np.full(bad_idx.size, np.inf)
            )
            self.device.host_store(self.dist, bad_idx, repair)
            self.report.repaired_cells += int(bad_idx.size)
            self.report.mark_detected()
            self.log(
                f"probe: repaired {bad_idx.size} non-monotone/corrupt cell(s)"
            )
        return int(bad_idx.size)

    def probe(self) -> None:
        """Cheap online invariant probe (counted sampled-edge kernel)."""
        self._repair_cells()
        sample = self._probe_edges
        if sample.size == 0:
            return
        try:
            with self.device.launch("recovery_probe") as k:
                a = grid_stride(sample.size, 32 * 256)
                du = k.gather(self.dist, self._srcs[sample], a)
                v = k.gather(self.dgraph.adj, sample, a)
                wt = k.gather(self.dgraph.weights, sample, a)
                k.alu(a, ops=2)
        except InjectedKernelAbort:
            self.log("probe kernel aborted; skipping this probe")
            return
        nd = du + wt
        dv = self.dist.data[v]
        finite = np.isfinite(nd)
        if np.any(finite & (dv > nd + _tol(nd))):
            self.report.mark_detected()
            self.log(
                "probe: sampled triangle inequality violated "
                "(deferring to final repair)"
            )

    # ------------------------------------------------------------------
    # abort entry point for frontier engines
    # ------------------------------------------------------------------
    def on_abort(self, exc: BaseException) -> np.ndarray:
        """Recover from an abort; returns a conservative restart frontier."""
        self.recover(exc)
        return np.flatnonzero(np.isfinite(self.dist.data)).astype(np.int64)

    # ------------------------------------------------------------------
    # final repair
    # ------------------------------------------------------------------
    def _witness_scan(self) -> np.ndarray:
        """Counted full-edge scan; returns per-vertex best candidate."""
        n = self.dist.size
        cand = np.full(n, np.inf)
        m = self._eidx.size
        if m:
            with self.device.launch("recovery_verify") as k:
                a = grid_stride(m, 32 * 256)
                du = k.gather(self.dist, self._srcs, a)
                v = k.gather(self.dgraph.adj, self._eidx, a)
                wt = k.gather(self.dgraph.weights, self._eidx, a)
                k.alu(a, ops=2)
            nd = du + wt
            ok = np.isfinite(nd)
            np.minimum.at(cand, v[ok], nd[ok])
        cand[self.source] = 0.0
        return cand

    def _relax_sweep(self) -> None:
        """Counted full-edge Bellman–Ford relaxation sweep."""
        m = self._eidx.size
        if not m:
            return
        with self.device.launch("recovery_relax") as k:
            a = grid_stride(m, 32 * 256)
            du = k.gather(self.dist, self._srcs, a)
            v = k.gather(self.dgraph.adj, self._eidx, a)
            wt = k.gather(self.dgraph.weights, self._eidx, a)
            k.alu(a, ops=3)
            k.atomic_min(self.dist, v, du + wt, a)
        self.device.barrier()

    def finish(self) -> bool:
        """Repair to a verified fixpoint; finalize and return the verdict."""
        n = self.dist.size
        src = self.source
        if not np.isfinite(self.dist.data[src]) or self.dist.data[src] != 0.0:
            self.device.host_store(self.dist, src, 0.0)
            self.report.repaired_cells += 1
            self.report.mark_detected()
            self.log("repaired corrupted source distance")

        vid = np.arange(n)
        for _ in range(self.policy.max_repair_sweeps):
            try:
                cand = self._witness_scan()
            except InjectedKernelAbort:
                self.log("verify sweep aborted; retrying")
                self.report.repair_sweeps += 1
                continue
            cur = self.dist.data
            corrupt = np.isnan(cur) | (cur < 0)
            finite = np.isfinite(cur)
            # a finite non-source distance below every incoming candidate
            # has no witness: it is an underestimate (e.g. a downward
            # bit-flip) that plain relaxation would silently propagate
            cand_f = np.isfinite(cand)
            tol = _tol(np.where(cand_f, cand, 1.0))
            under = finite & (vid != src) & (~cand_f | (cur < cand - tol))
            over = cand_f & (cur > cand + tol)
            bad = corrupt | under
            if not bad.any() and not over.any():
                break
            self.report.mark_detected()
            self.report.repair_sweeps += 1
            if bad.any():
                bad_idx = np.flatnonzero(bad)
                self.device.host_store(self.dist, bad_idx, np.inf)
                self.report.repaired_cells += int(bad_idx.size)
                self.log(
                    f"repair: purged {bad_idx.size} witness-less cell(s)"
                )
            try:
                self._relax_sweep()
            except InjectedKernelAbort:
                self.log("relax sweep aborted; retrying")

        ok = verify_distances_host(self.dgraph.graph, src, self.dist.data)
        self.report.finalize(ok)
        self.log(
            "final verification passed" if ok else "final verification FAILED"
        )
        return ok
