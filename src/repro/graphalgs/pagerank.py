"""PageRank on the simulated GPU (push-based power iteration).

The third framework kernel: each iteration every vertex pushes
``damping * rank[u] / out_degree[u]`` along its out-edges (an edge-parallel
gather + scatter-add), plus the teleport term; iterate until the L1 change
drops below tolerance.  Scatter-adds are modeled as atomic traffic (on
real GPUs these are ``atomicAdd``), so the kernel shares the accounting
semantics of the SSSP family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice
from ..gpusim.kernels import grid_stride, thread_per_item
from ..gpusim.spec import GPUSpec, V100
from ..sssp.relax import DeviceGraph

__all__ = ["PageRankResult", "pagerank_gpu"]

_THREADS = 32 * 256


@dataclass(frozen=True)
class PageRankResult:
    """Ranks plus run measurements."""

    ranks: np.ndarray
    iterations: int
    converged: bool
    time_ms: float
    counters: object

    def top(self, k: int = 10) -> np.ndarray:
        """Vertex ids of the ``k`` highest-ranked vertices."""
        return np.argsort(self.ranks)[::-1][:k]


def pagerank_gpu(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 200,
    spec: GPUSpec = V100,
) -> PageRankResult:
    """Power-iteration PageRank with dangling-mass redistribution."""
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    n = graph.num_vertices
    if n == 0:
        return PageRankResult(np.zeros(0), 0, True, 0.0, None)

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    rank = device.alloc(np.full(n, 1.0 / n), "rank")
    next_rank = device.alloc(np.zeros(n), "next_rank")
    deg = graph.degrees.astype(np.float64)
    dangling = np.flatnonzero(deg == 0)
    src_of_edge = graph.edge_sources()
    m = graph.num_edges
    all_edges = np.arange(m, dtype=np.int64)
    all_vertices = np.arange(n, dtype=np.int64)

    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        with device.launch("pagerank_push") as k:
            a_v = thread_per_item(n)
            r = k.gather(rank, all_vertices, a_v)
            k.alu(a_v, ops=2)  # contribution = damping * r / deg
            base = (1.0 - damping) / n
            if dangling.size:
                base += damping * float(r[dangling].sum()) / n
            fresh = np.full(n, base)
            k.scatter(next_rank, all_vertices, fresh, a_v)
            # real implementations split the base init and the edge push
            # into two kernels: the atomicAdds must not race the plain
            # base stores.  Model that with a device-wide sync
            k.device_barrier()
            if m:
                a_e = grid_stride(m, _THREADS)
                contrib = np.where(deg > 0, damping * r / np.maximum(deg, 1), 0.0)
                v = k.gather(dgraph.adj, all_edges, a_e)
                k.gather(rank, src_of_edge, a_e)
                k.alu(a_e, ops=2)
                k.atomic_add(next_rank, v, contrib[src_of_edge], a_e)
        device.barrier()
        delta = float(np.abs(next_rank.data - rank.data).sum())
        device.host_copy(rank, next_rank.data)
        if delta < tol:
            converged = True
            break

    return PageRankResult(
        ranks=rank.data.copy(),
        iterations=iterations,
        converged=converged,
        time_ms=device.elapsed_ms,
        counters=device.counters,
    )
