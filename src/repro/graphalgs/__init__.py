"""Framework kernels beyond SSSP (the paper's §7 direction).

BFS, connected components and PageRank on the same simulated substrate,
sharing the accounting semantics of the SSSP family so the framework's
kernels are mutually comparable.
"""

from .bfs import bfs_gpu
from .components import ComponentsResult, connected_components_gpu
from .pagerank import PageRankResult, pagerank_gpu

__all__ = [
    "bfs_gpu",
    "connected_components_gpu",
    "ComponentsResult",
    "pagerank_gpu",
    "PageRankResult",
]
