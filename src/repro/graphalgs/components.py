"""Connected components on the simulated GPU (label propagation).

The classic GPU formulation: every vertex starts with its own id as label;
each round, every edge proposes the smaller endpoint label to the larger
endpoint via ``atomicMin``; iterate until a round changes nothing.  The
same relaxation machinery as SSSP (and therefore the same accounting),
with hop-count-free semantics — a second framework kernel beyond SSSP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice
from ..gpusim.kernels import grid_stride
from ..gpusim.spec import GPUSpec, V100
from ..sssp.relax import DeviceGraph

__all__ = ["ComponentsResult", "connected_components_gpu"]

_THREADS = 32 * 256


@dataclass(frozen=True)
class ComponentsResult:
    """Labels plus run measurements."""

    labels: np.ndarray
    num_components: int
    rounds: int
    time_ms: float
    counters: object

    def component_sizes(self) -> np.ndarray:
        """Size of each component, indexed by canonical label order."""
        _uniq, counts = np.unique(self.labels, return_counts=True)
        return counts


def connected_components_gpu(
    graph: CSRGraph, *, spec: GPUSpec = V100, max_rounds: int = 10_000
) -> ComponentsResult:
    """Label-propagation connected components (undirected semantics)."""
    n = graph.num_vertices
    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    labels = device.alloc(np.arange(n, dtype=np.float64), "labels")
    src_of_edge = graph.edge_sources()
    m = graph.num_edges

    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("component propagation did not converge")
        with device.launch("cc_propagate") as k:
            if m == 0:
                break
            a = grid_stride(m, _THREADS)
            lu = k.gather(labels, src_of_edge, a)
            v = k.gather(dgraph.adj, np.arange(m, dtype=np.int64), a)
            k.alu(a, ops=2)
            _old, updated = k.atomic_min(labels, v, lu, a)
        device.barrier()
        if m == 0 or not updated.any():
            break

    raw = labels.data.astype(np.int64)
    num = int(np.unique(raw).size)
    return ComponentsResult(
        labels=raw,
        num_components=num,
        rounds=rounds,
        time_ms=device.elapsed_ms,
        counters=device.counters,
    )
