"""Breadth-first search on the simulated GPU.

The paper's conclusion aims at "a high-performance graph processing
framework"; BFS is the first kernel any such framework grows beyond SSSP
(and the Graph500 benchmark's first kernel).  This implementation reuses
the exact same substrate as the SSSP family — frontier flags, vertex-
centric or adaptive mappings, counted memory traffic — so its measurements
are directly comparable.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..gpusim.device import GPUDevice, subset_assignment
from ..gpusim.dynamic import launch_adaptive
from ..gpusim.kernels import thread_per_item, thread_per_vertex_edges
from ..gpusim.spec import GPUSpec, V100
from ..sssp.relax import DeviceGraph, FrontierFlags
from ..sssp.result import SSSPResult

__all__ = ["bfs_gpu"]


def bfs_gpu(
    graph: CSRGraph,
    source: int,
    *,
    spec: GPUSpec = V100,
    adaptive: bool = True,
) -> SSSPResult:
    """Level-synchronous BFS; returns hop counts in ``SSSPResult.dist``.

    ``adaptive=True`` uses the ADWL-style workload classification for the
    frontier expansion (the paper's load balancing applied to BFS);
    ``False`` uses plain thread-per-vertex.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")

    device = GPUDevice(spec)
    dgraph = DeviceGraph(device, graph)
    level = device.full(n, np.inf, name="level")
    device.host_store(level, source, 0.0)
    flags = FrontierFlags(device, n)

    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        flags.new_round()
        with device.launch("bfs_expand") as k:
            batch = dgraph.batch(frontier, "all")
            if adaptive:
                a_cls = thread_per_item(frontier.size)
                k.alu(a_cls, ops=2)
                groups = launch_adaptive(k, batch.counts)
            else:
                groups = [
                    (np.arange(frontier.size), thread_per_vertex_edges(batch.counts))
                ]
            next_parts: list[np.ndarray] = []
            for positions, assignment in groups:
                vs = frontier[positions]
                sub_batch = dgraph.batch(vs, "all")
                v = k.gather(dgraph.adj, sub_batch.edge_idx, assignment)
                lv = k.gather(level, v, assignment)
                unvisited = ~np.isfinite(lv)
                k.branch(assignment, unvisited)
                if unvisited.any():
                    sub = subset_assignment(assignment, unvisited)
                    k.scatter(
                        level,
                        v[unvisited],
                        np.full(int(unvisited.sum()), float(depth)),
                        sub,
                    )
                    fresh = flags.push(k, v[unvisited], sub)
                    next_parts.append(fresh)
            next_frontier = (
                np.unique(np.concatenate(next_parts))
                if next_parts
                else np.zeros(0, dtype=np.int64)
            )
        device.barrier()
        frontier = next_frontier

    return SSSPResult(
        dist=level.data.copy(),
        source=source,
        method="bfs-gpu" + ("" if adaptive else "-static"),
        graph_name=graph.name,
        time_ms=device.elapsed_ms,
        counters=device.counters,
        num_edges=graph.num_edges,
        # the loop always ends with one empty expansion round, so the
        # source's eccentricity is depth - 1
        extra={"timeline": device.timeline, "depth": depth - 1},
    )
