"""The simulated GPU device: memory, kernels and synchronization.

:class:`GPUDevice` is the substrate every GPU SSSP variant in this library
runs on.  Kernels are expressed as vectorized NumPy passes over work items,
but every memory access, atomic and ALU step is routed through the device so
that warp-level instructions, coalesced transactions, cache behaviour,
divergence, launch overheads and synchronization events are all *counted* —
and converted into simulated time by :mod:`repro.gpusim.timemodel`.

Typical kernel shape::

    dev = GPUDevice(V100)
    dist = dev.alloc(np.full(n, np.inf))
    adj = dev.upload(graph.adj, "adj")

    with dev.launch("relax") as k:
        a = thread_per_vertex_edges(degrees_of_frontier)
        v = k.gather(adj, edge_idx, a)          # counted global loads
        nd = k.gather(dist, frontier_of_edge, a) + w
        k.alu(a, ops=2)                          # address arithmetic etc.
        old, updated = k.atomic_min(dist, v, nd, a)

    dev.elapsed_ms                               # simulated milliseconds

The arrays behind :class:`DeviceArray` are real storage — kernels genuinely
compute shortest paths; the device merely observes them with CUDA's cost
rules.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Iterator

import numpy as np

from .cachemodel import CacheModel, CacheStream
from .counters import DeviceCounters, KernelCounters
from .kernels import WorkAssignment
from .memory import BumpAllocator, DeviceArray, coalesce
from .spec import GPUSpec, V100
from .timemodel import kernel_time
from ..perf.profile import active_profiler
from .multisplit import ballot_rounds
from ..util.scan import (
    distinct_count,
    multisplit_order,
    serialized_min_outcome,
    stable_sort_with_order,
)

__all__ = [
    "GPUDevice",
    "KernelContext",
    "ObserverList",
    "subset_assignment",
    "register_global_observer",
    "unregister_global_observer",
]

#: every event name the device (and the multi-GPU runtime) dispatches;
#: the attach-time dispatch table is built over exactly this set
OBSERVER_EVENTS = (
    "on_access",
    "on_alloc",
    "on_annotate",
    "on_device_barrier",
    "on_host_write",
    "on_kernel_begin",
    "on_kernel_complete",
    "on_kernel_end",
    "on_multisplit",
    "transform_read",
    "transform_atomic",
    "transform_exchange",
    "transform_multisplit",
)

_NO_HANDLERS: tuple = ()


class ObserverList(list):
    """The device's observer list; mutation rebuilds the dispatch table.

    Observers attach by plain list mutation (``device.observers.append``),
    which historically forced ``_notify`` to probe every observer with
    ``getattr`` on every event.  This subclass keeps that public API but
    tells the owning device to re-bind its per-event handler tuples
    whenever membership changes, so the per-event cost collapses to one
    dict lookup over pre-bound methods (and to a single falsy check when
    no observer handles the event).
    """

    __slots__ = ("_device",)

    def __init__(self, device: "GPUDevice", iterable=()) -> None:
        super().__init__(iterable)
        self._device = device

    def _changed(self) -> None:
        self._device._rebuild_dispatch()

    def append(self, item) -> None:
        super().append(item)
        self._changed()

    def extend(self, items) -> None:
        super().extend(items)
        self._changed()

    def insert(self, index, item) -> None:
        super().insert(index, item)
        self._changed()

    def remove(self, item) -> None:
        super().remove(item)
        self._changed()

    def pop(self, index=-1):
        out = super().pop(index)
        self._changed()
        return out

    def clear(self) -> None:
        super().clear()
        self._changed()

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._changed()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._changed()

    def __iadd__(self, items):
        super().extend(items)
        self._changed()
        return self

#: observers automatically attached to every :class:`GPUDevice` created
#: after registration — how analysis tools (repro.analysis.Sanitizer)
#: reach devices that algorithms construct internally
_GLOBAL_OBSERVERS: list = []


def register_global_observer(observer) -> None:
    """Attach ``observer`` to every subsequently created device."""
    if observer not in _GLOBAL_OBSERVERS:
        _GLOBAL_OBSERVERS.append(observer)


def unregister_global_observer(observer) -> None:
    """Stop auto-attaching ``observer`` to new devices."""
    if observer in _GLOBAL_OBSERVERS:
        _GLOBAL_OBSERVERS.remove(observer)


def subset_assignment(assignment: WorkAssignment, mask: np.ndarray) -> WorkAssignment:
    """Restrict an assignment to the work items selected by ``mask``.

    Used for predicated operations: inactive lanes issue no memory requests,
    but the surviving slots still cost full warp instructions.
    """
    slots = assignment.slots[mask]
    if slots.size == 0:
        return _dc_replace(
            assignment, slots=slots, num_slots=0, max_steps=0, num_items=0
        )
    stride = max(assignment.max_steps, 1)
    max_step = int((slots % stride).max()) + 1
    return _dc_replace(
        assignment,
        slots=slots,
        num_slots=distinct_count(slots),
        max_steps=max_step,
        num_items=int(slots.size),
    )


class KernelContext:
    """Accounting scope of one kernel launch."""

    def __init__(self, device: "GPUDevice", name: str) -> None:
        self.device = device
        self.name = name
        self.counters = KernelCounters()
        self.critical_instructions = 0
        self._load_lines: list[np.ndarray] = []
        self._extra_time = 0.0
        #: simulated duration, available after the launch context exits
        self.time_s: float = 0.0

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    def _note_assignment(self, a: WorkAssignment, instructions: int) -> None:
        self.counters.active_lanes += a.num_items
        self.counters.lane_slots += instructions * self.device.spec.warp_size
        self.counters.threads_launched = max(
            self.counters.threads_launched, a.num_threads
        )

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------
    def _coalesced(
        self, arr: DeviceArray, idx: np.ndarray, a: WorkAssignment
    ) -> tuple[int, int, np.ndarray]:
        """:func:`coalesce` with a device-side memo for prefix scans.

        The dominant gather of the bucket engines is the per-iteration
        full scan ``gather(dist, arange(n), a)`` — its coalesce triple is a
        pure function of the array's placement, the scan length and the
        assignment's slot array, yet a naive call re-sorts the same 16k keys
        every iteration.  When ``idx`` is exactly ``arange(n)`` (two scalar
        probes, then one comparison pass) the triple is cached per
        ``(base_address, n)``.  The cached slot array is compared by
        identity: assignment factories are memoized and the memo entry
        keeps the array alive, so ``is`` cannot alias a recycled id.  The
        returned ``sector_ids`` are never mutated downstream (the cache
        stream only reads them), so sharing one array is safe.
        """
        spec = self.device.spec
        n = idx.size
        if (
            n > 1
            and idx[0] == 0
            and idx[n - 1] == n - 1
            and bool((idx[1:] > idx[:-1]).all())
        ):
            memo = self.device._scan_coalesce
            key = (arr.base_address, n)
            entry = memo.get(key)
            if entry is not None and entry[0] is a.slots:
                return entry[1], entry[2], entry[3]
            out = coalesce(
                arr.addresses(idx), a.slots, spec.sector_bytes,
                spec.cache_line_bytes,
            )
            memo[key] = (a.slots, *out)
            return out
        return coalesce(
            arr.addresses(idx), a.slots, spec.sector_bytes, spec.cache_line_bytes
        )

    def gather(
        self, arr: DeviceArray, idx: np.ndarray, a: WorkAssignment
    ) -> np.ndarray:
        """Warp-coalesced global load of ``arr[idx]``; returns the values."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size != a.num_items:
            raise ValueError("index array must match the assignment's items")
        instructions, transactions, lines = self._coalesced(arr, idx, a)
        c = self.counters
        c.inst_executed_global_loads += instructions
        c.global_load_transactions += transactions
        c.l1_accesses += transactions
        self._load_lines.append(lines)
        self.critical_instructions += a.max_steps
        self._note_assignment(a, instructions)
        self.device._notify("on_access", self, "read", arr, idx, None, a)
        values = arr.data[idx]
        # value-transform hook (fault injection): runs after all accounting
        # so the counted work is identical with or without observers
        for fn in self.device._transform_read:
            values = fn(self, arr, idx, values)
        return values

    def scatter(
        self,
        arr: DeviceArray,
        idx: np.ndarray,
        values: np.ndarray,
        a: WorkAssignment,
    ) -> None:
        """Warp-coalesced global store ``arr[idx] = values`` (last wins)."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size != a.num_items:
            raise ValueError("index array must match the assignment's items")
        instructions, transactions, _lines = self._coalesced(arr, idx, a)
        c = self.counters
        c.inst_executed_global_stores += instructions
        c.global_store_transactions += transactions
        self.critical_instructions += a.max_steps
        self._note_assignment(a, instructions)
        self.device._notify("on_access", self, "write", arr, idx, values, a)
        arr.data[idx] = values

    def atomic_min(
        self,
        arr: DeviceArray,
        idx: np.ndarray,
        values: np.ndarray,
        a: WorkAssignment,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``atomicMin(&arr[idx[i]], values[i])`` for every item.

        Returns ``(old, updated)``: the pre-op value each atomic observed
        under per-address program-order serialization, and the mask of
        atomics that actually lowered the cell (the paper's "updates";
        non-updates are its "checks").
        """
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values, dtype=arr.data.dtype)
        n = idx.size
        if n != a.num_items:
            raise ValueError("index array must match the assignment's items")
        spec = self.device.spec
        instructions, transactions, _lines = coalesce(
            arr.addresses(idx), a.slots, spec.sector_bytes, spec.cache_line_bytes
        )
        c = self.counters
        c.inst_executed_atomics += instructions
        c.atomic_transactions += transactions
        self.critical_instructions += a.max_steps
        self._note_assignment(a, instructions)

        if n == 0:
            return values.copy(), np.zeros(0, dtype=bool)

        # same-address atomics retire one at a time: everything beyond the
        # first op per address in this batch is a serialized conflict
        unique_addresses = distinct_count(idx)
        c.atomic_conflicts += n - unique_addresses

        self.device._notify("on_access", self, "atomic_min", arr, idx, values, a)
        # value-transform hook (fault injection): after accounting, before
        # the semantic effect — a transformed value changes state, never cost
        for fn in self.device._transform_atomic:
            values = fn(self, "atomic_min", arr, idx, values)
        # serialize per address in program order (see util.scan); the
        # distinct-address count doubles as its conflict-free fast path
        return serialized_min_outcome(
            arr.data, idx, values, distinct=unique_addresses
        )

    def atomic_add(
        self,
        arr: DeviceArray,
        idx: np.ndarray,
        values: np.ndarray,
        a: WorkAssignment,
    ) -> None:
        """``atomicAdd(&arr[idx[i]], values[i])`` for every item.

        Addition is order-independent, so no old-value bookkeeping is
        needed; traffic and same-address serialization are accounted like
        any other atomic RMW.
        """
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values, dtype=arr.data.dtype)
        n = idx.size
        if n != a.num_items:
            raise ValueError("index array must match the assignment's items")
        spec = self.device.spec
        instructions, transactions, _lines = coalesce(
            arr.addresses(idx), a.slots, spec.sector_bytes, spec.cache_line_bytes
        )
        c = self.counters
        c.inst_executed_atomics += instructions
        c.atomic_transactions += transactions
        self.critical_instructions += a.max_steps
        self._note_assignment(a, instructions)
        if n:
            c.atomic_conflicts += n - distinct_count(idx)
            self.device._notify("on_access", self, "atomic_add", arr, idx, values, a)
            for fn in self.device._transform_atomic:
                values = fn(self, "atomic_add", arr, idx, values)
            np.add.at(arr.data, idx, values)

    # ------------------------------------------------------------------
    # compute operations
    # ------------------------------------------------------------------
    def alu(self, a: WorkAssignment, ops: int = 1) -> None:
        """Charge ``ops`` ALU/control instructions per slot of one pass."""
        self.counters.inst_executed_other += a.num_slots * ops
        self.critical_instructions += a.max_steps * ops
        self._note_assignment(a, a.num_slots * ops)

    def branch(
        self, a: WorkAssignment, taken: np.ndarray, cost_taken: int = 1,
        cost_not_taken: int = 1,
    ) -> None:
        """Account a data-dependent branch over the assignment's items.

        A slot whose lanes disagree is *divergent*: SIMT hardware executes
        both paths with complementary masks, so the slot issues
        ``cost_taken + cost_not_taken`` instructions instead of one path's
        worth — the penalty PRO's weight-sorting removes (motivation 1).
        """
        taken = np.asarray(taken, dtype=bool)
        if taken.size != a.num_items:
            raise ValueError("taken mask must match the assignment's items")
        c = self.counters
        if a.num_items == 0:
            return
        sslots, order = stable_sort_with_order(a.slots)
        staken = taken[order]
        starts = np.ones(sslots.size, dtype=bool)
        starts[1:] = sslots[1:] != sslots[:-1]
        gstarts = np.flatnonzero(starts)
        any_taken = np.maximum.reduceat(staken.astype(np.int8), gstarts) > 0
        all_taken = np.minimum.reduceat(staken.astype(np.int8), gstarts) > 0
        divergent = any_taken & ~all_taken
        num_slots = gstarts.size
        c.branch_instructions += num_slots
        c.divergent_branches += int(divergent.sum())
        issued = (
            int(divergent.sum()) * (cost_taken + cost_not_taken)
            + int(any_taken.sum() - (divergent & any_taken).sum()) * cost_taken
            + int((~any_taken).sum()) * cost_not_taken
        )
        c.inst_executed_other += issued
        self.critical_instructions += a.max_steps
        self._note_assignment(a, issued)

    def multisplit(
        self, keys: np.ndarray, num_buckets: int, a: WorkAssignment
    ) -> tuple[np.ndarray, np.ndarray]:
        """Warp-ballot multisplit of ``keys`` into ``num_buckets`` groups.

        Returns ``(order, offsets)``: a permutation grouping the
        assignment's items by bucket key with stable within-bucket order,
        and the exclusive bucket-start prefix (length ``num_buckets + 1``)
        — the semantics of :func:`repro.util.scan.multisplit_order`.

        Cost (the W-MS model, see :mod:`repro.gpusim.multisplit`): each
        warp slot issues one ballot per split bit
        (``ceil(log2 max(B, 2))``); rank/scatter staging and the per-warp
        histogram combine are shared-memory transactions that occupy
        issue slots but produce **no** global-memory traffic — which is
        exactly why it beats the sort/scan/branch placements it replaces.

        Keys must lie in ``[0, num_buckets)``; out-of-range keys raise
        after observers are notified, so the sanitizer records the
        hazard before the fail-fast.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size != a.num_items:
            raise ValueError("key array must match the assignment's items")
        rounds = ballot_rounds(num_buckets)
        c = self.counters
        c.inst_executed_ballots += a.num_slots * rounds
        c.shared_transactions += (
            2 * a.num_slots + min(a.num_warps, a.num_slots) * num_buckets
        )
        c.multisplit_ops += 1
        c.multisplit_buckets += num_buckets
        self.critical_instructions += a.max_steps * (rounds + 1)
        self._note_assignment(a, a.num_slots * rounds)
        self.device._notify("on_multisplit", self, keys, num_buckets, a)
        # key-transform hook (fault injection): runs after all accounting
        # so the counted work is identical with or without observers
        for fn in self.device._transform_multisplit:
            keys = fn(self, keys, num_buckets, a)
        return multisplit_order(keys, num_buckets)

    # ------------------------------------------------------------------
    # launch-structure events
    # ------------------------------------------------------------------
    def child_launch(self, count: int = 1) -> None:
        """Account device-side (dynamic parallelism) child-kernel launches."""
        self.counters.child_kernel_launches += count
        self._extra_time += count * self.device.spec.child_launch_s

    def device_barrier(self) -> None:
        """A device-wide synchronization inside a fused kernel."""
        self.counters.barriers += 1
        self._extra_time += self.device.spec.barrier_s
        self.device._notify("on_device_barrier", self.device, self)

    def async_round(self, count: int = 1) -> None:
        """Account asynchronous work-list scheduling rounds (no barrier)."""
        self.counters.async_rounds += count
        self._extra_time += count * self.device.spec.async_round_s

    def mlmq_steal(self, slots: int = 0) -> None:
        """Account one work-stealing handoff between SM-mapped queue groups.

        The handoff is a single CAS on the victim queue's head descriptor
        — one warp-level atomic (a lone lane) and one global transaction
        regardless of how many slots change owner; the slot payload itself
        is popped through the usual counted loads by the thief.
        """
        c = self.counters
        c.mlmq_steals += 1
        c.mlmq_stolen_slots += int(slots)
        c.inst_executed_atomics += 1
        c.atomic_transactions += 1
        c.active_lanes += 1
        c.lane_slots += self.device.spec.warp_size
        self.critical_instructions += 1


class GPUDevice:
    """One simulated GPU with memory, a cache model and a running clock."""

    def __init__(self, spec: GPUSpec = V100) -> None:
        self.spec = spec
        self.allocator = BumpAllocator()
        self.cache = CacheModel(spec)
        self.counters = DeviceCounters()
        self.time_s = 0.0
        #: attached analysis observers (see repro.analysis); duck-typed —
        #: each event calls the observer method of the same name if present.
        #: Handler methods are bound when the list changes (attach time),
        #: so add/remove observers via this list, not by monkey-patching
        #: methods onto an already-attached observer.
        self.observers: ObserverList = ObserverList(self, _GLOBAL_OBSERVERS)
        self._rebuild_dispatch()
        # carry-over window: the tail of the previous launches' transaction
        # stream.  Physically this is the persistence of the cache hierarchy
        # across back-to-back kernel launches (L1 is flushed but L2 is not):
        # a small kernel re-touching lines the previous kernel brought in
        # still hits, which matters for bucket-at-a-time algorithms that
        # launch many short kernels over the same hot arrays.  Resolved
        # incrementally (see CacheStream) so short kernels don't pay
        # O(capacity) host time per launch.
        self._cache_stream = CacheStream(self.cache)
        #: memoized coalesce triples for prefix-scan accesses
        #: (see KernelContext._coalesced)
        self._scan_coalesce: dict = {}
        from .timeline import Timeline

        #: per-launch profile (nvprof --print-gpu-trace analogue)
        self.timeline = Timeline(spec)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _rebuild_dispatch(self) -> None:
        """Re-bind the per-event handler tuples from the observer list.

        Called whenever ``self.observers`` changes; ``_notify`` and the
        transform hooks then dispatch over pre-bound methods instead of
        probing every observer with ``getattr`` per event.
        """
        table: dict[str, tuple] = {}
        for event in OBSERVER_EVENTS:
            handlers = tuple(
                fn for obs in self.observers
                if (fn := getattr(obs, event, None)) is not None
            )
            if handlers:
                table[event] = handlers
        self._dispatch = table
        self._transform_read = table.get("transform_read", _NO_HANDLERS)
        self._transform_atomic = table.get("transform_atomic", _NO_HANDLERS)
        self._transform_multisplit = table.get(
            "transform_multisplit", _NO_HANDLERS
        )

    def handlers(self, event: str) -> tuple:
        """Pre-bound handler methods of every observer handling ``event``."""
        return self._dispatch.get(event, _NO_HANDLERS)

    def _notify(self, event: str, *args) -> None:
        """Dispatch ``event`` to every attached observer that handles it."""
        for fn in self._dispatch.get(event, _NO_HANDLERS):
            fn(*args)

    def annotate(self, tag: str, **payload) -> None:
        """Publish an algorithm-level fact (bucket boundaries, settled sets,
        …) to the attached observers.  A no-op without observers; engines
        use it to give analysis tools semantic context the raw access
        stream cannot carry."""
        self._notify("on_annotate", self, tag, payload)

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def alloc(self, array: np.ndarray, name: str = "buf") -> DeviceArray:
        """Allocate device storage initialized from ``array`` (copied)."""
        data = np.array(array, copy=True)
        arr = DeviceArray(data, self.allocator.allocate(data.nbytes), name)
        self._notify("on_alloc", self, arr, True)
        return arr

    def zeros(self, n: int, dtype=np.float64, name: str = "buf") -> DeviceArray:
        """Allocate an ``n``-element zeroed device array."""
        return self.alloc(np.zeros(n, dtype=dtype), name)

    def full(self, n: int, value, dtype=np.float64, name: str = "buf") -> DeviceArray:
        """Allocate an ``n``-element device array filled with ``value``."""
        return self.alloc(np.full(n, value, dtype=dtype), name)

    def empty(self, n: int, dtype=np.float64, name: str = "buf") -> DeviceArray:
        """Allocate ``n`` elements of *uninitialized* device memory.

        Like ``cudaMalloc``, the contents are undefined until written; the
        storage is poisoned with a sentinel (NaN for floats, the dtype
        minimum for integers) so bugs that consume it surface loudly, and
        attached sanitizers track reads of never-written elements.
        """
        dtype = np.dtype(dtype)
        poison = np.nan if dtype.kind == "f" else np.iinfo(dtype).min
        data = np.full(n, poison, dtype=dtype)
        arr = DeviceArray(data, self.allocator.allocate(data.nbytes), name)
        self._notify("on_alloc", self, arr, False)
        return arr

    def upload(self, array: np.ndarray, name: str = "buf") -> DeviceArray:
        """Wrap a (read-only) host array as device memory without copying."""
        arr = DeviceArray(
            np.asarray(array), self.allocator.allocate(array.nbytes), name
        )
        self._notify("on_alloc", self, arr, True)
        return arr

    def host_store(self, arr: DeviceArray, idx, values) -> None:
        """Host-side staging write ``arr[idx] = values`` outside any kernel.

        The sanctioned way to initialize device cells from the host (the
        ``dist[source] = 0`` idiom): it is visible to attached observers,
        unlike a raw mutation of ``arr.data``, which ``repro-lint`` flags.
        Charged no simulated time — host staging happens before the
        measured region, matching the paper's methodology.
        """
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        self._notify("on_host_write", self, arr, idx, values)
        arr.data[idx] = values

    def host_copy(self, arr: DeviceArray, values: np.ndarray) -> None:
        """Host-driven overwrite of a whole device array (uncounted).

        The full index array observers expect is only materialized when
        someone actually subscribes to ``on_host_write`` — the unobserved
        path is a plain array copy.
        """
        handlers = self._dispatch.get("on_host_write")
        if handlers:
            idx = np.arange(arr.size, dtype=np.int64)
            for fn in handlers:
                fn(self, arr, idx, values)
        arr.data[...] = values

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @contextmanager
    def launch(self, name: str, *, host_launch: bool = True) -> Iterator[KernelContext]:
        """Run one kernel; accounting closes when the context exits."""
        prof = active_profiler()
        t_host = time.perf_counter() if prof is not None else 0.0
        ctx = KernelContext(self, name)
        if host_launch:
            ctx.counters.kernel_launches += 1
        self._notify("on_kernel_begin", self, ctx)
        yield ctx
        self._notify("on_kernel_end", self, ctx)
        # resolve cache behaviour for the launch's load stream, warmed by
        # the tail of the preceding launches (L2 persistence).  CacheStream
        # evaluates this incrementally — identical counts to concatenating
        # the tail, without the per-launch O(capacity) sort
        if ctx._load_lines:
            lines = (
                ctx._load_lines[0] if len(ctx._load_lines) == 1
                else np.concatenate(ctx._load_lines)
            )
            ctx.counters.l1_hits += self._cache_stream.hit_count(lines)
        body = kernel_time(self.spec, ctx.counters, ctx.critical_instructions)
        launch_cost = self.spec.kernel_launch_s if host_launch else 0.0
        ctx.time_s = body + ctx._extra_time + launch_cost
        self.timeline.record(
            name, self.time_s, ctx.time_s, ctx.counters, ctx.critical_instructions
        )
        self.time_s += ctx.time_s
        self.counters.record(name, ctx.counters)
        # unlike on_kernel_end (which fires before cache resolution so
        # transforms can still see the launch open), this event sees the
        # final ctx.time_s/counters — the tracer's kernel spans hang here
        self._notify("on_kernel_complete", self, ctx)
        if prof is not None:
            prof.add("kernel_host", time.perf_counter() - t_host)

    def barrier(self) -> None:
        """Host-visible device synchronization between kernels."""
        self.counters.totals.barriers += 1
        self.time_s += self.spec.barrier_s

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def elapsed_ms(self) -> float:
        """Simulated wall-clock so far, in milliseconds."""
        return self.time_s * 1e3

    def reset_clock(self) -> None:
        """Zero the clock, counters and timeline (memory contents are kept)."""
        from .timeline import Timeline

        self.counters = DeviceCounters()
        self.time_s = 0.0
        self.timeline = Timeline(self.spec)
