"""Multi-GPU prototype (the paper's §7 future work).

"In the future, we will further explore a high-performance graph processing
framework for large-scale graphs on the multi-GPUs platform."  This module
implements the straightforward first design the community uses as the
starting point — a 1-D source-vertex partition with a replicated distance
vector and bulk-synchronous frontier exchange over the interconnect:

* vertices are split into contiguous blocks, one per GPU; every GPU holds
  the out-edges of its block plus a full distance mirror;
* each superstep, every GPU relaxes its local slice of the global frontier
  (a real simulated kernel, fully accounted), then broadcasts its winning
  updates to the other GPUs;
* superstep time = slowest GPU's kernel time + interconnect transfer, so
  load imbalance across partitions and exchange volume — the two classic
  multi-GPU scaling limits — are both visible in the result.

The ablation benchmark uses this to show where a multi-GPU extension of the
paper's approach would gain and where the exchange cost eats the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from .device import GPUDevice, subset_assignment
from .kernels import thread_per_item, thread_per_vertex_edges
from .spec import GPUSpec, V100

__all__ = ["MultiGPUResult", "multi_gpu_sssp", "PCIE3_GBPS", "NVLINK2_GBPS"]

#: interconnect bandwidth presets (GB/s, per direction, aggregate)
PCIE3_GBPS = 16.0
NVLINK2_GBPS = 150.0
#: per-superstep exchange latency (all-to-all software + DMA setup)
_EXCHANGE_LATENCY_S = 10e-6
#: bytes per exchanged update message: (vertex id, distance)
_MESSAGE_BYTES = 12
#: bound on post-drain repair sweeps (recovery mode); fault budgets are
#: finite so a run needing more has a real bug, not injected damage
_MAX_REPAIR_ROUNDS = 32


@dataclass
class MultiGPUResult:
    """Distances plus the multi-GPU execution profile."""

    dist: np.ndarray
    source: int
    num_gpus: int
    time_ms: float
    supersteps: int
    exchanged_messages: int
    exchange_time_ms: float
    compute_time_ms: float
    #: host-side relax-consistency sweeps that had to reseed the frontier
    #: after lost exchange messages (0 unless ``recovery`` found damage)
    repair_rounds: int = 0

    @property
    def exchange_fraction(self) -> float:
        """Share of total time spent in the interconnect (0..1)."""
        if self.time_ms == 0:
            return 0.0
        return self.exchange_time_ms / self.time_ms


def multi_gpu_sssp(
    graph: CSRGraph,
    source: int,
    num_gpus: int = 2,
    *,
    spec: GPUSpec = V100,
    interconnect_gbps: float = NVLINK2_GBPS,
    max_supersteps: int = 1_000_000,
    partition: str | np.ndarray = "block",
    recovery: bool = False,
) -> MultiGPUResult:
    """Bulk-synchronous multi-GPU Bellman-Ford over a 1-D partition.

    ``partition`` selects the vertex-ownership strategy: ``"block"``,
    ``"edge-balanced"``, ``"random"``, ``"degree-balanced"`` (see
    :mod:`repro.graphs.partition`) or an explicit owner array.

    With ``recovery=True``, a host-side relax-consistency sweep runs after
    the frontier drains; edges that can still improve their target (the
    signature of an exchange message lost in flight) reseed the frontier
    and the supersteps resume.  Exchange faults can only *lose*
    improvements — the host copy is authoritative and every mirror is
    refreshed from it each superstep — so this sweep restores exactness.
    """
    from ..graphs.partition import (
        block_partition,
        degree_balanced_partition,
        edge_balanced_partition,
        random_partition,
    )

    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")

    devices = [GPUDevice(spec) for _ in range(num_gpus)]
    if isinstance(partition, str):
        if partition == "block":
            owner = block_partition(n, num_gpus)
        elif partition == "edge-balanced":
            owner = edge_balanced_partition(graph, num_gpus)
        elif partition == "random":
            owner = random_partition(n, num_gpus)
        elif partition == "degree-balanced":
            owner = degree_balanced_partition(graph, num_gpus)
        else:
            raise ValueError(f"unknown partition strategy {partition!r}")
    else:
        owner = np.asarray(partition, dtype=np.int64)
        if owner.shape != (n,):
            raise ValueError("owner array must have one entry per vertex")
        if owner.size and (owner.min() < 0 or owner.max() >= num_gpus):
            raise ValueError("owner ids out of range")

    # replicated distance vector: one authoritative host copy, per-device
    # DeviceArray views for accounting (each device reads/writes its mirror)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    dev_dist = [d.alloc(dist, "dist") for d in devices]
    dgraphs = []
    from ..sssp.relax import DeviceGraph  # local import: avoid cycle

    for d in devices:
        dgraphs.append(DeviceGraph(d, graph))

    frontier = np.array([source], dtype=np.int64)
    total_time = 0.0
    exchange_time = 0.0
    compute_time = 0.0
    supersteps = 0
    exchanged = 0
    repair_rounds = 0

    while frontier.size:
        supersteps += 1
        if supersteps > max_supersteps:
            raise RuntimeError("superstep limit exceeded")
        step_times = []
        all_updates: list[np.ndarray] = []
        frontier_owner = owner[frontier]
        for g in range(num_gpus):
            local = frontier[frontier_owner == g]
            if local.size == 0:
                step_times.append(0.0)
                continue
            dev = devices[g]
            t0 = dev.time_s
            with dev.launch(f"mg_relax_g{g}") as k:
                batch = dgraphs[g].batch(local, "all")
                a = thread_per_vertex_edges(batch.counts)
                a_v = thread_per_item(local.size)
                du = k.gather(dev_dist[g], local, a_v)
                v = k.gather(dgraphs[g].adj, batch.edge_idx, a)
                w = k.gather(dgraphs[g].weights, batch.edge_idx, a)
                nd = du[batch.src_pos] + w
                k.alu(a, ops=3)
                _old, upd = k.atomic_min(dev_dist[g], v, nd, a)
                if upd.any():
                    sub = subset_assignment(a, upd)
                    k.alu(sub, ops=1)  # message-buffer append per update
                    all_updates.append(np.stack([v[upd], nd[upd]]))
            step_times.append(dev.time_s - t0)

        # merge winners on the host-authoritative copy, then broadcast
        improved: np.ndarray
        if all_updates:
            vs = np.concatenate([u[0] for u in all_updates]).astype(np.int64)
            nds = np.concatenate([u[1] for u in all_updates])
            # fault-injection hook: observers may drop or duplicate
            # exchange messages in flight (runs after all kernel
            # accounting, so injection-off is byte-identical)
            for fn in devices[0].handlers("transform_exchange"):
                vs, nds = fn(devices[0], supersteps, vs, nds)
        else:
            vs = np.zeros(0, dtype=np.int64)
            nds = np.zeros(0)
        if vs.size:
            before = dist[vs]
            np.minimum.at(dist, vs, nds)
            improved = np.unique(vs[dist[vs] < before])
            messages = int(vs.size) * max(num_gpus - 1, 0)
            exchanged += messages
            xfer = (
                _EXCHANGE_LATENCY_S
                + messages * _MESSAGE_BYTES / (interconnect_gbps * 1e9)
                if num_gpus > 1
                else 0.0
            )
            # every device applies the merged updates to its mirror
            for g in range(num_gpus):
                devices[g].host_copy(dev_dist[g], dist)
        else:
            improved = np.zeros(0, dtype=np.int64)
            xfer = 0.0

        compute_time += max(step_times)
        exchange_time += xfer
        total_time += max(step_times) + xfer
        frontier = improved

        if not frontier.size and recovery:
            reseed = _lost_update_sources(graph, dist)
            if reseed.size:
                repair_rounds += 1
                if repair_rounds > _MAX_REPAIR_ROUNDS:
                    raise RuntimeError(
                        "multi-GPU exchange repair did not converge"
                    )
                frontier = reseed

    return MultiGPUResult(
        dist=dist,
        source=source,
        num_gpus=num_gpus,
        time_ms=total_time * 1e3,
        supersteps=supersteps,
        exchanged_messages=exchanged,
        exchange_time_ms=exchange_time * 1e3,
        compute_time_ms=compute_time * 1e3,
        repair_rounds=repair_rounds,
    )


def _lost_update_sources(graph: CSRGraph, dist: np.ndarray) -> np.ndarray:
    """Sources of edges that can still improve their target vertex."""
    srcs = graph.edge_sources()
    slack = dist[srcs] + graph.weights
    tol = 1e-12 * np.maximum(1.0, np.where(np.isfinite(slack), slack, 1.0))
    viol = slack + tol < dist[graph.adj]
    return np.unique(srcs[viol])
