"""Occupancy calculation and launch-configuration sizing.

The paper's load-balancing design is occupancy-aware: α = 256 is "the
number of Block granularity threads", β = 32 "the number of Warp
granularity threads", and "we limit the largest dimension of the master and
child kernels to prevent the wasting of threads" (§4.2).  This module
implements the standard CUDA occupancy arithmetic — how many blocks of a
given shape fit on an SM under the warp-slot, block-slot, register-file and
shared-memory limits — plus the grid-clamping helper that implements the
paper's dimension limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import GPUSpec

__all__ = ["OccupancyLimits", "occupancy", "OccupancyResult", "clamp_grid"]

#: Volta/Turing-class per-SM resource limits (CUDA occupancy calculator)
@dataclass(frozen=True)
class OccupancyLimits:
    """Per-SM resources bounding resident blocks."""

    registers_per_sm: int = 65536
    shared_mem_per_sm: int = 96 * 1024
    max_blocks_per_sm: int = 32
    max_threads_per_block: int = 1024


DEFAULT_LIMITS = OccupancyLimits()


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel shape."""

    blocks_per_sm: int
    warps_per_sm: int
    #: achieved / maximum resident warps (the figure nvprof reports)
    occupancy: float
    #: the resource that limits residency
    limiter: str

    @property
    def is_full(self) -> bool:
        """True at 100% theoretical occupancy."""
        return self.occupancy >= 1.0 - 1e-12


def occupancy(
    spec: GPUSpec,
    threads_per_block: int,
    *,
    registers_per_thread: int = 32,
    shared_mem_per_block: int = 0,
    limits: OccupancyLimits = DEFAULT_LIMITS,
) -> OccupancyResult:
    """CUDA occupancy arithmetic for a kernel shape on ``spec``.

    Returns how many blocks are resident per SM and which resource binds.
    """
    if not 1 <= threads_per_block <= limits.max_threads_per_block:
        raise ValueError(
            f"threads_per_block must be in 1..{limits.max_threads_per_block}"
        )
    warp_size = spec.warp_size
    warps_per_block = (threads_per_block + warp_size - 1) // warp_size

    bounds = {
        "warp-slots": spec.max_warps_per_sm // warps_per_block,
        "block-slots": limits.max_blocks_per_sm,
        "registers": limits.registers_per_sm
        // max(registers_per_thread * warps_per_block * warp_size, 1),
    }
    if shared_mem_per_block > 0:
        bounds["shared-memory"] = (
            limits.shared_mem_per_sm // shared_mem_per_block
        )
    limiter, blocks = min(bounds.items(), key=lambda kv: kv[1])
    blocks = max(int(blocks), 0)
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / spec.max_warps_per_sm,
        limiter=limiter if blocks else "registers",
    )


def clamp_grid(
    spec: GPUSpec,
    work_items: int,
    threads_per_block: int,
    *,
    max_waves: int = 8,
    registers_per_thread: int = 32,
) -> int:
    """Grid size (blocks) for ``work_items``, bounded by device residency.

    Implements the paper's "limit the largest dimension of the master and
    child kernels": a grid never exceeds ``max_waves`` full waves of
    resident blocks — extra items are covered by grid-stride looping, which
    wastes no thread slots.
    """
    if work_items <= 0:
        return 0
    occ = occupancy(
        spec, threads_per_block, registers_per_thread=registers_per_thread
    )
    needed = (work_items + threads_per_block - 1) // threads_per_block
    ceiling = max(occ.blocks_per_sm * spec.num_sms * max_waves, 1)
    return min(needed, ceiling)
