"""Dynamic parallelism: the child-kernel launch layer of ADWL (§4.2).

CUDA dynamic parallelism lets a parent thread launch child kernels from the
device.  The paper's phase 1 uses it to right-size the thread count per
active vertex: a parent thread per active vertex inspects the vertex's
light-edge count and launches

* nothing (the parent handles < 32 light edges itself),
* one warp-granularity child (32 threads) below 256 light edges,
* one block-granularity child (256 threads) below 4096, or
* ``floor(n / 4096)`` block-granularity children above that

(α = 256, β = 32 in the paper's terms).  This module implements that
classification plus the corresponding :class:`WorkAssignment` construction
and child-launch accounting, so every phase-1 engine (sync or async) shares
one load-balancing implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import KernelContext
from .kernels import (
    WorkAssignment,
    thread_per_vertex_edges,
    threads_per_vertex_edges,
)

__all__ = [
    "WorkloadClasses",
    "classify_workloads",
    "classify_multisplit",
    "launch_adaptive",
    "ALPHA",
    "BETA",
]

#: block-granularity threshold (light edges) — "the number of Block
#: granularity threads"
ALPHA = 256
#: warp-granularity threshold — "the number of Warp granularity threads"
BETA = 32
#: per-child edge cap above which multiple blocks are assigned
MULTI_BLOCK = 4096


@dataclass(frozen=True)
class WorkloadClasses:
    """Active vertices split into the three workload lists of Fig. 5."""

    #: indices (into the active list) with < BETA light edges
    small: np.ndarray
    #: indices with BETA <= light edges < ALPHA
    middle: np.ndarray
    #: indices with >= ALPHA light edges
    large: np.ndarray

    @property
    def counts(self) -> tuple[int, int, int]:
        """``(small, middle, large)`` list sizes."""
        return self.small.size, self.middle.size, self.large.size


def classify_workloads(edge_counts: np.ndarray) -> WorkloadClasses:
    """Split vertices by light-edge count into small/middle/large lists."""
    edge_counts = np.asarray(edge_counts)
    small = np.flatnonzero(edge_counts < BETA)
    middle = np.flatnonzero((edge_counts >= BETA) & (edge_counts < ALPHA))
    large = np.flatnonzero(edge_counts >= ALPHA)
    return WorkloadClasses(small=small, middle=middle, large=large)


def classify_multisplit(
    ctx: KernelContext,
    edge_counts: np.ndarray,
    assignment: WorkAssignment,
) -> WorkloadClasses:
    """ADWL classification as one counted 3-way warp-ballot multisplit.

    Membership-identical to :func:`classify_workloads` — the multisplit's
    stable within-bucket order reproduces the ascending-position lists the
    three ``flatnonzero`` passes yield — but counted as two ballot rounds
    per warp slot (``ceil(log2 3)``) instead of the two per-slot compare
    ALUs of the flag-and-scan classification, and the class lists come out
    grouped for free instead of needing three scan passes.
    """
    edge_counts = np.asarray(edge_counts)
    keys = (edge_counts >= BETA).astype(np.int64) + (edge_counts >= ALPHA)
    order, offsets = ctx.multisplit(keys, 3, assignment)
    return WorkloadClasses(
        small=order[: offsets[1]],
        middle=order[offsets[1]:offsets[2]],
        large=order[offsets[2]:offsets[3]],
    )


def launch_adaptive(
    ctx: KernelContext,
    edge_counts: np.ndarray,
    classes: WorkloadClasses | None = None,
) -> list[tuple[np.ndarray, WorkAssignment]]:
    """Build the adaptive phase-1 assignments and account child launches.

    Parameters
    ----------
    ctx:
        the enclosing (master) kernel context — child launches are charged
        to it at device-side latency.
    edge_counts:
        light-edge count per active vertex.
    classes:
        pre-computed classification of ``edge_counts`` (callers that also
        report the small/middle/large histogram classify once and pass it
        in); derived here when omitted.

    Returns
    -------
    A list of ``(vertex_positions, assignment)`` pairs, one per workload
    class with any members.  ``vertex_positions`` indexes into the active
    list; the assignment's work items are the concatenated edges of those
    vertices in list order (the caller builds matching edge index arrays).
    """
    if classes is None:
        classes = classify_workloads(edge_counts)
    out: list[tuple[np.ndarray, WorkAssignment]] = []

    if classes.small.size:
        # parent threads process small vertices themselves: thread-per-vertex
        a = thread_per_vertex_edges(edge_counts[classes.small])
        out.append((classes.small, a))
    if classes.middle.size:
        # one warp-granularity child kernel per middle vertex
        a = threads_per_vertex_edges(edge_counts[classes.middle], BETA)
        ctx.child_launch(int(classes.middle.size))
        out.append((classes.middle, a))
    if classes.large.size:
        # block-granularity children; vertices above MULTI_BLOCK edges get
        # multiple blocks, i.e. proportionally more child launches
        counts = edge_counts[classes.large]
        blocks = np.maximum(counts // MULTI_BLOCK, 1)
        ctx.child_launch(int(blocks.sum()))
        a = threads_per_vertex_edges(counts, ALPHA)
        out.append((classes.large, a))
    return out
