"""Transaction-level SIMT GPU execution-model simulator.

This package is the hardware substrate the paper's experiments run on in
this reproduction: it executes kernels for real (vectorized NumPy) while
counting warp-level instructions, coalesced memory transactions, L1 cache
behaviour, divergence, atomics, kernel launches and barriers — the nvprof
metrics of the paper's Fig. 10 — and converting them into simulated time
with a roofline-style two-resource model parameterized by real V100/T4
datasheet numbers.
"""

from .cachemodel import CacheModel, reuse_gaps
from .compaction import compact, compact_multisplit
from .counters import DeviceCounters, KernelCounters
from .device import (
    GPUDevice,
    KernelContext,
    register_global_observer,
    subset_assignment,
    unregister_global_observer,
)
from .dynamic import (
    ALPHA,
    BETA,
    WorkloadClasses,
    classify_workloads,
    launch_adaptive,
)
from .kernels import (
    WorkAssignment,
    grid_stride,
    segmented_arange,
    thread_per_item,
    thread_per_vertex_edges,
    threads_per_vertex_edges,
)
from .memory import BumpAllocator, DeviceArray, coalesce
from .multisplit import ballot_rounds, multisplit_enabled
from .occupancy import OccupancyLimits, OccupancyResult, clamp_grid, occupancy
from .multi import MultiGPUResult, multi_gpu_sssp, NVLINK2_GBPS, PCIE3_GBPS
from .spec import A100, T4, V100, GPUSpec
from .timeline import KernelRecord, Timeline, attribute_bottleneck
from .timemodel import SERIAL_CPI, kernel_time

__all__ = [
    "GPUDevice",
    "KernelContext",
    "subset_assignment",
    "register_global_observer",
    "unregister_global_observer",
    "GPUSpec",
    "V100",
    "T4",
    "A100",
    "KernelCounters",
    "DeviceCounters",
    "CacheModel",
    "reuse_gaps",
    "DeviceArray",
    "BumpAllocator",
    "coalesce",
    "WorkAssignment",
    "thread_per_item",
    "thread_per_vertex_edges",
    "threads_per_vertex_edges",
    "grid_stride",
    "segmented_arange",
    "WorkloadClasses",
    "classify_workloads",
    "launch_adaptive",
    "ALPHA",
    "BETA",
    "kernel_time",
    "SERIAL_CPI",
    "MultiGPUResult",
    "multi_gpu_sssp",
    "NVLINK2_GBPS",
    "PCIE3_GBPS",
    "Timeline",
    "KernelRecord",
    "attribute_bottleneck",
    "occupancy",
    "clamp_grid",
    "OccupancyResult",
    "OccupancyLimits",
    "compact",
    "compact_multisplit",
    "ballot_rounds",
    "multisplit_enabled",
]
