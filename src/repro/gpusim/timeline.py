"""Kernel timeline: the simulator's answer to ``nvprof --print-gpu-trace``.

:class:`Timeline` records every launch's name, simulated start/duration and
headline counters, then aggregates them the way a profiling session does:
time per kernel *type*, top-k kernels, and a bottleneck attribution that
splits each kernel's duration into its binding resource (issue-bound,
memory-bound, critical-path-bound or overhead).  The attribution re-derives
the roofline terms from the recorded counters, so it always agrees with the
time model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .counters import KernelCounters
from .spec import GPUSpec
from .timemodel import SERIAL_CPI

__all__ = ["KernelRecord", "Timeline", "attribute_bottleneck"]


@dataclass(frozen=True)
class KernelRecord:
    """One launch on the simulated timeline."""

    name: str
    start_s: float
    duration_s: float
    counters: KernelCounters
    critical_instructions: int

    @property
    def end_s(self) -> float:
        """Completion time."""
        return self.start_s + self.duration_s


def attribute_bottleneck(
    spec: GPUSpec, counters: KernelCounters, critical_instructions: int
) -> str:
    """Name the resource that bounds this kernel's body.

    One of ``"issue"``, ``"memory"``, ``"critical-path"`` — or
    ``"overhead"`` when the body is empty (pure launch/sync cost).
    """
    issue = counters.total_warp_instructions / spec.issue_slots_per_s
    dram = max(
        (counters.global_load_transactions - counters.l1_hits)
        + counters.global_store_transactions
        + counters.atomic_transactions,
        0,
    )
    mem = dram * spec.sector_bytes / spec.mem_bandwidth_bytes_per_s
    crit = critical_instructions * SERIAL_CPI / spec.clock_hz
    best = max(issue, mem, crit)
    if best == 0:
        return "overhead"
    if best == crit:
        return "critical-path"
    if best == mem:
        return "memory"
    return "issue"


class Timeline:
    """Accumulates :class:`KernelRecord` entries for one device."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        self.records: list[KernelRecord] = []

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        counters: KernelCounters,
        critical_instructions: int,
    ) -> None:
        """Append one launch."""
        self.records.append(
            KernelRecord(name, start_s, duration_s, counters, critical_instructions)
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    @property
    def total_s(self) -> float:
        """Sum of recorded kernel durations."""
        return sum(r.duration_s for r in self.records)

    def by_kernel(self) -> dict[str, tuple[int, float]]:
        """``{kernel name: (launch count, total seconds)}``."""
        agg: dict[str, list[float]] = defaultdict(lambda: [0, 0.0])
        for r in self.records:
            agg[r.name][0] += 1
            agg[r.name][1] += r.duration_s
        return {k: (int(c), t) for k, (c, t) in agg.items()}

    def top(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` kernel types with the largest total time."""
        items = sorted(
            self.by_kernel().items(), key=lambda kv: kv[1][1], reverse=True
        )
        return [(name, t) for name, (_c, t) in items[:k]]

    def bottleneck_breakdown(self) -> dict[str, float]:
        """Total seconds attributed to each binding resource."""
        out: dict[str, float] = defaultdict(float)
        for r in self.records:
            out[
                attribute_bottleneck(self.spec, r.counters, r.critical_instructions)
            ] += r.duration_s
        return dict(out)

    def report(self, k: int = 8) -> str:
        """Human-readable profile (top kernels + bottleneck split)."""
        lines = [f"timeline: {len(self.records)} launches, "
                 f"{self.total_s * 1e3:.4f} ms total"]
        lines.append(f"{'kernel':<24} {'launches':>9} {'total ms':>10} {'share':>7}")
        total = max(self.total_s, 1e-30)
        for name, (count, t) in sorted(
            self.by_kernel().items(), key=lambda kv: kv[1][1], reverse=True
        )[:k]:
            lines.append(
                f"{name:<24} {count:>9} {t * 1e3:>10.4f} {t / total:>7.1%}"
            )
        lines.append("bottlenecks: " + ", ".join(
            f"{k_}={v / total:.1%}"
            for k_, v in sorted(
                self.bottleneck_breakdown().items(), key=lambda kv: -kv[1]
            )
        ))
        return "\n".join(lines)
