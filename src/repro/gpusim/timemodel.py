"""Two-resource kernel timing model.

A kernel's simulated duration is the slowest of three bounds, the standard
roofline-style decomposition for throughput processors:

* **issue bound** — total warp instructions (plus shared-memory
  transactions, which occupy LSU issue slots without touching DRAM)
  divided by the device's aggregate issue rate (all SMs,
  ``issue_per_sm_per_cycle`` each);
* **memory bound** — DRAM traffic (L1-missing load transactions plus all
  store/atomic transactions, ``sector_bytes`` each) divided by peak
  bandwidth;
* **critical-path bound** — the longest dependent per-warp instruction
  chain cannot finish faster than one warp executing it back-to-back
  (``_SERIAL_CPI`` cycles per dependent instruction).  This is what makes a
  single 100k-degree hub vertex in a thread-per-vertex kernel slow even on
  an otherwise idle GPU — the load-imbalance effect ADWL removes.

Atomic contention adds a serialization term on top (conflicting atomics to
one address retire one at a time in the L2 atomic units).

All bounds derive from *counted* events; no per-algorithm constants exist
anywhere in the model, so speedups between algorithms emerge from their
actual instruction/transaction/imbalance behaviour.
"""

from __future__ import annotations

from .counters import KernelCounters
from .spec import GPUSpec

__all__ = ["kernel_time", "SERIAL_CPI"]

#: cycles per instruction for a dependent single-warp chain (issue latency
#: of back-to-back dependent instructions on Volta-class SMs)
SERIAL_CPI = 4.0


def kernel_time(
    spec: GPUSpec,
    counters: KernelCounters,
    critical_instructions: int,
) -> float:
    """Simulated execution time (seconds) of one kernel's body.

    Launch and synchronization latencies are charged separately by the
    device (they depend on *how* the kernel was started, not on its body).
    """
    # --- issue bound -----------------------------------------------------
    # shared-memory transactions (multisplit staging) occupy LSU issue
    # slots like instructions do, but stay on-chip: they never join the
    # DRAM term below
    issue_s = (
        counters.total_warp_instructions + counters.shared_transactions
    ) / spec.issue_slots_per_s

    # --- memory bound ------------------------------------------------------
    dram_transactions = (
        (counters.global_load_transactions - counters.l1_hits)
        + counters.global_store_transactions
        + counters.atomic_transactions
    )
    dram_transactions = max(dram_transactions, 0)
    mem_s = dram_transactions * spec.sector_bytes / spec.mem_bandwidth_bytes_per_s

    # --- critical path bound ---------------------------------------------
    crit_s = critical_instructions * SERIAL_CPI / spec.clock_hz

    # --- atomic serialization ---------------------------------------------
    atom_s = (
        counters.atomic_conflicts
        * spec.atomic_serialization_cycles
        / (spec.num_sms * spec.clock_hz)
    )

    return max(issue_s, mem_s, crit_s) + atom_s
