"""SIMT work-to-thread mappings.

A CUDA kernel's cost structure is fixed by how work items map onto threads,
warps and lockstep steps.  :class:`WorkAssignment` captures one such mapping
for a batch of work items (usually edges): every item gets a *slot* id
identifying the warp instruction that processes it — items sharing a slot
are processed by one warp in one step, so they coalesce in memory and
execute in lockstep.

Three mappings cover every kernel in the paper:

* :func:`thread_per_vertex_edges` — classic vertex-centric push: thread *t*
  owns active vertex *t* and loops over its edges (the BL baseline and
  ADDS).  A warp's step count is the **max** degree among its 32 vertices,
  so power-law frontiers waste most lane-slots — motivation 2 in numbers.
* :func:`threads_per_vertex_edges` — ADWL child kernels: a vertex's edges
  are strided across 32 (warp granularity) or 256 (block granularity)
  threads, collapsing the step count from ``deg`` to ``ceil(deg / tpv)``.
* :func:`grid_stride` — flat edge-parallel mapping used by the fused
  phase-2&3 kernel ("we coarsely assign the same number of heavy edges to
  each thread"): item *i* goes to thread ``i % T`` at step ``i // T``, which
  is perfectly balanced and perfectly coalesced for contiguous arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..util.scan import segmented_arange

__all__ = [
    "WorkAssignment",
    "thread_per_item",
    "thread_per_vertex_edges",
    "threads_per_vertex_edges",
    "grid_stride",
    "segmented_arange",
]


@dataclass(frozen=True)
class WorkAssignment:
    """One SIMT mapping of work items to (warp, step) slots."""

    #: slot id per work item; items sharing a slot coalesce / run in lockstep
    slots: np.ndarray
    #: threads the kernel launches for this mapping
    num_threads: int
    #: warps those threads occupy
    num_warps: int
    #: number of distinct slots = warp-level instructions per full pass
    num_slots: int
    #: longest per-warp step chain (critical path, in steps)
    max_steps: int
    #: total work items
    num_items: int

    @property
    def simt_efficiency(self) -> float:
        """Active lanes / issued lane-slots for one pass (0..1)."""
        if self.num_slots == 0:
            return 1.0
        return self.num_items / (self.num_slots * 32)


def _finalize(
    slots: np.ndarray,
    num_threads: int,
    warp_size: int,
    max_steps: int,
    num_slots: int = None,
) -> WorkAssignment:
    """Assemble a WorkAssignment; ``num_slots`` is computed analytically by
    each factory (an O(n log n) unique pass here would dominate small
    launches) and verified against the unique count in the tests."""
    assert num_slots is not None, (
        "factories must pass num_slots analytically; the np.unique fallback "
        "was removed from the hot path"
    )
    num_warps = (num_threads + warp_size - 1) // warp_size
    return WorkAssignment(
        slots=slots,
        num_threads=int(num_threads),
        num_warps=int(num_warps),
        num_slots=int(num_slots),
        max_steps=int(max_steps),
        num_items=int(slots.size),
    )


@lru_cache(maxsize=4096)
def thread_per_item(num_items: int, warp_size: int = 32) -> WorkAssignment:
    """One thread per item, one step: per-vertex scalar work.

    Item *i* runs on thread *i*; slot = warp id.  Used for loading
    ``dist[u]`` once per active vertex, classifying workloads, etc.

    Memoized: the assignment is a pure function of its scalar arguments
    and :class:`WorkAssignment` is immutable by contract, so repeated
    frontier sizes (every solver re-launches per iteration) share one
    instance instead of rebuilding the slot arrays.
    """
    items = np.arange(num_items, dtype=np.int64)
    slots = items // warp_size
    num_slots = (num_items + warp_size - 1) // warp_size
    return _finalize(
        slots,
        num_items,
        warp_size,
        max_steps=1 if num_items else 0,
        num_slots=num_slots,
    )


def thread_per_vertex_edges(
    edge_counts: np.ndarray, warp_size: int = 32
) -> WorkAssignment:
    """Vertex-centric push: thread *t* loops over vertex *t*'s edges.

    Work items are the concatenated edges of all vertices, in vertex order.
    Edge *j* of vertex *t* is processed at step *j* by the warp
    ``t // warp_size``; the warp stays busy until its highest-degree vertex
    finishes, so lanes of low-degree vertices idle (SIMT inefficiency).
    """
    edge_counts = np.asarray(edge_counts, dtype=np.int64)
    num_threads = int(edge_counts.size)
    if num_threads == 0:
        return _finalize(np.zeros(0, dtype=np.int64), 0, warp_size, 0, num_slots=0)
    steps = segmented_arange(edge_counts)
    vertex_of_item = np.repeat(
        np.arange(num_threads, dtype=np.int64), edge_counts
    )
    warp_of_item = vertex_of_item // warp_size
    max_step = int(edge_counts.max(initial=0))
    slots = warp_of_item * max(max_step, 1) + steps
    # a warp issues as many steps as its largest vertex needs: the SIMT
    # lockstep cost (low-degree lanes idle while the hub lane streams)
    warp_starts = np.arange(0, num_threads, warp_size)
    per_warp_max = np.maximum.reduceat(edge_counts, warp_starts)
    return _finalize(
        slots,
        num_threads,
        warp_size,
        max_steps=max_step,
        num_slots=int(per_warp_max.sum()),
    )


def threads_per_vertex_edges(
    edge_counts: np.ndarray, threads_per_vertex: int, warp_size: int = 32
) -> WorkAssignment:
    """ADWL child kernel: ``threads_per_vertex`` lanes cooperate per vertex.

    Edge *j* of a vertex goes to lane ``j % tpv`` at step ``j // tpv``;
    consecutive edges land on consecutive lanes, so a weight-sorted
    contiguous adjacency segment coalesces perfectly.  ``tpv`` must be a
    multiple of the warp size (the paper uses 32 and 256).
    """
    if threads_per_vertex % warp_size:
        raise ValueError("threads_per_vertex must be a multiple of warp_size")
    edge_counts = np.asarray(edge_counts, dtype=np.int64)
    num_vertices = int(edge_counts.size)
    if num_vertices == 0:
        return _finalize(np.zeros(0, dtype=np.int64), 0, warp_size, 0, num_slots=0)
    tpv = threads_per_vertex
    warps_per_vertex = tpv // warp_size
    j = segmented_arange(edge_counts)
    vertex_of_item = np.repeat(np.arange(num_vertices, dtype=np.int64), edge_counts)
    lane = j % tpv
    step = j // tpv
    warp = vertex_of_item * warps_per_vertex + lane // warp_size
    max_step = int(((edge_counts + tpv - 1) // tpv).max(initial=0))
    slots = warp * max(max_step, 1) + step
    # consecutive 32-edge blocks of one vertex occupy one (warp, step) pair,
    # so a vertex with c edges issues ceil(c / 32) warp instructions
    num_slots = int(((edge_counts + warp_size - 1) // warp_size).sum())
    return _finalize(
        slots,
        num_vertices * tpv,
        warp_size,
        max_steps=max_step,
        num_slots=num_slots,
    )


@lru_cache(maxsize=4096)
def grid_stride(
    num_items: int, num_threads: int, warp_size: int = 32
) -> WorkAssignment:
    """Flat grid-stride loop: item *i* → thread ``i % T``, step ``i // T``.

    The balanced static mapping of the fused phase-2&3 kernel; adjacent
    items sit on adjacent lanes so contiguous-array accesses coalesce.
    Memoized like :func:`thread_per_item` (scalar-keyed, immutable result).
    """
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if num_items == 0:
        return _finalize(
            np.zeros(0, dtype=np.int64), num_threads, warp_size, 0, num_slots=0
        )
    items = np.arange(num_items, dtype=np.int64)
    step, thread = np.divmod(items, num_threads)
    warp = thread // warp_size
    max_step = int((num_items + num_threads - 1) // num_threads)
    slots = warp * max_step + step
    warps = (num_threads + warp_size - 1) // warp_size
    full_steps, remainder = divmod(num_items, num_threads)
    num_slots = full_steps * warps + (remainder + warp_size - 1) // warp_size
    return _finalize(
        slots, num_threads, warp_size, max_steps=max_step, num_slots=num_slots
    )
