"""Profiling counters: the simulator's equivalent of ``nvprof`` metrics.

The paper's Fig. 10 reports four nvprof metrics; this module accumulates the
same quantities (plus the supporting raw events) per kernel and per device:

* ``inst_executed_global_loads``  — warp-level global load instructions;
* ``inst_executed_global_stores`` — warp-level global store instructions;
* ``inst_executed_atomics``       — warp-level atom/atom-CAS instructions;
* ``global_hit_rate``             — hits / accesses in the unified L1/tex.

A *warp-level instruction* is one instruction issued by one warp, regardless
of how many of its 32 lanes are active — exactly nvprof's definition, and
the reason divergence and poor load balance inflate these counts on real
hardware just as they do here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["KernelCounters", "DeviceCounters"]


@dataclass
class KernelCounters:
    """Event counts for one kernel launch (or one phase of a fused kernel)."""

    # --- warp-level instruction counts (nvprof names) -------------------
    inst_executed_global_loads: int = 0
    inst_executed_global_stores: int = 0
    inst_executed_atomics: int = 0
    #: warp-level non-memory (ALU/control) instructions, including the extra
    #: issues caused by branch-divergence serialization
    inst_executed_other: int = 0
    #: warp-level ballot instructions (``__ballot_sync`` rounds of the
    #: W-MS multisplit model — one per split bit per warp slot)
    inst_executed_ballots: int = 0

    # --- memory system ---------------------------------------------------
    #: 32-byte global memory transactions issued for loads
    global_load_transactions: int = 0
    #: 32-byte global memory transactions issued for stores
    global_store_transactions: int = 0
    #: transactions issued for atomics (each atomic RMW is one transaction
    #: per distinct sector touched)
    atomic_transactions: int = 0
    #: L1/tex lookups and hits (loads only, matching nvprof global_hit_rate)
    l1_accesses: int = 0
    l1_hits: int = 0
    #: shared-memory transactions (multisplit rank/scatter staging plus the
    #: per-warp histogram combine); on-chip traffic — occupies the LSU issue
    #: pipe but never DRAM, so it is *not* part of ``total_transactions``
    shared_transactions: int = 0

    # --- multisplit events -----------------------------------------------
    #: counted ``k.multisplit`` invocations (histogram passes)
    multisplit_ops: int = 0
    #: sum of bucket fan-outs over those invocations
    multisplit_buckets: int = 0

    # --- MLMQ work-stealing events ---------------------------------------
    #: queue-descriptor handoffs between SM-mapped queue groups (each is
    #: one CAS on the victim queue's head pointer)
    mlmq_steals: int = 0
    #: worklist slots that changed owner across those handoffs
    mlmq_stolen_slots: int = 0

    # --- SIMT efficiency ---------------------------------------------------
    #: warp instructions whose active mask was divergent (<32 active lanes)
    divergent_branches: int = 0
    branch_instructions: int = 0
    #: sum of active lanes over all issued warp instructions
    active_lanes: int = 0
    #: 32 × (number of issued warp instructions) — the lane-slot capacity
    lane_slots: int = 0

    # --- launch & synchronization events --------------------------------
    kernel_launches: int = 0
    child_kernel_launches: int = 0
    barriers: int = 0
    async_rounds: int = 0
    threads_launched: int = 0

    # --- atomic contention -----------------------------------------------
    #: atomics that conflicted (same address within one warp-step group) and
    #: therefore serialized
    atomic_conflicts: int = 0

    # ------------------------------------------------------------------
    @property
    def global_hit_rate(self) -> float:
        """L1/tex hit rate for global loads, in percent (nvprof convention)."""
        if self.l1_accesses == 0:
            return 0.0
        return 100.0 * self.l1_hits / self.l1_accesses

    @property
    def total_warp_instructions(self) -> int:
        """All warp-level instructions issued."""
        return (
            self.inst_executed_global_loads
            + self.inst_executed_global_stores
            + self.inst_executed_atomics
            + self.inst_executed_other
            + self.inst_executed_ballots
        )

    @property
    def total_transactions(self) -> int:
        """All 32-byte memory transactions."""
        return (
            self.global_load_transactions
            + self.global_store_transactions
            + self.atomic_transactions
        )

    @property
    def simt_efficiency(self) -> float:
        """Average fraction of active lanes per issued instruction (0..1)."""
        if self.lane_slots == 0:
            return 1.0
        return self.active_lanes / self.lane_slots

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate ``other`` into this counter set in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "KernelCounters":
        """An independent copy of the current counts."""
        out = KernelCounters()
        out.merge(self)
        return out

    def as_dict(self) -> dict[str, float]:
        """Stable plain-dict snapshot, including the derived metrics.

        The snapshot is the serialization boundary for benchmark records
        (:mod:`repro.bench.trajectory`): keys appear in declaration order,
        raw event counts are plain ``int`` (kernels may accumulate NumPy
        scalars, which ``json`` refuses to encode) and derived metrics are
        plain ``float`` — so two identical runs always serialize to the
        same JSON, byte for byte.

        The four multisplit-era keys (``inst_executed_ballots``,
        ``shared_transactions``, ``multisplit_ops``,
        ``multisplit_buckets``) appear only when the run issued at least
        one multisplit, and the two MLMQ stealing keys (``mlmq_steals``,
        ``mlmq_stolen_slots``) only when at least one steal happened.
        Key presence is a deterministic function of the counted events,
        and a run with the ``REPRO_NO_MULTISPLIT`` fallback active
        therefore serializes byte-identically to a pre-multisplit build —
        the property the baseline-compatibility gate pins.
        """
        multisplit_keys = (
            "inst_executed_ballots",
            "shared_transactions",
            "multisplit_ops",
            "multisplit_buckets",
        )
        steal_keys = ("mlmq_steals", "mlmq_stolen_slots")
        d: dict[str, float] = {
            f.name: int(getattr(self, f.name))
            for f in fields(self)
            if (self.multisplit_ops or f.name not in multisplit_keys)
            and (self.mlmq_steals or f.name not in steal_keys)
        }
        d["global_hit_rate"] = float(self.global_hit_rate)
        d["simt_efficiency"] = float(self.simt_efficiency)
        return d


@dataclass
class DeviceCounters:
    """Whole-run accumulation plus per-kernel history."""

    totals: KernelCounters = field(default_factory=KernelCounters)
    per_kernel: list[tuple[str, KernelCounters]] = field(default_factory=list)

    def record(self, name: str, counters: KernelCounters) -> None:
        """Append one kernel's counters and fold them into the totals."""
        self.per_kernel.append((name, counters))
        self.totals.merge(counters)

    def kernels_named(self, prefix: str) -> list[KernelCounters]:
        """All recorded kernels whose name starts with ``prefix``."""
        return [c for name, c in self.per_kernel if name.startswith(prefix)]

    def as_dict(self, *, per_kernel: bool = False) -> dict:
        """Stable JSON-safe snapshot of the whole-run counters.

        ``per_kernel=True`` additionally serializes the launch-by-launch
        history (large; benchmark records keep only the totals).
        """
        d: dict = {"totals": self.totals.as_dict()}
        if per_kernel:
            d["per_kernel"] = [
                [name, c.as_dict()] for name, c in self.per_kernel
            ]
        return d
