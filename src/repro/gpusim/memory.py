"""Device memory: arrays with simulated addresses and a coalescing model.

Global memory on a CUDA GPU is accessed in 32-byte *sectors*: when the 32
lanes of a warp execute one load instruction, the addresses they touch are
coalesced and one transaction is issued per distinct sector.  The simulator
reproduces that rule exactly — every memory operation supplies, for each
element access, the SIMT *slot* (warp × step) it belongs to, and the number
of transactions is the number of distinct ``(slot, sector)`` pairs.

:class:`DeviceArray` wraps a NumPy array with a base address from a simple
bump allocator so different arrays never alias and element addresses are
realistic (contiguous, 2^k-aligned).  The wrapped array *is* the storage:
kernels really read and write it, which keeps the simulation honest — the
algorithms compute true shortest paths, not a re-enactment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceArray", "BumpAllocator", "coalesce"]

#: alignment of every allocation (one cache line)
_ALIGN = 128


class BumpAllocator:
    """Monotonic address-space allocator for simulated device memory."""

    def __init__(self, base: int = 1 << 20) -> None:
        self._next = base

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` (rounded up to line alignment); return base."""
        base = self._next
        padded = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        self._next += padded + _ALIGN  # guard line between allocations
        return base


@dataclass
class DeviceArray:
    """A NumPy array living at a simulated device address."""

    data: np.ndarray
    base_address: int
    name: str = "buf"

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.data.itemsize

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.data.size

    @property
    def nbytes(self) -> int:
        """Total bytes."""
        return self.data.nbytes

    def addresses(self, idx: np.ndarray) -> np.ndarray:
        """Simulated byte address of each element in ``idx``."""
        return self.base_address + np.asarray(idx, dtype=np.int64) * self.itemsize

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceArray({self.name!r}, shape={self.data.shape}, "
            f"dtype={self.data.dtype}, @0x{self.base_address:x})"
        )


def coalesce(
    addresses: np.ndarray,
    slots: np.ndarray,
    sector_bytes: int,
    line_bytes: int,
) -> tuple[int, int, np.ndarray]:
    """Apply the warp coalescing rule to a batch of element accesses.

    Parameters
    ----------
    addresses:
        byte address of every element access.
    slots:
        SIMT slot id (warp × lockstep step) of every access; accesses in the
        same slot are issued by one warp instruction and coalesce.
    sector_bytes / line_bytes:
        transaction granularity and cache-line size.

    Returns
    -------
    (instructions, transactions, sector_ids):
        ``instructions`` — number of distinct slots (warp-level instruction
        count); ``transactions`` — number of distinct ``(slot, sector)``
        pairs; ``sector_ids`` — the 32 B sector id of each transaction,
        ordered by slot (the stream fed to the cache model).  Volta-class
        L1/tex caches are *sectored*: a miss fills only the missing 32 B
        sector of its 128 B line, so reuse is tracked at sector granularity
        — touching one sector earns no credit for its line neighbours.
    """
    if addresses.size == 0:
        return 0, 0, np.zeros(0, dtype=np.int64)
    sectors = addresses // sector_bytes
    # unique (slot, sector) pairs; slots and sectors are non-negative so a
    # composite key is safe with int64 as long as sectors < 2**40.
    # A plain sort beats np.unique's hash path on these sizes and gives us
    # the slot-major transaction order the cache model needs anyway.
    key = slots.astype(np.int64) * (1 << 40) + sectors
    # contiguous scans arrive slot-major already; one comparison pass is
    # cheaper than re-sorting the (dominant) sorted streams.  Stability is
    # irrelevant — equal keys are collapsed to uniques below — so the
    # default introsort applies (timsort is far slower on random int64).
    if key.size > 1 and not bool((key[1:] >= key[:-1]).all()):
        key.sort()
    first = np.empty(key.size, dtype=bool)
    first[0] = True
    first[1:] = key[1:] != key[:-1]
    uniq = key[first]
    transactions = uniq.size
    uniq_slots = uniq >> 40
    instructions = int(np.count_nonzero(uniq_slots[1:] != uniq_slots[:-1]) + 1)
    sector_ids = uniq & ((1 << 40) - 1)
    return int(instructions), int(transactions), sector_ids
