"""Unified L1/tex cache model (reuse-distance / footprint approximation).

Simulating an exact per-access LRU in Python would serialize millions of
events, so the simulator uses the classic *footprint* approximation, which
is deterministic, vectorized and accurate enough to rank locality effects:

1. the per-launch transaction stream is reduced to 32 B *sector* ids in
   issue order (Volta-class L1/tex caches are sectored: a miss fills only
   the touched sector, so reuse is tracked per sector, not per line);
2. each access's *reuse gap* ``T`` (number of transactions since the previous
   access to the same sector) is computed with one stable sort;
3. the expected number of *distinct* sectors inside a gap of length ``T``
   over a working set of ``U`` sectors is ``d(T) = U * (1 - (1 - 1/U)**T)``
   (the standard uniform-footprint estimate);
4. the access hits iff ``d(T) <= capacity_sectors``; first-touch accesses
   are cold misses.

Because the L1s of all SMs consume interleaved thinnings of the same stream,
per-SM capacity with a 1/num_sms-thinned stream is equivalent to aggregate
capacity on the full stream, so ``capacity_sectors`` is the device-wide L1
sector count.  The model makes PRO's effect *measurable*: degree reordering
concentrates the hot distance entries into few sectors and shortens reuse
gaps, which raises the modeled hit rate exactly as nvprof shows in the
paper's Fig. 10(d).
"""

from __future__ import annotations

import numpy as np

from .spec import GPUSpec

__all__ = ["CacheModel", "reuse_gaps"]


def reuse_gaps(lines: np.ndarray) -> np.ndarray:
    """Gap (in transactions) since the previous access to the same line.

    Returns -1 for first-touch accesses.  One stable argsort, no Python
    loops.
    """
    n = lines.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    sorted_pos = order.astype(np.int64)
    gaps_sorted = np.full(n, -1, dtype=np.int64)
    same_as_prev = np.zeros(n, dtype=bool)
    same_as_prev[1:] = sorted_lines[1:] == sorted_lines[:-1]
    gaps_sorted[same_as_prev] = (
        sorted_pos[same_as_prev] - sorted_pos[np.flatnonzero(same_as_prev) - 1]
    )
    gaps = np.empty(n, dtype=np.int64)
    gaps[order] = gaps_sorted
    return gaps


class CacheModel:
    """Footprint-approximation L1/tex cache for one simulated device.

    State is reset per kernel launch (CUDA L1s are not persistent across
    kernel boundaries), which matches nvprof's per-kernel hit-rate
    accounting.
    """

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        self.capacity_sectors = max(1, spec.total_l1_bytes // spec.sector_bytes)

    def hits(self, lines: np.ndarray) -> np.ndarray:
        """Boolean hit mask for a transaction stream of sector ids."""
        n = lines.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        gaps = reuse_gaps(lines)
        touched = np.unique(lines).size
        mask = gaps >= 0
        out = np.zeros(n, dtype=bool)
        if not mask.any():
            return out
        # expected distinct lines within each gap, uniform-footprint model
        u = float(touched)
        t = gaps[mask].astype(np.float64)
        if u <= 1.0:
            distinct = np.ones_like(t)
        else:
            # u * (1 - (1 - 1/u)**t), computed in log space for stability
            distinct = u * -np.expm1(t * np.log1p(-1.0 / u))
        out[mask] = distinct <= self.capacity_sectors
        return out

    def hit_count(self, lines: np.ndarray) -> int:
        """Number of hits in the given transaction stream."""
        return int(self.hits(lines).sum())
