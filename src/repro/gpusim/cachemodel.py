"""Unified L1/tex cache model (reuse-distance / footprint approximation).

Simulating an exact per-access LRU in Python would serialize millions of
events, so the simulator uses the classic *footprint* approximation, which
is deterministic, vectorized and accurate enough to rank locality effects:

1. the per-launch transaction stream is reduced to 32 B *sector* ids in
   issue order (Volta-class L1/tex caches are sectored: a miss fills only
   the touched sector, so reuse is tracked per sector, not per line);
2. each access's *reuse gap* ``T`` (number of transactions since the previous
   access to the same sector) is computed with one stable sort;
3. the expected number of *distinct* sectors inside a gap of length ``T``
   over a working set of ``U`` sectors is ``d(T) = U * (1 - (1 - 1/U)**T)``
   (the standard uniform-footprint estimate);
4. the access hits iff ``d(T) <= capacity_sectors``; first-touch accesses
   are cold misses.

Because the L1s of all SMs consume interleaved thinnings of the same stream,
per-SM capacity with a 1/num_sms-thinned stream is equivalent to aggregate
capacity on the full stream, so ``capacity_sectors`` is the device-wide L1
sector count.  The model makes PRO's effect *measurable*: degree reordering
concentrates the hot distance entries into few sectors and shortens reuse
gaps, which raises the modeled hit rate exactly as nvprof shows in the
paper's Fig. 10(d).
"""

from __future__ import annotations

import numpy as np

from .spec import GPUSpec
from ..util.scan import stable_sort_with_order

__all__ = ["CacheModel", "CacheStream", "reuse_gaps"]


def reuse_gaps(lines: np.ndarray) -> np.ndarray:
    """Gap (in transactions) since the previous access to the same line.

    Returns -1 for first-touch accesses.  One stable argsort, no Python
    loops.
    """
    n = lines.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    sorted_pos = order.astype(np.int64)
    gaps_sorted = np.full(n, -1, dtype=np.int64)
    same_as_prev = np.zeros(n, dtype=bool)
    same_as_prev[1:] = sorted_lines[1:] == sorted_lines[:-1]
    gaps_sorted[same_as_prev] = (
        sorted_pos[same_as_prev] - sorted_pos[np.flatnonzero(same_as_prev) - 1]
    )
    gaps = np.empty(n, dtype=np.int64)
    gaps[order] = gaps_sorted
    return gaps


class CacheModel:
    """Footprint-approximation L1/tex cache for one simulated device.

    State is reset per kernel launch (CUDA L1s are not persistent across
    kernel boundaries), which matches nvprof's per-kernel hit-rate
    accounting.
    """

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        self.capacity_sectors = max(1, spec.total_l1_bytes // spec.sector_bytes)

    def hits(self, lines: np.ndarray) -> np.ndarray:
        """Boolean hit mask for a transaction stream of sector ids."""
        n = lines.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        gaps = reuse_gaps(lines)
        touched = np.unique(lines).size
        mask = gaps >= 0
        out = np.zeros(n, dtype=bool)
        if not mask.any():
            return out
        # expected distinct lines within each gap, uniform-footprint model
        u = float(touched)
        t = gaps[mask].astype(np.float64)
        if u <= 1.0:
            distinct = np.ones_like(t)
        else:
            # u * (1 - (1 - 1/u)**t), computed in log space for stability
            distinct = u * -np.expm1(t * np.log1p(-1.0 / u))
        out[mask] = distinct <= self.capacity_sectors
        return out

    def hit_count(self, lines: np.ndarray) -> int:
        """Number of hits in the given transaction stream."""
        return int(self.hits(lines).sum())


class CacheStream:
    """Incremental launch-at-a-time evaluation of the rolling device stream.

    The device models L2 persistence across launches by prepending the tail
    (last ``capacity_sectors`` transactions) of the preceding launches to
    each launch's load stream before resolving hits.  Evaluating that
    naively costs a full sort + unique over ``tail + lines`` per launch,
    which makes *short* kernels pay O(capacity) host time regardless of how
    little they load — the dominant host cost of bucket-at-a-time engines
    that issue thousands of small launches.

    This class keeps, instead of the tail array, the *last absolute
    position* of every sector still inside the tail window.  Per launch it
    sorts only the launch's own lines and resolves cross-launch reuse with
    one ``searchsorted`` against the known-sector table, reproducing
    ``CacheModel.hits(tail + lines)[len(tail):]`` **bit for bit**:

    * a gap within the launch equals the :func:`reuse_gaps` value;
    * a first-touch whose sector last occurred at absolute position ``p``
      with ``p >= tail_start`` gets gap ``pos - p`` (identical to its
      position difference inside the concatenated stream);
    * the working-set size ``U`` equals the distinct-sector count of the
      concatenated stream: sectors alive in the tail plus launch sectors
      not already among them;
    * the hit predicate then applies the very same footprint formula on
      the very same integers, so the floats match exactly.

    Equivalence is locked in by ``tests/test_perf_device_fastpaths.py``,
    which replays random streams through both implementations.
    """

    def __init__(self, model: CacheModel) -> None:
        self.model = model
        self.capacity = model.capacity_sectors
        #: sorted distinct sector ids seen and still potentially reusable
        self._sectors = np.zeros(0, dtype=np.int64)
        #: absolute stream position of each sector's most recent access
        self._last = np.zeros(0, dtype=np.int64)
        #: total transactions observed so far (absolute stream length)
        self._total = 0

    def hit_count(self, lines: np.ndarray) -> int:
        """Resolve one launch's load stream; returns its hit count."""
        n = int(lines.size)
        if n == 0:
            return 0
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        start = self._total
        tail_start = start - min(self.capacity, start)

        # one stable sort of *this launch only*: within-launch gaps plus the
        # first/last occurrence of every distinct sector.  The dominant
        # streams (full contiguous-array scans) arrive already sorted —
        # slot-major coalescing emits ascending sectors — so detect that
        # with one comparison pass and skip the sort and both reorders;
        # duplicates are then adjacent, making every within-launch gap 1.
        if n > 1 and bool((lines[1:] >= lines[:-1]).all()):
            same1 = lines[1:] == lines[:-1]
            same = np.zeros(n, dtype=bool)
            same[1:] = same1
            gaps = np.full(n, -1, dtype=np.int64)
            gaps[1:][same1] = 1
            group_starts = np.flatnonzero(~same)
            uniq = lines[group_starts]
            first_pos = group_starts
            last_pos = np.concatenate([group_starts[1:], [n]]) - 1
        else:
            sorted_lines, sorted_pos = stable_sort_with_order(lines)
            order = sorted_pos
            same = np.zeros(n, dtype=bool)
            same1 = sorted_lines[1:] == sorted_lines[:-1]
            same[1:] = same1
            gaps_sorted = np.full(n, -1, dtype=np.int64)
            gaps_sorted[1:][same1] = (
                sorted_pos[1:][same1] - sorted_pos[:-1][same1]
            )
            gaps = np.empty(n, dtype=np.int64)
            gaps[order] = gaps_sorted
            group_starts = np.flatnonzero(~same)
            uniq = sorted_lines[group_starts]
            first_pos = sorted_pos[group_starts]
            group_ends = np.concatenate([group_starts[1:], [n]]) - 1
            last_pos = sorted_pos[group_ends]

        # cross-launch reuse: look the launch's sectors up in the table
        size = self._sectors.size
        if size:
            idx = np.searchsorted(self._sectors, uniq)
            safe = np.minimum(idx, size - 1)
            found = (idx < size) & (self._sectors[safe] == uniq)
            prev = np.where(found, self._last[safe], np.int64(-1))
        else:
            safe = np.zeros(uniq.size, dtype=np.int64)
            found = np.zeros(uniq.size, dtype=bool)
            prev = np.full(uniq.size, -1, dtype=np.int64)
        warm = found & (prev >= tail_start)

        # U of the virtual (tail + lines) stream; counted before the update
        in_tail = int(np.count_nonzero(self._last >= tail_start))
        u_total = in_tail + int(uniq.size) - int(np.count_nonzero(warm))

        # splice the cross-launch gaps into the first-touch positions
        warm_pos = first_pos[warm]
        gaps[warm_pos] = (start + warm_pos) - prev[warm]

        # the footprint predicate.  ``d(t) = u * (1 - (1 - 1/u)**t)`` is
        # strictly increasing in ``t``, so instead of evaluating the
        # transcendentals per line, binary-search the largest integer gap
        # still within capacity — each probe evaluates the *same* ufunc
        # expression CacheModel.hits runs elementwise (numpy's float64
        # expm1/log1p have a single scalar inner loop, so a 1-element probe
        # is bit-identical to the corresponding element of a bulk call) —
        # and count gaps by integer comparison
        hits = 0
        max_gap = int(gaps.max())
        if max_gap >= 0:
            u = float(u_total)
            if u_total <= self.capacity:
                # d(t) = u * -expm1(t * log1p(-1/u)) never exceeds u in IEEE
                # (expm1 saturates at -1), so a working set within capacity
                # makes every reuse a hit — no transcendentals needed
                hits = int(np.count_nonzero(gaps >= 0))
            else:
                log_base = np.log1p(-1.0 / u)
                def within(t: int) -> bool:
                    d = u * -np.expm1(
                        np.array([float(t)]) * log_base
                    )
                    return bool(d[0] <= self.capacity)
                if within(max_gap):
                    hits = int(np.count_nonzero(gaps >= 0))
                elif not within(1):
                    hits = 0
                else:
                    lo, hi = 1, max_gap  # within(lo), not within(hi)
                    while hi - lo > 1:
                        mid = (lo + hi) // 2
                        if within(mid):
                            lo = mid
                        else:
                            hi = mid
                    hits = int(np.count_nonzero((gaps >= 0) & (gaps <= lo)))

        # fold the launch into the table
        self._last[safe[found]] = start + last_pos[found]
        fresh = ~found
        nf = int(np.count_nonzero(fresh))
        if nf:
            # one hand-rolled merge for both columns (np.insert twice would
            # recompute the same destination mask)
            ins = np.searchsorted(self._sectors, uniq[fresh])
            dest = ins + np.arange(nf, dtype=np.int64)
            new_sectors = np.empty(size + nf, dtype=np.int64)
            new_last = np.empty(size + nf, dtype=np.int64)
            old_mask = np.ones(size + nf, dtype=bool)
            old_mask[dest] = False
            new_sectors[dest] = uniq[fresh]
            new_last[dest] = start + last_pos[fresh]
            new_sectors[old_mask] = self._sectors
            new_last[old_mask] = self._last
            self._sectors = new_sectors
            self._last = new_last
        self._total = start + n
        # entries that fell out of the tail window can never be reused;
        # compact occasionally so the table stays O(capacity)
        if self._sectors.size > max(4 * self.capacity, 1024):
            cut = self._total - min(self.capacity, self._total)
            keep = self._last >= cut
            self._sectors = self._sectors[keep]
            self._last = self._last[keep]
        return hits
