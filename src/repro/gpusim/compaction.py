"""Stream compaction: the scan-and-scatter idiom of GPU worklists.

Frontier construction on real GPUs is a three-step dance: evaluate a
predicate per item, block-wide exclusive prefix-sum to find each
survivor's output slot, and a coalesced scatter of the survivors.  This
module packages that idiom with full accounting (two ALU passes for the
scan, the divergent predicate branch, and the contiguous survivor stores)
so every algorithm that builds a queue charges the same realistic cost.
"""

from __future__ import annotations

import numpy as np

from .device import KernelContext, subset_assignment
from .kernels import WorkAssignment
from .memory import DeviceArray

__all__ = ["compact", "compact_multisplit"]


def compact(
    ctx: KernelContext,
    out: DeviceArray,
    keep: np.ndarray,
    values: np.ndarray,
    assignment: WorkAssignment,
    *,
    offset: int = 0,
) -> np.ndarray:
    """Write ``values[keep]`` densely into ``out`` starting at ``offset``.

    Returns the survivors (host view).  Charges: 2 ALU passes per slot
    (the block/device exclusive scan), one predicate branch, and the
    coalesced stores of the survivors.  ``out`` must be large enough for
    ``offset + survivors`` entries.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.size != assignment.num_items:
        raise ValueError("predicate must match the assignment's items")
    ctx.alu(assignment, ops=2)  # exclusive prefix-sum of the predicate
    if keep.size:
        ctx.branch(assignment, keep)
    survivors = np.asarray(values)[keep]
    if survivors.size:
        if offset + survivors.size > out.size:
            raise ValueError("output buffer too small for compaction")
        sub = subset_assignment(assignment, keep)
        ctx.scatter(
            out,
            offset + np.arange(survivors.size, dtype=np.int64),
            survivors,
            sub,
        )
    return survivors


def compact_multisplit(
    ctx: KernelContext,
    out: DeviceArray,
    keep: np.ndarray,
    values: np.ndarray,
    assignment: WorkAssignment,
    *,
    offset: int = 0,
) -> np.ndarray:
    """:func:`compact` with warp-ballot survivor ranking.

    Result-identical to :func:`compact` (the 2-way multisplit's stable
    within-bucket order is exactly the survivors' original order), but the
    per-slot cost drops from two scan ALUs plus a divergent predicate
    branch to a single ballot round — the lanes rank themselves through
    the ballot mask and shared staging instead of a block-wide prefix
    sum.  The coalesced survivor stores are unchanged.
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.size != assignment.num_items:
        raise ValueError("predicate must match the assignment's items")
    order, offsets = ctx.multisplit(
        np.where(keep, 0, 1).astype(np.int64), 2, assignment
    )
    survivors = np.asarray(values)[order[: offsets[1]]]
    if survivors.size:
        if offset + survivors.size > out.size:
            raise ValueError("output buffer too small for compaction")
        sub = subset_assignment(assignment, keep)
        ctx.scatter(
            out,
            offset + np.arange(survivors.size, dtype=np.int64),
            survivors,
            sub,
        )
    return survivors
