"""Warp-ballot multisplit: the cost model behind ``k.multisplit``.

GPU Multisplit (Ashkiani et al., arXiv 1701.01189) splits keys drawn
from a *small* range into buckets without a general sort: each warp
takes ``ceil(log2 B)`` ballot rounds to build per-lane bucket masks,
ranks its lanes through a shared-memory histogram, and writes a stable
within-bucket order.  For the bucket-id fan-outs of Δ-stepping
(``B`` = 2 near/far splits, ``B`` = 3 ADWL workload classes) this
replaces the full-sort / per-element-ALU cost the engines previously
paid with one ballot per split bit.

The **W-MS cost model** implemented by
:meth:`repro.gpusim.device.KernelContext.multisplit` charges, for an
assignment with ``S`` warp slots, ``W`` active warps and ``B`` buckets:

* ``S * ceil(log2 max(B, 2))`` warp-level **ballot instructions**
  (``inst_executed_ballots`` — one ``__ballot_sync`` per split bit per
  slot); these are issue-pipe instructions and count toward
  ``total_warp_instructions``;
* ``2 * S + W * B`` **shared-memory transactions**
  (``shared_transactions`` — per-slot rank read + scatter write through
  the warp's shared staging tile, plus the ``B``-counter histogram
  combine per warp); shared traffic occupies the LSU issue pipe but
  never reaches DRAM, so it feeds the issue-time bound and *not* the
  global-memory transaction totals;
* ``ceil(log2 max(B, 2)) + 1`` critical-path instructions per dependent
  step (the ballot chain plus the rank resolve).

The semantic result is exact and deterministic: the stable grouping of
:func:`repro.util.scan.multisplit_order`.

``REPRO_NO_MULTISPLIT`` (any non-empty value) disables every engine's
multisplit placement path at call time, restoring the legacy
sort/scan/branch code — and its counter stream — byte-identically; CI
pins that equivalence against the pre-multisplit baseline.
"""

from __future__ import annotations

import os

__all__ = ["BALLOT_WIDTH_BITS", "multisplit_enabled", "ballot_rounds"]

#: lanes answered by one ballot instruction (the warp width)
BALLOT_WIDTH_BITS = 32


def multisplit_enabled() -> bool:
    """Whether engines should take their multisplit placement paths.

    Read per call (not cached) so tests can flip the knob between runs
    in one process; the environment probe is a few tens of nanoseconds,
    invisible next to a kernel launch.
    """
    return not os.environ.get("REPRO_NO_MULTISPLIT")


def ballot_rounds(num_buckets: int) -> int:
    """Ballot instructions per warp slot: one per split bit.

    ``ceil(log2(max(num_buckets, 2)))`` — even a 2-way split costs one
    ballot; each doubling of the bucket fan-out costs one more.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    return max(1, (max(num_buckets, 2) - 1).bit_length())
