"""GPU hardware specifications for the execution-model simulator.

The simulator is *transaction-level*: it executes kernels for real (as
vectorized NumPy) while accounting warp-level instructions, memory
transactions, cache hits and synchronization events, then converts those
counts into simulated time with a two-resource (compute vs memory) model.
The conversion constants live here, taken from the public datasheets of the
two boards the paper evaluates (§5.1.1, §5.4.2):

* **Tesla V100** — 80 SMs, 5120 CUDA cores, 900 GB/s HBM2, 128 KB unified
  L1/tex per SM, ~1.53 GHz boost;
* **Tesla T4**   — 40 SMs, 2560 CUDA cores, 320 GB/s GDDR6, 64 KB unified
  L1/tex per SM, ~1.59 GHz boost.

The paper's own scaling analysis (§5.4.2) — "taking parallelism resources
and memory bandwidth into consideration … V100 should be two to three times
better than T4" — is exactly what these numbers imply, so Fig. 12's shape
follows from the specs rather than from tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "V100", "T4", "A100"]


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of one simulated GPU platform."""

    name: str
    #: number of streaming multiprocessors
    num_sms: int
    #: CUDA cores (FP32 lanes) in total; per-SM cores = cuda_cores / num_sms
    cuda_cores: int
    #: SIMT width — threads per warp
    warp_size: int
    #: boost clock in GHz
    clock_ghz: float
    #: peak global-memory bandwidth in GB/s
    mem_bandwidth_gbps: float
    #: unified L1/tex capacity per SM in KiB
    l1_kb_per_sm: int
    #: cache line size in bytes (transactions are 32 B sectors of this line)
    cache_line_bytes: int
    #: memory transaction granularity in bytes (one L1 sector)
    sector_bytes: int
    #: warp instructions each SM can issue per cycle
    issue_per_sm_per_cycle: float
    #: host-side kernel launch latency (seconds)
    kernel_launch_s: float
    #: device-side (dynamic parallelism) child-kernel launch cost (seconds).
    #: This is an amortized *throughput* cost, not a latency: with Hyper-Q,
    #: 32 hardware queues keep child launches in flight concurrently, so a
    #: burst of launches pipelines (the KLAP observation) — each one only
    #: occupies the launch path for a few tens of nanoseconds
    child_launch_s: float
    #: device-wide synchronization barrier latency (seconds)
    barrier_s: float
    #: scheduling overhead of one asynchronous work-list round (seconds);
    #: orders of magnitude below a barrier — the BASYN saving of §4.3
    async_round_s: float
    #: maximum resident warps per SM (occupancy ceiling)
    max_warps_per_sm: int
    #: average extra latency of an atomic RMW vs a plain store, in cycles,
    #: charged per *conflicting* atomic within a transaction group
    atomic_serialization_cycles: float

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def clock_hz(self) -> float:
        """Boost clock in Hz."""
        return self.clock_ghz * 1e9

    @property
    def mem_bandwidth_bytes_per_s(self) -> float:
        """Peak bandwidth in bytes/second."""
        return self.mem_bandwidth_gbps * 1e9

    @property
    def total_l1_bytes(self) -> int:
        """Aggregate L1/tex capacity across all SMs."""
        return self.l1_kb_per_sm * 1024 * self.num_sms

    @property
    def total_l1_lines(self) -> int:
        """Aggregate L1 capacity in cache lines."""
        return self.total_l1_bytes // self.cache_line_bytes

    @property
    def issue_slots_per_s(self) -> float:
        """Aggregate warp-instruction issue rate of the whole device."""
        return self.num_sms * self.issue_per_sm_per_cycle * self.clock_hz

    @property
    def resident_warps(self) -> int:
        """Device-wide resident-warp ceiling (parallelism limit)."""
        return self.num_sms * self.max_warps_per_sm

    def scaled(self, factor: float, name: str | None = None) -> "GPUSpec":
        """A hypothetical platform with compute+bandwidth scaled by ``factor``.

        Used by the multi-GPU extension and the what-if examples.
        """
        return replace(
            self,
            name=name or f"{self.name}x{factor:g}",
            num_sms=max(1, int(round(self.num_sms * factor))),
            cuda_cores=max(1, int(round(self.cuda_cores * factor))),
            mem_bandwidth_gbps=self.mem_bandwidth_gbps * factor,
        )

    def scaled_for_workload(self, workload_scale: float) -> "GPUSpec":
        """Spec for running a workload scaled down by ``workload_scale``.

        The benchmark datasets are 1/64–1/256-scale surrogates of the
        paper's graphs.  Running them against full-size constants would
        distort the regime twice over: a 10 MB aggregate L1 swallows a
        3 MB graph whole (hiding every locality effect), and microsecond
        launch latencies dwarf microsecond kernel bodies (hiding every
        work/balance effect).  The standard scaled-simulation remedy is to
        shrink the *capacity and latency* constants by the same factor as
        the workload while keeping throughputs (SMs, bandwidth, clock)
        untouched — kernel bodies already scale naturally with the input.

        Concretely: L1 capacity, kernel-launch, child-launch, barrier and
        async-round latencies are multiplied by ``workload_scale``.
        """
        if not 0 < workload_scale <= 1:
            raise ValueError("workload_scale must be in (0, 1]")
        if workload_scale == 1.0:
            return self
        return replace(
            self,
            name=f"{self.name}@{workload_scale:g}",
            l1_kb_per_sm=max(1, int(round(self.l1_kb_per_sm * workload_scale))),
            kernel_launch_s=self.kernel_launch_s * workload_scale,
            child_launch_s=self.child_launch_s * workload_scale,
            barrier_s=self.barrier_s * workload_scale,
            async_round_s=self.async_round_s * workload_scale,
        )


#: NVIDIA Tesla V100 (paper's primary platform, §5.1.1).
V100 = GPUSpec(
    name="V100",
    num_sms=80,
    cuda_cores=5120,
    warp_size=32,
    clock_ghz=1.53,
    mem_bandwidth_gbps=900.0,
    l1_kb_per_sm=128,
    cache_line_bytes=128,
    sector_bytes=32,
    issue_per_sm_per_cycle=4.0,
    kernel_launch_s=5e-6,
    child_launch_s=2.5e-8,
    barrier_s=3e-6,
    async_round_s=1.5e-7,
    max_warps_per_sm=64,
    atomic_serialization_cycles=20.0,
)

#: NVIDIA Tesla T4 (the scalability platform of §5.4.2).
T4 = GPUSpec(
    name="T4",
    num_sms=40,
    cuda_cores=2560,
    warp_size=32,
    clock_ghz=1.59,
    mem_bandwidth_gbps=320.0,
    l1_kb_per_sm=64,
    cache_line_bytes=128,
    sector_bytes=32,
    issue_per_sm_per_cycle=4.0,
    kernel_launch_s=5e-6,
    child_launch_s=2.5e-8,
    barrier_s=3e-6,
    async_round_s=1.5e-7,
    max_warps_per_sm=32,
    atomic_serialization_cycles=20.0,
)

#: NVIDIA A100 (not in the paper; provided for the what-if example).
A100 = GPUSpec(
    name="A100",
    num_sms=108,
    cuda_cores=6912,
    warp_size=32,
    clock_ghz=1.41,
    mem_bandwidth_gbps=1555.0,
    l1_kb_per_sm=192,
    cache_line_bytes=128,
    sector_bytes=32,
    issue_per_sm_per_cycle=4.0,
    kernel_launch_s=5e-6,
    child_launch_s=2.5e-8,
    barrier_s=3e-6,
    async_round_s=1.5e-7,
    max_warps_per_sm=64,
    atomic_serialization_cycles=20.0,
)
