"""``repro-lint``: AST rules for the repository's kernel-authoring idiom.

The simulator only stays honest if every device-memory access flows through
the counted :class:`~repro.gpusim.device.KernelContext` choke point — a raw
``arr.data[...]`` poke computes the right numbers while silently corrupting
the cost model.  These rules enforce that discipline statically, the way
PriorityGraph's compiler enforces ordered-algorithm structure:

``AN101`` device-storage mutation outside a kernel
    ``arr.data[...] = ...`` (or ``np.add.at(arr.data, ...)``) outside a
    ``with dev.launch(...)`` block.  Host staging must use
    ``device.host_store`` / ``device.host_copy`` so observers see it.
``AN102`` un-counted device access inside a kernel
    any ``.data`` touch lexically inside a ``with dev.launch(...)`` block —
    reads and writes there must go through ``KernelContext`` (``gather`` /
    ``scatter`` / ``atomic_min`` / ``atomic_add``) to be counted.
``AN103`` scalar device read-back in a hot loop
    ``float(arr.data[i])`` / ``int(...)`` / ``bool(...)`` — including an
    element read buried in a larger expression — or ``(...).item()``
    inside a ``for``/``while`` loop: a per-iteration D2H round-trip that
    real GPU code hoists.
``AN201`` mutable default argument
    ``def f(x=[])`` and friends (generic hygiene).
``AN202`` missing ``__all__``
    every *library* module — a file inside a package (a directory with an
    ``__init__.py``) — declares its public surface.  Top-level scripts
    (``benchmarks/``, ``examples/``) have no import surface and are
    exempt, as is ``__main__.py``.

Suppressions: a line containing ``repro-lint: disable=AN1xx`` silences that
rule on that line; ``gpusim/device.py`` (which *implements* the storage) is
exempt from AN101/AN102.

Run via ``python -m repro.cli lint [paths...]`` or :func:`lint_paths`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["LintFinding", "lint_source", "lint_paths", "DEFAULT_EXEMPT"]

#: files allowed to touch DeviceArray.data directly (they implement it)
DEFAULT_EXEMPT = ("gpusim/device.py",)

_DISABLE_RE = re.compile(r"repro-lint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _is_data_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "data"


def _contains_data_attr(node: ast.AST) -> bool:
    return any(_is_data_attr(n) for n in ast.walk(node))


#: reductions that legitimately collapse a device slice to one transfer
_AGGREGATIONS = frozenset({"min", "max", "sum", "any", "all", "mean", "prod"})


def _contains_data_subscript(node: ast.AST, in_agg: bool = False) -> bool:
    """True when ``node`` contains an element read like ``arr.data[i]``.

    Subscripts feeding an aggregation (``dist.data[mask].min()``) are
    exempt: that is one reduction transfer per iteration — the idiom a
    real implementation expresses as a device reduction — not the
    per-element round-trip AN103 exists to catch.
    """
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _AGGREGATIONS
    ):
        in_agg = True
    if isinstance(node, ast.Subscript) and _is_data_attr(node.value) and not in_agg:
        return True
    return any(
        _contains_data_subscript(c, in_agg) for c in ast.iter_child_nodes(node)
    )


def _is_launch_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "launch"
    )


_MUTABLE_DEFAULTS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, exempt_device_rules: bool) -> None:
        self.path = path
        self.exempt_device_rules = exempt_device_rules
        self.findings: list[LintFinding] = []
        self._launch_depth = 0
        self._loop_depth = 0
        self._flagged: set[int] = set()  # .data nodes already reported

    # -- plumbing ------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, getattr(node, "lineno", 0), rule, message)
        )

    # -- context tracking ----------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        in_launch = any(_is_launch_call(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if in_launch:
            self._launch_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if in_launch:
            self._launch_depth -= 1

    def _visit_loop(self, node) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_While = _visit_loop

    # -- AN101 / AN102: DeviceArray storage discipline -------------------
    def _check_data_write(self, target: ast.AST, node: ast.AST) -> None:
        if self.exempt_device_rules:
            return
        attr = (
            target.value
            if isinstance(target, ast.Subscript) and _is_data_attr(target.value)
            else (target if _is_data_attr(target) else None)
        )
        if attr is None:
            return
        self._flagged.add(id(attr))
        if self._launch_depth:
            self._emit(
                node, "AN102",
                "device storage written directly inside a kernel; use "
                "KernelContext.scatter/atomic_* so the store is counted",
            )
        else:
            self._emit(
                node, "AN101",
                "device storage mutated outside a launch; use "
                "device.host_store/host_copy for host staging writes",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_data_write(t, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_data_write(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # np.add.at(arr.data, ...) style in-place mutation
        if (
            not self.exempt_device_rules
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "at"
            and node.args
            and _contains_data_attr(node.args[0])
        ):
            self._check_data_write(node.args[0], node)
        # AN103: float/int/bool(... arr.data[i] ...) in a loop — covers
        # direct element reads and element reads buried in an expression
        # (``float(dist.data[u] + w)``); applies to for AND while bodies
        # (self._loop_depth counts both)
        if (
            self._loop_depth
            and isinstance(node.func, ast.Name)
            and node.func.id in ("float", "int", "bool")
            and node.args
            and _contains_data_subscript(node.args[0])
        ):
            self._emit(
                node, "AN103",
                f"scalar device read-back ({node.func.id}(arr.data[i])) "
                "inside a loop; hoist it or keep the value device-resident",
            )
        # AN103: (... .data ...).item() in a loop
        if (
            self._loop_depth
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "item"
            and _contains_data_attr(node.func.value)
        ):
            self._emit(
                node, "AN103",
                "scalar .item() device read-back inside a loop; hoist it "
                "or keep the value device-resident",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.exempt_device_rules
            and self._launch_depth
            and _is_data_attr(node)
            and id(node) not in self._flagged
        ):
            self._emit(
                node, "AN102",
                "device memory accessed via .data inside a kernel; every "
                "access must go through KernelContext (gather/scatter/"
                "atomic_*)",
            )
        self.generic_visit(node)

    # -- AN201: mutable default arguments --------------------------------
    def _check_defaults(self, node) -> None:
        for d in list(node.args.defaults) + list(node.args.kw_defaults):
            if d is None:
                continue
            if isinstance(d, _MUTABLE_DEFAULTS) or (
                isinstance(d, ast.Call)
                and isinstance(d.func, ast.Name)
                and d.func.id in ("list", "dict", "set")
            ):
                self._emit(
                    d, "AN201",
                    f"mutable default argument in {node.name}(); use None "
                    "and create inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", *, require_all: bool = True
) -> list[LintFinding]:
    """Lint one module's source text; returns its findings."""
    name = Path(path).name
    rel = str(path).replace("\\", "/")
    exempt = any(rel.endswith(e) for e in DEFAULT_EXEMPT)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, "AN000",
                            f"syntax error: {exc.msg}")]
    visitor = _Visitor(path, exempt_device_rules=exempt)
    visitor.visit(tree)
    findings = visitor.findings

    # AN202: module declares __all__
    if require_all and name != "__main__.py":
        has_all = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in stmt.targets
            )
            for stmt in tree.body
        )
        if not has_all:
            findings.append(
                LintFinding(path, 1, "AN202",
                            "module does not declare __all__")
            )

    # line-level suppressions
    lines = source.splitlines()
    kept = []
    for f in findings:
        if 1 <= f.line <= len(lines):
            m = _DISABLE_RE.search(lines[f.line - 1])
            if m and f.rule in {c.strip() for c in m.group(1).split(",")}:
                continue
        kept.append(f)
    return kept


def lint_paths(paths: list[str | Path]) -> list[LintFinding]:
    """Lint files / directory trees; returns all findings sorted by location."""
    findings: list[LintFinding] = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(
                lint_source(
                    f.read_text(encoding="utf-8"),
                    str(f),
                    # AN202 is about a module's *import* surface: it applies
                    # inside packages only, not to standalone scripts
                    require_all=(f.parent / "__init__.py").exists(),
                )
            )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
