"""One-call sanitized execution: run an SSSP method under the sanitizer.

Ties the dynamic checker to the method registry so CLIs, tests and CI can
sanitize any engine with one call::

    result, report = sanitized_sssp(graph, source, method="rdbs")
    assert report.ok, report.summary()
"""

from __future__ import annotations

import numpy as np

from .sanitizer import Sanitizer, SanitizerReport, attached

__all__ = ["sanitized_sssp"]


def sanitized_sssp(
    graph,
    source: int,
    method: str = "rdbs",
    *,
    strict: bool = False,
    check_final: bool = True,
    **kwargs,
) -> tuple:
    """Run ``method`` with a freshly attached :class:`Sanitizer`.

    Returns ``(SSSPResult, SanitizerReport)``.  ``check_final=True`` also
    verifies the final distances against the edge-relaxation invariant.
    In ``strict`` mode the first error-severity hazard raises
    :class:`~repro.analysis.sanitizer.SanitizerError` mid-run.
    """
    from ..sssp import sssp  # local import: analysis must not cycle with sssp

    with attached(strict=strict) as san:
        result = sssp(graph, source, method=method, **kwargs)
    if check_final and np.isfinite(result.dist[source]):
        san.check_result(graph, source, result.dist)
    return result, san.report()
