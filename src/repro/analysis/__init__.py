"""Correctness analysis for the simulated GPU: dynamic sanitizer + lint.

Two cooperating halves, both reachable from the CLI:

* :mod:`repro.analysis.sanitizer` — a ``compute-sanitizer``-style dynamic
  race/hazard checker that observes every gather/scatter/atomic a
  :class:`~repro.gpusim.GPUDevice` executes (``python -m repro.cli
  sanitize``);
* :mod:`repro.analysis.lint` — ``repro-lint``, an AST pass enforcing the
  kernel-authoring idiom (every device access through ``KernelContext``)
  plus generic hygiene (``python -m repro.cli lint``);
* :mod:`repro.analysis.static` — the static effect analyzer: kernel IR,
  index-provenance dataflow, per-kernel effect signatures, AN3xx race
  proofs and async-safety verdicts, and the committed
  ``ANALYSIS_manifest.json`` drift gate (``python -m repro.cli analyze``).

The paper's BASYN design (§4.3) *depends* on races being benign — barriers
are dropped and relaxations collide on ``atomicMin`` because distance
updates are monotone.  The sanitizer turns that prose argument into a
mechanical check: atomics may race reads freely, but plain-store races,
non-monotone distance updates and settled-vertex reactivations are flagged.
"""

from .driver import sanitized_sssp
from .lint import DEFAULT_EXEMPT, LintFinding, lint_paths, lint_source
from .sanitizer import (
    Finding,
    Sanitizer,
    SanitizerError,
    SanitizerReport,
    attached,
)
from .static import StaticFinding, analyze_paths

__all__ = [
    "Finding",
    "Sanitizer",
    "SanitizerError",
    "SanitizerReport",
    "attached",
    "sanitized_sssp",
    "LintFinding",
    "lint_source",
    "lint_paths",
    "DEFAULT_EXEMPT",
    "StaticFinding",
    "analyze_paths",
]
