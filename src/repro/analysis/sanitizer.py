"""Dynamic race/hazard checker for the simulated GPU — ``compute-sanitizer``
for :class:`repro.gpusim.GPUDevice`.

Every gather, scatter and atomic in the simulator flows through one choke
point (:class:`~repro.gpusim.device.KernelContext`), so the equivalent of
``compute-sanitizer --tool racecheck/memcheck/initcheck`` can be built as a
device observer: per kernel launch the :class:`Sanitizer` records a compact
access log (array, element indices, SIMT slots, read/write/atomic) and
closes each *synchronization window* — a launch, or a
``device_barrier``-delimited span inside a fused kernel — by checking for:

``write-write-race``
    one address stored by two warp slots (or twice by one store
    instruction) with no intervening barrier.  Races where every store
    carries one identical value (the flag-marking idiom) are *benign* and
    reported as warnings, like racecheck's WARNING severity.
``read-write-race``
    an address both loaded and plainly stored inside one window from
    different slots.  Reads racing *atomics* are deliberately exempt:
    immediate visibility of monotone ``atomicMin`` updates is the paper's
    §4.3 BASYN premise, not a bug.
``atomic-plain-mix``
    an address updated atomically and also plainly stored in one window —
    the atomicity guarantee evaporates.
``out-of-bounds``
    an element index below zero or past the end of the allocation
    (memcheck).  NumPy would silently wrap negative indices; the sanitizer
    does not.
``uninitialized-read``
    a load from a :meth:`~repro.gpusim.device.GPUDevice.empty` allocation
    cell that no store has touched (initcheck).
``multisplit-key-range``
    a warp-ballot multisplit handed a bucket key outside ``[0,
    num_buckets)`` — on hardware the lane would index past its shared
    histogram row and corrupt a neighbouring warp's staging area.  The
    device fails fast right after observers run; this finding records the
    offending lanes before that exception unwinds.

On top of the generic rules sit SSSP-specific invariants:

``non-monotone-dist``
    a cell of a distance array *increased* during a kernel — relaxation
    through ``atomicMin`` must be monotone or the asynchronous execution
    model is unsound.
``settled-reactivated``
    a vertex the engine marked settled (``device.annotate("settled", ...)``)
    re-entered a later bucket's active set (``annotate("bucket", ...)``).
``relaxation-violated`` / ``bad-source``
    final distances failing ``dist[v] <= dist[u] + w`` on some edge, or
    ``dist[source] != 0`` (:meth:`Sanitizer.check_result`).

Usage::

    san = Sanitizer()                    # or Sanitizer(strict=True)
    with attached(san):                  # observe every device created
        r = sssp(graph, source, method="rdbs")
    san.check_result(graph, source, r.dist)
    report = san.report()
    assert not report.errors, report.summary()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..gpusim.device import (
    GPUDevice,
    KernelContext,
    register_global_observer,
    unregister_global_observer,
)
from ..gpusim.kernels import WorkAssignment
from ..gpusim.memory import DeviceArray

__all__ = [
    "Finding",
    "Sanitizer",
    "SanitizerError",
    "SanitizerReport",
    "attached",
]

#: relative tolerance for the monotonicity check (atomicMin serialization is
#: exact, but final-distance cross-checks accumulate float rounding)
_EPS = 1e-9

#: how many offending element indices a finding keeps for its report
_SAMPLE = 8


class SanitizerError(RuntimeError):
    """Raised in strict mode the moment an error-severity hazard appears."""


@dataclass(frozen=True)
class Finding:
    """One detected hazard or invariant violation."""

    #: rule identifier (``write-write-race``, ``out-of-bounds``, ...)
    rule: str
    #: ``"error"`` for definite hazards, ``"warning"`` for benign races
    severity: str
    #: human-readable description with the offending details
    message: str
    #: kernel label the window belonged to (None for final-state checks)
    kernel: str | None = None
    #: device array name involved (None for annotation-level findings)
    array: str | None = None
    #: sample of offending element indices (at most a handful)
    sample: tuple = ()
    #: total number of offending elements the sample was drawn from
    count: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" [{self.kernel}]" if self.kernel else ""
        return f"{self.severity.upper()} {self.rule}{where}: {self.message}"


@dataclass
class SanitizerReport:
    """Structured result of a sanitized run."""

    findings: list[Finding] = field(default_factory=list)
    kernels_checked: int = 0
    accesses_checked: int = 0
    dropped: int = 0

    @property
    def errors(self) -> list[Finding]:
        """Definite hazards (the acceptance-gating subset)."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        """Benign-race notes (same-value marking idioms and the like)."""
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity hazard was found."""
        return not self.errors

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"sanitizer: {self.kernels_checked} windows, "
            f"{self.accesses_checked} accesses checked — "
            f"{len(self.errors)} hazard(s), {len(self.warnings)} warning(s)"
        ]
        for f in self.findings:
            lines.append(f"  {f}")
        if self.dropped:
            lines.append(f"  ... {self.dropped} further finding(s) dropped")
        return "\n".join(lines)


@dataclass
class _ArrayState:
    """Per-DeviceArray tracking state."""

    name: str
    size: int
    #: per-element "has been written" mask; None when fully initialized
    init_mask: np.ndarray | None
    #: monotone distance array (participates in the SSSP invariant checks)
    is_dist: bool


class _WindowLog:
    """Access log of one synchronization window, grouped per array."""

    __slots__ = ("reads", "writes", "atomics")

    def __init__(self) -> None:
        # per array key: list of (idx, slots[, values]) tuples
        self.reads: dict[int, list] = {}
        self.writes: dict[int, list] = {}
        self.atomics: dict[int, list] = {}


def _per_addr_groups(
    addr: np.ndarray, key: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per distinct address: (addresses, access count, distinct-key count).

    The workhorse of the race rules: one ``lexsort`` classifies every
    address's access group by how many accesses it saw and how many
    distinct slots / calls / values were involved.
    """
    order = np.lexsort((key, addr))
    a, k = addr[order], key[order]
    new_addr = np.ones(a.size, dtype=bool)
    new_addr[1:] = a[1:] != a[:-1]
    new_pair = new_addr.copy()
    new_pair[1:] |= k[1:] != k[:-1]
    starts = np.flatnonzero(new_addr)
    counts = np.diff(np.append(starts, a.size))
    nkeys = np.add.reduceat(new_pair.astype(np.int64), starts)
    return a[starts], counts, nkeys


def _flatten(records: list, with_values: bool):
    """Concatenate (call_id, idx, slots[, values]) records into flat arrays."""
    idx = np.concatenate([r[1] for r in records])
    slots = np.concatenate([r[2] for r in records])
    calls = np.concatenate(
        [np.full(r[1].size, r[0], dtype=np.int64) for r in records]
    )
    if not with_values:
        return idx, slots, calls
    values = np.concatenate(
        [np.asarray(r[3], dtype=np.float64).ravel() for r in records]
    )
    return idx, slots, calls, values


class Sanitizer:
    """Observer implementing the dynamic checks (attach via :func:`attached`,
    :meth:`attach`, or pass to ``GPUDevice.observers.append``)."""

    def __init__(
        self,
        *,
        strict: bool = False,
        dist_names: tuple[str, ...] = ("dist",),
        max_findings: int = 200,
    ) -> None:
        self.strict = strict
        self.dist_names = tuple(dist_names)
        self.max_findings = max_findings
        self._report = SanitizerReport()
        self._arrays: dict[int, _ArrayState] = {}
        self._window: _WindowLog | None = None
        self._kernel: str | None = None
        self._call_id = 0
        #: distance arrays under monotonicity watch: id -> (array, baseline)
        self._dist_watch: dict[int, tuple[DeviceArray, np.ndarray]] = {}
        #: per-device settled-vertex masks for the reactivation check
        self._settled: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, device: GPUDevice) -> None:
        """Observe one existing device."""
        if self not in device.observers:
            device.observers.append(self)

    def detach(self, device: GPUDevice) -> None:
        """Stop observing ``device``."""
        if self in device.observers:
            device.observers.remove(self)

    def report(self) -> SanitizerReport:
        """The findings collected so far."""
        return self._report

    # ------------------------------------------------------------------
    # finding plumbing
    # ------------------------------------------------------------------
    def _emit(
        self,
        rule: str,
        severity: str,
        message: str,
        *,
        array: str | None = None,
        sample: np.ndarray | tuple = (),
        count: int = 0,
    ) -> None:
        if len(self._report.findings) >= self.max_findings:
            self._report.dropped += 1
            return
        head = np.asarray(sample).ravel()[:_SAMPLE]
        f = Finding(
            rule=rule,
            severity=severity,
            message=message,
            kernel=self._kernel,
            array=array,
            sample=tuple(int(s) for s in head),
            count=count or int(head.size),
        )
        self._report.findings.append(f)
        if self.strict and severity == "error":
            raise SanitizerError(str(f))

    # ------------------------------------------------------------------
    # device events
    # ------------------------------------------------------------------
    def on_alloc(self, device: GPUDevice, arr: DeviceArray, initialized: bool) -> None:
        is_dist = arr.name in self.dist_names
        self._arrays[id(arr)] = _ArrayState(
            name=arr.name,
            size=arr.size,
            init_mask=None if initialized else np.zeros(arr.size, dtype=bool),
            is_dist=is_dist,
        )
        if is_dist:
            self._dist_watch[id(arr)] = (arr, arr.data.copy())

    def _state(self, arr: DeviceArray) -> _ArrayState:
        st = self._arrays.get(id(arr))
        if st is None:  # allocated before the sanitizer attached
            st = _ArrayState(arr.name, arr.size, None, arr.name in self.dist_names)
            self._arrays[id(arr)] = st
            if st.is_dist:
                self._dist_watch[id(arr)] = (arr, arr.data.copy())
        return st

    def on_host_write(self, device: GPUDevice, arr: DeviceArray, idx, values) -> None:
        st = self._state(arr)
        if st.init_mask is not None:
            st.init_mask[np.asarray(idx, dtype=np.int64)] = True
        if st.is_dist:
            # host staging writes may legally reset distances (e.g. the
            # multi-GPU mirror broadcast); rebase the monotonicity baseline
            watched, _ = self._dist_watch[id(arr)]
            self._dist_watch[id(arr)] = (watched, watched.data.copy())

    def on_kernel_begin(self, device: GPUDevice, ctx: KernelContext) -> None:
        self._window = _WindowLog()
        self._kernel = ctx.name
        for key, (arr, _snap) in list(self._dist_watch.items()):
            self._dist_watch[key] = (arr, arr.data.copy())

    def on_access(
        self,
        ctx: KernelContext,
        op: str,
        arr: DeviceArray,
        idx: np.ndarray,
        values,
        assignment: WorkAssignment,
    ) -> None:
        if idx.size == 0:
            return
        st = self._state(arr)
        self._report.accesses_checked += idx.size
        self._call_id += 1

        # memcheck: out-of-bounds element indices
        oob = (idx < 0) | (idx >= st.size)
        if oob.any():
            bad = idx[oob]
            self._emit(
                "out-of-bounds",
                "error",
                f"{op} of {arr.name}[{int(bad[0])}] outside "
                f"[0, {st.size}) ({int(oob.sum())} access(es))",
                array=st.name,
                sample=bad,
                count=int(oob.sum()),
            )
        ok = ~oob
        in_idx = idx[ok] if oob.any() else idx

        # initcheck: loads from never-written cells of empty() allocations
        if st.init_mask is not None:
            if op == "read":
                unwritten = in_idx[~st.init_mask[in_idx]]
                if unwritten.size:
                    self._emit(
                        "uninitialized-read",
                        "error",
                        f"read of {arr.name} touches {unwritten.size} "
                        "never-written element(s)",
                        array=st.name,
                        sample=np.unique(unwritten),
                        count=int(unwritten.size),
                    )
            else:
                st.init_mask[in_idx] = True

        if self._window is None:  # access outside any launch window
            return
        slots = assignment.slots
        if oob.any():
            slots = slots[ok]
        rec = (self._call_id, in_idx.copy(), np.asarray(slots, dtype=np.int64))
        if op == "read":
            self._window.reads.setdefault(id(arr), []).append(rec)
        elif op == "write":
            vals = np.broadcast_to(
                np.asarray(values, dtype=np.float64), (idx.size,)
            )[ok if oob.any() else slice(None)]
            self._window.writes.setdefault(id(arr), []).append(rec + (vals,))
        else:  # atomic_min / atomic_add
            self._window.atomics.setdefault(id(arr), []).append(rec)

    # ------------------------------------------------------------------
    # window closing
    # ------------------------------------------------------------------
    def on_multisplit(
        self, ctx: KernelContext, keys: np.ndarray, num_buckets: int, a
    ) -> None:
        """Validate multisplit bucket keys (shared-memory memcheck).

        Runs before the device's own fail-fast ``ValueError``, so the
        report keeps the offending lanes even when strict mode is off and
        the caller swallows the exception.
        """
        keys = np.asarray(keys)
        bad = np.flatnonzero((keys < 0) | (keys >= num_buckets))
        if bad.size:
            self._emit(
                "multisplit-key-range",
                "error",
                f"{bad.size} lane(s) carry bucket keys outside "
                f"[0, {num_buckets}) (min {int(keys[bad].min())}, "
                f"max {int(keys[bad].max())})",
                sample=bad,
                count=int(bad.size),
            )

    def on_device_barrier(self, device: GPUDevice, ctx: KernelContext) -> None:
        """A barrier inside a fused kernel closes the current race window."""
        self._close_window()
        self._window = _WindowLog()

    def on_kernel_end(self, device: GPUDevice, ctx: KernelContext) -> None:
        self._close_window()
        self._window = None
        self._check_monotone()
        self._kernel = None

    def _close_window(self) -> None:
        w = self._window
        if w is None:
            return
        self._report.kernels_checked += 1
        keys = set(w.reads) | set(w.writes) | set(w.atomics)
        for key in keys:
            self._analyze_array(
                self._arrays[key].name if key in self._arrays else "buf",
                w.reads.get(key, []),
                w.writes.get(key, []),
                w.atomics.get(key, []),
            )

    def _analyze_array(self, name: str, reads, writes, atomics) -> None:
        w_idx = w_slot = w_call = w_val = None
        if writes:
            w_idx, w_slot, w_call, w_val = _flatten(writes, with_values=True)
            self._check_ww(name, w_idx, w_slot, w_call, w_val)
        if reads and writes:
            r_idx, r_slot, _ = _flatten(reads, with_values=False)
            self._check_rw(name, r_idx, r_slot, w_idx, w_slot, w_val)
        if atomics and writes:
            a_idx, a_slot, _ = _flatten(atomics, with_values=False)
            self._check_atomic_mix(name, a_idx, a_slot, w_idx, w_slot)

    def _check_ww(self, name, idx, slot, call, val) -> None:
        """Two plain stores to one address in one window race unless they
        came from one slot across distinct store instructions (one thread's
        sequential program order)."""
        addrs, counts, nslots = _per_addr_groups(idx, slot)
        _, _, ncalls = _per_addr_groups(idx, call)
        _, _, nvals = _per_addr_groups(idx, val)
        racy = (counts > 1) & ~((nslots == 1) & (ncalls == counts))
        if not racy.any():
            return
        benign = nvals == 1
        for is_benign in (False, True):
            sel = racy & (benign if is_benign else ~benign)
            if not sel.any():
                continue
            bad = addrs[sel]
            self._emit(
                "write-write-race",
                "warning" if is_benign else "error",
                f"{bad.size} address(es) of {name} stored by racing slots"
                + (" (same value — benign marking idiom)" if is_benign else ""),
                array=name,
                sample=bad,
                count=int(bad.size),
            )

    def _check_rw(self, name, r_idx, r_slot, w_idx, w_slot, w_val) -> None:
        """An address both loaded and plainly stored in one window races
        unless every access to it came from one slot (thread-private
        read-modify-write)."""
        shared = np.intersect1d(np.unique(r_idx), np.unique(w_idx))
        if shared.size == 0:
            return
        both = np.isin(r_idx, shared)
        bothw = np.isin(w_idx, shared)
        all_idx = np.concatenate([r_idx[both], w_idx[bothw]])
        all_slot = np.concatenate([r_slot[both], w_slot[bothw]])
        addrs, _, nslots = _per_addr_groups(all_idx, all_slot)
        racy_addrs = addrs[nslots > 1]
        if racy_addrs.size == 0:
            return
        wsel = np.isin(w_idx, racy_addrs)
        vaddrs, _, nvals = _per_addr_groups(w_idx[wsel], w_val[wsel])
        benign_set = vaddrs[nvals == 1]
        for is_benign in (False, True):
            bad = (
                np.intersect1d(racy_addrs, benign_set)
                if is_benign
                else np.setdiff1d(racy_addrs, benign_set)
            )
            if bad.size == 0:
                continue
            self._emit(
                "read-write-race",
                "warning" if is_benign else "error",
                f"{bad.size} address(es) of {name} loaded and stored by "
                "racing slots"
                + (" (single-valued stores — benign)" if is_benign else ""),
                array=name,
                sample=bad,
                count=int(bad.size),
            )

    def _check_atomic_mix(self, name, a_idx, a_slot, w_idx, w_slot) -> None:
        """Atomics and plain stores to one address cannot mix in a window."""
        shared = np.intersect1d(np.unique(a_idx), np.unique(w_idx))
        if shared.size == 0:
            return
        sel_a = np.isin(a_idx, shared)
        sel_w = np.isin(w_idx, shared)
        all_idx = np.concatenate([a_idx[sel_a], w_idx[sel_w]])
        all_slot = np.concatenate([a_slot[sel_a], w_slot[sel_w]])
        addrs, _, nslots = _per_addr_groups(all_idx, all_slot)
        bad = addrs[nslots > 1]
        if bad.size:
            self._emit(
                "atomic-plain-mix",
                "error",
                f"{bad.size} address(es) of {name} updated both atomically "
                "and with plain stores in one window",
                array=name,
                sample=bad,
                count=int(bad.size),
            )

    # ------------------------------------------------------------------
    # SSSP invariants
    # ------------------------------------------------------------------
    def _check_monotone(self) -> None:
        for key, (arr, snap) in list(self._dist_watch.items()):
            data = arr.data
            with np.errstate(invalid="ignore"):
                grew = data > snap * (1 + _EPS) + _EPS
            if grew.any():
                bad = np.flatnonzero(grew)
                self._emit(
                    "non-monotone-dist",
                    "error",
                    f"{bad.size} cell(s) of {arr.name} increased during the "
                    f"kernel (e.g. [{int(bad[0])}]: {snap[bad[0]]:g} -> "
                    f"{data[bad[0]]:g})",
                    array=arr.name,
                    sample=bad,
                    count=int(bad.size),
                )
            self._dist_watch[key] = (arr, data.copy())

    def on_annotate(self, device: GPUDevice, tag: str, payload: dict) -> None:
        if tag == "bucket":
            active = np.asarray(payload.get("active", ()), dtype=np.int64)
            mask = self._settled.get(id(device))
            if mask is not None and active.size:
                valid = active[active < mask.size]
                re_act = valid[mask[valid]]
                if re_act.size:
                    self._emit(
                        "settled-reactivated",
                        "error",
                        f"bucket {payload.get('index')} reactivates "
                        f"{re_act.size} settled vertex(es)",
                        sample=re_act,
                        count=int(re_act.size),
                    )
        elif tag == "settled":
            vertices = np.asarray(payload.get("vertices", ()), dtype=np.int64)
            if vertices.size == 0:
                return
            mask = self._settled.get(id(device))
            need = int(vertices.max()) + 1
            if mask is None:
                mask = np.zeros(need, dtype=bool)
            elif mask.size < need:
                mask = np.concatenate(
                    [mask, np.zeros(need - mask.size, dtype=bool)]
                )
            mask[vertices] = True
            self._settled[id(device)] = mask

    def check_result(self, graph, source: int, dist: np.ndarray) -> list[Finding]:
        """Final-state verification: every edge relaxed, source at zero.

        Returns the findings it added (also folded into :meth:`report`).
        """
        before = len(self._report.findings) + self._report.dropped
        self._kernel = None
        dist = np.asarray(dist, dtype=np.float64)
        if dist[source] != 0.0:
            self._emit(
                "bad-source",
                "error",
                f"dist[source={source}] = {dist[source]!r}, expected 0",
                sample=[source],
                count=1,
            )
        u = graph.edge_sources()
        v = graph.adj
        w = graph.weights
        finite = np.isfinite(dist[u])
        with np.errstate(invalid="ignore"):
            slack = dist[v] - (dist[u] + w)
        viol = finite & (slack > _EPS * np.maximum(1.0, np.abs(dist[u]) + w))
        if viol.any():
            bad = np.flatnonzero(viol)
            e = int(bad[0])
            self._emit(
                "relaxation-violated",
                "error",
                f"{bad.size} edge(s) not relaxed, e.g. "
                f"dist[{int(v[e])}]={dist[v[e]]:g} > "
                f"dist[{int(u[e])}]={dist[u[e]]:g} + w={w[e]:g}",
                sample=v[bad],
                count=int(bad.size),
            )
        return self._report.findings[before:]


@contextmanager
def attached(sanitizer: Sanitizer | None = None, **kwargs) -> Iterator[Sanitizer]:
    """Attach a sanitizer to *every* device created inside the block.

    Algorithms construct their :class:`GPUDevice` internally, so the
    sanitizer registers as a global observer for the duration::

        with attached(strict=True) as san:
            sssp(graph, source, method="rdbs")
    """
    san = sanitizer if sanitizer is not None else Sanitizer(**kwargs)
    register_global_observer(san)
    try:
        yield san
    finally:
        unregister_global_observer(san)
