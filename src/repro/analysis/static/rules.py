"""AN3xx rules: static race proofs and the async-safety audit.

The AN1xx/AN2xx series (``repro.analysis.lint``) are surface lints; the
AN3xx series reasons about the kernel IR after effect inference:

=======  ========  ======================================================
code     severity  meaning
=======  ========  ======================================================
AN301    error     provably racy scatter: gathered index, varied values,
                   no atomic — two work items can legitimately collide
AN302    error     unverifiable scatter (unknown index provenance) with
                   no ``repro-static: assume-disjoint`` justification
AN303    error/    plain (non-atomic) store to a distance array — breaks
         warning   the monotone-commutative argument (Eq. 1–2); *error*
                   when the kernel runs asynchronous rounds, *warning*
                   (requires-barrier) otherwise
AN304    error     atomic and plain writes to one array inside a single
                   barrier-free window — the mix the dynamic sanitizer
                   flags as ``atomic-plain-mix``, caught statically
AN305    error     two distinct varied-value plain-store sites hitting
                   one array inside a single barrier-free window
AN306    warning   ``atomic_add`` on a distance array — commutative but
                   not monotone; verify against Eq. 1 before relying on
                   async execution
=======  ========  ======================================================

Justifications silence AN302 only: a *provably* racy scatter (AN301)
stays an error no matter the annotation — the fix is an atomic, not a
comment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .builder import JUSTIFICATION, Corpus
from .effects import (
    DEFAULT_DIST_NAMES,
    EffectSignature,
    ExpandedOp,
    classify_scatter,
    effect_signature,
    expand_kernel,
    _is_dist_array,
)
from .ir import Fragment

__all__ = ["StaticFinding", "analyze_corpus", "check_kernel"]


@dataclass(frozen=True)
class StaticFinding:
    """One static-analysis finding, sortable by (path, line, code)."""

    path: str
    line: int
    code: str
    severity: str  # "error" | "warning"
    message: str
    kernel: str

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return (
            f"{self.path}:{self.line}: {self.code} [{self.severity}] "
            f"{self.message} (kernel {self.kernel})"
        )


def _site(e: ExpandedOp) -> str:
    where = f"{e.op.array_name}[{e.op.index}]"
    if e.via:
        where += f" via {e.via}"
    return where


def check_kernel(
    frag: Fragment,
    corpus: Corpus,
    dist_names=DEFAULT_DIST_NAMES,
) -> tuple[EffectSignature, list[StaticFinding]]:
    """Effect signature + AN3xx findings for one kernel fragment."""
    expanded = expand_kernel(frag, corpus)
    sig = effect_signature(frag, expanded, dist_names)
    findings: list[StaticFinding] = []

    def add(code: str, severity: str, e: ExpandedOp, message: str) -> None:
        findings.append(
            StaticFinding(e.path, e.line, code, severity, message, frag.key)
        )

    mem = [e for e in expanded if e.op.kind in ("scatter", "atomic_min", "atomic_add")]

    # per-site rules -----------------------------------------------------
    for e in mem:
        op = e.op
        if op.kind == "scatter":
            cls = classify_scatter(op)
            if cls == "racy":
                add(
                    "AN301",
                    "error",
                    e,
                    f"provably racy scatter: {_site(e)} indexes through "
                    f"gathered values with varied data; use atomic_min/"
                    f"atomic_add or prove the index disjoint",
                )
            elif cls == "unknown" and not op.justified:
                add(
                    "AN302",
                    "error",
                    e,
                    f"cannot prove scatter disjoint: {_site(e)} has "
                    f"'{op.provenance}' index provenance; annotate the line "
                    f"with '{JUSTIFICATION}' after auditing, or restructure "
                    f"the index",
                )
            if _is_dist_array(op.array_name, dist_names):
                if sig.async_rounds > 0:
                    add(
                        "AN303",
                        "error",
                        e,
                        f"plain store to distance array {_site(e)} inside an "
                        f"asynchronous kernel; distance updates must go "
                        f"through atomic_min to stay monotone",
                    )
                else:
                    add(
                        "AN303",
                        "warning",
                        e,
                        f"plain store to distance array {_site(e)}; kernel is "
                        f"synchronous today but requires a barrier before "
                        f"any async use",
                    )
        elif op.kind == "atomic_add" and _is_dist_array(op.array_name, dist_names):
            add(
                "AN306",
                "warning",
                e,
                f"atomic_add on distance array {_site(e)} is commutative but "
                f"not monotone; async rounds may observe increased distances",
            )

    # window rules -------------------------------------------------------
    reach = frag.cfg.barrier_free_reach(frag.ops)

    def same_window(a: ExpandedOp, b: ExpandedOp) -> bool:
        return (
            a.top == b.top
            or b.top in reach[a.top]
            or a.top in reach[b.top]
        )

    by_array: dict[str, list[ExpandedOp]] = {}
    for e in mem:
        if e.op.array_name:
            by_array.setdefault(e.op.array_name, []).append(e)

    seen_304: set[tuple] = set()
    seen_305: set[tuple] = set()
    for name, sites in by_array.items():
        atomics = [e for e in sites if e.op.kind in ("atomic_min", "atomic_add")]
        plains = [e for e in sites if e.op.kind == "scatter"]
        for p in plains:
            for a in atomics:
                if not same_window(p, a):
                    continue
                key = (name, p.line, a.line)
                if key in seen_304:
                    continue
                seen_304.add(key)
                add(
                    "AN304",
                    "error",
                    p,
                    f"array '{name}' receives both a plain scatter (line "
                    f"{p.line}) and an atomic ({a.op.kind}, line {a.line}) "
                    f"inside one barrier-free window; split the phases with "
                    f"k.device_barrier()",
                )
        varied = [
            p for p in plains if classify_scatter(p.op) not in ("uniform",)
        ]
        for i, p in enumerate(varied):
            for q in varied[i + 1:]:
                if p.line == q.line or not same_window(p, q):
                    continue
                key = (name, min(p.line, q.line), max(p.line, q.line))
                if key in seen_305:
                    continue
                seen_305.add(key)
                add(
                    "AN305",
                    "error",
                    p,
                    f"two plain-store sites hit array '{name}' inside one "
                    f"barrier-free window (lines {p.line} and {q.line}); "
                    f"insert k.device_barrier() between the phases or merge "
                    f"the stores",
                )

    return sig, findings


def analyze_corpus(
    corpus: Corpus,
    dist_names=DEFAULT_DIST_NAMES,
) -> tuple[dict[str, EffectSignature], list[StaticFinding]]:
    """Analyze every kernel; returns ``{key: signature}`` and findings.

    Duplicate launch labels inside one file are disambiguated with a
    ``#N`` suffix so no kernel is silently dropped from the manifest.
    """
    signatures: dict[str, EffectSignature] = {}
    findings: list[StaticFinding] = []
    for frag in corpus.kernels:
        sig, f = check_kernel(frag, corpus, dist_names)
        key = sig.key
        n = 2
        while key in signatures:
            key = f"{sig.key}#{n}"
            n += 1
        sig.key = key
        signatures[key] = sig
        findings.extend(f)
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return signatures, findings
