"""Index-provenance dataflow: the abstract domain of the static analyzer.

The race question for a plain ``scatter`` is entirely a question about
its *index expression*: can two work items carry the same address?  The
engines build scatter indices from a small set of idioms, each with a
provable aliasing story, so a tiny abstract interpretation over
assignments answers it at authoring time:

``constant``
    a literal / scalar — one address (one writer in this DSL's idiom).
``affine``
    ``np.arange(n)`` and offset translations of it — injective in the
    work-item id, the canonical thread-id-affine index.
``unique``
    results of ``sorted_unique_ints`` / ``np.unique`` / ``np.flatnonzero``
    (and boolean-mask restrictions of any injective array) — provably
    duplicate-free, though not id-affine.
``gathered``
    values loaded from device memory (``k.gather`` results, adjacency
    targets) — two threads may legitimately hold the same vertex id, so
    a plain scatter through them is exactly the race ``atomic_min``
    exists to absorb.
``param:<name>``
    a device-function formal — resolved against the caller's argument
    provenance when the function is inlined into a kernel.
``unknown``
    everything else.

Boolean masks (comparisons, ``np.isfinite``, ``~mask``) are tracked as a
side domain because ``x[mask]`` preserves duplicate-freedom while
``x[perm]`` does not.
"""

from __future__ import annotations

import ast

__all__ = [
    "CONST",
    "AFFINE",
    "UNIQUE",
    "GATHERED",
    "UNKNOWN",
    "INJECTIVE",
    "Env",
    "param_tag",
    "is_param",
    "param_name",
    "expr_text",
    "canonical_array",
    "eval_provenance",
    "value_class",
    "note_assignment",
]

CONST = "constant"
AFFINE = "affine"
UNIQUE = "unique"
GATHERED = "gathered"
UNKNOWN = "unknown"

#: provenance tags under which a scatter is provably duplicate-free
INJECTIVE = frozenset({CONST, AFFINE, UNIQUE})

#: producers whose results are provably duplicate-free
_UNIQUE_FNS = frozenset({"sorted_unique_ints", "unique", "flatnonzero",
                         "nonzero", "argsort", "argpartition", "where"})
#: producers of boolean masks
_MASK_FNS = frozenset({"isfinite", "isnan", "isinf", "zeros", "ones"})
#: wrappers that preserve the argument's provenance
_TRANSPARENT_FNS = frozenset({"asarray", "ascontiguousarray", "array",
                              "atleast_1d", "abs", "minimum", "maximum"})
#: uniform-value producers (every element identical)
_UNIFORM_FNS = frozenset({"full", "zeros", "ones", "full_like",
                          "zeros_like", "ones_like"})


def param_tag(name: str) -> str:
    """The provenance tag of an unresolved formal parameter."""
    return f"param:{name}"


def is_param(tag: str) -> bool:
    """True for ``param:<name>`` tags."""
    return tag.startswith("param:")


def param_name(tag: str) -> str:
    """The formal name inside a ``param:<name>`` tag."""
    return tag.partition(":")[2]


class Env:
    """Abstract state: variable name → provenance, plus mask/uniform sets."""

    def __init__(self) -> None:
        self.prov: dict[str, str] = {}
        #: names currently bound to boolean masks
        self.masks: set[str] = set()
        #: names currently bound to uniform-valued arrays (np.full & co.)
        self.uniform: set[str] = set()

    def copy(self) -> "Env":
        out = Env()
        out.prov = dict(self.prov)
        out.masks = set(self.masks)
        out.uniform = set(self.uniform)
        return out

    def bind_params(self, names) -> None:
        """Bind formal parameters to ``param:<name>`` provenance."""
        for n in names:
            self.prov[n] = param_tag(n)


# ----------------------------------------------------------------------
# expression helpers
# ----------------------------------------------------------------------

def expr_text(node: ast.AST) -> str:
    """Compact source text of an expression (``ast.unparse``)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        return "<expr>"


def canonical_array(node: ast.AST) -> str:
    """Canonical device-array name: the last dotted segment of the expr.

    ``dgraph.adj`` → ``adj``; ``self.flags`` → ``flags``;
    ``dev_dist[g]`` → ``dev_dist``.  Variable-based naming is stable
    across runs, which is what the manifest gate needs.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return expr_text(node)


def _callee_name(node: ast.Call) -> str:
    f = node.func
    if isinstance(f, ast.Attribute):
        return f.attr
    if isinstance(f, ast.Name):
        return f.id
    return ""


def _is_scalar_const(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float, bool)
    )


def is_mask_expr(node: ast.AST, env: Env) -> bool:
    """True when ``node`` is (conservatively) a boolean mask expression."""
    if isinstance(node, ast.Compare):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.Invert, ast.Not)):
        return is_mask_expr(node.operand, env) or True
    if isinstance(node, ast.BoolOp):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)
    ):
        return is_mask_expr(node.left, env) and is_mask_expr(node.right, env)
    if isinstance(node, ast.Name):
        return node.id in env.masks
    if isinstance(node, ast.Call):
        return _callee_name(node) in _MASK_FNS and _callee_name(node) not in (
            "zeros", "ones"
        )
    if isinstance(node, ast.Subscript):
        # mask[idx] stays boolean (e.g. ``~in_near[fresh]`` inner part)
        return is_mask_expr(node.value, env)
    if isinstance(node, ast.Attribute):
        # ``arr.data`` of a boolean device array — unknowable; be strict
        return False
    return False


def eval_provenance(node: ast.AST, env: Env) -> str:
    """Abstract-evaluate an index expression to a provenance tag."""
    if _is_scalar_const(node):
        return CONST
    if isinstance(node, ast.Name):
        return env.prov.get(node.id, UNKNOWN)
    if isinstance(node, ast.Call):
        name = _callee_name(node)
        if name == "arange":
            return AFFINE
        if name in _UNIQUE_FNS:
            return UNIQUE
        if name in _TRANSPARENT_FNS and node.args:
            return eval_provenance(node.args[0], env)
        if name == "astype" and isinstance(node.func, ast.Attribute):
            return eval_provenance(node.func.value, env)
        if name == "gather":
            return GATHERED
        return UNKNOWN
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = eval_provenance(node.left, env)
        right = eval_provenance(node.right, env)
        # offset + arange: a scalar translation keeps injectivity (the
        # compaction idiom ``out[offset + arange(k)]``); adding two
        # non-constant arrays does not
        if left == CONST and right == CONST:
            return CONST
        if left == AFFINE and (right == CONST or _is_scalar_offset(node.right)):
            return AFFINE
        if right == AFFINE and (left == CONST or _is_scalar_offset(node.left)):
            return AFFINE
        return UNKNOWN
    if isinstance(node, ast.Subscript):
        base = eval_provenance(node.value, env)
        sl = node.slice
        if isinstance(sl, ast.Slice):
            # a contiguous slice preserves duplicate-freedom
            return UNIQUE if base in INJECTIVE else base
        if is_mask_expr(sl, env):
            # boolean restriction preserves duplicate-freedom (an affine
            # index stops being id-affine but stays duplicate-free)
            if base in INJECTIVE:
                return UNIQUE
            return base
        # fancy integer indexing may duplicate elements
        return UNKNOWN if base in INJECTIVE else base
    if isinstance(node, ast.Attribute):
        return UNKNOWN
    if isinstance(node, ast.Starred):
        return eval_provenance(node.value, env)
    return UNKNOWN


def _is_scalar_offset(node: ast.AST) -> bool:
    """Heuristic: bare names and ``len(...)``/``int(...)`` results used as
    additive offsets are scalars in the corpus idiom
    (``out[offset + np.arange(k)]``)."""
    if isinstance(node, ast.Name):
        return True
    if isinstance(node, ast.Call):
        return _callee_name(node) in ("len", "int")
    return False


def value_class(node: ast.AST, env: Env) -> str:
    """Classify a scatter's value expression: uniform / varied / unknown.

    ``uniform`` means every stored element provably carries one value
    (``np.full`` / ``np.zeros`` / a scalar) — the flag-marking idiom the
    dynamic sanitizer downgrades to a benign warning.
    """
    if _is_scalar_const(node):
        return "uniform"
    if isinstance(node, ast.Call):
        name = _callee_name(node)
        if name in _UNIFORM_FNS:
            return "uniform"
        if name in _TRANSPARENT_FNS and node.args:
            return value_class(node.args[0], env)
        if name == "astype" and isinstance(node.func, ast.Attribute):
            return value_class(node.func.value, env)
        return "unknown"
    if isinstance(node, ast.Name):
        if node.id in env.uniform:
            return "uniform"
        if node.id in env.prov:
            return "varied"
        return "unknown"
    if isinstance(node, ast.Subscript):
        # a masked/sliced view of a uniform array stays uniform
        return value_class(node.value, env)
    return "varied"


def note_assignment(target: ast.AST, value: ast.AST, env: Env) -> None:
    """Update the environment for one ``target = value`` binding."""
    names: list[str] = []
    if isinstance(target, ast.Name):
        names = [target.id]
    elif isinstance(target, (ast.Tuple, ast.List)):
        # tuple unpack: results of one call — conservatively unknown,
        # unless the RHS is a matching tuple literal
        if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
            target.elts
        ):
            for t, v in zip(target.elts, value.elts):
                note_assignment(t, v, env)
            return
        for t in target.elts:
            if isinstance(t, ast.Name):
                env.prov[t.id] = UNKNOWN
                env.masks.discard(t.id)
                env.uniform.discard(t.id)
        return
    else:
        return
    name = names[0]
    env.prov[name] = eval_provenance(value, env)
    if is_mask_expr(value, env):
        env.masks.add(name)
    else:
        env.masks.discard(name)
    if value_class(value, env) == "uniform":
        env.uniform.add(name)
    else:
        env.uniform.discard(name)
