"""``repro.analysis.static`` — authoring-time kernel effect inference.

The static counterpart of :mod:`repro.analysis.sanitizer`: where the
sanitizer observes one concrete run, this package parses every
``device.launch`` block into a kernel IR (:mod:`.ir`), infers index
provenance by abstract interpretation (:mod:`.dataflow`), folds the ops
into per-kernel effect signatures with device-function inlining
(:mod:`.effects`), and checks the AN3xx race/async-safety rules
(:mod:`.rules`).  :mod:`.manifest` pins the signatures into a committed
``ANALYSIS_manifest.json`` that CI gates on, mirroring ``bench check``.

High-level entry point::

    from repro.analysis.static import analyze_paths
    signatures, findings = analyze_paths(["src/repro"])
"""

from __future__ import annotations

from .builder import JUSTIFICATION, Corpus, build_corpus
from .effects import (
    DEFAULT_DIST_NAMES,
    EffectSignature,
    classify_scatter,
    effect_signature,
    expand_kernel,
)
from .ir import CFG, Block, Fragment, KernelOp
from .manifest import (
    SCHEMA_VERSION,
    build_manifest,
    diff_manifest,
    load_manifest,
    signature_payload,
    write_manifest,
)
from .rules import StaticFinding, analyze_corpus, check_kernel

__all__ = [
    "JUSTIFICATION",
    "Corpus",
    "build_corpus",
    "DEFAULT_DIST_NAMES",
    "EffectSignature",
    "classify_scatter",
    "effect_signature",
    "expand_kernel",
    "CFG",
    "Block",
    "Fragment",
    "KernelOp",
    "SCHEMA_VERSION",
    "build_manifest",
    "diff_manifest",
    "load_manifest",
    "signature_payload",
    "write_manifest",
    "StaticFinding",
    "analyze_corpus",
    "check_kernel",
    "analyze_paths",
]


def analyze_paths(paths, dist_names=DEFAULT_DIST_NAMES):
    """Build the corpus for ``paths`` and analyze every kernel.

    Returns ``(signatures, findings)`` where ``signatures`` maps the
    stable kernel key (``path::label``) to its
    :class:`~.effects.EffectSignature` and ``findings`` is the sorted
    list of :class:`~.rules.StaticFinding`.
    """
    corpus = build_corpus(paths)
    return analyze_corpus(corpus, dist_names)
