"""ANALYSIS_manifest.json: the committed effect-signature baseline.

Mirrors the ``bench check`` drift gate: the manifest pins every kernel's
inferred effect signature (arrays touched, op kinds, index provenance,
scatter classifications, async verdict); CI recomputes the signatures
and fails when they differ from the committed file.  An engine change
that alters a kernel's atomic discipline therefore fails the gate until
the author refreshes the manifest — making the diff reviewable.

Signatures deliberately exclude line numbers so that unrelated edits to
a file do not invalidate the baseline; only *effect-visible* changes do.
"""

from __future__ import annotations

import json
from pathlib import Path

from .effects import EffectSignature

__all__ = [
    "SCHEMA_VERSION",
    "signature_payload",
    "build_manifest",
    "load_manifest",
    "write_manifest",
    "diff_manifest",
]

SCHEMA_VERSION = 1


def signature_payload(sig: EffectSignature) -> dict:
    """The JSON-stable subset of one signature (no line numbers)."""
    return {
        "label": sig.label,
        "path": sig.path,
        "owner": sig.owner,
        "ops": {k: sig.ops[k] for k in sorted(sig.ops)},
        "arrays": sig.arrays,
        "scatters": sig.scatters,
        "barriers": sig.barriers,
        "async_rounds": sig.async_rounds,
        "dist_writes": sig.dist_writes,
        "verdict": sig.verdict,
    }


def build_manifest(signatures: dict[str, EffectSignature]) -> dict:
    """The full manifest document for ``signatures``."""
    return {
        "schema": SCHEMA_VERSION,
        "tool": "repro.cli analyze --manifest <file> --refresh",
        "kernels": {
            key: signature_payload(signatures[key]) for key in sorted(signatures)
        },
    }


def load_manifest(path: str | Path) -> dict:
    """Read a committed manifest (raises ``FileNotFoundError`` if absent)."""
    with open(path) as fh:
        return json.load(fh)


def write_manifest(path: str | Path, manifest: dict) -> None:
    """Write ``manifest`` deterministically (sorted keys, trailing NL)."""
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _changed_fields(old: dict, new: dict) -> list[str]:
    fields = sorted(set(old) | set(new))
    return [f for f in fields if old.get(f) != new.get(f)]


def diff_manifest(committed: dict, computed: dict) -> list[str]:
    """Human-readable drift lines; empty when the gate passes."""
    drift: list[str] = []
    if committed.get("schema") != computed.get("schema"):
        drift.append(
            f"schema: committed {committed.get('schema')!r} != "
            f"computed {computed.get('schema')!r}"
        )
    old = committed.get("kernels", {})
    new = computed.get("kernels", {})
    for key in sorted(set(old) - set(new)):
        drift.append(f"removed kernel: {key}")
    for key in sorted(set(new) - set(old)):
        drift.append(f"new kernel: {key}")
    for key in sorted(set(old) & set(new)):
        if old[key] != new[key]:
            fields = ", ".join(_changed_fields(old[key], new[key]))
            drift.append(f"changed kernel: {key} ({fields})")
    return drift
