"""Effect signatures: per-kernel memory-effect summaries after inlining.

A kernel's *effect signature* answers, per device array: which op kinds
touch it (``gather`` / ``scatter`` / ``atomic_min`` / ``atomic_add``)
and with what index provenance.  Device-function calls are expanded
recursively so a kernel that relaxes through ``relax_batch`` is
summarized identically to one that inlines the same ops by hand —
``param:<name>`` provenance and formal-rooted array names are
substituted with the caller's argument facts at each call site.

Each scatter site is then classified:

``disjoint``
    index provenance is constant / affine / unique — no two work items
    share an address; the plain store is a *static race proof*.
``uniform``
    every element stores one provable value (``np.full`` & co.) — the
    flag-marking idiom; duplicate addresses cannot disagree.
``racy``
    gathered index with varied values — the exact hazard ``atomic_min``
    exists to absorb; always an error (AN301).
``unknown``
    the analyzer cannot prove either way — requires an in-source
    ``repro-static: assume-disjoint`` justification (AN302).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace

from . import dataflow as df
from .builder import Corpus
from .ir import MEMORY_OPS, Fragment, KernelOp

__all__ = [
    "ExpandedOp",
    "EffectSignature",
    "expand_kernel",
    "effect_signature",
    "classify_scatter",
    "DEFAULT_DIST_NAMES",
]

#: substring match deciding which arrays hold tentative distances
DEFAULT_DIST_NAMES = ("dist",)

_ROOT_RE = re.compile(r"^[A-Za-z_]\w*")

#: maximum device-function inlining depth (cycle backstop)
_MAX_DEPTH = 8


@dataclass
class ExpandedOp:
    """One post-inlining op, tagged with its top-level window anchor."""

    op: KernelOp
    #: index of the originating top-level op in the kernel's op list —
    #: window membership is decided at this granularity
    top: int
    path: str
    line: int
    #: callee chain for messages, e.g. ``relax_batch`` (None if direct)
    via: str | None = None


def _subst_text(text: str | None, binding: dict, receiver: str | None) -> str | None:
    """Rewrite the root name of an expression with caller-side facts."""
    if text is None:
        return None
    m = _ROOT_RE.match(text)
    if not m:
        return text
    root = m.group(0)
    if root == "self" and receiver:
        return receiver + text[len(root):]
    if root in binding:
        return binding[root][0] + text[len(root):]
    return text


def _canonical_from_text(text: str | None) -> str | None:
    if text is None:
        return None
    try:
        return df.canonical_array(ast.parse(text, mode="eval").body)
    except SyntaxError:
        return text


def _subst_op(op: KernelOp, binding: dict, receiver: str | None) -> KernelOp:
    """A copy of ``op`` with caller facts substituted in."""
    new = replace(op)
    if op.kind in MEMORY_OPS:
        new.array = _subst_text(op.array, binding, receiver)
        new.array_name = _canonical_from_text(new.array)
        if df.is_param(op.provenance):
            bound = binding.get(df.param_name(op.provenance))
            if bound is not None:
                new.provenance = bound[1]
    return new


def _call_binding(op: KernelOp, frag: Fragment, binding: dict,
                  receiver: str | None) -> dict:
    """formal name → (text, provenance, value-class) at this call site."""
    out: dict = {}
    for pos, formal in enumerate(frag.params):
        if pos < len(op.args):
            text = _subst_text(op.args[pos], binding, receiver)
            prov = op.arg_provenance[pos]
            val = op.arg_values[pos]
            if df.is_param(prov):
                bound = binding.get(df.param_name(prov))
                if bound is not None:
                    prov = bound[1]
            out[formal] = (text, prov, val)
    for name, text, prov, val in op.kwargs:
        if df.is_param(prov):
            bound = binding.get(df.param_name(prov))
            if bound is not None:
                prov = bound[1]
        out[name] = (_subst_text(text, binding, receiver), prov, val)
    return out


def expand_kernel(frag: Fragment, corpus: Corpus) -> list[ExpandedOp]:
    """Recursively inline device-function calls into a flat op list."""
    out: list[ExpandedOp] = []

    def emit(op: KernelOp, src: Fragment, top: int, binding: dict,
             receiver: str | None, via: str | None, justified: bool,
             depth: int, stack: tuple) -> None:
        if op.kind == "call":
            callee = corpus.device_fns.get(op.callee or "")
            if callee is None or op.callee in stack or depth >= _MAX_DEPTH:
                out.append(ExpandedOp(replace(op), top, src.path, op.line, via))
                return
            sub_recv = _subst_text(op.receiver, binding, receiver)
            sub_binding = _call_binding(op, callee, binding, receiver)
            chain = op.callee if via is None else f"{via}>{op.callee}"
            for inner in callee.ops:
                emit(inner, callee, top, sub_binding, sub_recv, chain,
                     justified or op.justified, depth + 1, stack + (op.callee,))
            return
        new = _subst_op(op, binding, receiver)
        if justified:
            new.justified = True
        out.append(ExpandedOp(new, top, src.path, op.line, via))

    for i, op in enumerate(frag.ops):
        emit(op, frag, i, {}, None, None, False, 0, ())
    return out


def classify_scatter(op: KernelOp) -> str:
    """disjoint / uniform / racy / unknown for one plain scatter."""
    if op.provenance in df.INJECTIVE:
        return "disjoint"
    if op.value == "uniform":
        return "uniform"
    if op.provenance == df.GATHERED:
        return "racy"
    return "unknown"


@dataclass
class EffectSignature:
    """The manifest-facing summary of one kernel's device-memory effects."""

    key: str
    label: str
    path: str
    owner: str | None
    #: post-inlining op counts per kind
    ops: dict = field(default_factory=dict)
    #: array name → op kind → sorted provenance tags
    arrays: dict = field(default_factory=dict)
    #: classified plain-scatter sites (stable order, no line numbers)
    scatters: list = field(default_factory=list)
    barriers: int = 0
    async_rounds: int = 0
    #: async-safe / requires-barrier / unsafe
    verdict: str = "async-safe"
    #: distance arrays this kernel writes, per discipline
    dist_writes: dict = field(default_factory=dict)


def _is_dist_array(name: str | None, dist_names) -> bool:
    if not name:
        return False
    low = name.lower()
    return any(tag in low for tag in dist_names)


def effect_signature(
    frag: Fragment,
    expanded: list[ExpandedOp],
    dist_names=DEFAULT_DIST_NAMES,
) -> EffectSignature:
    """Fold expanded ops into an :class:`EffectSignature`."""
    sig = EffectSignature(
        key=frag.key, label=frag.label, path=frag.path, owner=frag.owner
    )
    arrays: dict[str, dict[str, set]] = {}
    for e in expanded:
        op = e.op
        sig.ops[op.kind] = sig.ops.get(op.kind, 0) + 1
        if op.kind == "device_barrier":
            sig.barriers += 1
        elif op.kind == "async_round":
            sig.async_rounds += 1
        if op.kind not in MEMORY_OPS or not op.array_name:
            continue
        slot = arrays.setdefault(op.array_name, {})
        slot.setdefault(op.kind, set()).add(op.provenance)
        if op.kind == "scatter":
            sig.scatters.append(
                {
                    "array": op.array_name,
                    "index_provenance": op.provenance,
                    "value": op.value or "unknown",
                    "class": classify_scatter(op),
                    "justified": op.justified,
                }
            )
        if op.kind in ("scatter", "atomic_min", "atomic_add") and _is_dist_array(
            op.array_name, dist_names
        ):
            sig.dist_writes.setdefault(op.kind, set()).add(op.array_name)
    sig.arrays = {
        name: {kind: sorted(tags) for kind, tags in sorted(kinds.items())}
        for name, kinds in sorted(arrays.items())
    }
    sig.scatters.sort(
        key=lambda s: (s["array"], s["index_provenance"], s["value"], s["class"])
    )
    sig.dist_writes = {
        kind: sorted(names) for kind, names in sorted(sig.dist_writes.items())
    }

    non_monotone = set(sig.dist_writes) - {"atomic_min"}
    if not non_monotone:
        sig.verdict = "async-safe"
    elif sig.async_rounds > 0:
        sig.verdict = "unsafe"
    else:
        sig.verdict = "requires-barrier"
    return sig
