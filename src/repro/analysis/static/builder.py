"""AST → kernel IR: launch discovery, device-function registry, CFG build.

Two passes over the analyzed tree:

1. **Registry pass** — collect every function definition, then compute
   (by fixpoint) which formals carry a ``KernelContext``: a formal is a
   context either because the body calls a device op on it directly
   (``ctx.scatter(...)``) or because it is forwarded into the context
   slot of an already-known device function.  Each such function becomes
   a ``device_fn`` :class:`~.ir.Fragment`.

2. **Kernel pass** — every ``with device.launch("label", ...) as k:``
   statement becomes a ``kernel`` :class:`~.ir.Fragment`.  The builder
   walks the *enclosing* function from its first statement so that host
   bindings established before the launch (frontier compaction, mask
   construction) are visible to the index-provenance environment; ops
   are recorded only inside the target ``with`` block.

The CFG is structured: ``if`` forks and rejoins, loops get a back edge
plus a bypass edge, and everything else is linear.  ``break`` /
``continue`` edges are not modelled — the loop approximation already
keeps a loop body inside one synchronization window, which is the
conservative direction for race windows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from . import dataflow as df
from .ir import MEMORY_OPS, STRUCTURE_OPS, Fragment, KernelOp

__all__ = ["Corpus", "build_corpus", "discover_files", "JUSTIFICATION"]

#: the in-source annotation that vouches for an unverifiable scatter
JUSTIFICATION = "repro-static: assume-disjoint"

_CTX_METHODS = frozenset(MEMORY_OPS) | frozenset(STRUCTURE_OPS)


def discover_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.update(q for q in p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def _norm_path(p: Path) -> str:
    """Path relative to the CWD when possible — the manifest key prefix."""
    try:
        return p.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def _launch_label(call: ast.Call) -> str:
    """Kernel label from the first ``device.launch`` argument.

    F-string labels are normalized with ``{}`` placeholders
    (``f"mg_relax_g{g}"`` → ``mg_relax_g{}``) so per-instance labels
    collapse to one manifest entry.
    """
    if not call.args:
        return "<unlabeled>"
    a = call.args[0]
    if isinstance(a, ast.Constant) and isinstance(a.value, str):
        return a.value
    if isinstance(a, ast.JoinedStr):
        parts = []
        for v in a.values:
            if isinstance(v, ast.Constant):
                parts.append(str(v.value))
            else:
                parts.append("{}")
        return "".join(parts)
    return df.expr_text(a)


def _is_launch_with(node: ast.With) -> ast.withitem | None:
    """The withitem of a ``device.launch(...)`` context, if present."""
    for item in node.items:
        c = item.context_expr
        if (
            isinstance(c, ast.Call)
            and isinstance(c.func, ast.Attribute)
            and c.func.attr == "launch"
        ):
            return item
    return None


# ----------------------------------------------------------------------
# registry pass
# ----------------------------------------------------------------------

@dataclass
class _FnInfo:
    node: ast.FunctionDef
    qualname: str
    path: str
    src_lines: list[str]
    is_method: bool
    #: formal names known to carry a KernelContext
    ctx_params: set[str] = field(default_factory=set)

    @property
    def params(self) -> tuple:
        names = [a.arg for a in self.node.args.args]
        if self.is_method and names and names[0] == "self":
            names = names[1:]
        names += [a.arg for a in self.node.args.kwonlyargs]
        return tuple(names)


def _collect_functions(tree: ast.AST, path: str, src_lines: list[str]):
    """Every function def with its qualname and method-ness."""
    out: list[_FnInfo] = []

    def visit(node: ast.AST, scope: str, in_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                q = f"{scope}.{child.name}" if scope else child.name
                out.append(_FnInfo(child, q, path, src_lines, in_class))
                visit(child, q, False)
            elif isinstance(child, ast.ClassDef):
                q = f"{scope}.{child.name}" if scope else child.name
                visit(child, q, True)
            else:
                visit(child, scope, in_class)

    visit(tree, "", False)
    return out


def _direct_ctx_params(fn: _FnInfo) -> set[str]:
    """Formals on which the body calls a device op directly."""
    formals = set(fn.params)
    found: set[str] = set()
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CTX_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in formals
        ):
            found.add(node.func.value.id)
    return found


def _forwarded_ctx_params(fn: _FnInfo, registry: dict[str, "_FnInfo"]) -> set[str]:
    """Formals forwarded into the context slot of a known device fn."""
    formals = set(fn.params)
    found: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        callee = registry.get(_bare_callee(node))
        if callee is None or not callee.ctx_params:
            continue
        params = callee.params
        for pos, a in enumerate(node.args):
            if (
                isinstance(a, ast.Name)
                and a.id in formals
                and pos < len(params)
                and params[pos] in callee.ctx_params
            ):
                found.add(a.id)
        for kw in node.keywords:
            if (
                kw.arg in callee.ctx_params
                and isinstance(kw.value, ast.Name)
                and kw.value.id in formals
            ):
                found.add(kw.value.id)
    return found


def _bare_callee(node: ast.Call) -> str:
    f = node.func
    if isinstance(f, ast.Attribute):
        return f.attr
    if isinstance(f, ast.Name):
        return f.id
    return ""


# ----------------------------------------------------------------------
# fragment builder
# ----------------------------------------------------------------------

class _FragmentBuilder:
    """Walk one scope, maintaining the dataflow env and emitting IR ops."""

    def __init__(
        self,
        frag: Fragment,
        env: df.Env,
        ctx_names: set[str],
        registry: dict[str, _FnInfo],
        src_lines: list[str],
        target_with: ast.With | None,
    ) -> None:
        self.frag = frag
        self.env = env
        self.ctx_names = set(ctx_names)
        self.registry = registry
        self.src_lines = src_lines
        self.target_with = target_with
        #: record ops immediately for device fns; kernels arm on entry
        self.recording = target_with is None
        self.cur = frag.cfg.entry

    # -- op emission ----------------------------------------------------

    def _emit(self, op: KernelOp) -> None:
        if not self.recording:
            return
        idx = len(self.frag.ops)
        self.frag.ops.append(op)
        self.frag.cfg.blocks[self.cur].ops.append(idx)

    def _justified(self, line: int) -> bool:
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.src_lines) and JUSTIFICATION in self.src_lines[ln - 1]:
                return True
        return False

    # -- expression scan ------------------------------------------------

    def _scan_expr(self, node: ast.AST | None) -> None:
        """Record device ops / device-fn calls inside ``node``, inner-first."""
        if node is None:
            return
        for child in ast.iter_child_nodes(node):
            # do not descend into nested lambdas / comprehensions' functions
            if isinstance(child, (ast.Lambda,)):
                continue
            self._scan_expr(child)
        if isinstance(node, ast.Call):
            self._scan_call(node)

    def _scan_call(self, node: ast.Call) -> None:
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in self.ctx_names
            and f.attr in _CTX_METHODS
        ):
            self._emit_device_op(f.attr, node)
            return
        name = _bare_callee(node)
        info = self.registry.get(name)
        if info is not None and info.ctx_params and self._passes_ctx(node, info):
            receiver = None
            if isinstance(f, ast.Attribute):
                receiver = df.expr_text(f.value)
            self._emit(
                KernelOp(
                    kind="call",
                    line=node.lineno,
                    callee=name,
                    args=tuple(df.expr_text(a) for a in node.args),
                    arg_provenance=tuple(
                        df.eval_provenance(a, self.env) for a in node.args
                    ),
                    arg_values=tuple(
                        df.value_class(a, self.env) for a in node.args
                    ),
                    kwargs=tuple(
                        (
                            kw.arg,
                            df.expr_text(kw.value),
                            df.eval_provenance(kw.value, self.env),
                            df.value_class(kw.value, self.env),
                        )
                        for kw in node.keywords
                        if kw.arg is not None
                    ),
                    receiver=receiver,
                    justified=self._justified(node.lineno),
                )
            )

    def _passes_ctx(self, node: ast.Call, info: _FnInfo) -> bool:
        params = info.params
        for pos, a in enumerate(node.args):
            if (
                isinstance(a, ast.Name)
                and a.id in self.ctx_names
                and pos < len(params)
                and params[pos] in info.ctx_params
            ):
                return True
        for kw in node.keywords:
            if (
                kw.arg in info.ctx_params
                and isinstance(kw.value, ast.Name)
                and kw.value.id in self.ctx_names
            ):
                return True
        return False

    def _emit_device_op(self, kind: str, node: ast.Call) -> None:
        if kind not in MEMORY_OPS:
            self._emit(KernelOp(kind=kind, line=node.lineno))
            return
        arr = node.args[0] if node.args else None
        idx = node.args[1] if len(node.args) > 1 else None
        op = KernelOp(
            kind=kind,
            line=node.lineno,
            array=df.expr_text(arr) if arr is not None else None,
            array_name=df.canonical_array(arr) if arr is not None else None,
            index=df.expr_text(idx) if idx is not None else None,
            provenance=(
                df.eval_provenance(idx, self.env) if idx is not None else df.UNKNOWN
            ),
            justified=self._justified(node.lineno),
        )
        if kind in ("scatter", "atomic_min", "atomic_add"):
            val = node.args[2] if len(node.args) > 2 else None
            op.value = df.value_class(val, self.env) if val is not None else "unknown"
        self._emit(op)

    # -- statement walk -------------------------------------------------

    def walk_body(self, stmts) -> None:
        for s in stmts:
            self._walk_stmt(s)

    def _new_cur(self) -> int:
        b = self.frag.cfg.new_block()
        return b.id

    def _walk_stmt(self, s: ast.stmt) -> None:
        cfg = self.frag.cfg
        if isinstance(s, ast.Assign):
            self._scan_expr(s.value)
            for t in s.targets:
                self._note_target(t, s.value)
        elif isinstance(s, ast.AnnAssign):
            if s.value is not None:
                self._scan_expr(s.value)
                self._note_target(s.target, s.value)
        elif isinstance(s, ast.AugAssign):
            self._scan_expr(s.value)
            if isinstance(s.target, ast.Name):
                self.env.prov[s.target.id] = df.UNKNOWN
                self.env.masks.discard(s.target.id)
                self.env.uniform.discard(s.target.id)
        elif isinstance(s, ast.Expr):
            self._scan_expr(s.value)
        elif isinstance(s, ast.Return):
            self._scan_expr(s.value)
        elif isinstance(s, ast.If):
            self._scan_expr(s.test)
            if not self.recording:
                # host-level control flow around a launch: walk linearly —
                # kernel windows only care about structure *inside* the
                # launch body (each host iteration is a separate launch)
                self.walk_body(s.body)
                self.walk_body(s.orelse)
                return
            fork = self.cur
            then_id = self._new_cur()
            cfg.add_edge(fork, then_id)
            self.cur = then_id
            self.walk_body(s.body)
            then_end = self.cur
            if s.orelse:
                else_id = self._new_cur()
                cfg.add_edge(fork, else_id)
                self.cur = else_id
                self.walk_body(s.orelse)
                else_end = self.cur
                join = self._new_cur()
                cfg.add_edge(then_end, join)
                cfg.add_edge(else_end, join)
            else:
                join = self._new_cur()
                cfg.add_edge(then_end, join)
                cfg.add_edge(fork, join)
            self.cur = join
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            self._scan_expr(s.iter)
            self._note_target(s.target, None)
            if not self.recording:
                self.walk_body(s.body)
                self.walk_body(s.orelse)
                return
            self._walk_loop(s.body, s.orelse)
        elif isinstance(s, ast.While):
            self._scan_expr(s.test)
            if not self.recording:
                self.walk_body(s.body)
                self.walk_body(s.orelse)
                return
            self._walk_loop(s.body, s.orelse, test=s.test)
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            self._walk_with(s)
        elif isinstance(s, ast.Try):
            self.walk_body(s.body)
            for h in s.handlers:
                self.walk_body(h.body)
            self.walk_body(s.orelse)
            self.walk_body(s.finalbody)
        elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs are separate fragments, not inline ops
        elif isinstance(s, (ast.Assert, ast.Raise, ast.Delete)):
            pass
        elif isinstance(s, (ast.Pass, ast.Break, ast.Continue, ast.Global,
                            ast.Nonlocal, ast.Import, ast.ImportFrom)):
            pass

    def _walk_loop(self, body, orelse, *, test: ast.AST | None = None) -> None:
        cfg = self.frag.cfg
        entry = self.cur
        head = self._new_cur()
        cfg.add_edge(entry, head)
        self.cur = head
        self.walk_body(body)
        tail = self.cur
        cfg.add_edge(tail, head)  # back edge: the body repeats in-window
        exit_id = self._new_cur()
        cfg.add_edge(tail, exit_id)
        cfg.add_edge(entry, exit_id)  # zero-iteration bypass
        self.cur = exit_id
        if orelse:
            self.walk_body(orelse)

    def _walk_with(self, s: ast.With) -> None:
        launch_item = _is_launch_with(s)
        if s is self.target_with:
            # the kernel we are building: arm recording, bind the ctx var
            assert launch_item is not None
            if isinstance(launch_item.optional_vars, ast.Name):
                self.ctx_names.add(launch_item.optional_vars.id)
                self.frag.ctx_names = tuple(sorted(self.ctx_names))
            self._scan_launch_args(launch_item)
            self.recording = True
            self.walk_body(s.body)
            self.recording = False
            return
        if launch_item is not None and self.target_with is not None:
            # a *different* launch in the same scope: its ops belong to
            # its own fragment — track env effects only
            was = self.recording
            self.recording = False
            self.walk_body(s.body)
            self.recording = was
            return
        for item in s.items:
            self._scan_expr(item.context_expr)
            if item.optional_vars is not None:
                self._note_target(item.optional_vars, item.context_expr)
        self.walk_body(s.body)

    def _scan_launch_args(self, item: ast.withitem) -> None:
        call = item.context_expr
        if isinstance(call, ast.Call):
            for a in call.args[1:]:
                self._scan_expr(a)

    def _note_target(self, target: ast.AST, value: ast.AST | None) -> None:
        if value is None:
            if isinstance(target, ast.Name):
                self.env.prov[target.id] = df.UNKNOWN
                self.env.masks.discard(target.id)
                self.env.uniform.discard(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for t in target.elts:
                    self._note_target(t, None)
            return
        df.note_assignment(target, value, self.env)


# ----------------------------------------------------------------------
# corpus
# ----------------------------------------------------------------------

@dataclass
class Corpus:
    """Everything the effect/rule passes need: kernels + device fns."""

    kernels: list[Fragment] = field(default_factory=list)
    #: bare function name → device-function fragment
    device_fns: dict[str, Fragment] = field(default_factory=dict)
    #: files that failed to parse: path → error message
    errors: dict[str, str] = field(default_factory=dict)


def build_corpus(paths) -> Corpus:
    """Parse ``paths`` and lift every launch block into the kernel IR."""
    corpus = Corpus()
    parsed: list[tuple[str, ast.AST, list[str]]] = []
    functions: list[_FnInfo] = []
    for f in discover_files(paths):
        path = _norm_path(f)
        try:
            src = f.read_text()
            tree = ast.parse(src)
        except (OSError, SyntaxError) as e:  # pragma: no cover - bad input
            corpus.errors[path] = str(e)
            continue
        lines = src.splitlines()
        parsed.append((path, tree, lines))
        functions.extend(_collect_functions(tree, path, lines))

    # fixpoint: direct ctx use, then forwarding through known device fns
    registry: dict[str, _FnInfo] = {}
    for fn in functions:
        fn.ctx_params = _direct_ctx_params(fn)
        if fn.ctx_params:
            registry[fn.node.name] = fn
    changed = True
    while changed:
        changed = False
        for fn in functions:
            extra = _forwarded_ctx_params(fn, registry) - fn.ctx_params
            if extra:
                fn.ctx_params |= extra
                registry[fn.node.name] = fn
                changed = True

    # device-function fragments
    for fn in registry.values():
        frag = Fragment(
            kind="device_fn",
            label=fn.qualname,
            path=fn.path,
            line=fn.node.lineno,
            ctx_names=tuple(sorted(fn.ctx_params)),
            params=fn.params,
        )
        env = df.Env()
        env.bind_params(fn.params)
        b = _FragmentBuilder(
            frag, env, fn.ctx_params, registry, fn.src_lines, target_with=None
        )
        b.walk_body(fn.node.body)
        corpus.device_fns[fn.node.name] = frag

    # kernel fragments: one per launch site, walked from the enclosing scope
    for path, tree, lines in parsed:
        for scope_q, scope_params, scope_body, node in _launch_sites(tree):
            item = _is_launch_with(node)
            call = item.context_expr
            frag = Fragment(
                kind="kernel",
                label=_launch_label(call),
                path=path,
                line=node.lineno,
                owner=scope_q or None,
            )
            env = df.Env()
            env.bind_params(scope_params)
            b = _FragmentBuilder(
                frag, env, set(), registry, lines, target_with=node
            )
            b.walk_body(scope_body)
            corpus.kernels.append(frag)

    corpus.kernels.sort(key=lambda k: (k.path, k.line))
    return corpus


def _launch_sites(tree: ast.AST):
    """Yield ``(scope_qualname, scope_params, scope_body, With)`` per launch.

    The scope is the innermost enclosing function (or the module body),
    whose statements are replayed so pre-launch host bindings feed the
    provenance environment.
    """
    def visit(node: ast.AST, scope_q: str, scope_params: tuple, scope_body):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                q = f"{scope_q}.{child.name}" if scope_q else child.name
                params = tuple(
                    a.arg
                    for a in child.args.args + child.args.kwonlyargs
                    if a.arg != "self"
                )
                yield from visit(child, q, params, child.body)
            elif isinstance(child, ast.ClassDef):
                q = f"{scope_q}.{child.name}" if scope_q else child.name
                yield from visit(child, q, scope_params, scope_body)
            else:
                if isinstance(child, (ast.With, ast.AsyncWith)) and _is_launch_with(
                    child
                ):
                    yield (scope_q, scope_params, scope_body, child)
                yield from visit(child, scope_q, scope_params, scope_body)

    yield from visit(
        tree, "", (), tree.body if isinstance(tree, ast.Module) else []
    )
