"""Kernel IR: the operation/effect vocabulary of the static analyzer.

The simulator's kernel DSL is tiny — every device-memory effect flows
through one of a handful of :class:`~repro.gpusim.device.KernelContext`
methods — so a kernel body reduces to a short list of :class:`KernelOp`
nodes hung off a structured control-flow graph (:class:`CFG` of
:class:`Block`).  Two kinds of *fragments* carry ops:

* **kernel fragments** — the body of one ``with device.launch("name")``
  block (the unit the dynamic sanitizer calls a launch window); and
* **device functions** — helpers like ``relax_batch`` / ``compact`` that
  receive a ``KernelContext`` parameter and are inlined into every
  launch that calls them.

The IR is deliberately *effect-oriented*: host arithmetic between ops is
not modelled, only (a) which device arrays are touched, by which op
kind, with which index expression, and (b) the barrier / branch / loop
structure needed to reason about synchronization windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "OP_KINDS",
    "MEMORY_OPS",
    "STRUCTURE_OPS",
    "KernelOp",
    "Block",
    "CFG",
    "Fragment",
]

#: KernelContext methods that touch device memory
MEMORY_OPS = ("gather", "scatter", "atomic_min", "atomic_add")

#: KernelContext methods that shape execution without touching memory
#: (``multisplit`` moves data only through shared memory, never DRAM)
STRUCTURE_OPS = (
    "alu",
    "branch",
    "device_barrier",
    "async_round",
    "child_launch",
    "multisplit",
)

#: every op kind the IR carries (``call`` is a device-function call site)
OP_KINDS = MEMORY_OPS + STRUCTURE_OPS + ("call",)


@dataclass
class KernelOp:
    """One IR node: a counted device operation or a device-function call."""

    #: one of :data:`OP_KINDS`
    kind: str
    #: source line of the call (for findings)
    line: int
    #: device-array expression text (memory ops only), e.g. ``dgraph.adj``
    array: str | None = None
    #: canonical array name — last dotted segment of ``array``
    array_name: str | None = None
    #: index-expression text (memory ops only)
    index: str | None = None
    #: inferred index provenance tag (filled by the dataflow pass)
    provenance: str = "unknown"
    #: ``uniform`` / ``varied`` / ``unknown`` — value classification of a
    #: scatter's stored values (same-value stores cannot corrupt state)
    value: str | None = None
    #: line carries a ``repro-static: assume-disjoint`` justification
    justified: bool = False
    #: call ops: callee name; others: None
    callee: str | None = None
    #: call ops: argument expression texts, positionally
    args: tuple = ()
    #: call ops: caller-side provenance per argument, positionally
    arg_provenance: tuple = ()
    #: call ops: caller-side value class per argument, positionally
    arg_values: tuple = ()
    #: call ops: keyword args as ``(name, text, provenance, value)`` tuples
    kwargs: tuple = ()
    #: call ops: receiver expression text for method calls (``flags.push``)
    receiver: str | None = None


@dataclass
class Block:
    """One basic block: a run of ops with CFG successor edges."""

    id: int
    #: indices into the owning fragment's op list, in program order
    ops: list[int] = field(default_factory=list)
    #: successor block ids
    succ: list[int] = field(default_factory=list)


class CFG:
    """A structured control-flow graph over a fragment's ops."""

    def __init__(self) -> None:
        self.blocks: list[Block] = [Block(0)]
        self.entry = 0

    def new_block(self) -> Block:
        """Append an empty block and return it."""
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b

    def add_edge(self, src: int, dst: int) -> None:
        """Add a successor edge (idempotent)."""
        if dst not in self.blocks[src].succ:
            self.blocks[src].succ.append(dst)

    # ------------------------------------------------------------------
    # window reachability
    # ------------------------------------------------------------------
    def barrier_free_reach(self, ops: list[KernelOp]) -> list[set[int]]:
        """Per-op set of ops reachable through barrier-free CFG paths.

        Two memory ops belong to one *synchronization window* — and may
        therefore race — when one can reach the other along a path that
        crosses no ``device_barrier`` op.  This mirrors exactly how the
        dynamic sanitizer closes windows at ``on_device_barrier``.  An op
        contained in a barrier-free cycle reaches itself (a loop body
        re-executes inside one window).
        """
        # op-level adjacency: chains inside blocks, block tails to the
        # first ops of successors (threading through op-less blocks)
        first_ops = self._first_ops()
        adj: dict[int, set[int]] = {i: set() for i in range(len(ops))}
        for b in self.blocks:
            for i, j in zip(b.ops, b.ops[1:]):
                adj[i].add(j)
            tail = b.ops[-1] if b.ops else None
            if tail is not None:
                for s in b.succ:
                    adj[tail] |= first_ops[s]
        reach: list[set[int]] = []
        for i in range(len(ops)):
            visible: set[int] = set()
            stack = list(adj[i])
            while stack:
                j = stack.pop()
                if j in visible:
                    continue
                visible.add(j)
                if ops[j].kind == "device_barrier":
                    continue  # the window closes here; do not pass through
                stack.extend(adj[j])
            reach.append(
                {j for j in visible if ops[j].kind != "device_barrier"}
            )
        return reach

    def _first_ops(self) -> dict[int, set[int]]:
        """Per block: the first op(s) reachable without crossing any op."""
        memo: dict[int, set[int]] = {}

        def first(bid: int, trail: frozenset) -> set[int]:
            if bid in memo:
                return memo[bid]
            if bid in trail:
                return set()
            b = self.blocks[bid]
            if b.ops:
                out = {b.ops[0]}
            else:
                out = set()
                for s in b.succ:
                    out |= first(s, trail | {bid})
            memo[bid] = out
            return out

        for bid in range(len(self.blocks)):
            first(bid, frozenset())
        return memo


@dataclass
class Fragment:
    """One analyzable unit: a launch block or a device function body."""

    #: ``kernel`` (a ``with device.launch(...)`` block) or ``device_fn``
    kind: str
    #: kernel label (launch string literal) or function qualname
    label: str
    #: source path the fragment lives in
    path: str
    #: first source line of the fragment
    line: int
    #: context-variable names carrying the KernelContext in this scope
    ctx_names: tuple = ()
    #: formal parameter names (device functions only, ``self`` excluded)
    params: tuple = ()
    ops: list[KernelOp] = field(default_factory=list)
    cfg: CFG = field(default_factory=CFG)
    #: enclosing function qualname (kernels only; None at module level)
    owner: str | None = None

    @property
    def key(self) -> str:
        """Stable identifier used by findings and the manifest."""
        return f"{self.path}::{self.label}"

    def count(self, kind: str) -> int:
        """Number of ops of ``kind`` lexically in this fragment."""
        return sum(1 for op in self.ops if op.kind == kind)
