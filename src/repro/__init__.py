"""repro — reproduction of "A Bucket-aware Asynchronous Single-Source
Shortest Path Algorithm on GPU" (Zhang et al., ICPP-W 2023).

The library implements the paper's RDBS algorithm — property-driven
reordering (PRO), adaptive load balancing (ADWL) and bucket-aware
asynchronous execution (BASYN) — together with every baseline it is
evaluated against (synchronous push BL, Near-Far, an ADDS-like asynchronous
Δ-stepping, the PQ-Δ* CPU stepping algorithm, Dijkstra and Bellman-Ford),
all running on a transaction-level SIMT GPU execution-model simulator that
counts the nvprof metrics the paper profiles and converts them into
simulated time via a V100/T4-parameterized roofline model.

Quick start::

    import repro

    g = repro.graphs.kronecker(scale=12, edgefactor=16, weights="int")
    result = repro.sssp.sssp(g, source=0, method="rdbs")
    print(result.time_ms, result.work.update_ratio)
"""

from . import graphalgs, graphs, gpusim, metrics, reorder, sssp, util
from .graphs import CSRGraph
from .gpusim import T4, V100, GPUDevice, GPUSpec
from .reorder import apply_pro
from .sssp import SSSPResult, method_names
from .sssp import sssp as _sssp_fn

#: the one-call entry point (also available as ``repro.sssp.sssp``)
solve = _sssp_fn

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "graphalgs",
    "gpusim",
    "metrics",
    "reorder",
    "sssp",
    "util",
    "CSRGraph",
    "GPUDevice",
    "GPUSpec",
    "V100",
    "T4",
    "apply_pro",
    "SSSPResult",
    "solve",
    "method_names",
    "__version__",
]
