"""Vectorized segmented-array primitives shared across the library.

These are the NumPy equivalents of the warp-scan building blocks GPU code
uses: segmented iota, segmented prefix-min, and serialized atomic-min
semantics over duplicate indices.  They appear in the CSR builders, the
reordering passes, the GPU simulator and the CPU algorithms, so they live
in one place.

Each public primitive times itself under a ``primitive:{sort,scan,
multisplit}`` host-profile region (free when no profiler is active), so
``repro profile`` can break host time down by primitive family.  Regions
are additive and nest: ``primitive:multisplit`` includes the stable sort
it performs internally, which also accrues to ``primitive:sort``.
"""

from __future__ import annotations

import numpy as np

from ..perf.profile import region

__all__ = [
    "distinct_count",
    "multisplit_order",
    "segmented_arange",
    "segmented_exclusive_cummin",
    "serialized_min_outcome",
    "sorted_unique_ints",
    "stable_sort_with_order",
]


def stable_sort_with_order(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted_keys, order)`` with a stable order, for non-negative ints.

    Exactly ``(keys[order], order)`` for ``order = argsort(keys,
    kind='stable')``.  NumPy's stable argsort on int64 is timsort, which is
    several times slower than its plain sort at the few-thousand-element
    sizes the simulator hits per launch — so when the keys are small enough
    to leave room, the element *position* is packed into the low digits of
    a composite key (``key * n + pos``), sorted in place, and unpacked with
    one divmod.  Composite keys are distinct, so an unstable sort yields
    exactly the stable order.  Falls back to ``argsort`` for tiny arrays
    (where the extra passes cost more than timsort) and for keys too large
    to pack.
    """
    with region("primitive:sort"):
        n = keys.size
        if (
            n > 512
            and int(keys.max(initial=0)) < (1 << 62) // n
            and int(keys.min(initial=0)) >= 0
        ):
            packed = keys * np.int64(n) + np.arange(n, dtype=np.int64)
            packed.sort()
            sorted_keys, order = np.divmod(packed, np.int64(n))
            return sorted_keys, order
        order = np.argsort(keys, kind="stable")
        return keys[order], order.astype(np.int64, copy=False)


def multisplit_order(
    keys: np.ndarray, num_buckets: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(order, offsets)`` of a stable multisplit into ``num_buckets``.

    The host reference for the device's warp-ballot multisplit primitive
    (:meth:`repro.gpusim.device.KernelContext.multisplit`): ``order`` is a
    permutation grouping elements by bucket key with the *original
    relative order preserved inside each bucket* (exactly
    ``argsort(keys, kind='stable')``), and ``offsets`` is the exclusive
    bucket-start prefix of length ``num_buckets + 1``, so bucket ``b``
    occupies ``order[offsets[b]:offsets[b + 1]]``.

    Keys must lie in ``[0, num_buckets)``; the bucket count is the small
    split fan-out (2–32), not a general sort domain.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    with region("primitive:multisplit"):
        keys = np.asarray(keys, dtype=np.int64)
        counts = np.bincount(keys, minlength=num_buckets)
        if counts.size > num_buckets:
            raise ValueError(
                f"multisplit keys must lie in [0, {num_buckets}); "
                f"got max {int(keys.max())}"
            )
        offsets = np.zeros(num_buckets + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64), offsets
        _, order = stable_sort_with_order(keys)
        return order, offsets


def _bincount_range(values: np.ndarray) -> tuple[int, int] | None:
    """``(lo, hi)`` when a shifted bincount is the cheap way to dedup.

    A counting pass is O(n + range); it beats ``np.unique``'s hash/sort
    machinery whenever the value range is comparable to the array length,
    which holds for vertex ids, slot ids and device addresses in the hot
    simulator paths.  Returns None when the range is too wide.
    """
    lo = int(values.min())
    hi = int(values.max())
    if hi - lo <= 4 * values.size + 1024:
        return lo, hi
    return None


def distinct_count(values: np.ndarray) -> int:
    """Number of distinct values of a non-negative integer array.

    Exactly ``np.unique(values).size``, computed with a counting pass when
    the value range allows (see :func:`_bincount_range`).
    """
    if values.size == 0:
        return 0
    with region("primitive:scan"):
        rng = _bincount_range(values)
        if rng is None:
            return int(np.unique(values).size)
        lo, hi = rng
        return int(
            np.count_nonzero(np.bincount(values - lo, minlength=hi - lo + 1))
        )


def sorted_unique_ints(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of a non-negative integer array.

    Element-identical to ``np.unique(values)`` (as int64), computed with a
    counting pass when the value range allows.
    """
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    with region("primitive:scan"):
        rng = _bincount_range(values)
        if rng is None:
            return np.unique(values).astype(np.int64, copy=False)
        lo, hi = rng
        out = np.flatnonzero(np.bincount(values - lo, minlength=hi - lo + 1))
        if lo:
            out += lo
        return out.astype(np.int64, copy=False)


def segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` with no Python loop."""
    with region("primitive:scan"):
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        ends = np.cumsum(counts)
        out = np.arange(total, dtype=np.int64)
        out -= np.repeat(ends - counts, counts)
        return out


def segmented_exclusive_cummin(
    values: np.ndarray, seg_start: np.ndarray
) -> np.ndarray:
    """Exclusive prefix-min within segments (Hillis–Steele doubling scan).

    ``seg_start[i]`` is True at the first element of each segment.  The
    first element of every segment receives ``+inf``.  Runs in
    ``O(n log(max segment length))`` vectorized steps.
    """
    n = values.size
    if n == 0:
        return values.astype(np.float64, copy=True)
    with region("primitive:scan"):
        idx = np.arange(n, dtype=np.int64)
        seg_first = np.maximum.accumulate(np.where(seg_start, idx, 0))
        pos_in_seg = idx - seg_first
        inclusive = values.astype(np.float64, copy=True)
        d = 1
        max_pos = int(pos_in_seg.max())
        while d <= max_pos:
            can = np.flatnonzero(pos_in_seg >= d)
            inclusive[can] = np.minimum(inclusive[can], inclusive[can - d])
            d <<= 1
        exclusive = np.full(n, np.inf)
        inner = pos_in_seg > 0
        exclusive[inner] = inclusive[np.flatnonzero(inner) - 1]
        return exclusive


def serialized_min_outcome(
    current: np.ndarray, idx: np.ndarray, values: np.ndarray,
    distinct: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Outcome of atomically min-ing ``values`` into ``current[idx]``.

    Models a batch of ``atomicMin`` operations retiring in program order:
    for each operation, the *old* value it observes is the minimum of the
    cell's initial value and all earlier operations' values to the same
    cell.  Returns ``(old, updated)`` aligned with the inputs, and applies
    the final per-cell minima to ``current`` in place.

    ``distinct`` is an optional caller-supplied count of distinct
    addresses in ``idx`` (the device already computes it for conflict
    accounting).  When every address is distinct, serialization order is
    immaterial — each op observes the cell's initial value — so the sort
    and segmented scan are skipped entirely.
    """
    n = idx.size
    if n == 0:
        return values.astype(np.float64, copy=True), np.zeros(0, dtype=bool)
    if distinct == n:
        initial = current[idx]
        svals = np.asarray(values, dtype=np.float64)
        updated = svals < initial
        current[idx] = np.minimum(initial, svals)
        return initial, updated
    sidx, order = stable_sort_with_order(idx)
    svals = np.asarray(values, dtype=np.float64)[order]
    start = np.ones(n, dtype=bool)
    start[1:] = sidx[1:] != sidx[:-1]
    initial = current[sidx]
    prior = segmented_exclusive_cummin(svals, start)
    old_sorted = np.minimum(initial, prior)
    updated_sorted = svals < old_sorted

    gstarts = np.flatnonzero(start)
    gmins = np.minimum.reduceat(svals, gstarts)
    targets = sidx[gstarts]
    current[targets] = np.minimum(current[targets], gmins)

    old = np.empty(n, dtype=np.float64)
    old[order] = old_sorted
    updated = np.empty(n, dtype=bool)
    updated[order] = updated_sorted
    return old, updated
