"""Vectorized segmented-array primitives shared across the library.

These are the NumPy equivalents of the warp-scan building blocks GPU code
uses: segmented iota, segmented prefix-min, and serialized atomic-min
semantics over duplicate indices.  They appear in the CSR builders, the
reordering passes, the GPU simulator and the CPU algorithms, so they live
in one place.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segmented_arange",
    "segmented_exclusive_cummin",
    "serialized_min_outcome",
]


def segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` with no Python loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(ends - counts, counts)
    return out


def segmented_exclusive_cummin(
    values: np.ndarray, seg_start: np.ndarray
) -> np.ndarray:
    """Exclusive prefix-min within segments (Hillis–Steele doubling scan).

    ``seg_start[i]`` is True at the first element of each segment.  The
    first element of every segment receives ``+inf``.  Runs in
    ``O(n log(max segment length))`` vectorized steps.
    """
    n = values.size
    if n == 0:
        return values.astype(np.float64, copy=True)
    idx = np.arange(n, dtype=np.int64)
    seg_first = np.maximum.accumulate(np.where(seg_start, idx, 0))
    pos_in_seg = idx - seg_first
    inclusive = values.astype(np.float64, copy=True)
    d = 1
    max_pos = int(pos_in_seg.max())
    while d <= max_pos:
        can = np.flatnonzero(pos_in_seg >= d)
        inclusive[can] = np.minimum(inclusive[can], inclusive[can - d])
        d <<= 1
    exclusive = np.full(n, np.inf)
    inner = pos_in_seg > 0
    exclusive[inner] = inclusive[np.flatnonzero(inner) - 1]
    return exclusive


def serialized_min_outcome(
    current: np.ndarray, idx: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Outcome of atomically min-ing ``values`` into ``current[idx]``.

    Models a batch of ``atomicMin`` operations retiring in program order:
    for each operation, the *old* value it observes is the minimum of the
    cell's initial value and all earlier operations' values to the same
    cell.  Returns ``(old, updated)`` aligned with the inputs, and applies
    the final per-cell minima to ``current`` in place.
    """
    n = idx.size
    if n == 0:
        return values.astype(np.float64, copy=True), np.zeros(0, dtype=bool)
    order = np.argsort(idx, kind="stable")
    sidx = idx[order]
    svals = np.asarray(values, dtype=np.float64)[order]
    start = np.ones(n, dtype=bool)
    start[1:] = sidx[1:] != sidx[:-1]
    initial = current[sidx]
    prior = segmented_exclusive_cummin(svals, start)
    old_sorted = np.minimum(initial, prior)
    updated_sorted = svals < old_sorted

    gstarts = np.flatnonzero(start)
    gmins = np.minimum.reduceat(svals, gstarts)
    targets = sidx[gstarts]
    current[targets] = np.minimum(current[targets], gmins)

    old = np.empty(n, dtype=np.float64)
    old[order] = old_sorted
    updated = np.empty(n, dtype=bool)
    updated[order] = updated_sorted
    return old, updated
