"""Shared vectorized primitives."""

from .scan import (
    segmented_arange,
    segmented_exclusive_cummin,
    serialized_min_outcome,
)

__all__ = [
    "segmented_arange",
    "segmented_exclusive_cummin",
    "serialized_min_outcome",
]
