"""Unit tests for weight generation, graph statistics and serialization."""

import numpy as np
import pytest

from repro.graphs import (
    connected_components,
    degree_histogram,
    estimate_diameter,
    exponential_weights,
    from_edges,
    graph_stats,
    grid_road_network,
    kronecker,
    largest_component_vertices,
    load_npz,
    path,
    read_dimacs_gr,
    read_edge_list,
    reweight,
    save_npz,
    star,
    uniform_int_weights,
    uniform_unit_weights,
    write_dimacs_gr,
    write_edge_list,
)
from repro.reorder import apply_pro


class TestWeights:
    def test_uniform_int_bounds(self):
        w = uniform_int_weights(10_000, 100, np.random.default_rng(0))
        assert w.min() >= 1 and w.max() <= 100
        assert w.dtype == np.float64

    def test_uniform_int_invalid_max(self):
        with pytest.raises(ValueError):
            uniform_int_weights(5, 0)

    def test_uniform_unit_bounds(self):
        w = uniform_unit_weights(10_000, np.random.default_rng(0))
        assert w.min() >= 0.0 and w.max() < 1.0

    def test_exponential_positive(self):
        w = exponential_weights(1000, 2.0, np.random.default_rng(0))
        assert w.min() >= 0.0
        with pytest.raises(ValueError):
            exponential_weights(5, -1.0)

    def test_reweight_preserves_symmetry(self):
        """Both arcs of one undirected edge get the same new weight."""
        g = kronecker(6, 4, seed=2)
        g2 = reweight(g, "unit", seed=3)
        edges = {}
        for u, v, w in g2.iter_edges():
            edges[(u, v)] = w
        for (u, v), w in edges.items():
            assert edges[(v, u)] == w

    def test_reweight_schemes(self):
        g = kronecker(5, 4, seed=2)
        assert reweight(g, "int", max_weight=7, seed=0).weights.max() <= 7
        assert reweight(g, "unit", seed=0).weights.max() < 1.0
        assert reweight(g, "exp", seed=0).weights.min() >= 0.0
        with pytest.raises(ValueError):
            reweight(g, "nope")


class TestProperties:
    def test_degree_histogram(self):
        g = star(4)
        hist = degree_histogram(g)
        assert hist[1] == 4 and hist[4] == 1

    def test_diameter_of_path(self):
        assert estimate_diameter(path(30)) == 29

    def test_diameter_of_star(self):
        assert estimate_diameter(star(10)) == 2

    def test_connected_components(self):
        g = from_edges(
            np.array([0, 2]), np.array([1, 3]), np.ones(2),
            num_vertices=5, symmetrize=True,
        )
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] not in (labels[0], labels[2])

    def test_largest_component(self):
        g = from_edges(
            np.array([0, 1, 4]), np.array([1, 2, 5]), np.ones(3),
            num_vertices=6, symmetrize=True,
        )
        comp = largest_component_vertices(g)
        assert list(comp) == [0, 1, 2]

    def test_graph_stats_row(self):
        g = grid_road_network(8, 8, seed=0, name="g8")
        s = graph_stats(g)
        assert s.name == "g8"
        assert s.num_vertices == 64
        assert s.avg_degree == pytest.approx(g.average_degree)
        assert s.max_degree == g.degrees.max()
        row = s.as_row()
        assert row[0] == "g8" and row[1] == 64


class TestIO:
    def test_edge_list_round_trip(self, tmp_path):
        g = kronecker(5, 4, seed=7)
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        g2 = read_edge_list(p, symmetrize=False, name=g.name)
        assert g2.num_vertices == g.num_vertices
        assert np.array_equal(g2.row, g.row)
        assert np.array_equal(g2.adj, g.adj)
        assert np.allclose(g2.weights, g.weights)

    def test_edge_list_default_weight_and_comments(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n0 1\n1 2 5.5\n")
        g = read_edge_list(p, symmetrize=False)
        assert g.num_edges == 2
        assert dict(((u, v), w) for u, v, w in g.iter_edges()) == {
            (0, 1): 1.0,
            (1, 2): 5.5,
        }

    def test_dimacs_round_trip(self, tmp_path):
        g = kronecker(5, 3, seed=8)
        p = tmp_path / "g.gr"
        write_dimacs_gr(g, p)
        g2 = read_dimacs_gr(p)
        assert g2.num_vertices == g.num_vertices
        assert np.array_equal(g2.adj, g.adj)
        assert np.allclose(g2.weights, g.weights)

    def test_dimacs_requires_problem_line(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_text("c nothing\na 1 2 3\n")
        with pytest.raises(ValueError):
            read_dimacs_gr(p)

    def test_dimacs_malformed_problem_line(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_text("p tsp 3 1\n")
        with pytest.raises(ValueError):
            read_dimacs_gr(p)

    def test_npz_round_trip_plain(self, tmp_path):
        g = kronecker(5, 4, seed=9)
        p = tmp_path / "g.npz"
        save_npz(g, p)
        g2 = load_npz(p)
        assert g2.name == g.name
        assert np.array_equal(g2.row, g.row)
        assert np.array_equal(g2.adj, g.adj)
        assert g2.heavy_offsets is None

    def test_npz_round_trip_with_pro(self, tmp_path):
        g = apply_pro(kronecker(5, 4, seed=10), delta=500.0)
        p = tmp_path / "g.npz"
        save_npz(g, p)
        g2 = load_npz(p)
        assert np.array_equal(g2.heavy_offsets, g.heavy_offsets)
        assert g2.delta == g.delta
        assert np.array_equal(g2.new_to_old, g.new_to_old)
        assert np.array_equal(g2.old_to_new, g.old_to_new)
