"""Device hot-path fast paths: every shortcut must be exact.

This file locks in the equivalences the performance layer relies on:

* :class:`CacheStream` reproduces ``CacheModel.hits(tail + lines)`` bit
  for bit, launch by launch (the docstring of ``cachemodel.py`` points
  here);
* ``stable_sort_with_order`` equals a stable argsort, including the
  composite-key packing fast path and its fallbacks;
* ``distinct_count`` / ``sorted_unique_ints`` equal ``np.unique``;
* ``serialized_min_outcome``'s distinct-address fast path equals the
  general segmented-scan path, which itself equals a scalar reference;
* the scan-coalesce memo returns exactly what a fresh ``coalesce`` call
  would, and only engages for true ``arange`` scans;
* assignment factories report the analytic ``num_slots`` (the
  ``np.unique`` fallback was removed from the hot path);
* observer dispatch rebuilds on list mutation, and ``host_copy`` only
  materializes the index array when someone is listening.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cachemodel import CacheModel, CacheStream
from repro.gpusim.device import GPUDevice
from repro.gpusim.kernels import (
    _finalize,
    grid_stride,
    thread_per_item,
    thread_per_vertex_edges,
    threads_per_vertex_edges,
)
from repro.gpusim.memory import coalesce
from repro.gpusim.spec import V100
from repro.util.scan import (
    distinct_count,
    serialized_min_outcome,
    sorted_unique_ints,
    stable_sort_with_order,
)

# ---------------------------------------------------------------------------
# CacheStream == CacheModel over the concatenated rolling stream
# ---------------------------------------------------------------------------


def _model_with_capacity(cap: int) -> CacheModel:
    model = CacheModel(V100)
    model.capacity_sectors = cap
    return model


def _reference_hits(model: CacheModel, launches) -> list[int]:
    """The naive rolling-tail evaluation CacheStream replaces."""
    cap = model.capacity_sectors
    history = np.zeros(0, dtype=np.int64)
    out = []
    for lines in launches:
        tail = history[history.size - min(cap, history.size):]
        stream = np.concatenate([tail, lines])
        out.append(int(model.hits(stream)[tail.size:].sum()))
        history = np.concatenate([history, lines])
    return out


def _stream_hits(model: CacheModel, launches) -> list[int]:
    stream = CacheStream(model)
    return [stream.hit_count(lines) for lines in launches]


def _random_launches(rng, num, max_len, id_range):
    return [
        rng.integers(0, id_range, size=int(rng.integers(0, max_len + 1)))
        .astype(np.int64)
        for _ in range(num)
    ]


@pytest.mark.parametrize("cap", [7, 128, 5120])
@pytest.mark.parametrize("id_range", [5, 60, 4000])
def test_cache_stream_matches_reference_random(cap, id_range):
    rng = np.random.default_rng(cap * 1000 + id_range)
    launches = _random_launches(rng, num=12, max_len=300, id_range=id_range)
    model = _model_with_capacity(cap)
    assert _stream_hits(model, launches) == _reference_hits(model, launches)


def test_cache_stream_matches_reference_sorted_fast_path():
    # ascending streams (what slot-major coalescing emits) take the
    # sort-free branch; duplicates make within-launch gaps of exactly 1
    rng = np.random.default_rng(7)
    launches = [
        np.sort(rng.integers(0, 500, size=n)).astype(np.int64)
        for n in (1, 2, 64, 300, 0, 128)
    ]
    model = _model_with_capacity(128)
    assert _stream_hits(model, launches) == _reference_hits(model, launches)


def test_cache_stream_matches_reference_across_compaction():
    # >1024 distinct sectors with a tiny capacity forces the table
    # compaction branch; counts must be unaffected
    launches = [
        np.arange(i * 200, (i + 1) * 200, dtype=np.int64) for i in range(10)
    ]
    launches.append(np.arange(1800, 2000, dtype=np.int64))  # recent reuse
    launches.append(np.arange(0, 200, dtype=np.int64))  # evicted reuse
    model = _model_with_capacity(7)
    stream = CacheStream(model)
    got = [stream.hit_count(lines) for lines in launches]
    assert got == _reference_hits(model, launches)
    assert stream._sectors.size <= max(4 * 7, 1024)  # compaction ran


def test_cache_stream_tight_reuse_and_empty_launches():
    # working set within capacity -> the no-transcendentals shortcut
    rng = np.random.default_rng(11)
    launches = [
        rng.integers(0, 40, size=200).astype(np.int64),
        np.zeros(0, dtype=np.int64),
        rng.integers(0, 40, size=5).astype(np.int64),
        rng.integers(0, 40, size=200).astype(np.int64),
    ]
    model = _model_with_capacity(128)
    assert _stream_hits(model, launches) == _reference_hits(model, launches)
    assert CacheStream(model).hit_count(np.zeros(0, dtype=np.int64)) == 0


# ---------------------------------------------------------------------------
# scan primitives
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "n,hi",
    [
        (0, 10),
        (1, 10),
        (300, 50),  # below the packing threshold -> argsort path
        (513, 50),  # just above -> packed path
        (600, 3),  # heavy duplication
        (5000, 10**6),
    ],
)
def test_stable_sort_with_order_equals_stable_argsort(n, hi):
    rng = np.random.default_rng(n + hi)
    keys = rng.integers(0, hi, size=n).astype(np.int64)
    sorted_keys, order = stable_sort_with_order(keys)
    want_order = np.argsort(keys, kind="stable")
    np.testing.assert_array_equal(order, want_order)
    np.testing.assert_array_equal(sorted_keys, keys[want_order])


def test_stable_sort_with_order_fallbacks_stay_stable():
    # keys too large to pack (max >= 2**62 / n) and negative keys both
    # take the argsort fallback; the contract is identical
    big = np.array([5, (1 << 62), 5, 0, (1 << 62)] * 200, dtype=np.int64)
    sorted_keys, order = stable_sort_with_order(big)
    np.testing.assert_array_equal(order, np.argsort(big, kind="stable"))
    np.testing.assert_array_equal(sorted_keys, big[order])

    neg = np.array([3, -1, 3, -1, 2] * 200, dtype=np.int64)
    sorted_keys, order = stable_sort_with_order(neg)
    np.testing.assert_array_equal(order, np.argsort(neg, kind="stable"))
    np.testing.assert_array_equal(sorted_keys, neg[order])


def test_stable_sort_does_not_mutate_input():
    keys = np.arange(1000, dtype=np.int64)[::-1].copy()
    before = keys.copy()
    stable_sort_with_order(keys)
    np.testing.assert_array_equal(keys, before)


@pytest.mark.parametrize("hi", [1, 7, 1000, 10**7])
def test_distinct_and_unique_match_numpy(hi):
    rng = np.random.default_rng(hi)
    values = rng.integers(0, hi, size=777).astype(np.int64)
    assert distinct_count(values) == np.unique(values).size
    np.testing.assert_array_equal(sorted_unique_ints(values), np.unique(values))
    assert distinct_count(np.zeros(0, dtype=np.int64)) == 0
    assert sorted_unique_ints(np.zeros(0, dtype=np.int64)).size == 0


def _serialized_min_scalar(current, idx, values):
    """Scalar reference: atomicMin ops retiring in program order."""
    old = np.empty(idx.size, dtype=np.float64)
    updated = np.empty(idx.size, dtype=bool)
    for i, (j, v) in enumerate(zip(idx, values)):
        old[i] = current[j]
        updated[i] = v < current[j]
        current[j] = min(current[j], v)
    return old, updated


@pytest.mark.parametrize("n,cells", [(50, 8), (700, 30), (700, 10**6)])
def test_serialized_min_outcome_matches_scalar_reference(n, cells):
    rng = np.random.default_rng(n + cells)
    idx = rng.integers(0, cells, size=n).astype(np.int64)
    values = rng.random(n) * 10
    base = rng.random(max(cells, int(idx.max()) + 1)) * 10

    cur_vec = base.copy()
    old_vec, upd_vec = serialized_min_outcome(cur_vec, idx, values)
    cur_ref = base.copy()
    old_ref, upd_ref = _serialized_min_scalar(cur_ref, idx, values)

    np.testing.assert_array_equal(old_vec, old_ref)
    np.testing.assert_array_equal(upd_vec, upd_ref)
    np.testing.assert_array_equal(cur_vec, cur_ref)


def test_serialized_min_distinct_fast_path_equals_general():
    rng = np.random.default_rng(3)
    idx = rng.permutation(900).astype(np.int64)[:600]  # all distinct
    values = rng.random(600) * 5
    base = rng.random(900) * 5

    cur_fast = base.copy()
    old_fast, upd_fast = serialized_min_outcome(
        cur_fast, idx, values, distinct=idx.size
    )
    cur_gen = base.copy()
    old_gen, upd_gen = serialized_min_outcome(cur_gen, idx, values)

    np.testing.assert_array_equal(old_fast, old_gen)
    np.testing.assert_array_equal(upd_fast, upd_gen)
    np.testing.assert_array_equal(cur_fast, cur_gen)


# ---------------------------------------------------------------------------
# scan-coalesce memo
# ---------------------------------------------------------------------------


def test_scan_coalesce_memo_is_exact_and_scoped():
    n = 5000
    device = GPUDevice()
    arr = device.alloc(np.zeros(n), name="dist")
    a = thread_per_item(n)
    idx = np.arange(n, dtype=np.int64)

    with device.launch("scan") as ctx:
        ctx.gather(arr, idx, a)
        ctx.gather(arr, idx, a)  # second call must be served by the memo
    assert len(device._scan_coalesce) == 1
    key = (arr.base_address, n)
    cached = device._scan_coalesce[key]
    direct = coalesce(
        arr.addresses(idx), a.slots, V100.sector_bytes, V100.cache_line_bytes
    )
    assert cached[0] is a.slots
    assert (cached[1], cached[2]) == (direct[0], direct[1])
    np.testing.assert_array_equal(cached[3], direct[2])

    # both gathers charged identical, full-price counters
    fresh = GPUDevice()
    arr2 = fresh.alloc(np.zeros(n), name="dist")
    with fresh.launch("scan") as ctx:
        ctx.gather(arr2, idx, a)
    once = fresh.counters.totals
    twice = device.counters.totals
    assert twice.inst_executed_global_loads == 2 * once.inst_executed_global_loads
    assert twice.global_load_transactions == 2 * once.global_load_transactions
    assert twice.l1_accesses == 2 * once.l1_accesses


def test_scan_coalesce_memo_rejects_non_arange_and_stale_slots():
    n = 2000
    device = GPUDevice()
    arr = device.alloc(np.zeros(n), name="dist")
    idx = np.arange(n, dtype=np.int64)

    # non-arange gathers must bypass the memo entirely
    a = thread_per_item(n)
    with device.launch("perm") as ctx:
        ctx.gather(arr, idx[::-1].copy(), a)
    assert device._scan_coalesce == {}

    # same (array, n) under a different assignment: identity check on the
    # slot array forces a recompute, and the entry is replaced
    b = grid_stride(n, 256)
    with device.launch("scan") as ctx:
        ctx.gather(arr, idx, a)
        ctx.gather(arr, idx, b)
    entry = device._scan_coalesce[(arr.base_address, n)]
    assert entry[0] is b.slots
    direct = coalesce(
        arr.addresses(idx), b.slots, V100.sector_bytes, V100.cache_line_bytes
    )
    assert (entry[1], entry[2]) == (direct[0], direct[1])
    np.testing.assert_array_equal(entry[3], direct[2])


# ---------------------------------------------------------------------------
# assignment factories: analytic num_slots, memoization, finalize guard
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 1000])
def test_thread_per_item_num_slots_analytic(n):
    a = thread_per_item(n)
    assert a.num_slots == np.unique(a.slots).size


@pytest.mark.parametrize("n,t", [(0, 64), (1, 64), (100, 64), (1000, 96), (513, 512)])
def test_grid_stride_num_slots_analytic(n, t):
    a = grid_stride(n, t)
    assert a.num_slots == np.unique(a.slots).size


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_edge_factories_num_slots_analytic(seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 40, size=200).astype(np.int64)
    a = thread_per_vertex_edges(counts)
    assert a.num_slots == np.unique(a.slots).size
    b = threads_per_vertex_edges(counts, 32)
    assert b.num_slots == np.unique(b.slots).size


def test_scalar_factories_are_memoized():
    assert thread_per_item(100) is thread_per_item(100)
    assert grid_stride(100, 64) is grid_stride(100, 64)


def test_finalize_requires_analytic_num_slots():
    with pytest.raises(AssertionError, match="analytically"):
        _finalize(np.zeros(3, dtype=np.int64), 3, 32, 1)


# ---------------------------------------------------------------------------
# observer dispatch and host_copy gating
# ---------------------------------------------------------------------------


class _Recorder:
    def __init__(self):
        self.annotations = []
        self.host_writes = []

    def on_annotate(self, device, tag, payload):
        self.annotations.append(tag)

    def on_host_write(self, device, arr, idx, values):
        self.host_writes.append(np.asarray(idx).copy())


def test_observer_dispatch_rebuilds_on_list_mutation():
    device = GPUDevice()
    assert device.handlers("on_annotate") == ()
    rec = _Recorder()
    device.observers.append(rec)
    assert len(device.handlers("on_annotate")) == 1
    device.annotate("tag")
    assert rec.annotations == ["tag"]
    device.observers.remove(rec)
    assert device.handlers("on_annotate") == ()
    device.annotate("after")  # nobody listening: no error, no record
    assert rec.annotations == ["tag"]

    other = _Recorder()
    device.observers.append(rec)
    device.observers[0] = other  # __setitem__ rebuilds too
    device.annotate("replaced")
    assert other.annotations == ["replaced"] and rec.annotations == ["tag"]
    device.observers.clear()
    assert device.handlers("on_annotate") == ()


def test_host_copy_gating():
    device = GPUDevice()
    arr = device.alloc(np.zeros(64), name="buf")
    device.host_copy(arr, np.ones(64))  # unobserved: plain copy
    np.testing.assert_array_equal(arr.data, np.ones(64))

    rec = _Recorder()
    device.observers.append(rec)
    device.host_copy(arr, np.full(64, 2.0))
    np.testing.assert_array_equal(arr.data, np.full(64, 2.0))
    assert len(rec.host_writes) == 1
    np.testing.assert_array_equal(rec.host_writes[0], np.arange(64))
