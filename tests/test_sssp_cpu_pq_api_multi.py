"""Tests for PQ-Δ*, the sssp() front door, and the multi-GPU prototype."""

import numpy as np
import pytest

from repro.graphs import kronecker, grid_road_network, path
from repro.gpusim import V100, multi_gpu_sssp
from repro.sssp import (
    CPUSpec,
    XEON_8269CY,
    method_names,
    pq_delta_star_sssp,
    sssp,
    validate_distances,
)

SPEC = V100.scaled_for_workload(1 / 64)


class TestPqDeltaStar:
    def test_correct_on_kron(self):
        g = kronecker(8, 6, weights="int", seed=30)
        r = pq_delta_star_sssp(g, 0)
        validate_distances(g, 0, r.dist)

    def test_correct_on_road(self):
        g = grid_road_network(10, 10, seed=31)
        r = pq_delta_star_sssp(g, 0)
        validate_distances(g, 0, r.dist)

    def test_cost_model_monotone_in_work(self):
        cpu = XEON_8269CY
        assert cpu.batch_time(2000, 10) > cpu.batch_time(1000, 10)
        assert cpu.batch_time(0, 0) == pytest.approx(cpu.batch_overhead_s)

    def test_more_cores_faster(self):
        g = kronecker(7, 6, weights="int", seed=32)
        fast = CPUSpec("big", 52, 104, 55e-9, 20e-9, 3e-6, 0.55)
        slow = CPUSpec("small", 4, 8, 55e-9, 20e-9, 3e-6, 0.55)
        t_fast = pq_delta_star_sssp(g, 0, cpu=fast).time_ms
        t_slow = pq_delta_star_sssp(g, 0, cpu=slow).time_ms
        assert t_slow > t_fast

    def test_records_batches(self):
        g = path(20)
        r = pq_delta_star_sssp(g, 0, delta=2.0)
        assert r.extra["batches"] >= 1
        assert r.extra["cpu"] == "Xeon-8269CY"

    def test_source_validation(self):
        with pytest.raises(ValueError):
            pq_delta_star_sssp(path(4), -1)


class TestApi:
    def test_all_methods_registered_and_correct(self):
        g = kronecker(7, 6, weights="int", seed=33)
        for m in method_names():
            r = sssp(g, 0, method=m)
            validate_distances(g, 0, r.dist)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            sssp(path(4), 0, method="quantum")

    def test_kwargs_forwarded(self):
        g = kronecker(6, 4, weights="int", seed=34)
        r = sssp(g, 0, method="rdbs", spec=SPEC, delta=500.0)
        assert r.extra["delta0"] == 500.0

    def test_default_method_is_rdbs(self):
        g = path(6)
        assert sssp(g, 0).method == "rdbs"


class TestMultiGPU:
    def test_correct_for_any_gpu_count(self):
        g = kronecker(8, 6, weights="int", seed=35)
        for ng in (1, 2, 3, 8):
            r = multi_gpu_sssp(g, 0, num_gpus=ng, spec=SPEC)
            validate_distances(g, 0, r.dist)
            assert r.num_gpus == ng

    def test_exchange_only_with_multiple_gpus(self):
        g = kronecker(7, 6, weights="int", seed=36)
        single = multi_gpu_sssp(g, 0, num_gpus=1, spec=SPEC)
        multi = multi_gpu_sssp(g, 0, num_gpus=4, spec=SPEC)
        assert single.exchanged_messages == 0
        assert single.exchange_time_ms == 0.0
        assert multi.exchanged_messages > 0
        assert 0 < multi.exchange_fraction <= 1.0

    def test_interconnect_bandwidth_matters(self):
        g = kronecker(8, 8, weights="int", seed=37)
        slow = multi_gpu_sssp(g, 0, num_gpus=4, spec=SPEC, interconnect_gbps=1.0)
        fast = multi_gpu_sssp(g, 0, num_gpus=4, spec=SPEC, interconnect_gbps=300.0)
        assert slow.exchange_time_ms > fast.exchange_time_ms

    def test_invalid_args(self):
        g = path(4)
        with pytest.raises(ValueError):
            multi_gpu_sssp(g, 99)
        with pytest.raises(ValueError):
            multi_gpu_sssp(g, 0, num_gpus=0)

    def test_supersteps_counted(self):
        g = path(12)
        r = multi_gpu_sssp(g, 0, num_gpus=2, spec=SPEC)
        assert r.supersteps >= 11
