"""Tests for the shared GPU relaxation layer (DeviceGraph, relax_batch,
FrontierFlags) and the on-device offset re-split."""

import numpy as np
import pytest

from repro.graphs import kronecker, paper_fig4_graph
from repro.gpusim import GPUDevice, V100, thread_per_item, thread_per_vertex_edges
from repro.metrics import WorkStats
from repro.reorder import apply_pro
from repro.sssp.relax import DeviceGraph, FrontierFlags, relax_batch


@pytest.fixture
def dev():
    return GPUDevice(V100)


@pytest.fixture
def pro_graph():
    return apply_pro(paper_fig4_graph(), delta=3.0)


class TestDeviceGraph:
    def test_batch_all(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        b = dg.batch(np.array([0, 1]), "all")
        assert b.num_edges == 7  # degrees 4 + 3 after reorder
        assert list(b.counts) == [4, 3]
        assert list(b.src_pos[:4]) == [0, 0, 0, 0]

    def test_batch_light_heavy_partition(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        verts = np.arange(5)
        light = dg.batch(verts, "light")
        heavy = dg.batch(verts, "heavy")
        assert light.num_edges + heavy.num_edges == pro_graph.num_edges
        # all light weights < 3, all heavy >= 3
        assert np.all(pro_graph.weights[light.edge_idx] < 3.0)
        assert np.all(pro_graph.weights[heavy.edge_idx] >= 3.0)

    def test_light_without_offsets_raises(self, dev):
        g = kronecker(5, 4, seed=1)
        dg = DeviceGraph(dev, g)
        with pytest.raises(ValueError):
            dg.batch(np.array([0]), "light")
        with pytest.raises(ValueError):
            dg.light_counts(np.array([0]))

    def test_unknown_kind(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        with pytest.raises(ValueError):
            dg.batch(np.array([0]), "medium")

    def test_light_counts(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        assert list(dg.light_counts(np.arange(5))) == [2, 1, 2, 1, 2]

    def test_resplit_moves_offsets(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        before = dg.heavy.data.copy()
        dg.resplit(6.0)
        assert dg.split_delta == 6.0
        assert np.all(dg.heavy.data >= before)
        # weights 4 and 5 are now light (per-vertex sorted weight lists are
        # [1,2,4,5], [2,5,9], [1,2,4], [2,9], [1,1])
        assert list(dg.light_counts(np.arange(5))) == [4, 2, 3, 1, 2]
        # the re-split pass is charged to the device
        assert dev.counters.totals.kernel_launches == 1

    def test_resplit_without_offsets_raises(self, dev):
        dg = DeviceGraph(dev, kronecker(5, 4, seed=2))
        with pytest.raises(ValueError):
            dg.resplit(2.0)


class TestRelaxBatch:
    def test_relaxes_and_records(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        dist = dev.full(5, np.inf)
        dist.data[0] = 0.0
        stats = WorkStats()
        with dev.launch("k") as k:
            batch = dg.batch(np.array([0]), "all")
            a = thread_per_vertex_edges(batch.counts)
            targets, updated = relax_batch(k, dg, dist, np.array([0]), batch, a, stats)
        assert updated.all()
        assert stats.total_updates == 4
        # distances of vertex 0's neighbors now set
        assert np.isfinite(dist.data).sum() == 5

    def test_weight_filter_counts_divergence(self, dev):
        g = kronecker(6, 6, weights="int", seed=3)  # unsorted weights
        dg = DeviceGraph(dev, g)
        dist = dev.full(g.num_vertices, np.inf)
        dist.data[0] = 0.0
        with dev.launch("k") as k:
            batch = dg.batch(np.array([0]), "all")
            a = thread_per_vertex_edges(batch.counts)
            relax_batch(
                k, dg, dist, np.array([0]), batch, a, None,
                weight_filter=(500.0, True),
            )
        assert dev.counters.totals.branch_instructions > 0

    def test_empty_batch(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        dist = dev.full(5, np.inf)
        with dev.launch("k") as k:
            batch = dg.batch(np.array([], dtype=np.int64), "all")
            a = thread_per_vertex_edges(batch.counts)
            targets, updated = relax_batch(
                k, dg, dist, np.array([], dtype=np.int64), batch, a, None
            )
        assert targets.size == 0

    def test_multiple_stats_sinks(self, dev, pro_graph):
        dg = DeviceGraph(dev, pro_graph)
        dist = dev.full(5, np.inf)
        dist.data[0] = 0.0
        s1, s2 = WorkStats(), WorkStats()
        with dev.launch("k") as k:
            batch = dg.batch(np.array([0]), "all")
            a = thread_per_vertex_edges(batch.counts)
            relax_batch(k, dg, dist, np.array([0]), batch, a, (s1, s2))
        assert s1.total_updates == s2.total_updates == 4


class TestFrontierFlags:
    def test_push_dedups(self, dev):
        flags = FrontierFlags(dev, 10)
        with dev.launch("k") as k:
            a = thread_per_item(4)
            fresh = flags.push(k, np.array([3, 3, 5, 7]), a)
        assert list(fresh) == [3, 5, 7]

    def test_push_excludes_already_marked(self, dev):
        flags = FrontierFlags(dev, 10)
        with dev.launch("k") as k:
            flags.push(k, np.array([2]), thread_per_item(1))
            fresh = flags.push(k, np.array([2, 4]), thread_per_item(2))
        assert list(fresh) == [4]

    def test_new_round_resets_marks(self, dev):
        flags = FrontierFlags(dev, 10)
        with dev.launch("k") as k:
            flags.push(k, np.array([1, 2]), thread_per_item(2))
        flags.new_round()
        with dev.launch("k2") as k:
            fresh = flags.push(k, np.array([1]), thread_per_item(1))
        assert list(fresh) == [1]

    def test_empty_push(self, dev):
        flags = FrontierFlags(dev, 4)
        with dev.launch("k") as k:
            fresh = flags.push(k, np.array([], dtype=np.int64), thread_per_item(0))
        assert fresh.size == 0
