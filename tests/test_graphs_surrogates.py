"""Tests for the Table-1 dataset surrogates."""

import numpy as np
import pytest

from repro.graphs import DATASETS, dataset_names, load
from repro.graphs.properties import degree_skewness
from repro.graphs.surrogates import PAPER_TABLE1


class TestRegistry:
    def test_all_paper_datasets_present(self):
        for name in PAPER_TABLE1:
            assert name in DATASETS
        assert "k-n21-16" in DATASETS

    def test_dataset_names_order(self):
        names = dataset_names()
        assert names[0] == "road-TX"
        assert len(names) == 11

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("no-such-graph")

    def test_specs_carry_paper_numbers(self):
        spec = DATASETS["road-TX"]
        assert spec.paper_vertices == 1_379_917
        assert spec.paper_edges == 1_921_660
        assert spec.paper_diameter == 1054


@pytest.mark.parametrize("name", ["road-TX", "Amazon", "web-GL", "wiki-TK"])
class TestSurrogateConstruction:
    def test_loads_and_is_nonempty(self, name):
        g = load(name)
        assert g.num_vertices > 1000
        assert g.num_edges > 1000
        assert g.name == name

    def test_deterministic(self, name):
        a, b = load(name), load(name)
        assert np.array_equal(a.adj, b.adj)
        assert np.array_equal(a.weights, b.weights)

    def test_weights_are_paper_convention(self, name):
        g = load(name)
        assert g.weights.min() >= 1.0
        assert g.weights.max() <= 1000.0


class TestStructuralClasses:
    def test_road_is_uniform_degree(self):
        g = load("road-TX")
        assert degree_skewness(g) < 2.0
        assert g.degrees.max() <= 8

    def test_social_graphs_are_skewed(self):
        for name in ["com-LJ", "soc-PK", "wiki-TK"]:
            assert degree_skewness(load(name)) > 3.0, name

    def test_avg_degree_ordering_matches_paper(self):
        """com-OK is densest and road-TX/wiki-TK sparsest, as in Table 1."""
        avg = {n: load(n).average_degree for n in ["com-OK", "road-TX", "wiki-TK", "soc-PK"]}
        assert avg["com-OK"] > avg["soc-PK"] > avg["wiki-TK"]
        assert avg["road-TX"] < avg["soc-PK"]
