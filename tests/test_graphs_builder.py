"""Unit tests for edge-list -> CSR construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges
from repro.graphs.builder import dedup_edges, remove_self_loops, symmetrize_edges


class TestHelpers:
    def test_remove_self_loops(self):
        s, d, w = remove_self_loops(
            np.array([0, 1, 2]), np.array([0, 2, 2]), np.array([1.0, 2.0, 3.0])
        )
        assert list(s) == [1]
        assert list(d) == [2]
        assert list(w) == [2.0]

    def test_symmetrize_doubles(self):
        s, d, w = symmetrize_edges(
            np.array([0]), np.array([1]), np.array([7.0])
        )
        assert sorted(zip(s, d, w)) == [(0, 1, 7.0), (1, 0, 7.0)]

    def test_dedup_keeps_minimum_weight(self):
        s, d, w = dedup_edges(
            np.array([0, 0, 0]),
            np.array([1, 1, 2]),
            np.array([5.0, 2.0, 9.0]),
        )
        pairs = dict(((int(a), int(b)), float(x)) for a, b, x in zip(s, d, w))
        assert pairs == {(0, 1): 2.0, (0, 2): 9.0}

    def test_dedup_empty(self):
        s, d, w = dedup_edges(np.array([]), np.array([]), np.array([]))
        assert s.size == 0


class TestFromEdges:
    def test_basic_packing(self):
        g = from_edges(
            np.array([1, 0, 0]),
            np.array([2, 2, 1]),
            np.array([3.0, 2.0, 1.0]),
        )
        assert g.num_vertices == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.edge_weights(0)) == [1.0, 2.0]
        assert list(g.neighbors(1)) == [2]

    def test_explicit_num_vertices(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([1.0]), num_vertices=10)
        assert g.num_vertices == 10
        assert g.degrees[9] == 0

    def test_num_vertices_too_small(self):
        with pytest.raises(ValueError):
            from_edges(np.array([0]), np.array([5]), np.array([1.0]), num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            from_edges(np.array([-1]), np.array([0]), np.array([1.0]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            from_edges(np.array([0]), np.array([1, 2]), np.array([1.0]))

    def test_symmetrize_flag(self):
        g = from_edges(
            np.array([0]), np.array([1]), np.array([4.0]), symmetrize=True
        )
        assert g.num_edges == 2
        assert list(g.neighbors(1)) == [0]

    def test_self_loops_dropped_by_default(self):
        g = from_edges(np.array([0, 0]), np.array([0, 1]), np.array([1.0, 2.0]))
        assert g.num_edges == 1

    def test_self_loops_kept_when_asked(self):
        g = from_edges(
            np.array([0]), np.array([0]), np.array([1.0]), drop_self_loops=False
        )
        assert g.num_edges == 1

    def test_parallel_edges_dedup_off(self):
        g = from_edges(
            np.array([0, 0]), np.array([1, 1]), np.array([1.0, 2.0]), dedup=False
        )
        assert g.num_edges == 2

    def test_empty_input(self):
        g = from_edges(np.array([]), np.array([]), np.array([]), num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 20), st.integers(0, 20), st.floats(0.1, 100.0)
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_packing_matches_reference(self, edges):
        """CSR packing agrees with a dict-of-dicts reference under dedup."""
        if edges:
            s = np.array([e[0] for e in edges])
            d = np.array([e[1] for e in edges])
            w = np.array([e[2] for e in edges])
        else:
            s = d = w = np.array([])
        g = from_edges(s, d, w, num_vertices=21)
        ref: dict[tuple[int, int], float] = {}
        for a, b, x in edges:
            if a == b:
                continue
            key = (a, b)
            ref[key] = min(ref.get(key, np.inf), x)
        got = {(u, v): w for u, v, w in g.iter_edges()}
        assert got.keys() == ref.keys()
        for k in ref:
            assert got[k] == pytest.approx(ref[k])

    def test_adjacency_sorted_by_target_after_dedup(self):
        g = from_edges(
            np.array([0, 0, 0]),
            np.array([5, 2, 8]),
            np.array([1.0, 1.0, 1.0]),
            num_vertices=9,
        )
        assert list(g.neighbors(0)) == [2, 5, 8]
