"""Tests for bucket arithmetic and the Eq. 1–2 dynamic-Δ controller."""

import numpy as np
import pytest

from repro.sssp import BucketInterval, DeltaController, bucket_of


class TestBucketOf:
    def test_mapping(self):
        d = np.array([0.0, 0.05, 0.1, 0.25, np.inf])
        assert list(bucket_of(d, 0.1)) == [0, 0, 1, 2, -1]

    def test_all_inf(self):
        assert list(bucket_of(np.array([np.inf, np.inf]), 1.0)) == [-1, -1]


class TestDeltaController:
    def test_first_two_buckets_fixed(self):
        """'The Δ0 and Δ1 value of the first and second buckets are fixed.'"""
        c = DeltaController(10.0)
        i0 = c.next_interval()
        c.feedback(100, 50)
        i1 = c.next_interval()
        assert (i0.lo, i0.hi) == (0.0, 10.0)
        assert (i1.lo, i1.hi) == (10.0, 20.0)
        assert c.epsilons == [0.0, 0.0]

    def test_epsilon_formula_hand_computed(self):
        """Eq. 1 with C = (100, 300), T = (50, 150):
        eps_2 = |100-300|/400 * (50-150)/200 * 10 = 0.5 * (-0.5) * 10 = -2.5
        """
        c = DeltaController(10.0)
        c.next_interval()
        c.feedback(100, 50)
        c.next_interval()
        c.feedback(300, 150)
        i2 = c.next_interval()
        assert c.epsilons[2] == pytest.approx(-2.5)
        assert i2.width == pytest.approx(7.5)
        assert i2.lo == pytest.approx(20.0)

    def test_delta_grows_when_utilization_falls(self):
        """T falling (T_{i-2} > T_{i-1}) makes the second factor positive."""
        c = DeltaController(10.0)
        c.next_interval()
        c.feedback(300, 200)
        c.next_interval()
        c.feedback(100, 50)
        i2 = c.next_interval()
        assert c.epsilons[2] > 0
        assert i2.width > 10.0

    def test_zero_feedback_keeps_width(self):
        c = DeltaController(10.0)
        c.next_interval()
        c.feedback(0, 0)
        c.next_interval()
        c.feedback(0, 0)
        i2 = c.next_interval()
        assert i2.width == 10.0

    def test_width_clamped(self):
        c = DeltaController(10.0, min_delta=8.0, max_delta=12.0)
        c.next_interval()
        c.feedback(1000, 1)
        c.next_interval()
        c.feedback(1, 1000)  # big negative epsilon
        i2 = c.next_interval()
        assert i2.width >= 8.0

    def test_epsilon_requires_history(self):
        c = DeltaController(10.0)
        with pytest.raises(ValueError):
            c.epsilon(2)

    def test_invalid_delta0(self):
        with pytest.raises(ValueError):
            DeltaController(0.0)

    def test_intervals_are_contiguous(self):
        c = DeltaController(5.0)
        prev_hi = 0.0
        for i in range(6):
            iv = c.next_interval()
            assert iv.lo == pytest.approx(prev_hi)
            assert iv.index == i
            prev_hi = iv.hi
            c.feedback(10 * (i + 1), 5 * (i + 2))

    def test_interval_width_property(self):
        assert BucketInterval(0, 2.0, 5.5).width == pytest.approx(3.5)
