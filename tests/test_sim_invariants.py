"""Conservation invariants of the simulator's accounting.

Property-based checks that the measurement plumbing cannot silently leak:
per-kernel counters sum to the device totals, the timeline's durations sum
to the clock (minus inter-kernel barriers), transactions never undercount
instructions' minimum traffic, hits never exceed accesses, and SIMT lane
accounting stays within physical bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges, kronecker
from repro.gpusim import V100
from repro.sssp import sssp

SPEC = V100.scaled_for_workload(1 / 64)

graph_params = st.tuples(
    st.integers(2, 32), st.integers(0, 100), st.integers(0, 10_000)
)


def build(params):
    n, m, seed = params
    rng = np.random.default_rng(seed)
    g = from_edges(
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 30, m).astype(float),
        num_vertices=n,
        symmetrize=True,
    )
    return g, int(rng.integers(0, n))


def run(params, method="rdbs"):
    g, s = build(params)
    return sssp(g, s, method=method, spec=SPEC)


@given(params=graph_params)
@settings(max_examples=25, deadline=None)
def test_per_kernel_counters_sum_to_totals(params):
    r = run(params)
    c = r.counters
    assert sum(
        k.inst_executed_global_loads for _n, k in c.per_kernel
    ) == c.totals.inst_executed_global_loads
    assert sum(
        k.total_transactions for _n, k in c.per_kernel
    ) == c.totals.total_transactions
    assert sum(k.l1_hits for _n, k in c.per_kernel) == c.totals.l1_hits


@given(params=graph_params)
@settings(max_examples=25, deadline=None)
def test_timeline_sums_to_clock(params):
    r = run(params)
    tl = r.extra["timeline"]
    barrier_time = r.counters.totals.barriers * SPEC.barrier_s
    # device barriers recorded inside fused kernels are part of kernel
    # durations; only inter-kernel barriers add outside the timeline
    assert tl.total_s <= r.time_ms * 1e-3 + 1e-15
    assert r.time_ms * 1e-3 <= tl.total_s + barrier_time + 1e-12


@given(params=graph_params)
@settings(max_examples=25, deadline=None)
def test_hits_never_exceed_accesses(params):
    for method in ("rdbs", "bl"):
        c = run(params, method).counters.totals
        assert 0 <= c.l1_hits <= c.l1_accesses
        assert 0.0 <= c.global_hit_rate <= 100.0


@given(params=graph_params)
@settings(max_examples=25, deadline=None)
def test_lane_accounting_bounds(params):
    c = run(params).counters.totals
    # issued lane slots are at least the active lanes and exactly
    # 32x some instruction count
    assert c.active_lanes <= c.lane_slots
    assert c.lane_slots % 32 == 0
    assert 0.0 < c.simt_efficiency <= 1.0


@given(params=graph_params)
@settings(max_examples=25, deadline=None)
def test_transactions_at_least_instruction_floor(params):
    """A warp-level memory instruction issues >= 1 transaction."""
    c = run(params).counters.totals
    assert c.global_load_transactions >= c.inst_executed_global_loads
    assert c.global_store_transactions >= c.inst_executed_global_stores
    assert c.atomic_transactions >= c.inst_executed_atomics


@given(params=graph_params)
@settings(max_examples=20, deadline=None)
def test_update_accounting_consistency(params):
    """updates + checks == relaxations; one valid update per reached
    vertex at minimum (the final write)."""
    r = run(params)
    t = r.work
    assert t.total_updates + t.checks == t.relaxations
    assert t.valid_updates >= r.reached
    assert t.invalid_updates == t.total_updates - t.valid_updates


@given(params=graph_params, chunk=st.sampled_from([1, 16, 4096]))
@settings(max_examples=15, deadline=None)
def test_chunking_does_not_change_distance_or_totals_validity(params, chunk):
    g, s = build(params)
    a = sssp(g, s, method="rdbs", spec=SPEC)
    b = sssp(g, s, method="rdbs", spec=SPEC, async_chunk=chunk)
    assert np.array_equal(a.dist, b.dist)


def test_time_monotone_in_graph_size():
    """More edges, same structure -> at least as much simulated time."""
    small = kronecker(8, 8, weights="int", seed=80)
    big = kronecker(10, 8, weights="int", seed=80)
    t_small = sssp(small, 0, method="rdbs", spec=SPEC).time_ms
    t_big = sssp(big, 0, method="rdbs", spec=SPEC).time_ms
    assert t_big > t_small * 0.8
