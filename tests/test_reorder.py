"""Tests for property-driven reordering (PRO, paper §4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges, kronecker, paper_fig4_graph
from repro.reorder import (
    apply_permutation,
    apply_pro,
    attach_heavy_offsets,
    compute_heavy_offsets,
    degree_order,
    pro_report,
    recompute_offsets,
    reorder_by_degree,
    sort_adjacency_by_weight,
)
from repro.sssp import dijkstra


def random_graph(seed: int, n: int = 30, m: int = 120):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    w = rng.integers(1, 50, m).astype(float)
    return from_edges(src, dst, w, num_vertices=n, symmetrize=True)


class TestDegreeOrder:
    def test_descending_and_stable(self):
        g = paper_fig4_graph()
        # paper: "we reorder the original vertex id from 0,1,2,3,4 to
        # reorder vertex id 1,3,4,0,2"
        assert list(degree_order(g)) == [1, 3, 4, 0, 2]

    def test_permutation_topology_preserved(self):
        g = random_graph(0)
        rg = reorder_by_degree(g)
        orig = {(u, v): w for u, v, w in g.iter_edges()}
        back = {
            (int(rg.new_to_old[u]), int(rg.new_to_old[v])): w
            for u, v, w in rg.iter_edges()
        }
        assert orig == back

    def test_degrees_monotone_after_reorder(self):
        g = random_graph(1)
        rg = reorder_by_degree(g)
        assert np.all(np.diff(rg.degrees) <= 0)

    def test_invalid_permutation_rejected(self):
        g = random_graph(2)
        with pytest.raises(ValueError):
            apply_permutation(g, np.zeros(g.num_vertices, dtype=np.int64))
        with pytest.raises(ValueError):
            apply_permutation(g, np.arange(g.num_vertices - 1))

    def test_composition_of_permutations(self):
        """Reordering twice still maps back to the first id space."""
        g = random_graph(3)
        once = reorder_by_degree(g)
        twice = reorder_by_degree(once)
        vals = np.arange(g.num_vertices, dtype=float)
        # to_original_order of identity-permuted values must invert exactly
        marked = vals.copy()
        out = twice.to_original_order(marked[np.argsort(np.argsort(marked))])
        assert out.shape == vals.shape

    def test_distances_equivalent_after_reorder(self):
        g = random_graph(4)
        rg = reorder_by_degree(g)
        src = 0
        d_orig = dijkstra(g, src).dist
        d_re = dijkstra(rg, int(rg.old_to_new[src])).dist
        assert np.allclose(rg.to_original_order(d_re), d_orig)


class TestWeightSort:
    def test_segments_sorted(self):
        g = random_graph(5)
        sg = sort_adjacency_by_weight(g)
        for u in range(sg.num_vertices):
            w = sg.edge_weights(u)
            assert np.all(np.diff(w) >= 0)

    def test_edge_multiset_preserved(self):
        g = random_graph(6)
        sg = sort_adjacency_by_weight(g)
        assert sorted(g.iter_edges()) == sorted(sg.iter_edges())

    def test_empty_graph_noop(self):
        g = from_edges(np.array([]), np.array([]), np.array([]), num_vertices=3)
        assert sort_adjacency_by_weight(g) is g


class TestHeavyOffsets:
    def test_requires_sorted(self):
        g = from_edges(
            np.array([0, 0]), np.array([1, 2]), np.array([9.0, 1.0]),
            num_vertices=3, dedup=False,
        )
        with pytest.raises(ValueError, match="not weight-sorted"):
            compute_heavy_offsets(g, 5.0)

    def test_offsets_split_correctly(self):
        g = sort_adjacency_by_weight(random_graph(7))
        delta = 25.0
        off = compute_heavy_offsets(g, delta)
        for u in range(g.num_vertices):
            lo, hi = g.row[u], g.row[u + 1]
            k = off[u]
            assert lo <= k <= hi
            assert np.all(g.weights[lo:k] < delta)
            assert np.all(g.weights[k:hi] >= delta)

    def test_delta_must_be_positive(self):
        g = sort_adjacency_by_weight(random_graph(8))
        with pytest.raises(ValueError):
            compute_heavy_offsets(g, 0.0)

    def test_attach_and_recompute(self):
        g = attach_heavy_offsets(sort_adjacency_by_weight(random_graph(9)), 10.0)
        assert g.delta == 10.0
        g2 = recompute_offsets(g, 40.0)
        assert g2.delta == 40.0
        assert np.all(g2.heavy_offsets >= g.heavy_offsets)

    def test_recompute_requires_offsets(self):
        g = random_graph(10)
        with pytest.raises(ValueError):
            recompute_offsets(g, 5.0)

    @given(delta=st.floats(0.5, 60.0))
    @settings(max_examples=25, deadline=None)
    def test_light_degree_counts(self, delta):
        g = sort_adjacency_by_weight(random_graph(11))
        g = attach_heavy_offsets(g, delta)
        expected = np.array(
            [int((g.edge_weights(u) < delta).sum()) for u in range(g.num_vertices)]
        )
        assert np.array_equal(g.light_degrees(), expected)


class TestPipeline:
    def test_fig4_exact_reproduction(self):
        """apply_pro reproduces the paper's Fig. 4(c) arrays verbatim."""
        g = apply_pro(paper_fig4_graph(), delta=3.0)
        assert list(g.new_to_old) == [1, 3, 4, 0, 2]
        assert list(g.row) == [0, 4, 7, 10, 12, 14]
        assert list(g.heavy_offsets) == [2, 5, 9, 11, 14]
        assert list(g.adj) == [4, 3, 2, 1, 2, 0, 3, 4, 1, 0, 0, 1, 0, 2]
        assert list(g.weights) == [1, 2, 4, 5, 2, 5, 9, 1, 2, 4, 2, 9, 1, 1]

    def test_toggles(self):
        g = random_graph(12)
        assert apply_pro(g, 5.0, degree_reorder=False, weight_sort=False) is g
        only_sort = apply_pro(g, 5.0, degree_reorder=False)
        assert only_sort.new_to_old is None
        assert only_sort.heavy_offsets is not None

    def test_distances_preserved_by_pro(self):
        g = random_graph(13)
        pg = apply_pro(g, 10.0)
        d0 = dijkstra(g, 2).dist
        d1 = dijkstra(pg, int(pg.old_to_new[2])).dist
        assert np.allclose(pg.to_original_order(d1), d0)

    def test_pro_report_reduces_mixed_pairs(self):
        g = kronecker(8, 8, weights="int", seed=3)
        rep = pro_report(g, delta=300.0)
        # weight sorting leaves at most one light/heavy flip per segment
        assert rep.mixed_pairs_after <= rep.mixed_pairs_before
        assert rep.locality_gain > 0
