"""Tests that pin the paper's worked examples exactly.

Fig. 1(b): the motivation count of valid/invalid updates and invalid
checks under synchronous push execution.  Fig. 4(c): the property-driven
reordering output (also asserted in test_reorder, repeated here as the
canonical paper-fidelity check).  Fig. 2/3 shapes are asserted on the
scaled Kronecker inputs.
"""

import numpy as np
import pytest

from repro.graphs import kronecker, paper_fig1_graph, paper_fig4_graph
from repro.gpusim import V100
from repro.reorder import apply_pro
from repro.sssp import bl_sssp, delta_stepping_cpu, validate_distances

SPEC = V100.scaled_for_workload(1 / 64)


class TestFig1:
    def test_distances(self):
        """Final shortest distances from vertex 0 (hand-checked)."""
        g = paper_fig1_graph()
        r = bl_sssp(g, 0, spec=SPEC)
        validate_distances(g, 0, r.dist)
        assert list(r.dist) == [0.0, 3.0, 1.0, 2.0, 3.0, 4.0, 4.0, 5.0]

    def test_sync_push_has_invalid_work(self):
        """Fig. 1(b)'s point: synchronous push mode performs invalid
        updates and invalid checks on this graph."""
        g = paper_fig1_graph()
        r = bl_sssp(g, 0, spec=SPEC)
        t = r.work
        assert t.invalid_updates > 0
        assert t.checks > 0
        # 8 reachable vertices: at least 8 valid updates (incl. source)
        assert t.valid_updates >= 8

    def test_fig1b_first_iterations_update_counts(self):
        """Replaying the figure's first two synchronous iterations by hand:
        iteration 1 relaxes vertex 0's edges (3 updates: v1=5, v2=1, v3=3 —
        of which v1's and v3's values are not final -> invalid); the figure
        marks exactly 2 of the first wave's updates as valid (v2 and v4's
        eventual values)."""
        g = paper_fig1_graph()
        dist = np.full(8, np.inf)
        dist[0] = 0
        final = np.array([0.0, 3.0, 1.0, 2.0, 3.0, 4.0, 4.0, 5.0])
        # iteration 1: relax 0's edges
        first_targets = g.neighbors(0)
        first_values = g.edge_weights(0)
        valid_first = sum(
            1 for v, w in zip(first_targets, first_values) if w == final[v]
        )
        assert valid_first == 1  # only 0->2 (w=1) is final


class TestFig4:
    def test_exact_reordered_csr(self):
        g = apply_pro(paper_fig4_graph(), delta=3.0)
        assert list(g.new_to_old) == [1, 3, 4, 0, 2]
        assert list(g.row) == [0, 4, 7, 10, 12, 14]
        assert list(g.heavy_offsets) == [2, 5, 9, 11, 14]
        assert list(g.adj) == [4, 3, 2, 1, 2, 0, 3, 4, 1, 0, 0, 1, 0, 2]
        assert list(g.weights) == [1, 2, 4, 5, 2, 5, 9, 1, 2, 4, 2, 9, 1, 1]

    def test_degree_monotone(self):
        g = apply_pro(paper_fig4_graph(), delta=3.0)
        assert np.all(np.diff(g.degrees) <= 0)


class TestFig2Fig3Shapes:
    """The motivation study's qualitative claims on Kronecker + Δ = 0.1."""

    @pytest.fixture(scope="class")
    def trace_run(self):
        g = kronecker(10, 16, weights="unit", seed=99)
        return delta_stepping_cpu(g, 0, delta=0.1, record_trace=True)

    def test_bucket_sizes_rise_then_fall(self, trace_run):
        """Fig. 2: 'the number of active vertices increases dramatically in
        a given bucket, then decreases gradually in subsequent buckets'."""
        sizes = [b.initial_active for b in trace_run.trace.buckets]
        peak = int(np.argmax(sizes))
        assert 0 < peak < len(sizes) - 1
        assert sizes[peak] > 10 * sizes[0]
        assert sizes[-1] < sizes[peak]

    def test_peak_bucket_needs_many_iterations(self, trace_run):
        """Fig. 3: the peak bucket's phase 1 runs multiple synchronous
        iterations (the paper reports > 20 at SCALE 24/25; iteration depth
        shrinks with graph scale, so >= 3 at SCALE 10)."""
        peak = trace_run.trace.peak_bucket()
        assert peak.num_iterations >= 3

    def test_total_updates_exceed_valid(self, trace_run):
        """Fig. 3 annotation: total updates well above valid updates."""
        peak = trace_run.trace.peak_bucket()
        assert peak.phase1_total_updates > peak.phase1_valid_updates > 0
