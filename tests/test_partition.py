"""Tests for the vertex-partitioning strategies."""

import numpy as np
import pytest

from repro.graphs import (
    block_partition,
    degree_balanced_partition,
    edge_balanced_partition,
    kronecker,
    largest_component_vertices,
    partition_edge_counts,
    partition_imbalance,
    random_partition,
    star,
)
from repro.gpusim import V100, multi_gpu_sssp
from repro.sssp import validate_distances

SPEC = V100.scaled_for_workload(1 / 64)


class TestStrategies:
    def test_block_contiguous_and_complete(self):
        owner = block_partition(10, 3)
        assert owner.size == 10
        assert list(owner) == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_block_more_parts_than_vertices(self):
        owner = block_partition(2, 5)
        assert owner.max() < 5

    def test_edge_balanced_beats_block_on_powerlaw(self):
        g = kronecker(10, 8, weights="int", seed=110)
        blk = partition_imbalance(g, block_partition(g.num_vertices, 4))
        edge = partition_imbalance(g, edge_balanced_partition(g, 4))
        assert edge <= blk + 1e-9
        assert edge < 1.2

    def test_edge_balanced_on_edgeless(self):
        from repro.graphs import CSRGraph

        g = CSRGraph(row=np.zeros(6, dtype=np.int64), adj=np.array([]),
                     weights=np.array([]))
        owner = edge_balanced_partition(g, 2)
        assert owner.size == 5

    def test_degree_balanced_is_best(self):
        g = star(100)  # one hub: degree-balanced must isolate it sensibly
        deg = partition_imbalance(g, degree_balanced_partition(g, 4))
        blk = partition_imbalance(g, block_partition(g.num_vertices, 4))
        assert deg <= blk

    def test_random_deterministic_by_seed(self):
        a = random_partition(100, 4, seed=1)
        b = random_partition(100, 4, seed=1)
        c = random_partition(100, 4, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_edge_counts_sum_to_m(self):
        g = kronecker(8, 6, weights="int", seed=111)
        for owner in (
            block_partition(g.num_vertices, 3),
            edge_balanced_partition(g, 3),
            degree_balanced_partition(g, 3),
        ):
            assert partition_edge_counts(g, owner).sum() == g.num_edges

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            block_partition(10, 0)
        with pytest.raises(ValueError):
            random_partition(10, 0)

    def test_imbalance_of_empty(self):
        from repro.graphs import CSRGraph

        g = CSRGraph(row=np.array([0]), adj=np.array([]), weights=np.array([]))
        assert partition_imbalance(g, np.zeros(0, dtype=np.int64)) == 1.0


class TestMultiGpuPartitions:
    @pytest.mark.parametrize(
        "strategy", ["block", "edge-balanced", "random", "degree-balanced"]
    )
    def test_all_strategies_correct(self, strategy):
        g = kronecker(8, 8, weights="int", seed=112)
        src = int(largest_component_vertices(g)[0])
        r = multi_gpu_sssp(
            g, src, num_gpus=4, spec=SPEC, partition=strategy
        )
        validate_distances(g, src, r.dist)

    def test_explicit_owner_array(self):
        g = kronecker(7, 6, weights="int", seed=113)
        src = int(largest_component_vertices(g)[0])
        owner = random_partition(g.num_vertices, 2, seed=9)
        r = multi_gpu_sssp(g, src, num_gpus=2, spec=SPEC, partition=owner)
        validate_distances(g, src, r.dist)

    def test_invalid_strategy(self):
        g = kronecker(6, 4, weights="int", seed=114)
        with pytest.raises(ValueError, match="unknown partition"):
            multi_gpu_sssp(g, 0, num_gpus=2, spec=SPEC, partition="metis")

    def test_invalid_owner_array(self):
        g = kronecker(6, 4, weights="int", seed=115)
        with pytest.raises(ValueError):
            multi_gpu_sssp(
                g, 0, num_gpus=2, spec=SPEC,
                partition=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ValueError):
            multi_gpu_sssp(
                g, 0, num_gpus=2, spec=SPEC,
                partition=np.full(g.num_vertices, 7, dtype=np.int64),
            )

    def test_balanced_partition_not_slower(self):
        """On a hub-heavy graph the edge-balanced partition's slowest GPU
        does no more work than the block partition's."""
        g = kronecker(10, 8, weights="int", seed=116)
        src = int(largest_component_vertices(g)[0])
        blk = multi_gpu_sssp(g, src, num_gpus=4, spec=SPEC, partition="block")
        bal = multi_gpu_sssp(
            g, src, num_gpus=4, spec=SPEC, partition="edge-balanced"
        )
        assert bal.compute_time_ms <= blk.compute_time_ms * 1.25
