"""Regression tests for bugs found and fixed during development.

Each test pins the exact scenario that originally failed, so the bug class
cannot silently return.
"""

import numpy as np
import pytest

from repro.graphs import grid_road_network, kronecker, largest_component_vertices
from repro.gpusim import V100
from repro.sssp import DeltaController, rdbs_sssp, validate_distances

SPEC = V100.scaled_for_workload(1 / 64)


class TestDynamicDeltaHeavySplit:
    """Bug: with the Eq. 1–2 controller, bucket widths can exceed the
    preprocessing Δ.  Heavy edges (split at the *old* Δ) then land inside
    the current bucket; the vertex is below ``b_hi`` when the bucket
    closes, the sweep pointer moves past it, and its out-edges are never
    relaxed — one vertex ends up unreachable.  Originally reproduced on
    the road-TX surrogate (dense distances, many buckets, growing Δ).
    Fix: re-split the heavy offsets on device whenever the bucket width
    outgrows the current split threshold (the paper's adaptive offsets,
    §4.1)."""

    def test_road_surrogate_full_run(self):
        g = grid_road_network(64, 64, diagonal_prob=0.03, drop_prob=0.06, seed=11)
        src = int(largest_component_vertices(g)[0])
        r = rdbs_sssp(g, src, spec=SPEC)
        validate_distances(g, src, r.dist)

    def test_forced_delta_growth(self):
        """Drive the controller hard: tiny Δ0 so widths must grow a lot."""
        g = kronecker(8, 8, weights="int", seed=97)
        src = int(largest_component_vertices(g)[0])
        r = rdbs_sssp(g, src, delta=5.0, spec=SPEC)
        validate_distances(g, src, r.dist)

    def test_width_growth_triggers_resplit_kernel(self):
        g = grid_road_network(32, 32, seed=12)
        src = int(largest_component_vertices(g)[0])
        r = rdbs_sssp(g, src, delta=50.0, spec=SPEC)
        validate_distances(g, src, r.dist)
        resplits = [
            c for name, c in r.counters.per_kernel if name == "resplit_offsets"
        ]
        assert len(resplits) >= 1


class TestControllerEmptyBuckets:
    """Bug class: sparse distance ranges produce long runs of empty
    intervals; the controller must keep advancing (zero feedback keeps the
    width, Eq. 1 denominators guard division by zero)."""

    def test_zero_feedback_division_guard(self):
        c = DeltaController(10.0)
        c.next_interval()
        c.feedback(0, 0)
        c.next_interval()
        c.feedback(0, 0)
        assert c.epsilon(2) == 0.0

    def test_huge_weight_gap(self):
        """Two clusters joined by one enormous edge: most intervals
        between them are empty."""
        from repro.graphs import from_edges

        src = np.array([0, 1, 3, 4, 2])
        dst = np.array([1, 2, 4, 5, 3])
        w = np.array([1.0, 1.0, 1.0, 1.0, 5000.0])
        g = from_edges(src, dst, w, num_vertices=6, symmetrize=True)
        r = rdbs_sssp(g, 0, delta=2.0, spec=SPEC)
        validate_distances(g, 0, r.dist)


class TestFrontierChunkBoundary:
    """Bug class: splitting the async queue mid-array must neither drop
    nor duplicate vertices."""

    @pytest.mark.parametrize("chunk", [1, 2, 3, 5])
    def test_tiny_chunks_exact(self, chunk):
        g = kronecker(7, 8, weights="int", seed=98)
        src = int(largest_component_vertices(g)[0])
        r = rdbs_sssp(g, src, spec=SPEC, async_chunk=chunk)
        validate_distances(g, src, r.dist)


class TestReorderedSourceMapping:
    """Bug class: with PRO the engine runs in relabeled id space; the
    source must be mapped in and the distances mapped out."""

    def test_every_source_round_trips(self):
        g = kronecker(6, 6, weights="int", seed=99)
        for s in range(0, g.num_vertices, 5):
            a = rdbs_sssp(g, s, pro=True, spec=SPEC).dist
            b = rdbs_sssp(g, s, pro=False, spec=SPEC).dist
            assert np.array_equal(a, b), s
