"""Tests for the ALT landmark distance oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges, grid_road_network, kronecker, path
from repro.gpusim import V100
from repro.sssp import (
    LandmarkOracle,
    build_landmark_oracle,
    scipy_distances,
    select_landmarks,
)

SPEC = V100.scaled_for_workload(1 / 64)


class TestSelection:
    def test_selects_k_distinct(self):
        g = kronecker(8, 8, weights="int", seed=90)
        landmarks, matrix = select_landmarks(g, 4, spec=SPEC)
        assert len(set(landmarks.tolist())) == landmarks.size == 4
        assert matrix.shape == (4, g.num_vertices)

    def test_farthest_point_spread_on_path(self):
        """On a path, the 2nd landmark lands at an end far from the 1st."""
        g = path(50)
        landmarks, _ = select_landmarks(g, 2, method="dijkstra", seed=3)
        assert abs(int(landmarks[1]) - int(landmarks[0])) >= 25

    def test_caps_at_component_size(self):
        g = path(3)
        landmarks, _ = select_landmarks(g, 10, method="dijkstra")
        assert landmarks.size <= 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            select_landmarks(path(4), 0)


class TestOracleBounds:
    @pytest.fixture(scope="class")
    def setup(self):
        g = grid_road_network(12, 12, seed=91)
        oracle = build_landmark_oracle(g, 5, method="dijkstra", seed=1)
        exact = {s: scipy_distances(g, s) for s in [0, 50, 100]}
        return g, oracle, exact

    def test_bounds_bracket_exact(self, setup):
        g, oracle, exact = setup
        for s, d in exact.items():
            for v in range(0, g.num_vertices, 7):
                if not np.isfinite(d[v]):
                    continue
                lo, hi = oracle.bounds(s, v)
                assert lo <= d[v] + 1e-9, (s, v)
                assert hi >= d[v] - 1e-9, (s, v)

    def test_exact_for_landmark_queries(self, setup):
        _g, oracle, _ = setup
        lm = int(oracle.landmarks[0])
        for v in range(0, oracle.dist_matrix.shape[1], 13):
            d = oracle.dist_matrix[0, v]
            if not np.isfinite(d):
                continue
            lo, hi = oracle.bounds(lm, v)
            assert lo == pytest.approx(d)
            assert hi == pytest.approx(d)

    def test_vectorized_matches_scalar(self, setup):
        _g, oracle, _ = setup
        us = np.array([0, 3, 9, 27])
        vs = np.array([50, 60, 70, 80])
        lower, upper = oracle.bound_many(us, vs)
        for i in range(us.size):
            lo, hi = oracle.bounds(int(us[i]), int(vs[i]))
            assert lower[i] == pytest.approx(lo)
            assert upper[i] == pytest.approx(hi)

    def test_self_query(self, setup):
        _g, oracle, _ = setup
        lo, hi = oracle.bounds(5, 5)
        assert lo == 0.0
        assert hi >= 0.0

    def test_mean_gap_in_unit_range(self, setup):
        g, oracle, exact = setup
        sample = np.arange(0, g.num_vertices, 11)
        gap = oracle.mean_gap(exact[0], np.concatenate([[0], sample]))
        assert 0.0 <= gap <= 1.0


class TestDisconnected:
    def test_unreachable_pairs(self):
        g = from_edges(
            np.array([0, 2]), np.array([1, 3]), np.ones(2),
            num_vertices=4, symmetrize=True,
        )
        oracle = build_landmark_oracle(g, 2, method="dijkstra")
        lo, hi = oracle.bounds(0, 3)
        assert lo == 0.0          # no landmark sees both sides
        assert hi == float("inf")


@given(seed=st.integers(0, 200), k=st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_property_bounds_always_bracket(seed, k):
    rng = np.random.default_rng(seed)
    n, m = 18, 50
    g = from_edges(
        rng.integers(0, n, m), rng.integers(0, n, m),
        rng.integers(1, 20, m).astype(float),
        num_vertices=n, symmetrize=True,
    )
    oracle = build_landmark_oracle(g, k, method="dijkstra", seed=seed)
    s = int(rng.integers(0, n))
    exact = scipy_distances(g, s)
    for v in range(n):
        if not np.isfinite(exact[v]):
            continue
        lo, hi = oracle.bounds(s, v)
        assert lo <= exact[v] + 1e-9
        assert hi >= exact[v] - 1e-9
