"""Tests for the static effect analyzer (repro.analysis.static)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.static import (
    analyze_paths,
    build_corpus,
    build_manifest,
    diff_manifest,
    load_manifest,
    write_manifest,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: every launch label the engine corpus must produce a signature for
EXPECTED_KERNELS = {
    "phase1_async", "phase1_sync", "phase23_fused",   # rdbs
    "adds_split", "adds_async",                        # adds
    "bl_relax",                                        # baseline
    "hn_relax",                                        # harish
    "nearfar_split", "nearfar_relax",                  # near-far
    "resplit_offsets",                                 # shared relax layer
    "bfs_expand", "cc_propagate", "pagerank_push",     # graphalgs
    "recovery_probe", "recovery_verify", "recovery_relax",  # faults
    "mg_relax_g{}",                                    # multi-GPU
}


def analyze_src(tmp_path, source: str):
    """Write one module and analyze it."""
    mod = tmp_path / "engine.py"
    mod.write_text(source)
    return analyze_paths([str(mod)])


def codes(findings, severity=None):
    return [
        f.code for f in findings if severity is None or f.severity == severity
    ]


class TestProvenance:
    def test_affine_scatter_is_disjoint(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, out, vals):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, np.arange(4), vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.scatters[0]["class"] == "disjoint"
        assert sig.scatters[0]["index_provenance"] == "affine"
        assert findings == []

    def test_offset_plus_arange_stays_affine(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, out, vals, offset):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, offset + np.arange(4), vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.scatters[0]["class"] == "disjoint"
        assert findings == []

    def test_flatnonzero_is_unique(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, out, vals, mask):\n"
            "    fresh = np.flatnonzero(mask)\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, fresh, vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.scatters[0]["index_provenance"] == "unique"
        assert sig.scatters[0]["class"] == "disjoint"
        assert findings == []

    def test_mask_subscript_preserves_injectivity(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, out, vals, flags):\n"
            "    cand = np.arange(10)\n"
            "    keep = flags > 0\n"
            "    sel = cand[keep]\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, sel, vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.scatters[0]["index_provenance"] == "unique"
        assert findings == []

    def test_gathered_index_is_tracked(self, tmp_path):
        sigs, _ = analyze_src(tmp_path, (
            "def f(device, dgraph, vals, frontier):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        targets = k.gather(dgraph.adj, frontier, a)\n"
            "        k.atomic_min(dgraph.dist, targets, vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.arrays["dist"]["atomic_min"] == ["gathered"]

    def test_fancy_index_loses_injectivity(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, out, vals, perm):\n"
            "    base = np.arange(10)\n"
            "    twisted = base[perm]\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, twisted, vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.scatters[0]["class"] == "unknown"
        assert codes(findings, "error") == ["AN302"]


class TestRaceRules:
    RACY = (
        "def f(device, dgraph, dist, frontier):\n"
        "    with device.launch('racy', 4) as k:\n"
        "        a = object()\n"
        "        targets = k.gather(dgraph.adj, frontier, a)\n"
        "        nd = k.gather(dist, frontier, a)\n"
        "        k.scatter(dist, targets, nd, a)\n"
    )

    def test_an301_overlapping_nonatomic_scatter_is_error(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, self.RACY)
        assert "AN301" in codes(findings, "error")
        (sig,) = sigs.values()
        assert sig.scatters[0]["class"] == "racy"

    def test_an301_not_silenced_by_justification(self, tmp_path):
        src = self.RACY.replace(
            "k.scatter(dist, targets, nd, a)",
            "k.scatter(dist, targets, nd, a)  # repro-static: assume-disjoint",
        )
        _, findings = analyze_src(tmp_path, src)
        assert "AN301" in codes(findings, "error")

    def test_uniform_values_make_gathered_scatter_benign(self, tmp_path):
        _, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, dgraph, flags, frontier):\n"
            "    with device.launch('mark', 4) as k:\n"
            "        a = object()\n"
            "        targets = k.gather(dgraph.adj, frontier, a)\n"
            "        k.scatter(flags, targets, np.ones(4), a)\n"
        ))
        assert codes(findings, "error") == []

    def test_an302_justification_silences_unknown(self, tmp_path):
        _, findings = analyze_src(tmp_path, (
            "def f(device, out, vals, perm):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        # repro-static: assume-disjoint -- perm is a permutation\n"
            "        k.scatter(out, perm, vals, a)\n"
        ))
        assert findings == []

    def test_an304_atomic_plain_mix_needs_barrier(self, tmp_path):
        mix = (
            "import numpy as np\n"
            "def f(device, dist, targets, nd):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.atomic_min(dist, targets, nd, a)\n"
            "        k.scatter(dist, np.arange(4), np.zeros(4), a)\n"
        )
        _, findings = analyze_src(tmp_path, mix)
        assert "AN304" in codes(findings, "error")

    def test_an304_silenced_by_device_barrier(self, tmp_path):
        split = (
            "import numpy as np\n"
            "def f(device, dist, targets, nd):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.atomic_min(dist, targets, nd, a)\n"
            "        k.device_barrier()\n"
            "        k.scatter(dist, np.arange(4), np.zeros(4), a)\n"
        )
        _, findings = analyze_src(tmp_path, split)
        assert "AN304" not in codes(findings)

    def test_an305_two_plain_sites_same_window(self, tmp_path):
        _, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, out, x, y):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, np.arange(4), x, a)\n"
            "        k.scatter(out, 2 + np.arange(4), y, a)\n"
        ))
        assert "AN305" in codes(findings, "error")

    def test_an305_split_by_barrier(self, tmp_path):
        _, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, out, x, y):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, np.arange(4), x, a)\n"
            "        k.device_barrier()\n"
            "        k.scatter(out, 2 + np.arange(4), y, a)\n"
        ))
        assert "AN305" not in codes(findings)

    def test_loop_back_edge_keeps_ops_in_one_window(self, tmp_path):
        # the barrier inside the loop body does NOT protect the
        # wrap-around path tail -> head, so the mix is still flagged
        _, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, dist, targets, nd, rounds):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        for _ in range(rounds):\n"
            "            k.scatter(dist, np.arange(4), np.zeros(4), a)\n"
            "            k.device_barrier()\n"
            "            k.atomic_min(dist, targets, nd, a)\n"
        ))
        assert "AN304" in codes(findings, "error")

    def test_host_loop_around_launch_is_not_a_window(self, tmp_path):
        # separate launches per host iteration: no wrap-around window
        _, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, dist, targets, nd, rounds):\n"
            "    for _ in range(rounds):\n"
            "        with device.launch('k', 4) as k:\n"
            "            a = object()\n"
            "            k.scatter(dist, np.arange(4), np.zeros(4), a)\n"
            "            k.device_barrier()\n"
            "            k.atomic_min(dist, targets, nd, a)\n"
        ))
        assert "AN304" not in codes(findings)


class TestAsyncSafety:
    def test_plain_dist_store_sync_kernel_warns(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, dist, vals):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(dist, np.arange(4), vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.verdict == "requires-barrier"
        assert codes(findings, "warning") == ["AN303"]
        assert codes(findings, "error") == []

    def test_plain_dist_store_async_kernel_errors(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def f(device, dist, vals, rounds):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        for _ in range(rounds):\n"
            "            k.scatter(dist, np.arange(4), vals, a)\n"
            "            k.async_round(4)\n"
        ))
        (sig,) = sigs.values()
        assert sig.verdict == "unsafe"
        assert "AN303" in codes(findings, "error")

    def test_atomic_min_dist_is_async_safe(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "def f(device, dist, targets, nd, rounds):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        for _ in range(rounds):\n"
            "            k.atomic_min(dist, targets, nd, a)\n"
            "            k.async_round(4)\n"
        ))
        (sig,) = sigs.values()
        assert sig.verdict == "async-safe"
        assert findings == []

    def test_atomic_add_on_dist_warns_an306(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "def f(device, dist, targets, nd):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.atomic_add(dist, targets, nd, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.verdict == "requires-barrier"
        assert codes(findings, "warning") == ["AN306"]


class TestInlining:
    HELPER = (
        "import numpy as np\n"
        "def relax(ctx, arrays, dist, vertices, nd, assignment):\n"
        "    targets = ctx.gather(arrays.adj, vertices, assignment)\n"
        "    ctx.atomic_min(dist, targets, nd, assignment)\n"
        "\n"
        "def engine(device, arrays, dev_dist, frontier, nd):\n"
        "    with device.launch('eng', 4) as k:\n"
        "        a = object()\n"
        "        relax(k, arrays, dev_dist, frontier, nd, a)\n"
    )

    def test_device_fn_effects_inlined_into_kernel(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, self.HELPER)
        (sig,) = sigs.values()
        # the formal name `dist` is substituted with the caller arg
        assert "dev_dist" in sig.arrays
        assert sig.arrays["dev_dist"]["atomic_min"] == ["gathered"]
        assert sig.verdict == "async-safe"
        assert findings == []

    def test_racy_helper_scatter_reported_through_call(self, tmp_path):
        src = self.HELPER.replace("ctx.atomic_min", "ctx.scatter")
        sigs, findings = analyze_src(tmp_path, src)
        assert "AN301" in codes(findings, "error")
        (sig,) = sigs.values()
        assert sig.verdict == "unsafe" or sig.verdict == "requires-barrier"

    def test_param_provenance_resolved_at_call_site(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "def store(ctx, out, idx, vals, assignment):\n"
            "    ctx.scatter(out, idx, vals, assignment)\n"
            "\n"
            "def engine(device, out, vals):\n"
            "    with device.launch('eng', 4) as k:\n"
            "        a = object()\n"
            "        store(k, out, np.arange(4), vals, a)\n"
        ))
        (sig,) = sigs.values()
        assert sig.scatters[0]["index_provenance"] == "affine"
        assert findings == []

    def test_method_self_array_resolved_through_receiver(self, tmp_path):
        sigs, findings = analyze_src(tmp_path, (
            "import numpy as np\n"
            "class Flags:\n"
            "    def push(self, ctx, targets, assignment):\n"
            "        ctx.scatter(self.bits, targets, np.ones(4), assignment)\n"
            "\n"
            "def engine(device, frontier_flags, targets):\n"
            "    with device.launch('eng', 4) as k:\n"
            "        a = object()\n"
            "        frontier_flags.push(k, targets, a)\n"
        ))
        (sig,) = sigs.values()
        # ``self.bits`` canonicalizes to the attribute name; the uniform
        # np.ones value keeps the gathered-index scatter benign
        assert "bits" in sig.arrays
        assert sig.scatters[0]["value"] == "uniform"
        assert codes(findings, "error") == []


class TestCorpus:
    def test_every_engine_kernel_has_a_signature(self):
        sigs, _ = analyze_paths([str(SRC)])
        labels = {s.label for s in sigs.values()}
        missing = EXPECTED_KERNELS - labels
        assert not missing, f"kernels silently skipped: {missing}"

    def test_corpus_has_zero_error_findings(self):
        _, findings = analyze_paths([str(SRC)])
        errors = [f for f in findings if f.severity == "error"]
        assert errors == [], "\n".join(str(f) for f in errors)

    def test_all_sssp_kernels_async_safe(self):
        sigs, _ = analyze_paths([str(SRC / "sssp")])
        for sig in sigs.values():
            assert sig.verdict == "async-safe", f"{sig.key}: {sig.verdict}"

    def test_findings_deterministically_ordered(self, tmp_path):
        # two files, several findings each: order is (path, line, code)
        (tmp_path / "b.py").write_text(
            "def f(device, out, vals, p, q):\n"
            "    with device.launch('k2', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, q, vals, a)\n"
            "        k.scatter(out, p, vals, a)\n"
        )
        (tmp_path / "a.py").write_text(
            "def f(device, out, vals, p):\n"
            "    with device.launch('k1', 4) as k:\n"
            "        a = object()\n"
            "        k.scatter(out, p, vals, a)\n"
        )
        _, findings = analyze_paths([str(tmp_path)])
        keys = [(f.path, f.line, f.code) for f in findings]
        assert keys == sorted(keys)
        assert len(findings) >= 3

    def test_device_fn_registry_finds_shared_helpers(self):
        corpus = build_corpus([str(SRC)])
        for helper in ("relax_batch", "compact", "push"):
            assert helper in corpus.device_fns, helper


class TestManifest:
    def test_round_trip_and_clean_diff(self, tmp_path):
        sigs, _ = analyze_paths([str(SRC / "sssp")])
        manifest = build_manifest(sigs)
        path = tmp_path / "m.json"
        write_manifest(path, manifest)
        assert diff_manifest(load_manifest(path), manifest) == []

    def test_drift_detected_on_changed_kernel(self, tmp_path):
        sigs, _ = analyze_paths([str(SRC / "sssp")])
        manifest = build_manifest(sigs)
        mutated = json.loads(json.dumps(manifest))
        key = sorted(mutated["kernels"])[0]
        mutated["kernels"][key]["verdict"] = "unsafe"
        drift = diff_manifest(mutated, manifest)
        assert len(drift) == 1 and "changed kernel" in drift[0]

    def test_drift_detected_on_added_and_removed(self, tmp_path):
        sigs, _ = analyze_paths([str(SRC / "sssp")])
        manifest = build_manifest(sigs)
        mutated = json.loads(json.dumps(manifest))
        key = sorted(mutated["kernels"])[0]
        moved = mutated["kernels"].pop(key)
        mutated["kernels"]["ghost.py::ghost"] = moved
        drift = diff_manifest(mutated, manifest)
        assert any("removed kernel: ghost.py::ghost" in d for d in drift)
        assert any(f"new kernel: {key}" in d for d in drift)

    def test_committed_manifest_matches_tree(self):
        # the acceptance gate: the committed ANALYSIS_manifest.json must
        # reproduce exactly from the current sources
        committed = load_manifest(REPO / "ANALYSIS_manifest.json")
        sigs, _ = analyze_paths([str(SRC)])
        drift = diff_manifest(committed, build_manifest(sigs))
        assert drift == [], "\n".join(drift)

    def test_signatures_carry_no_line_numbers(self):
        committed = load_manifest(REPO / "ANALYSIS_manifest.json")
        for sig in committed["kernels"].values():
            assert "line" not in sig
            for s in sig["scatters"]:
                assert "line" not in s


class TestCli:
    def test_analyze_clean_on_src(self, capsys):
        from repro.cli import main

        assert main(["analyze", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "kernel(s) analyzed" in out

    def test_analyze_manifest_gate_passes_on_committed(self, capsys):
        from repro.cli import main

        assert main([
            "analyze", str(SRC),
            "--manifest", str(REPO / "ANALYSIS_manifest.json"),
        ]) == 0
        assert "manifest ✓" in capsys.readouterr().out

    def test_analyze_fails_on_racy_fixture(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(TestRaceRules.RACY)
        from repro.cli import main

        assert main(["analyze", str(bad)]) == 1
        assert "AN301" in capsys.readouterr().out

    def test_analyze_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(TestRaceRules.RACY)
        from repro.cli import main

        assert main(["analyze", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] >= 1
        assert any(f["code"] == "AN301" for f in payload["findings"])
        (sig,) = payload["kernels"].values()
        assert sig["verdict"] == "requires-barrier"

    def test_analyze_refresh_then_gate_detects_drift(self, tmp_path, capsys):
        eng = tmp_path / "eng.py"
        eng.write_text(
            "def f(device, dist, targets, nd):\n"
            "    with device.launch('k', 4) as k:\n"
            "        a = object()\n"
            "        k.atomic_min(dist, targets, nd, a)\n"
        )
        manifest = tmp_path / "m.json"
        from repro.cli import main

        assert main([
            "analyze", str(eng), "--manifest", str(manifest), "--refresh",
        ]) == 0
        capsys.readouterr()
        # perturb the atomic discipline: the gate must fail
        eng.write_text(eng.read_text().replace("atomic_min", "atomic_add"))
        assert main(["analyze", str(eng), "--manifest", str(manifest)]) == 1
        assert "manifest drift" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "__all__ = []\n"
            "def f(arr):\n"
            "    arr.data[3] = 1.0\n"
        )
        from repro.cli import main

        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "AN101"
