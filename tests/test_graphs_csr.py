"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.graphs import CSRGraph, GraphValidationError, from_edges


def make_simple():
    # 0->1 (w2), 0->2 (w5), 1->2 (w1), 2 has no out-edges
    return CSRGraph(
        row=np.array([0, 2, 3, 3]),
        adj=np.array([1, 2, 2]),
        weights=np.array([2.0, 5.0, 1.0]),
        name="simple",
    )


class TestConstruction:
    def test_basic_counts(self):
        g = make_simple()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.average_degree == pytest.approx(1.0)

    def test_degrees(self):
        g = make_simple()
        assert list(g.degrees) == [2, 1, 0]

    def test_empty_graph(self):
        g = CSRGraph(row=np.array([0]), adj=np.array([]), weights=np.array([]))
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree == 0.0

    def test_single_vertex_no_edges(self):
        g = CSRGraph(row=np.array([0, 0]), adj=np.array([]), weights=np.array([]))
        assert g.num_vertices == 1
        assert g.neighbors(0).size == 0

    def test_arrays_are_frozen(self):
        g = make_simple()
        with pytest.raises(ValueError):
            g.adj[0] = 5
        with pytest.raises(ValueError):
            g.weights[0] = 1.0

    def test_dtype_coercion(self):
        g = CSRGraph(
            row=np.array([0, 1], dtype=np.int32),
            adj=np.array([0], dtype=np.int16),
            weights=np.array([1], dtype=np.int64),
        )
        assert g.adj.dtype == np.int64
        assert g.weights.dtype == np.float64


class TestValidation:
    def test_row_not_starting_at_zero(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(row=np.array([1, 2]), adj=np.array([0]), weights=np.array([1.0]))

    def test_row_last_mismatch(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(row=np.array([0, 2]), adj=np.array([0]), weights=np.array([1.0]))

    def test_row_decreasing(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(
                row=np.array([0, 2, 1, 3]),
                adj=np.array([0, 1, 2]),
                weights=np.ones(3),
            )

    def test_adjacency_out_of_range(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(row=np.array([0, 1]), adj=np.array([3]), weights=np.array([1.0]))

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(
                row=np.array([0, 1]), adj=np.array([0]), weights=np.array([-1.0])
            )

    def test_weights_length_mismatch(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(
                row=np.array([0, 1]), adj=np.array([0]), weights=np.array([1.0, 2.0])
            )

    def test_heavy_offsets_wrong_size(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(
                row=np.array([0, 1]),
                adj=np.array([0]),
                weights=np.array([1.0]),
                heavy_offsets=np.array([0, 1]),
            )

    def test_heavy_offsets_out_of_segment(self):
        with pytest.raises(GraphValidationError):
            CSRGraph(
                row=np.array([0, 1, 2]),
                adj=np.array([1, 0]),
                weights=np.array([1.0, 1.0]),
                heavy_offsets=np.array([2, 1]),
            )


class TestAccessors:
    def test_neighbors_and_weights(self):
        g = make_simple()
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.edge_weights(0)) == [2.0, 5.0]
        assert list(g.neighbors(2)) == []

    def test_iter_edges(self):
        g = make_simple()
        edges = list(g.iter_edges())
        assert edges == [(0, 1, 2.0), (0, 2, 5.0), (1, 2, 1.0)]

    def test_edge_sources(self):
        g = make_simple()
        assert list(g.edge_sources()) == [0, 0, 1]

    def test_light_heavy_ranges_require_offsets(self):
        g = make_simple()
        with pytest.raises(ValueError):
            g.light_range(0)
        with pytest.raises(ValueError):
            g.heavy_range(0)
        with pytest.raises(ValueError):
            g.light_degrees()

    def test_light_heavy_ranges(self):
        g = CSRGraph(
            row=np.array([0, 2, 3]),
            adj=np.array([1, 1, 0]),
            weights=np.array([1.0, 5.0, 2.0]),
            heavy_offsets=np.array([1, 3]),
            delta=3.0,
        )
        assert g.light_range(0) == (0, 1)
        assert g.heavy_range(0) == (1, 2)
        assert g.light_range(1) == (2, 3)
        assert g.heavy_range(1) == (3, 3)
        assert list(g.light_degrees()) == [1, 1]

    def test_max_weight(self):
        assert make_simple().max_weight() == 5.0
        empty = CSRGraph(row=np.array([0]), adj=np.array([]), weights=np.array([]))
        assert empty.max_weight() == 0.0


class TestTransforms:
    def test_with_weights_replaces_and_drops_offsets(self):
        g = CSRGraph(
            row=np.array([0, 1]),
            adj=np.array([0]),
            weights=np.array([1.0]),
            heavy_offsets=np.array([1]),
            delta=0.5,
        )
        g2 = g.with_weights(np.array([9.0]))
        assert g2.weights[0] == 9.0
        assert g2.heavy_offsets is None
        assert g2.delta is None

    def test_to_original_order_identity(self):
        g = make_simple()
        vals = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(g.to_original_order(vals), vals)

    def test_to_original_order_with_permutation(self):
        g = CSRGraph(
            row=np.array([0, 0, 0]),
            adj=np.array([]),
            weights=np.array([]),
            new_to_old=np.array([1, 0]),
            old_to_new=np.array([1, 0]),
        )
        vals = np.array([10.0, 20.0])  # values for new ids 0, 1
        out = g.to_original_order(vals)
        assert list(out) == [20.0, 10.0]

    def test_repr_mentions_name(self):
        assert "simple" in repr(make_simple())
