"""Tests for the stream-compaction primitives."""

import numpy as np
import pytest

from repro.gpusim import (
    GPUDevice,
    V100,
    compact,
    compact_multisplit,
    thread_per_item,
)
from repro.gpusim.kernels import grid_stride


@pytest.fixture
def dev():
    return GPUDevice(V100)


class TestCompact:
    def test_writes_survivors_densely(self, dev):
        out = dev.zeros(8, dtype=np.int64)
        values = np.array([10, 11, 12, 13, 14])
        keep = np.array([True, False, True, False, True])
        with dev.launch("k") as k:
            survivors = compact(k, out, keep, values, thread_per_item(5))
        assert list(survivors) == [10, 12, 14]
        assert list(out.data[:3]) == [10, 12, 14]

    def test_offset(self, dev):
        out = dev.zeros(8, dtype=np.int64)
        with dev.launch("k") as k:
            compact(
                k, out, np.array([True, True]), np.array([7, 8]),
                thread_per_item(2), offset=3,
            )
        assert list(out.data[3:5]) == [7, 8]

    def test_charges_scan_branch_and_stores(self, dev):
        out = dev.zeros(64, dtype=np.int64)
        values = np.arange(64)
        keep = values % 2 == 0
        with dev.launch("k") as k:
            compact(k, out, keep, values, thread_per_item(64))
        c = dev.counters.totals
        assert c.inst_executed_other >= 4  # 2 scan passes x 2 warps
        assert c.branch_instructions == 2
        assert c.divergent_branches == 2  # every warp has mixed lanes
        assert c.inst_executed_global_stores >= 1

    def test_empty_survivors_no_store(self, dev):
        out = dev.zeros(4, dtype=np.int64)
        with dev.launch("k") as k:
            survivors = compact(
                k, out, np.zeros(4, dtype=bool), np.arange(4), thread_per_item(4)
            )
        assert survivors.size == 0
        assert dev.counters.totals.inst_executed_global_stores == 0

    def test_empty_input(self, dev):
        out = dev.zeros(4, dtype=np.int64)
        with dev.launch("k") as k:
            survivors = compact(
                k, out, np.zeros(0, dtype=bool),
                np.zeros(0, dtype=np.int64), thread_per_item(0),
            )
        assert survivors.size == 0

    def test_buffer_overflow_rejected(self, dev):
        out = dev.zeros(2, dtype=np.int64)
        with dev.launch("k") as k:
            with pytest.raises(ValueError, match="too small"):
                compact(
                    k, out, np.ones(4, dtype=bool), np.arange(4),
                    thread_per_item(4),
                )

    def test_predicate_mismatch_rejected(self, dev):
        out = dev.zeros(4, dtype=np.int64)
        with dev.launch("k") as k:
            with pytest.raises(ValueError, match="predicate"):
                compact(
                    k, out, np.ones(3, dtype=bool), np.arange(3),
                    thread_per_item(4),
                )

    def test_contiguous_writes_coalesce(self, dev):
        """Dense survivor stores coalesce: far fewer transactions than
        survivors."""
        out = dev.zeros(4096, dtype=np.int64)
        values = np.arange(4096)
        keep = np.ones(4096, dtype=bool)
        with dev.launch("k") as k:
            compact(k, out, keep, values, grid_stride(4096, 1024))
        c = dev.counters.totals
        assert c.global_store_transactions <= 4096 // 4 + 64


class TestCompactMultisplit:
    def _both(self, keep, values, offset=0):
        """Run compact and compact_multisplit on identical inputs on
        fresh devices; return (survivors, out, totals) for each."""
        results = []
        for fn in (compact, compact_multisplit):
            dev = GPUDevice(V100)
            out = dev.zeros(max(values.size, 4) + offset, dtype=np.int64)
            with dev.launch("k") as k:
                survivors = fn(k, out, keep, values,
                               thread_per_item(values.size), offset=offset)
            results.append((survivors, out.data.copy(),
                            dev.counters.totals))
        return results

    @pytest.mark.parametrize("pattern", ["alternating", "all", "none",
                                         "head", "tail"])
    def test_output_equivalent_to_compact(self, pattern):
        values = np.arange(10, 74)
        keep = {
            "alternating": values % 2 == 0,
            "all": np.ones(64, dtype=bool),
            "none": np.zeros(64, dtype=bool),
            "head": np.arange(64) < 7,
            "tail": np.arange(64) >= 57,
        }[pattern]
        (s_legacy, out_legacy, _), (s_ms, out_ms, _) = self._both(
            keep, values
        )
        assert np.array_equal(s_ms, s_legacy)
        assert np.array_equal(out_ms, out_legacy)

    def test_offset_respected(self):
        (s_legacy, out_legacy, _), (s_ms, out_ms, _) = self._both(
            np.array([True, False, True]), np.array([5, 6, 7]), offset=2
        )
        assert np.array_equal(out_ms, out_legacy)
        assert list(out_ms[2:4]) == [5, 7]

    def test_strictly_fewer_instructions_same_stores(self):
        """The B=2 ballot replaces the 2-op ALU scan and the divergent
        branch; the dense store discipline is shared, so global traffic
        is identical."""
        values = np.arange(256)
        (_, _, c_legacy), (_, _, c_ms) = self._both(
            values % 3 == 0, values
        )
        assert c_ms.total_warp_instructions < c_legacy.total_warp_instructions
        assert c_ms.total_transactions == c_legacy.total_transactions
        assert c_ms.multisplit_ops == 1
        assert c_ms.branch_instructions == 0
        assert c_legacy.branch_instructions > 0

    def test_overflow_rejected(self):
        dev = GPUDevice(V100)
        out = dev.zeros(2, dtype=np.int64)
        with dev.launch("k") as k:
            with pytest.raises(ValueError, match="too small"):
                compact_multisplit(
                    k, out, np.ones(4, dtype=bool), np.arange(4),
                    thread_per_item(4),
                )
