"""Tests for the stream-compaction primitive."""

import numpy as np
import pytest

from repro.gpusim import GPUDevice, V100, compact, thread_per_item
from repro.gpusim.kernels import grid_stride


@pytest.fixture
def dev():
    return GPUDevice(V100)


class TestCompact:
    def test_writes_survivors_densely(self, dev):
        out = dev.zeros(8, dtype=np.int64)
        values = np.array([10, 11, 12, 13, 14])
        keep = np.array([True, False, True, False, True])
        with dev.launch("k") as k:
            survivors = compact(k, out, keep, values, thread_per_item(5))
        assert list(survivors) == [10, 12, 14]
        assert list(out.data[:3]) == [10, 12, 14]

    def test_offset(self, dev):
        out = dev.zeros(8, dtype=np.int64)
        with dev.launch("k") as k:
            compact(
                k, out, np.array([True, True]), np.array([7, 8]),
                thread_per_item(2), offset=3,
            )
        assert list(out.data[3:5]) == [7, 8]

    def test_charges_scan_branch_and_stores(self, dev):
        out = dev.zeros(64, dtype=np.int64)
        values = np.arange(64)
        keep = values % 2 == 0
        with dev.launch("k") as k:
            compact(k, out, keep, values, thread_per_item(64))
        c = dev.counters.totals
        assert c.inst_executed_other >= 4  # 2 scan passes x 2 warps
        assert c.branch_instructions == 2
        assert c.divergent_branches == 2  # every warp has mixed lanes
        assert c.inst_executed_global_stores >= 1

    def test_empty_survivors_no_store(self, dev):
        out = dev.zeros(4, dtype=np.int64)
        with dev.launch("k") as k:
            survivors = compact(
                k, out, np.zeros(4, dtype=bool), np.arange(4), thread_per_item(4)
            )
        assert survivors.size == 0
        assert dev.counters.totals.inst_executed_global_stores == 0

    def test_empty_input(self, dev):
        out = dev.zeros(4, dtype=np.int64)
        with dev.launch("k") as k:
            survivors = compact(
                k, out, np.zeros(0, dtype=bool),
                np.zeros(0, dtype=np.int64), thread_per_item(0),
            )
        assert survivors.size == 0

    def test_buffer_overflow_rejected(self, dev):
        out = dev.zeros(2, dtype=np.int64)
        with dev.launch("k") as k:
            with pytest.raises(ValueError, match="too small"):
                compact(
                    k, out, np.ones(4, dtype=bool), np.arange(4),
                    thread_per_item(4),
                )

    def test_predicate_mismatch_rejected(self, dev):
        out = dev.zeros(4, dtype=np.int64)
        with dev.launch("k") as k:
            with pytest.raises(ValueError, match="predicate"):
                compact(
                    k, out, np.ones(3, dtype=bool), np.arange(3),
                    thread_per_item(4),
                )

    def test_contiguous_writes_coalesce(self, dev):
        """Dense survivor stores coalesce: far fewer transactions than
        survivors."""
        out = dev.zeros(4096, dtype=np.int64)
        values = np.arange(4096)
        keep = np.ones(4096, dtype=bool)
        with dev.launch("k") as k:
            compact(k, out, keep, values, grid_stride(4096, 1024))
        c = dev.counters.totals
        assert c.global_store_transactions <= 4096 // 4 + 64
