"""Tests for ρ-stepping, graph transforms and the kernel timeline."""

import numpy as np
import pytest

from repro.graphs import (
    clamp_weights,
    from_edges,
    induced_subgraph,
    kronecker,
    largest_component_subgraph,
    path,
    reverse_graph,
    scale_weights,
)
from repro.gpusim import GPUDevice, KernelCounters, Timeline, V100, attribute_bottleneck
from repro.gpusim.kernels import grid_stride
from repro.sssp import (
    default_rho,
    dijkstra,
    rho_stepping_sssp,
    sssp,
    validate_distances,
)

SPEC = V100.scaled_for_workload(1 / 64)


class TestRhoStepping:
    @pytest.mark.parametrize("rho", [1, 8, 10_000])
    def test_correct_for_any_rho(self, rho):
        g = kronecker(8, 6, weights="int", seed=40)
        r = rho_stepping_sssp(g, 0, rho=rho)
        validate_distances(g, 0, r.dist)

    def test_rho_one_is_dijkstra_like(self):
        """ρ=1 settles one vertex per batch: perfectly work-efficient on
        graphs with unique distances."""
        g = kronecker(7, 6, weights="int", seed=41)
        exact = rho_stepping_sssp(g, 0, rho=1)
        loose = rho_stepping_sssp(g, 0, rho=10_000)
        assert exact.work.update_ratio <= loose.work.update_ratio

    def test_batches_shrink_with_rho(self):
        g = kronecker(8, 8, weights="int", seed=42)
        few = rho_stepping_sssp(g, 0, rho=10_000).extra["batches"]
        many = rho_stepping_sssp(g, 0, rho=4).extra["batches"]
        assert many > few

    def test_default_rho_reasonable(self):
        g = kronecker(10, 8, weights="int", seed=43)
        rho = default_rho(g)
        assert 32 <= rho < g.num_vertices * 10

    def test_invalid_args(self):
        g = path(4)
        with pytest.raises(ValueError):
            rho_stepping_sssp(g, 0, rho=0)
        with pytest.raises(ValueError):
            rho_stepping_sssp(g, 10)

    def test_available_through_api(self):
        g = path(8)
        r = sssp(g, 0, method="rho-stepping")
        assert r.method == "rho-stepping"


class TestTransforms:
    def test_induced_subgraph(self):
        g = path(6)
        sub, new_to_old = induced_subgraph(g, np.array([1, 2, 3]))
        assert sub.num_vertices == 3
        assert list(new_to_old) == [1, 2, 3]
        # the path 1-2-3 survives with both arc directions
        assert sub.num_edges == 4

    def test_induced_subgraph_drops_cross_edges(self):
        g = path(6)
        sub, _ = induced_subgraph(g, np.array([0, 1, 4, 5]))
        assert sub.num_edges == 4  # 0-1 and 4-5 only

    def test_induced_out_of_range(self):
        with pytest.raises(ValueError):
            induced_subgraph(path(3), np.array([5]))

    def test_largest_component_subgraph(self):
        g = from_edges(
            np.array([0, 1, 5]), np.array([1, 2, 6]), np.ones(3),
            num_vertices=8, symmetrize=True,
        )
        sub, new_to_old = largest_component_subgraph(g)
        assert sub.num_vertices == 3
        assert set(new_to_old) == {0, 1, 2}

    def test_reverse_graph(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([3.0]),
                       num_vertices=2)
        rg = reverse_graph(g)
        assert list(rg.iter_edges()) == [(1, 0, 3.0)]

    def test_reverse_preserves_undirected_distances(self):
        g = kronecker(7, 6, weights="int", seed=44)
        d1 = dijkstra(g, 0).dist
        d2 = dijkstra(reverse_graph(g), 0).dist
        assert np.allclose(d1, d2, equal_nan=True) or np.array_equal(
            np.isfinite(d1), np.isfinite(d2)
        )

    def test_scale_weights_scales_distances(self):
        g = kronecker(7, 6, weights="int", seed=45)
        d1 = dijkstra(g, 0).dist
        d2 = dijkstra(scale_weights(g, 2.5), 0).dist
        finite = np.isfinite(d1)
        assert np.allclose(d2[finite], 2.5 * d1[finite])
        with pytest.raises(ValueError):
            scale_weights(g, 0.0)

    def test_clamp_weights(self):
        g = kronecker(6, 4, weights="int", seed=46)
        c = clamp_weights(g, 100.0, 200.0)
        assert c.weights.min() >= 100.0
        assert c.weights.max() <= 200.0
        with pytest.raises(ValueError):
            clamp_weights(g, 5.0, 1.0)


class TestTimeline:
    def test_records_launches(self):
        dev = GPUDevice(V100)
        arr = dev.zeros(1024)
        with dev.launch("alpha") as k:
            k.gather(arr, np.arange(1024), grid_stride(1024, 256))
        with dev.launch("alpha") as k:
            k.gather(arr, np.arange(1024), grid_stride(1024, 256))
        with dev.launch("beta"):
            pass
        tl = dev.timeline
        assert len(tl.records) == 3
        by = tl.by_kernel()
        assert by["alpha"][0] == 2
        assert by["beta"][0] == 1
        assert tl.total_s == pytest.approx(dev.time_s)

    def test_records_are_ordered(self):
        dev = GPUDevice(V100)
        with dev.launch("a"):
            pass
        with dev.launch("b"):
            pass
        r0, r1 = dev.timeline.records
        assert r1.start_s >= r0.end_s

    def test_top_and_report(self):
        dev = GPUDevice(V100)
        arr = dev.zeros(4096)
        with dev.launch("hot") as k:
            k.gather(arr, np.arange(4096), grid_stride(4096, 256))
        with dev.launch("cold"):
            pass
        top = dev.timeline.top(1)
        assert top[0][0] in ("hot", "cold")
        text = dev.timeline.report()
        assert "hot" in text and "bottlenecks" in text

    def test_bottleneck_attribution(self):
        mem = KernelCounters(global_load_transactions=10**6, l1_accesses=10**6)
        assert attribute_bottleneck(V100, mem, 0) == "memory"
        crit = KernelCounters(inst_executed_other=1)
        assert attribute_bottleneck(V100, crit, 10**6) == "critical-path"
        issue = KernelCounters(inst_executed_other=10**9)
        assert attribute_bottleneck(V100, issue, 1) == "issue"
        assert attribute_bottleneck(V100, KernelCounters(), 0) == "overhead"

    def test_reset_clock_clears_timeline(self):
        dev = GPUDevice(V100)
        with dev.launch("x"):
            pass
        dev.reset_clock()
        assert dev.timeline.records == []

    def test_gpu_results_carry_timeline(self):
        g = kronecker(7, 6, weights="int", seed=47)
        r = sssp(g, 0, method="rdbs", spec=SPEC)
        tl = r.extra["timeline"]
        assert isinstance(tl, Timeline)
        assert tl.total_s > 0
        assert "phase1" in " ".join(name for name, _ in tl.by_kernel().items())
