"""Tests for shortest-path-tree reconstruction and batch evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges, kronecker, path, star
from repro.gpusim import V100
from repro.sssp import (
    build_parents,
    draw_sources,
    extract_path,
    run_batch,
    scipy_distances,
    shortest_path_tree,
    validate_path,
)

SPEC = V100.scaled_for_workload(1 / 64)


class TestBuildParents:
    def test_path_graph(self):
        g = path(5)
        d = scipy_distances(g, 0)
        parents = build_parents(g, d, 0)
        assert list(parents) == [-1, 0, 1, 2, 3]

    def test_unreachable_has_no_parent(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([1.0]),
                       num_vertices=3)
        parents = build_parents(g, scipy_distances(g, 0), 0)
        assert parents[2] == -1

    def test_rejects_unrelaxed_distances(self):
        g = path(4)
        d = scipy_distances(g, 0)
        d[3] = 100.0  # an edge could still shorten this
        with pytest.raises(ValueError, match="not relaxed"):
            build_parents(g, d, 0)

    def test_rejects_foreign_distances(self):
        g = path(4)
        d = scipy_distances(g, 0)
        d[2] = 1.5  # no tight incoming edge produces 1.5
        with pytest.raises(ValueError):
            build_parents(g, d, 0)

    def test_wrong_shape(self):
        g = path(4)
        with pytest.raises(ValueError):
            build_parents(g, np.zeros(3), 0)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_parents_reconstruct_exact_distances(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 20, 60
        g = from_edges(
            rng.integers(0, n, m), rng.integers(0, n, m),
            rng.integers(1, 9, m).astype(float),
            num_vertices=n, symmetrize=True,
        )
        d = scipy_distances(g, 0)
        parents = build_parents(g, d, 0)
        # walking every reachable vertex back to the source reproduces d
        for v in np.flatnonzero(np.isfinite(d)):
            p = extract_path(parents, 0, int(v))
            assert p[0] == 0 and p[-1] == v
            validate_path(g, p, float(d[v]))


class TestExtractPath:
    def test_source_to_itself(self):
        assert extract_path(np.array([-1, 0]), 0, 0) == [0]

    def test_unreachable(self):
        assert extract_path(np.array([-1, -1]), 0, 1) == []

    def test_cycle_detected(self):
        parents = np.array([-1, 2, 1])
        with pytest.raises(ValueError):
            extract_path(parents, 0, 2)


class TestValidatePath:
    def test_rejects_fake_edge(self):
        g = path(4)
        with pytest.raises(AssertionError, match="no edge"):
            validate_path(g, [0, 2], 2.0)

    def test_rejects_wrong_length(self):
        g = path(4)
        with pytest.raises(AssertionError, match="path length"):
            validate_path(g, [0, 1, 2], 5.0)

    def test_rejects_empty(self):
        with pytest.raises(AssertionError):
            validate_path(path(3), [], 0.0)


class TestShortestPathTree:
    def test_end_to_end_with_rdbs(self):
        g = kronecker(8, 8, weights="int", seed=5)
        t = shortest_path_tree(g, 0, method="rdbs", spec=SPEC)
        assert t.distance_to(0) == 0.0
        far = int(np.argmax(np.where(np.isfinite(t.dist), t.dist, -1)))
        p = t.path_to(far)
        validate_path(g, p, t.distance_to(far))

    def test_depth_histogram(self):
        t = shortest_path_tree(star(6), 0, method="dijkstra")
        hist = t.depth_histogram()
        assert hist[0] == 1 and hist[1] == 6

    def test_reached(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([1.0]),
                       num_vertices=4, symmetrize=True)
        t = shortest_path_tree(g, 0, method="dijkstra")
        assert t.reached == 2


class TestBatch:
    def test_draw_sources_in_component(self):
        g = from_edges(np.array([0, 1, 5]), np.array([1, 2, 6]), np.ones(3),
                       num_vertices=7, symmetrize=True)
        sources = draw_sources(g, num_sources=3, seed=1)
        assert set(sources) <= {0, 1, 2}

    def test_draw_more_than_available(self):
        g = path(4)
        assert len(draw_sources(g, num_sources=100)) == 4

    def test_batch_aggregation(self):
        g = kronecker(8, 8, weights="int", seed=6)
        b = run_batch(g, "rdbs", num_sources=4, validate=True, spec=SPEC)
        assert len(b.results) == 4
        assert b.min_time_ms <= b.mean_time_ms <= b.max_time_ms
        assert b.stdev_time_ms >= 0
        s = b.summary()
        assert s["sources"] == 4
        assert s["gteps"] > 0
        assert s["update_ratio"] >= 1.0

    def test_explicit_sources(self):
        g = path(10)
        b = run_batch(g, "dijkstra", sources=[0, 9])
        assert b.sources == [0, 9]
        assert b.stdev_time_ms == 0.0 or len(b.results) == 2

    def test_single_source_stdev_zero(self):
        g = path(6)
        b = run_batch(g, "delta-cpu", sources=[0])
        assert b.stdev_time_ms == 0.0
