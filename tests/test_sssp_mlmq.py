"""Tests for the Multi-Level-Multi-Queue (MLMQ) SSSP engine.

Five contracts from the MLMQ design note (docs/mlmq.md):

1. **Correctness** — distances equal the SciPy Dijkstra oracle on every
   quick-suite graph, despite relaxed ordering between same-level queues
   and stale pops.
2. **Determinism** — steal counters (and every other device quantity)
   are identical whether the suite runs serially or fanned over worker
   processes (``jobs=1`` vs ``jobs=4``).
3. **Sanitizer-clean** — the hashed queue pools are write-only scratch;
   a full run under the hazard sanitizer reports zero errors.
4. **Self-healing** — every fault plan is recovered by the queue
   hierarchy rebuild (``escaped == 0``) and the answer still validates.
5. **Performance** — MLMQ strictly beats RDBS simulated time on the
   kron quick-suite cell (the paper-style power-law workload).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    SUITES,
    SuiteSpec,
    benchmark_spec,
    get_graph,
    pick_sources,
    run_method,
    run_suite,
)
from repro.faults import faulty_sssp
from repro.graphs import kronecker, largest_component_vertices
from repro.gpusim import V100
from repro.sssp import (
    GPU_METHODS,
    METHODS,
    mlmq_sssp,
    sssp,
    validate_distances,
)

SPEC = V100.scaled_for_workload(1 / 64)

KRON = kronecker(8, 8, weights="int", seed=0)
KRON_SRC = int(largest_component_vertices(KRON)[0])

QUICK_DATASETS = SUITES["quick"].datasets


# ---------------------------------------------------------------------------
# registry wiring
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_mlmq_registered_as_gpu_method(self):
        assert "mlmq" in METHODS
        assert "mlmq" in GPU_METHODS
        assert METHODS["mlmq"] is mlmq_sssp

    def test_quick_suite_includes_mlmq(self):
        assert "mlmq" in SUITES["quick"].methods


# ---------------------------------------------------------------------------
# correctness: SciPy oracle on every quick-suite graph
# ---------------------------------------------------------------------------

class TestCorrectness:
    @pytest.mark.parametrize("dataset", QUICK_DATASETS)
    def test_matches_oracle_on_quick_suite(self, dataset):
        g = get_graph(dataset)
        for s in pick_sources(dataset, 2):
            r = mlmq_sssp(g, s, spec=benchmark_spec())
            validate_distances(g, s, r.dist)

    def test_dispatch_through_sssp_api(self, small_kron, kron_source):
        r = sssp(small_kron, kron_source, method="mlmq", spec=SPEC)
        validate_distances(small_kron, kron_source, r.dist)

    def test_unreachable_vertices_stay_inf(self, path_graph):
        r = mlmq_sssp(path_graph, 63, spec=SPEC)
        validate_distances(path_graph, 63, r.dist)
        assert np.isfinite(r.dist).all()  # path is connected

    def test_telemetry_extra_keys(self, small_kron, kron_source):
        r = mlmq_sssp(small_kron, kron_source, spec=SPEC)
        extra = r.extra
        for key in (
            "delta", "window_levels", "num_queues", "levels", "rounds",
            "advances", "stale_pops", "mlmq_steals", "mlmq_stolen_slots",
            "wasted_relaxation_ratio", "level_telemetry",
        ):
            assert key in extra, key
        assert 0.0 <= extra["wasted_relaxation_ratio"] <= 1.0
        # counters and extra must agree on steal traffic
        totals = r.counters.totals
        assert totals.mlmq_steals == extra["mlmq_steals"]
        assert totals.mlmq_stolen_slots == extra["mlmq_stolen_slots"]
        assert extra["mlmq_stolen_slots"] >= extra["mlmq_steals"]

    def test_steal_counters_absent_from_other_engines(self, small_kron,
                                                      kron_source):
        """Non-MLMQ counter snapshots serialize exactly as before MLMQ
        existed — the steal keys are gated on actually stealing."""
        r = sssp(small_kron, kron_source, method="rdbs", spec=SPEC)
        assert "mlmq_steals" not in r.counters.totals.as_dict()


# ---------------------------------------------------------------------------
# determinism: jobs=1 vs jobs=4 must agree bit-for-bit on steal counters
# ---------------------------------------------------------------------------

MINI_MLMQ = SuiteSpec(
    name="mini-mlmq",
    datasets=("k-n21-16",),
    methods=("mlmq",),
    num_sources=2,
)


def _strip_wall(rec) -> dict:
    d = rec.as_dict()
    d.pop("host_seconds", None)
    return d


class TestDeterminism:
    def test_steal_counters_identical_across_jobs(self, monkeypatch):
        monkeypatch.setitem(SUITES, "mini-mlmq", MINI_MLMQ)
        serial = run_suite("mini-mlmq", jobs=1)
        parallel = run_suite("mini-mlmq", jobs=4)
        assert [_strip_wall(r) for r in parallel] == [
            _strip_wall(r) for r in serial
        ]
        # the cell actually exercises the stealing path, so the parity
        # above covers the steal counters specifically
        assert serial[0].counters["mlmq_steals"] > 0
        assert (
            serial[0].counters["mlmq_steals"]
            == parallel[0].counters["mlmq_steals"]
        )

    def test_repeat_run_identical(self, small_kron, kron_source):
        a = mlmq_sssp(small_kron, kron_source, spec=SPEC)
        b = mlmq_sssp(small_kron, kron_source, spec=SPEC)
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.time_ms == b.time_ms
        np.testing.assert_array_equal(a.dist, b.dist)


# ---------------------------------------------------------------------------
# sanitizer: the queue pools are write-only scratch — no hazards
# ---------------------------------------------------------------------------

class TestSanitizer:
    def test_clean_under_sanitizer(self, sanitizer, small_kron, kron_source):
        r = mlmq_sssp(small_kron, kron_source, spec=SPEC)
        validate_distances(small_kron, kron_source, r.dist)
        report = sanitizer.report()
        assert report.errors == []


# ---------------------------------------------------------------------------
# fault recovery: queue hierarchy rebuild self-heals every plan
# ---------------------------------------------------------------------------

#: every single-device plan (the exchange-* plans only inject on the
#: multi-GPU halo-exchange path — see tests/test_faults.py)
SINGLE_DEVICE_PLANS = [
    "lost-updates", "stale-reads", "bitflips", "kernel-aborts", "chaos",
]


class TestFaultRecovery:
    @pytest.mark.parametrize("plan", SINGLE_DEVICE_PLANS)
    def test_all_plans_recover(self, plan):
        r, rep = faulty_sssp(
            KRON, KRON_SRC, method="mlmq", plan=plan, seed=0, spec=SPEC
        )
        validate_distances(KRON, KRON_SRC, r.dist)
        assert rep.injected > 0
        assert rep.escaped == 0
        assert rep.verified is True
        assert r.faults is rep


# ---------------------------------------------------------------------------
# performance regression: MLMQ must strictly beat RDBS on kron
# ---------------------------------------------------------------------------

class TestPerformance:
    def test_beats_rdbs_on_kron_cell(self):
        """The headline claim of docs/mlmq.md, pinned as a regression:
        on the skewed kron surrogate the multi-queue window drains in
        strictly less simulated time than RDBS's bucket rounds."""
        spec = benchmark_spec()
        sources = pick_sources("k-n21-16", 2)
        mlmq = run_method(
            "k-n21-16", "mlmq", sources=sources, spec=spec
        )
        rdbs = run_method(
            "k-n21-16", "rdbs", sources=sources, spec=spec
        )
        assert mlmq.time_ms < rdbs.time_ms
