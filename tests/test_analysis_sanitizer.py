"""Tests for the dynamic hazard sanitizer (repro.analysis.sanitizer).

Two kinds of coverage: the production engines must come out *clean*
(zero error-level hazards on real runs), and seeded-bug fixtures must be
*caught* (each detector fires on a kernel written to contain its hazard).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    Sanitizer,
    SanitizerError,
    attached,
    sanitized_sssp,
)
from repro.graphs import path, preferential_attachment
from repro.graphs.properties import largest_component_vertices
from repro.gpusim.device import GPUDevice
from repro.gpusim.kernels import thread_per_item
from repro.sssp import sssp, validate_distances


def component_source(graph) -> int:
    return int(largest_component_vertices(graph)[0])


# ----------------------------------------------------------------------
# clean production engines: zero error-level hazards
# ----------------------------------------------------------------------

GPU_METHODS = ["rdbs", "bl", "near-far", "adds", "harish-narayanan",
               "sync-delta", "basyn"]


class TestCleanEngines:
    @pytest.mark.parametrize("method", GPU_METHODS)
    def test_engine_has_no_hazards(self, small_kron, kron_source, method):
        res, report = sanitized_sssp(small_kron, kron_source, method=method)
        assert report.errors == [], report.summary()
        validate_distances(small_kron, kron_source, res.dist)

    def test_rdbs_clean_on_power_law_graph(self):
        """The acceptance graph: random power-law, RDBS, zero hazards."""
        g = preferential_attachment(500, 4, seed=7)
        src = component_source(g)
        res, report = sanitized_sssp(g, src, method="rdbs")
        assert report.errors == [], report.summary()
        assert report.kernels_checked > 0
        assert report.accesses_checked > 0
        validate_distances(g, src, res.dist)

    def test_fixture_attaches_to_engine_devices(self, sanitizer, small_kron,
                                                kron_source):
        sssp(small_kron, kron_source, method="bl")
        report = sanitizer.report()
        assert report.kernels_checked > 0
        assert report.errors == []

    def test_bfs_and_pagerank_clean(self, sanitizer, small_kron, kron_source):
        from repro.graphalgs.bfs import bfs_gpu
        from repro.graphalgs.pagerank import pagerank_gpu

        bfs_gpu(small_kron, kron_source)
        pagerank_gpu(small_kron, max_iterations=5)
        assert sanitizer.report().errors == []

    def test_multi_gpu_clean(self, sanitizer, small_kron, kron_source):
        from repro.gpusim.multi import multi_gpu_sssp

        multi_gpu_sssp(small_kron, kron_source, num_gpus=2)
        assert sanitizer.report().errors == []


# ----------------------------------------------------------------------
# seeded-bug fixtures: every detector fires
# ----------------------------------------------------------------------

def _rules(report):
    return {(f.rule, f.severity) for f in report.findings}


class TestSeededBugs:
    def test_racy_scatter_differing_values(self):
        """Plain stores of different values to one address race."""
        with attached() as san:
            dev = GPUDevice()
            arr = dev.zeros(8, name="buf")
            with dev.launch("racy") as k:
                idx = np.array([3, 3, 3])
                k.scatter(arr, idx, np.array([1.0, 2.0, 3.0]),
                          thread_per_item(3))
        assert ("write-write-race", "error") in _rules(san.report())

    def test_same_value_marking_is_benign(self):
        """The flag-marking idiom (racing stores of one value) downgrades
        to a warning — the acceptance criterion counts only errors."""
        with attached() as san:
            dev = GPUDevice()
            arr = dev.zeros(8, name="flags")
            with dev.launch("mark") as k:
                idx = np.array([3, 3, 3])
                k.scatter(arr, idx, np.ones(3), thread_per_item(3))
        rep = san.report()
        assert rep.errors == []
        assert ("write-write-race", "warning") in _rules(rep)

    def test_cross_warp_read_write_conflict(self):
        with attached() as san:
            dev = GPUDevice()
            arr = dev.zeros(64, name="b")
            with dev.launch("rw") as k:
                # address 5 loaded from warps 0 and 1 while warp 0 stores it
                k.gather(arr, np.full(33, 5, dtype=np.int64),
                         thread_per_item(33))
                k.scatter(arr, np.array([5]), np.array([7.0]),
                          thread_per_item(1))
        assert ("read-write-race", "warning") in _rules(san.report())

    def test_atomic_plain_mix_is_error(self):
        with attached() as san:
            dev = GPUDevice()
            arr = dev.zeros(64, name="d")
            with dev.launch("mix") as k:
                idx = np.zeros(33, dtype=np.int64)
                k.atomic_min(arr, idx, np.arange(33, dtype=float),
                             thread_per_item(33))
                k.scatter(arr, np.array([0]), np.array([1.0]),
                          thread_per_item(1))
        assert ("atomic-plain-mix", "error") in _rules(san.report())

    def test_device_barrier_splits_the_window(self):
        """The same atomic/store mix separated by a device-wide sync is
        two windows, hence hazard-free."""
        with attached() as san:
            dev = GPUDevice()
            arr = dev.zeros(64, name="e")
            with dev.launch("mix2") as k:
                idx = np.zeros(33, dtype=np.int64)
                k.atomic_min(arr, idx, np.arange(33, dtype=float),
                             thread_per_item(33))
                k.device_barrier()
                k.scatter(arr, np.array([0]), np.array([1.0]),
                          thread_per_item(1))
        assert san.report().errors == []

    def test_non_monotone_dist_update(self):
        """A kernel that *increases* a dist cell violates the atomicMin
        relaxation invariant (paper §4.3)."""
        with attached() as san:
            dev = GPUDevice()
            dist = dev.full(4, np.inf, name="dist")
            dev.host_store(dist, 0, 1.0)
            with dev.launch("bad_relax") as k:
                k.scatter(dist, np.array([0]), np.array([5.0]),
                          thread_per_item(1))
        assert ("non-monotone-dist", "error") in _rules(san.report())

    def test_out_of_bounds_negative_index(self):
        """numpy silently wraps negative indices — exactly the OOB class
        memcheck exists for."""
        with attached() as san:
            dev = GPUDevice()
            arr = dev.zeros(4, name="a")
            with dev.launch("oob") as k:
                k.gather(arr, np.array([-1, 2]), thread_per_item(2))
        assert ("out-of-bounds", "error") in _rules(san.report())

    def test_uninitialized_read_from_empty_alloc(self):
        with attached() as san:
            dev = GPUDevice()
            arr = dev.empty(4, dtype=np.float64, name="scratch")
            with dev.launch("uninit") as k:
                k.gather(arr, np.array([2]), thread_per_item(1))
        assert ("uninitialized-read", "error") in _rules(san.report())

    def test_write_then_read_of_empty_alloc_is_clean(self):
        with attached() as san:
            dev = GPUDevice()
            arr = dev.empty(4, dtype=np.float64, name="scratch")
            with dev.launch("init") as k:
                k.scatter(arr, np.array([2]), np.array([1.0]),
                          thread_per_item(1))
            with dev.launch("use") as k:
                k.gather(arr, np.array([2]), thread_per_item(1))
        assert san.report().errors == []

    def test_settled_reactivation_via_annotations(self):
        with attached() as san:
            dev = GPUDevice()
            dev.full(4, np.inf, name="dist")
            dev.annotate("settled", vertices=np.array([1, 2]))
            dev.annotate("bucket", index=1, lo=0.0, hi=1.0,
                         active=np.array([2, 3]))
        assert ("settled-reactivated", "error") in _rules(san.report())

    def test_multisplit_key_out_of_range(self):
        """Bucket keys outside [0, B): the device notifies observers
        *before* its own fail-fast, so the hazard is recorded."""
        with attached() as san:
            dev = GPUDevice()
            with dev.launch("bad_split") as k:
                with pytest.raises(ValueError):
                    k.multisplit(np.array([0, 3, -1, 1]), 2,
                                 thread_per_item(4))
        assert ("multisplit-key-range", "error") in _rules(san.report())
        finding = [f for f in san.report().errors
                   if f.rule == "multisplit-key-range"][0]
        assert "2 lane(s)" in finding.message

    def test_multisplit_in_range_keys_clean(self):
        with attached() as san:
            dev = GPUDevice()
            with dev.launch("split") as k:
                k.multisplit(np.array([0, 1, 1, 0]), 2, thread_per_item(4))
        assert san.report().errors == []

    def test_strict_mode_raises(self):
        with pytest.raises(SanitizerError):
            with attached(strict=True):
                dev = GPUDevice()
                arr = dev.zeros(4, name="a")
                with dev.launch("oob") as k:
                    k.gather(arr, np.array([9]), thread_per_item(1))


# ----------------------------------------------------------------------
# final-result checking
# ----------------------------------------------------------------------

class TestCheckResult:
    def test_triangle_inequality_violation(self):
        g = path(4)
        san = Sanitizer()
        bad = np.array([0.0, 1.0, 5.0, 3.0])  # dist[2] > dist[1] + w(1,2)
        san.check_result(g, 0, bad)
        assert ("relaxation-violated", "error") in _rules(san.report())

    def test_bad_source_distance(self):
        g = path(4)
        san = Sanitizer()
        san.check_result(g, 0, np.array([1.0, 2.0, 3.0, 4.0]))
        assert ("bad-source", "error") in _rules(san.report())

    def test_correct_result_is_clean(self):
        g = path(4)
        san = Sanitizer()
        san.check_result(g, 0, np.array([0.0, 1.0, 2.0, 3.0]))
        assert san.report().findings == []


class TestReport:
    def test_summary_mentions_counts(self, small_kron, kron_source):
        _, report = sanitized_sssp(small_kron, kron_source, method="bl")
        s = report.summary()
        assert "window" in s and "access" in s

    def test_detach_stops_recording(self):
        san = Sanitizer()
        dev = GPUDevice()
        san.attach(dev)
        san.detach(dev)
        arr = dev.zeros(4, name="a")
        with dev.launch("oob") as k:
            k.gather(arr, np.array([-1]), thread_per_item(1))
        assert san.report().findings == []
