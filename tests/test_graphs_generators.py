"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    complete,
    erdos_renyi,
    grid_road_network,
    kronecker,
    paper_fig1_graph,
    paper_fig4_graph,
    path,
    preferential_attachment,
    small_world,
    star,
)
from repro.graphs.generators import GRAPH500_INITIATOR, rmat_edges
from repro.graphs.properties import degree_skewness, estimate_diameter


class TestRmat:
    def test_edge_count_and_range(self):
        rng = np.random.default_rng(0)
        src, dst = rmat_edges(8, 1000, rng=rng)
        assert src.size == dst.size == 1000
        assert src.min() >= 0 and src.max() < 256
        assert dst.min() >= 0 and dst.max() < 256

    def test_determinism(self):
        a = rmat_edges(6, 100, rng=np.random.default_rng(5))
        b = rmat_edges(6, 100, rng=np.random.default_rng(5))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_initiator_must_sum_to_one(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 10, initiator=(0.5, 0.5, 0.5, 0.5))

    def test_negative_args_rejected(self):
        with pytest.raises(ValueError):
            rmat_edges(-1, 10)
        with pytest.raises(ValueError):
            rmat_edges(4, -10)

    def test_graph500_initiator_is_papers(self):
        assert GRAPH500_INITIATOR == (0.57, 0.19, 0.19, 0.05)

    def test_skewed_degrees(self):
        """R-MAT with the Graph500 initiator is strongly right-skewed."""
        g = kronecker(10, 16, seed=1)
        assert degree_skewness(g) > 2.0


class TestKronecker:
    def test_sizes(self):
        g = kronecker(8, 4, seed=0)
        assert g.num_vertices == 256
        # symmetrized and deduplicated: at most 2 * edgefactor * n arcs
        assert 0 < g.num_edges <= 2 * 4 * 256

    def test_unit_weights_in_range(self):
        g = kronecker(6, 4, weights="unit", seed=0)
        assert g.weights.min() >= 0.0 and g.weights.max() < 1.0

    def test_int_weights_in_range(self):
        g = kronecker(6, 4, weights="int", max_weight=50, seed=0)
        assert g.weights.min() >= 1.0 and g.weights.max() <= 50.0
        assert np.all(g.weights == np.round(g.weights))

    def test_unknown_weight_scheme(self):
        with pytest.raises(ValueError):
            kronecker(4, 2, weights="bogus")

    def test_deterministic_by_seed(self):
        a = kronecker(6, 4, seed=9)
        b = kronecker(6, 4, seed=9)
        assert np.array_equal(a.adj, b.adj)
        assert np.array_equal(a.weights, b.weights)

    def test_default_name(self):
        assert kronecker(5, 3).name == "k-n5-3"


class TestRoadNetwork:
    def test_grid_dimensions(self):
        g = grid_road_network(10, 7, seed=0)
        assert g.num_vertices == 70

    def test_uniform_low_degree(self):
        g = grid_road_network(30, 30, seed=1)
        assert g.degrees.max() <= 8  # 4 streets + diagonals both ways
        assert degree_skewness(g) < 2.0

    def test_high_diameter(self):
        g = grid_road_network(30, 30, diagonal_prob=0.0, drop_prob=0.0, seed=0)
        assert estimate_diameter(g, num_probes=2) >= 40

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_road_network(0, 5)


class TestPreferentialAttachment:
    def test_sizes(self):
        g = preferential_attachment(200, 3, seed=0)
        assert g.num_vertices == 200
        assert g.num_edges > 0

    def test_power_law_ish(self):
        g = preferential_attachment(500, 2, seed=0)
        assert g.degrees.max() > 5 * np.median(g.degrees)

    def test_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment(3, 3)
        with pytest.raises(ValueError):
            preferential_attachment(10, 0)


class TestSimpleTopologies:
    def test_star(self):
        g = star(10)
        assert g.num_vertices == 11
        assert g.degrees[0] == 10
        assert np.all(g.degrees[1:] == 1)

    def test_path(self):
        g = path(5)
        assert g.num_vertices == 5
        assert estimate_diameter(g) == 4

    def test_path_single_vertex(self):
        g = path(1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_complete(self):
        g = complete(6)
        assert g.num_vertices == 6
        assert g.num_edges == 6 * 5

    def test_erdos_renyi(self):
        g = erdos_renyi(100, 300, seed=0)
        assert g.num_vertices == 100
        assert g.num_edges <= 600

    def test_small_world(self):
        g = small_world(64, 4, 0.1, seed=0)
        assert g.num_vertices == 64
        with pytest.raises(ValueError):
            small_world(64, 3)


class TestPaperFixtures:
    def test_fig1_matches_printed_csr(self):
        g = paper_fig1_graph()
        assert list(g.row) == [0, 3, 6, 9, 15, 18, 20, 23, 26]
        assert g.num_vertices == 8
        assert g.num_edges == 26  # 13 undirected edges

    def test_fig1_is_symmetric(self):
        g = paper_fig1_graph()
        edges = {(u, v): w for u, v, w in g.iter_edges()}
        for (u, v), w in edges.items():
            assert edges.get((v, u)) == w

    def test_fig1_degrees(self):
        g = paper_fig1_graph()
        assert list(g.degrees) == [3, 3, 3, 6, 3, 2, 3, 3]

    def test_fig4_degrees_match_paper(self):
        g = paper_fig4_graph()
        # "the degree of vertices 0, 1, 2, 3, 4 are 2, 4, 2, 3, 3"
        assert list(g.degrees) == [2, 4, 2, 3, 3]

    def test_fig4_is_symmetric(self):
        g = paper_fig4_graph()
        edges = {(u, v): w for u, v, w in g.iter_edges()}
        for (u, v), w in edges.items():
            assert edges.get((v, u)) == w
