"""Tests for the framework kernels (BFS, components, PageRank)."""

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as scipy_dijkstra

from repro.graphalgs import (
    bfs_gpu,
    connected_components_gpu,
    pagerank_gpu,
)
from repro.graphs import (
    from_edges,
    kronecker,
    largest_component_vertices,
    path,
    star,
)
from repro.graphs.properties import connected_components
from repro.gpusim import V100

SPEC = V100.scaled_for_workload(1 / 64)


def hop_counts(graph, source):
    mat = csr_matrix(
        (np.ones(graph.num_edges), graph.adj, graph.row),
        shape=(graph.num_vertices, graph.num_vertices),
    )
    return scipy_dijkstra(mat, indices=source, unweighted=True)


class TestBfs:
    @pytest.mark.parametrize("adaptive", [True, False])
    def test_levels_match_scipy(self, adaptive):
        g = kronecker(8, 8, weights="int", seed=100)
        src = int(largest_component_vertices(g)[0])
        r = bfs_gpu(g, src, spec=SPEC, adaptive=adaptive)
        ref = hop_counts(g, src)
        assert np.array_equal(np.isfinite(r.dist), np.isfinite(ref))
        f = np.isfinite(ref)
        assert np.allclose(r.dist[f], ref[f])

    def test_path_depth(self):
        g = path(20)
        r = bfs_gpu(g, 0, spec=SPEC)
        assert r.extra["depth"] == 19
        assert r.dist[19] == 19.0

    def test_star_one_level(self):
        g = star(30)
        r = bfs_gpu(g, 0, spec=SPEC)
        assert r.extra["depth"] == 1
        assert np.all(r.dist[1:] == 1.0)

    def test_isolated_source(self):
        g = from_edges(np.array([1]), np.array([2]), np.ones(1),
                       num_vertices=4, symmetrize=True)
        r = bfs_gpu(g, 0, spec=SPEC)
        assert np.isinf(r.dist[1:]).all()

    def test_adaptive_spawns_children_on_hub(self):
        g = star(500)
        r = bfs_gpu(g, 0, spec=SPEC, adaptive=True)
        assert r.counters.totals.child_kernel_launches > 0

    def test_source_validation(self):
        with pytest.raises(ValueError):
            bfs_gpu(path(4), 9, spec=SPEC)


class TestComponents:
    def _same_partition(self, got, ref):
        mapping = {}
        for a, b in zip(got, ref):
            if a in mapping and mapping[a] != b:
                return False
            mapping[a] = b
        return len(set(mapping.values())) == len(mapping)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy_partition(self, seed):
        rng = np.random.default_rng(seed)
        g = from_edges(
            rng.integers(0, 40, 60), rng.integers(0, 40, 60),
            np.ones(60), num_vertices=40, symmetrize=True,
        )
        r = connected_components_gpu(g, spec=SPEC)
        ref = connected_components(g)
        assert r.num_components == len(set(ref.tolist()))
        assert self._same_partition(r.labels, ref)

    def test_all_isolated(self):
        g = from_edges(np.array([]), np.array([]), np.array([]), num_vertices=5)
        r = connected_components_gpu(g, spec=SPEC)
        assert r.num_components == 5

    def test_single_component_label_is_min(self):
        g = path(10)
        r = connected_components_gpu(g, spec=SPEC)
        assert r.num_components == 1
        assert np.all(r.labels == 0)

    def test_component_sizes(self):
        g = from_edges(np.array([0, 2]), np.array([1, 3]), np.ones(2),
                       num_vertices=5, symmetrize=True)
        r = connected_components_gpu(g, spec=SPEC)
        assert sorted(r.component_sizes().tolist()) == [1, 2, 2]

    def test_rounds_bounded_by_diameter(self):
        g = path(30)
        r = connected_components_gpu(g, spec=SPEC)
        assert r.rounds <= 31


class TestPageRank:
    def test_sums_to_one_and_converges(self):
        g = kronecker(8, 8, weights="int", seed=101)
        r = pagerank_gpu(g, spec=SPEC)
        assert r.converged
        assert r.ranks.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(r.ranks > 0)

    def test_hub_ranks_highest(self):
        g = star(50)
        r = pagerank_gpu(g, spec=SPEC)
        assert r.top(1)[0] == 0

    def test_uniform_on_symmetric_regular(self):
        # a cycle: every vertex identical -> uniform ranks
        n = 16
        src = np.arange(n)
        dst = (src + 1) % n
        g = from_edges(src, dst, np.ones(n), num_vertices=n, symmetrize=True)
        r = pagerank_gpu(g, spec=SPEC)
        assert np.allclose(r.ranks, 1.0 / n, atol=1e-6)

    def test_matches_networkx(self):
        import networkx as nx

        g = kronecker(6, 4, weights="int", seed=102)
        r = pagerank_gpu(g, spec=SPEC, tol=1e-10)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(g.num_vertices))
        nxg.add_edges_from((u, v) for u, v, _ in g.iter_edges())
        ref = nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500)
        ref_vec = np.array([ref[i] for i in range(g.num_vertices)])
        assert np.allclose(r.ranks, ref_vec, atol=1e-6)

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank_gpu(path(4), damping=1.5, spec=SPEC)

    def test_empty_graph(self):
        from repro.graphs import CSRGraph

        g = CSRGraph(row=np.array([0]), adj=np.array([]), weights=np.array([]))
        r = pagerank_gpu(g, spec=SPEC)
        assert r.ranks.size == 0

    def test_atomic_add_traffic_counted(self):
        g = kronecker(7, 8, weights="int", seed=103)
        r = pagerank_gpu(g, spec=SPEC, max_iterations=3)
        assert r.counters.totals.inst_executed_atomics > 0
