"""Correctness and accounting tests for every GPU SSSP implementation."""

import numpy as np
import pytest

from repro.graphs import from_edges, kronecker, grid_road_network, path, star
from repro.gpusim import T4, V100
from repro.sssp import (
    adds_sssp,
    bl_sssp,
    nearfar_sssp,
    rdbs_sssp,
    validate_distances,
)

SPEC = V100.scaled_for_workload(1 / 64)

GRAPHS = {
    "kron": kronecker(8, 8, weights="int", seed=20),
    "road": grid_road_network(12, 12, seed=21),
    "star": star(100),
    "path": path(40),
    "unit-kron": kronecker(7, 8, weights="unit", seed=22),
}

GPU_FNS = {
    "bl": bl_sssp,
    "near-far": nearfar_sssp,
    "adds": adds_sssp,
    "rdbs": rdbs_sssp,
}


@pytest.mark.parametrize("gname", list(GRAPHS))
@pytest.mark.parametrize("fname", list(GPU_FNS))
class TestCorrectness:
    def test_distances_match_oracle(self, gname, fname):
        g = GRAPHS[gname]
        r = GPU_FNS[fname](g, 0, spec=SPEC)
        validate_distances(g, 0, r.dist)

    def test_result_metadata(self, gname, fname):
        g = GRAPHS[gname]
        r = GPU_FNS[fname](g, 0, spec=SPEC)
        assert r.time_ms > 0
        assert r.num_edges == g.num_edges
        assert r.counters is not None
        assert r.work is not None
        assert r.gteps > 0


@pytest.mark.parametrize("fname", list(GPU_FNS))
class TestEdgeCases:
    def test_isolated_source(self, fname):
        g = from_edges(np.array([1]), np.array([2]), np.array([1.0]),
                       num_vertices=4, symmetrize=True)
        r = GPU_FNS[fname](g, 0, spec=SPEC)
        assert r.dist[0] == 0.0
        assert np.isinf(r.dist[1:]).all()

    def test_source_out_of_range(self, fname):
        with pytest.raises(ValueError):
            GPU_FNS[fname](GRAPHS["path"], 1000, spec=SPEC)

    def test_two_vertex_graph(self, fname):
        g = from_edges(np.array([0]), np.array([1]), np.array([4.0]),
                       symmetrize=True)
        r = GPU_FNS[fname](g, 1, spec=SPEC)
        assert list(r.dist) == [4.0, 0.0]


class TestRdbsEngine:
    @pytest.mark.parametrize(
        "pro,adwl,basyn",
        [
            (False, False, False),
            (True, False, False),
            (False, True, False),
            (False, False, True),
            (True, True, False),
            (True, False, True),
            (False, True, True),
            (True, True, True),
        ],
    )
    def test_all_toggle_combinations_correct(self, pro, adwl, basyn):
        g = GRAPHS["kron"]
        r = rdbs_sssp(g, 0, pro=pro, adwl=adwl, basyn=basyn, spec=SPEC)
        validate_distances(g, 0, r.dist)
        assert r.extra["pro"] == pro

    def test_method_labels(self):
        g = GRAPHS["path"]
        assert rdbs_sssp(g, 0, spec=SPEC).method == "rdbs"
        assert (
            rdbs_sssp(g, 0, pro=False, adwl=False, basyn=False, spec=SPEC).method
            == "sync-delta"
        )
        assert (
            rdbs_sssp(g, 0, pro=True, adwl=False, basyn=True, spec=SPEC).method
            == "basyn+pro"
        )

    def test_distances_in_original_order_with_pro(self):
        """PRO relabels internally but reports original vertex ids."""
        g = GRAPHS["kron"]
        a = rdbs_sssp(g, 5, pro=True, spec=SPEC)
        b = rdbs_sssp(g, 5, pro=False, spec=SPEC)
        assert np.allclose(a.dist, b.dist)

    def test_trace_recording(self):
        g = GRAPHS["unit-kron"]
        r = rdbs_sssp(g, 0, delta=0.1, record_trace=True, spec=SPEC)
        assert r.trace is not None
        assert len(r.trace.buckets) == r.extra["buckets"]
        assert r.trace.peak_bucket().initial_active > 0

    def test_dynamic_delta_recorded(self):
        g = GRAPHS["kron"]
        r = rdbs_sssp(g, 0, spec=SPEC)
        assert r.extra["final_delta"] >= 0
        assert r.extra["buckets"] >= 1

    def test_counters_populated(self):
        g = GRAPHS["kron"]
        r = rdbs_sssp(g, 0, spec=SPEC)
        c = r.counters.totals
        assert c.inst_executed_global_loads > 0
        assert c.inst_executed_atomics > 0
        assert c.async_rounds > 0  # BASYN ran asynchronously

    def test_sync_mode_uses_barriers_per_iteration(self):
        g = GRAPHS["kron"]
        sync = rdbs_sssp(g, 0, basyn=False, pro=False, adwl=False, spec=SPEC)
        async_ = rdbs_sssp(g, 0, basyn=True, pro=False, adwl=False, spec=SPEC)
        assert (
            sync.counters.totals.barriers > async_.counters.totals.barriers
        )

    def test_adwl_spawns_children_on_powerlaw(self):
        g = GRAPHS["star"]  # hub with 100 light edges -> warp child kernels
        r = rdbs_sssp(g, 1, adwl=True, spec=SPEC)
        assert r.counters.totals.child_kernel_launches > 0

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            rdbs_sssp(GRAPHS["path"], 0, delta=-2.0, spec=SPEC)


class TestAddsSpecifics:
    def test_delta_adapts(self):
        g = GRAPHS["road"]
        r = adds_sssp(g, 0, spec=SPEC)
        assert r.extra["final_delta"] >= r.extra["delta0"]

    def test_async_rounds_recorded(self):
        g = GRAPHS["kron"]
        r = adds_sssp(g, 0, spec=SPEC)
        assert r.counters.totals.async_rounds > 0


class TestBaselineSpecifics:
    def test_bl_iterations_bounded_by_hops(self):
        g = GRAPHS["path"]
        r = bl_sssp(g, 0, spec=SPEC)
        assert r.extra["iterations"] <= g.num_vertices

    def test_bl_max_iterations_cutoff(self):
        g = GRAPHS["path"]
        r = bl_sssp(g, 0, spec=SPEC, max_iterations=3)
        assert np.isinf(r.dist[-1])

    def test_nearfar_threshold_advances(self):
        g = GRAPHS["kron"]
        r = nearfar_sssp(g, 0, spec=SPEC)
        assert r.extra["iterations"] > 0


class TestPlatformScaling:
    def test_v100_not_slower_than_t4(self):
        g = kronecker(9, 16, weights="int", seed=23)
        tv = rdbs_sssp(g, 0, spec=V100.scaled_for_workload(1 / 64)).time_ms
        tt = rdbs_sssp(g, 0, spec=T4.scaled_for_workload(1 / 64)).time_ms
        assert tt >= tv
