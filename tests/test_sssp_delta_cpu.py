"""Tests for classic CPU Δ-stepping and its Fig. 2/3 trace instrumentation."""

import numpy as np
import pytest

from repro.graphs import kronecker, paper_fig1_graph, path
from repro.sssp import delta_stepping_cpu, dijkstra, validate_distances


class TestCorrectness:
    def test_path(self):
        g = path(10)
        r = delta_stepping_cpu(g, 0, delta=1.0)
        assert np.allclose(r.dist, np.arange(10, dtype=float))

    @pytest.mark.parametrize("delta", [0.5, 2.0, 10.0, 1000.0])
    def test_delta_invariance(self, delta):
        """Any Δ yields the same distances (§2.2: Δ=1 ~ Dijkstra, Δ=inf ~
        Bellman-Ford)."""
        g = kronecker(7, 6, weights="int", max_weight=20, seed=4)
        r = delta_stepping_cpu(g, 0, delta=delta)
        validate_distances(g, 0, r.dist)

    def test_default_delta(self):
        g = kronecker(6, 4, weights="int", seed=5)
        r = delta_stepping_cpu(g, 0)
        validate_distances(g, 0, r.dist)

    def test_invalid_args(self):
        g = path(4)
        with pytest.raises(ValueError):
            delta_stepping_cpu(g, 9, delta=1.0)
        with pytest.raises(ValueError):
            delta_stepping_cpu(g, 0, delta=-1.0)

    def test_fig1_graph_distances(self):
        """Distances from vertex 0 on the Fig. 1 graph, checked by hand:
        0-2 (w1), then 2-3 (w1) -> dist 2; 0-3 direct is 3; 3-4 w1 -> 3."""
        g = paper_fig1_graph()
        r = delta_stepping_cpu(g, 0, delta=3.0)
        assert r.dist[0] == 0.0
        assert r.dist[2] == 1.0
        assert r.dist[3] == 2.0
        assert r.dist[4] == 3.0
        validate_distances(g, 0, r.dist)


class TestWorkAccounting:
    def test_ratio_at_least_one(self):
        g = kronecker(7, 8, weights="int", seed=6)
        r = delta_stepping_cpu(g, 0, delta=100.0)
        assert r.work.update_ratio >= 1.0
        assert r.work.total_updates >= r.work.valid_updates

    def test_each_reached_vertex_has_a_valid_update(self):
        """Every reached vertex's final distance was written exactly once
        as a valid update (plus the source's initialization)."""
        g = kronecker(6, 6, weights="int", seed=7)
        r = delta_stepping_cpu(g, 0, delta=50.0)
        assert r.work.valid_updates >= r.reached

    def test_small_delta_fewer_invalid_updates(self):
        """Δ -> Dijkstra-like: narrower buckets improve work efficiency."""
        g = kronecker(7, 8, weights="int", seed=8)
        small = delta_stepping_cpu(g, 0, delta=20.0)
        huge = delta_stepping_cpu(g, 0, delta=1e9)
        assert small.work.update_ratio <= huge.work.update_ratio


class TestTraces:
    def test_trace_disabled_by_default(self):
        g = path(6)
        assert delta_stepping_cpu(g, 0, delta=2.0).trace is None

    def test_bucket_series(self):
        g = path(10)  # unit weights: distances 0..9
        r = delta_stepping_cpu(g, 0, delta=2.0, record_trace=True)
        series = r.trace.active_per_bucket()
        assert len(series) == 5  # distances 0..9 in buckets of width 2
        assert series[0][0] == 0

    def test_iterations_recorded(self):
        g = kronecker(6, 6, weights="unit", seed=9)
        r = delta_stepping_cpu(g, 0, delta=0.1, record_trace=True)
        peak = r.trace.peak_bucket()
        assert peak is not None
        assert peak.num_iterations >= 1
        assert peak.initial_active == max(b.initial_active for b in r.trace.buckets)

    def test_phase1_update_counts_filled(self):
        g = kronecker(6, 6, weights="unit", seed=10)
        r = delta_stepping_cpu(g, 0, delta=0.1, record_trace=True)
        total = sum(b.phase1_total_updates for b in r.trace.buckets)
        valid = sum(b.phase1_valid_updates for b in r.trace.buckets)
        assert total >= valid > 0

    def test_bucket_count_matches_extra(self):
        g = kronecker(6, 6, weights="unit", seed=11)
        r = delta_stepping_cpu(g, 0, delta=0.2, record_trace=True)
        assert len(r.trace.buckets) == r.extra["buckets"]
