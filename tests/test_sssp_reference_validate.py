"""Tests for the reference algorithms and the validation oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges, kronecker, path, star
from repro.sssp import (
    DistanceMismatch,
    bellman_ford,
    dijkstra,
    scipy_distances,
    validate_distances,
)


def random_graph(seed, n=25, m=80):
    rng = np.random.default_rng(seed)
    return from_edges(
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 30, m).astype(float),
        num_vertices=n,
        symmetrize=True,
    )


class TestDijkstra:
    def test_path_graph(self):
        r = dijkstra(path(5, weight=2.0), 0)
        assert list(r.dist) == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_star_graph(self):
        r = dijkstra(star(4, weight=3.0), 0)
        assert r.dist[0] == 0.0
        assert np.all(r.dist[1:] == 3.0)

    def test_unreachable_is_inf(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([1.0]), num_vertices=3)
        r = dijkstra(g, 0)
        assert np.isinf(r.dist[2])
        assert r.reached == 2

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            dijkstra(path(3), 5)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_matches_scipy(self, seed):
        g = random_graph(seed)
        r = dijkstra(g, 0)
        assert np.allclose(
            r.dist, scipy_distances(g, 0), equal_nan=False
        ) or np.array_equal(np.isinf(r.dist), np.isinf(scipy_distances(g, 0)))
        validate_distances(g, 0, r.dist)


class TestBellmanFord:
    def test_matches_dijkstra(self):
        g = random_graph(7)
        assert np.allclose(bellman_ford(g, 0).dist, dijkstra(g, 0).dist)

    def test_rounds_bounded_by_depth(self):
        g = path(10)
        r = bellman_ford(g, 0)
        assert r.extra["rounds"] <= 10

    def test_max_rounds_cutoff(self):
        g = path(50)
        r = bellman_ford(g, 0, max_rounds=2)
        assert np.isinf(r.dist[10])

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_scipy(self, seed):
        g = random_graph(seed, n=15, m=40)
        validate_distances(g, 0, bellman_ford(g, 0).dist)


class TestValidate:
    def test_accepts_correct(self):
        g = kronecker(6, 4, seed=1)
        validate_distances(g, 0, scipy_distances(g, 0))

    def test_rejects_wrong_value(self):
        g = path(4)
        d = scipy_distances(g, 0)
        d[2] += 1.0
        with pytest.raises(DistanceMismatch, match="distance error"):
            validate_distances(g, 0, d)

    def test_rejects_wrong_reachability(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([1.0]), num_vertices=3)
        d = scipy_distances(g, 0)
        d[2] = 5.0  # claims the unreachable vertex is reachable
        with pytest.raises(DistanceMismatch, match="reachability"):
            validate_distances(g, 0, d)

    def test_rejects_wrong_shape(self):
        g = path(4)
        with pytest.raises(DistanceMismatch, match="shape"):
            validate_distances(g, 0, np.zeros(3))
