"""Shared fixtures: small deterministic graphs exercised across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    from_edges,
    grid_road_network,
    kronecker,
    paper_fig1_graph,
    paper_fig4_graph,
    path,
    preferential_attachment,
    star,
)
from repro.graphs.properties import largest_component_vertices


@pytest.fixture(autouse=True, scope="session")
def _isolated_artifact_cache(tmp_path_factory):
    """Point the persistent artifact cache at a session-local tmp dir.

    Keeps the test suite hermetic: no reads from (or writes to) the
    developer's ``~/.cache/repro-sssp``, while cache *behaviour* —
    hits across tests in one session — stays observable for the tests
    that assert on it.
    """
    import os

    from repro.perf import artifacts

    root = tmp_path_factory.mktemp("artifact-cache")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    artifacts.configure_cache(root)
    yield
    artifacts.configure_cache(None)


@pytest.fixture
def fig1_graph():
    """The 8-vertex graph of the paper's Fig. 1."""
    return paper_fig1_graph()


@pytest.fixture
def fig4_graph():
    """The 5-vertex graph of the paper's Fig. 4."""
    return paper_fig4_graph()


@pytest.fixture
def triangle():
    """3-cycle with distinct weights."""
    return from_edges(
        np.array([0, 1, 2]),
        np.array([1, 2, 0]),
        np.array([1.0, 2.0, 4.0]),
        symmetrize=True,
        name="triangle",
    )


@pytest.fixture
def small_kron():
    """Kronecker SCALE=8, edgefactor=8 — the standard small power-law input."""
    return kronecker(8, 8, weights="int", seed=42)


@pytest.fixture
def medium_kron():
    """Kronecker SCALE=10, edgefactor=8 — the standard medium input."""
    return kronecker(10, 8, weights="int", seed=43)


@pytest.fixture
def small_road():
    """16x16 road grid."""
    return grid_road_network(16, 16, seed=44, name="road16")


@pytest.fixture
def small_pa():
    """Preferential-attachment graph (mild power law)."""
    return preferential_attachment(300, 3, seed=45)


@pytest.fixture
def star_graph():
    """Hub-and-spokes: the worst-case load-imbalance topology."""
    return star(200)


@pytest.fixture
def path_graph():
    """64-vertex path: the worst-case diameter topology."""
    return path(64)


def component_source(graph) -> int:
    """First vertex of the largest component (deterministic)."""
    return int(largest_component_vertices(graph)[0])


@pytest.fixture
def kron_source(small_kron):
    return component_source(small_kron)


@pytest.fixture
def sanitizer():
    """A hazard sanitizer attached (via the global registry) to every
    device created inside the test; yields the live Sanitizer."""
    from repro.analysis import attached

    with attached() as san:
        yield san
