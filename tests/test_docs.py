"""Tests for tools/check_docs.py and the documentation invariants it
guards: resolvable cross-links, an index that names every docs page, and
quoted CLI commands that the real argparse tree still accepts."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from check_docs import (  # noqa: E402
    check_index,
    check_links,
    doc_paths,
    extract_commands,
    validate_command,
)


class TestRepoDocsPass:
    def test_checker_exits_zero_on_the_repo(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docs.py")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 problem(s)" in proc.stdout

    def test_every_docs_page_scanned(self):
        scanned = {p.name for p in doc_paths()}
        for page in (REPO / "docs").glob("*.md"):
            assert page.name in scanned

    def test_commands_are_actually_found(self):
        """Guard against the extractor silently matching nothing."""
        total = sum(len(extract_commands(p)) for p in doc_paths())
        assert total >= 30

    def test_index_links_every_page(self):
        assert check_index() == []


class TestValidator:
    @pytest.mark.parametrize("cmd", [
        "python -m repro.cli trace run kron:9,8 --method rdbs --out t.json",
        "python -m repro.cli sanitize kron:9,8 --method rdbs",
        "python -m repro.cli bench check --baseline BENCH_quick.json --no-wall",
        "python -m repro solve kron:12,16 --method rdbs",
        "PYTHONPATH=src python -m repro.cli lint src/repro",
    ])
    def test_real_commands_pass(self, cmd):
        assert validate_command(cmd) is None

    @pytest.mark.parametrize("cmd", [
        "python -m repro.cli trace frobnicate t.json",
        "python -m repro.cli sanitize kron:9,8 --method nosuch",
        "python -m repro.cli bench run --no-such-flag",
        "python -m repro.cli trace export t.json",  # missing required --format
    ])
    def test_stale_commands_fail(self, cmd):
        assert validate_command(cmd) is not None

    @pytest.mark.parametrize("cmd", [
        "python -m repro.cli sanitize kron:9,8 --method <m>",  # placeholder
        "python -m pytest -x -q",                              # not our CLI
        "python -m repro.cli lint [paths]",                    # placeholder
    ])
    def test_templates_and_foreign_commands_skipped(self, cmd):
        assert validate_command(cmd) is None


class TestLinkCheck:
    def test_broken_link_detected(self, tmp_path):
        doc = tmp_path / "page.md"
        doc.write_text("see [here](no-such-file.md) for more\n")
        problems = check_links(doc)
        assert len(problems) == 1
        assert "no-such-file.md" in problems[0]

    def test_good_link_and_url_and_anchor_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("x\n")
        doc = tmp_path / "page.md"
        doc.write_text(
            "[a](other.md) [b](https://example.com) [c](#section) "
            "[d](other.md#part)\n"
        )
        assert check_links(doc) == []

    def test_fenced_code_blocks_ignored(self, tmp_path):
        doc = tmp_path / "page.md"
        doc.write_text("```\n[x](missing.md)\n```\n")
        assert check_links(doc) == []


class TestExtractor:
    def test_fenced_console_and_inline(self, tmp_path):
        doc = tmp_path / "page.md"
        doc.write_text(
            "Run `python -m repro.cli cache status` first.\n"
            "```console\n"
            "$ python -m repro.cli sanitize kron:9,8 --method rdbs\n"
            "output line, not a command\n"
            "```\n"
        )
        cmds = [c for _, c in extract_commands(doc)]
        assert "python -m repro.cli cache status" in cmds
        assert "python -m repro.cli sanitize kron:9,8 --method rdbs" in cmds
        assert len(cmds) == 2
