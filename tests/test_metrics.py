"""Tests for work accounting, trace recording and throughput metrics."""

import numpy as np
import pytest

from repro.metrics import (
    TraceRecorder,
    WorkStats,
    geometric_mean,
    gteps,
    speedup,
)


class TestWorkStats:
    def test_updates_and_checks(self):
        s = WorkStats()
        s.record(
            np.array([1, 2, 3]),
            np.array([5.0, 6.0, 7.0]),
            np.array([True, False, True]),
        )
        assert s.total_updates == 2
        assert s.checks == 1
        assert s.relaxations == 3

    def test_finalize_classifies_validity(self):
        s = WorkStats()
        # vertex 1 updated twice: once to 9 (later improved -> invalid),
        # once to 5 (the final distance -> valid)
        s.record(np.array([1]), np.array([9.0]), np.array([True]))
        s.record(np.array([1]), np.array([5.0]), np.array([True]))
        final = np.array([0.0, 5.0])
        t = s.finalize(final)
        assert t.total_updates == 2
        assert t.valid_updates == 1
        assert t.invalid_updates == 1
        assert t.update_ratio == 2.0

    def test_empty_tally(self):
        t = WorkStats().finalize(np.array([0.0]))
        assert t.total_updates == 0
        assert t.update_ratio == 1.0

    def test_ratio_inf_when_no_valid(self):
        s = WorkStats()
        s.record(np.array([0]), np.array([3.0]), np.array([True]))
        t = s.finalize(np.array([1.0]))  # final differs from every write
        assert t.update_ratio == float("inf")

    def test_streaming_accumulation(self):
        s = WorkStats()
        for _ in range(10):
            s.record(np.array([0]), np.array([1.0]), np.array([False]))
        assert s.checks == 10
        assert s.total_updates == 0


class TestTraceRecorder:
    def test_bucket_lifecycle(self):
        t = TraceRecorder()
        t.begin_bucket(0, 5, 0.0, 1.0)
        t.iteration(5)
        t.iteration(3)
        t.end_bucket(time_s=2.0)
        t.begin_bucket(1, 9, 1.0, 2.0)
        t.iteration(9)
        t.end_bucket(time_s=1.0)
        assert t.active_per_bucket() == [(0, 5), (1, 9)]
        assert t.buckets[0].num_iterations == 2
        assert t.peak_bucket().bucket_id == 1
        assert t.peak_time_fraction() == pytest.approx(2 / 3)

    def test_iteration_without_bucket_ignored(self):
        t = TraceRecorder()
        t.iteration(4)  # no open bucket: no crash, no record
        assert t.buckets == []

    def test_peak_of_empty(self):
        t = TraceRecorder()
        assert t.peak_bucket() is None
        assert t.peak_time_fraction() == 0.0

    def test_bucket_interval_recorded(self):
        t = TraceRecorder()
        t.begin_bucket(3, 1, 6.0, 8.5)
        t.end_bucket()
        b = t.buckets[0]
        assert b.delta_lo == 6.0 and b.delta_hi == 8.5


class TestThroughput:
    def test_gteps(self):
        assert gteps(1_000_000_000, 1.0) == pytest.approx(1.0)
        assert gteps(500_000, 0.001) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            gteps(10, 0.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])
