"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, parse_gpu_spec, parse_graph_spec
from repro.graphs import kronecker, save_npz, write_dimacs_gr, write_edge_list


class TestGraphSpecParser:
    def test_kron(self):
        g = parse_graph_spec("kron:8,4")
        assert g.num_vertices == 256

    def test_kron_default_edgefactor(self):
        g = parse_graph_spec("kron:7")
        assert g.num_vertices == 128

    def test_road(self):
        g = parse_graph_spec("road:8,6")
        assert g.num_vertices == 48

    def test_road_square_default(self):
        g = parse_graph_spec("road:8")
        assert g.num_vertices == 64

    def test_pa_and_er(self):
        assert parse_graph_spec("pa:100,3").num_vertices == 100
        assert parse_graph_spec("er:50,200").num_vertices == 50

    def test_dataset_name(self):
        g = parse_graph_spec("Amazon")
        assert g.name == "Amazon"

    def test_unknown_kind(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("torus:3")

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("does/not/exist.txt")

    def test_file_loading(self, tmp_path):
        g = kronecker(5, 3, seed=1)
        npz = tmp_path / "g.npz"
        save_npz(g, npz)
        assert parse_graph_spec(str(npz)).num_edges == g.num_edges
        gr = tmp_path / "g.gr"
        write_dimacs_gr(g, gr)
        assert parse_graph_spec(str(gr)).num_edges == g.num_edges
        txt = tmp_path / "g.txt"
        write_edge_list(g, txt)
        loaded = parse_graph_spec(str(txt))
        # edge-list files don't record isolated trailing vertices, so
        # compare the edge set size (the CLI reader symmetrizes, but the
        # file is already symmetric so dedup collapses it back)
        assert loaded.num_edges == g.num_edges

    def test_seed_changes_graph(self):
        a = parse_graph_spec("kron:7,4", seed=1)
        b = parse_graph_spec("kron:7,4", seed=2)
        assert not np.array_equal(a.adj, b.adj)


class TestGpuSpecParser:
    def test_known(self):
        s = parse_gpu_spec("t4", 1 / 64)
        assert s.num_sms == 40

    def test_unknown(self):
        with pytest.raises(SystemExit):
            parse_gpu_spec("h100", 1.0)


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "kron:8,4", "--method", "rdbs"]) == 0
        out = capsys.readouterr().out
        assert "validated against scipy" in out
        assert "GTEPS" in out

    def test_solve_explicit_source(self, capsys):
        assert main(["solve", "road:6,6", "--source", "0"]) == 0
        assert "source    : 0" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "kron:8,4", "--methods", "bl,rdbs"]) == 0
        out = capsys.readouterr().out
        assert "bl" in out and "rdbs" in out

    def test_compare_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["compare", "kron:6,4", "--methods", "warp-drive"])

    def test_profile(self, capsys):
        assert main(["profile", "kron:8,4", "--method", "rdbs"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out and "bottlenecks" in out

    def test_profile_cpu_method_rejected(self):
        with pytest.raises(SystemExit, match="timeline"):
            main(["profile", "kron:6,4", "--method", "dijkstra"])

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "road-TX" in out and "stands in for" in out

    def test_list_methods(self, capsys):
        assert main(["--list-methods"]) == 0
        assert "rdbs" in capsys.readouterr().out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_delta_override(self, capsys):
        assert main(["solve", "kron:7,4", "--delta", "500"]) == 0

    def test_no_validate(self, capsys):
        assert main(["solve", "kron:7,4", "--no-validate"]) == 0
        assert "validated" not in capsys.readouterr().out

    def test_parser_builds(self):
        assert build_parser().prog == "repro"


class TestSelfcheck:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "validated against scipy" in out
        assert "rdbs" in out and "pq-delta*" in out
